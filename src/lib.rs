//! # andi — anonymized-data disclosure-risk analysis
//!
//! A production-quality Rust reproduction of *"To Do or Not To Do:
//! The Dilemma of Disclosing Anonymized Data"* (Lakshmanan, Ng &
//! Ramesh, SIGMOD 2005), packaged as one facade over four crates:
//!
//! * [`data`] (`andi-data`) — transaction databases, FIMI I/O,
//!   frequency statistics, sampling and calibrated benchmark
//!   analogs;
//! * [`graph`] (`andi-graph`) — the bipartite crack-mapping
//!   machinery: bitset/interval graphs, matchings, permanents,
//!   propagation, and the MCMC matching sampler;
//! * [`mining`] (`andi-mining`) — Apriori / FP-Growth / Eclat
//!   frequent-set miners;
//! * [`core`] (`andi-core`) — belief functions, crack-expectation
//!   formulas, O-estimates, the Assess-Risk recipe,
//!   Similarity-by-Sampling and the Section 8 extensions.
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## The decision in five lines
//!
//! ```
//! use andi::{assess_risk, RecipeConfig};
//!
//! let db = andi::data::bigmart();
//! let verdict = assess_risk(&db.supports(), db.n_transactions() as u64,
//!                           &RecipeConfig::default()).unwrap();
//! println!("release the data? {}", verdict.discloses());
//! ```
//!
//! See `examples/` for complete walkthroughs (quickstart, the
//! mining-as-a-service scenario, consortium risk screening, the
//! relational attack, and itemset-level identification).

pub use andi_core as core;
pub use andi_data as data;
pub use andi_graph as graph;
pub use andi_mining as mining;

pub mod portfolio;

/// A literate, fully-tested walkthrough of the whole workflow — from
/// anonymizing a database to acting on the recipe's verdict. Every
/// code block is a doctest.
pub mod guide {
    #![doc = include_str!("../docs/GUIDE.md")]
}

pub use andi_core::{
    assess_interest_risk, assess_powerset_risk, assess_relational_risk, assess_risk,
    assess_risk_budgeted, best_expected_cracks, compliancy_curve, identify_sets, oestimate,
    oestimate_for, oestimate_propagated, sample_release_curve, sampled_belief,
    similarity_by_sampling, simulate_expected_cracks, AnonymizationMapping, BeliefFunction,
    BudgetedAssessment, ChainSpec, CrackEstimate, EstimateMethod, GapPolicy, InterestSpec,
    ItemsetBelief, OutdegreeProfile, PowersetBelief, Provenance, RecipeConfig, RiskAssessment,
    RiskDecision, Rung, SimilarityConfig, SimulationConfig,
};
pub use andi_data::{bigmart, Analog, Database, FrequencyGroups, ItemId, Transaction};
pub use andi_graph::{Budget, CancelToken};
pub use andi_mining::{apriori, eclat, fpgrowth, Itemset, MiningResult};
pub use portfolio::{evaluate_portfolio, CandidateReport, PortfolioConfig, ReleaseCandidate};

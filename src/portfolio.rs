//! Release portfolios: the dilemma as a decision table.
//!
//! The paper's title question — to disclose or not — is rarely
//! binary in practice: the owner chooses *among releases*. This
//! module evaluates a portfolio of candidates side by side:
//!
//! * the **full** anonymized database;
//! * a **sample** (Clifton's proposal, §7.4);
//! * a **sanitized** copy (support rounding — the perturbation
//!   family the paper contrasts);
//! * a **suppressed** release (the advisor's withhold-list applied).
//!
//! Each gets the same scorecard: disclosure risk (Lemma 3's `g`, the
//! δ_med interval O-estimate, crack fraction) and mining utility
//! (F1 of its frequent itemsets against the full data's, plus
//! frequency drift), so both pans of the scale hold numbers.

use andi_core::advisor::suppression_plan;
use andi_core::sanitize::round_supports;
use andi_core::{BeliefFunction, Error, OutdegreeProfile, Result};
use andi_data::sample::sample_fraction;
use andi_data::{builder::project, Database, FrequencyGroups};
use andi_mining::{fpgrowth, MiningResult};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A candidate release to evaluate.
#[derive(Clone, Debug, PartialEq)]
pub enum ReleaseCandidate {
    /// The whole database, anonymized as-is.
    Full,
    /// A random fraction of the transactions.
    Sample {
        /// Fraction of transactions to release, in `(0, 1]`.
        fraction: f64,
    },
    /// Support rounding with the given bucket (see
    /// [`andi_core::sanitize`]).
    Sanitized {
        /// Rounding bucket (1 = identity).
        bucket: u64,
    },
    /// The advisor's suppression plan for the given tolerance,
    /// applied by projecting the withheld items away.
    Suppressed {
        /// Tolerance the plan is built against.
        tolerance: f64,
    },
}

impl ReleaseCandidate {
    fn label(&self) -> String {
        match self {
            ReleaseCandidate::Full => "full".into(),
            ReleaseCandidate::Sample { fraction } => {
                format!("sample {:.0}%", fraction * 100.0)
            }
            ReleaseCandidate::Sanitized { bucket } => format!("rounded /{bucket}"),
            ReleaseCandidate::Suppressed { tolerance } => {
                format!("suppressed @{tolerance}")
            }
        }
    }
}

/// The scorecard of one candidate.
#[derive(Clone, Debug)]
pub struct CandidateReport {
    /// Human-readable candidate label.
    pub label: String,
    /// Items present in the release (with non-zero support).
    pub items_released: usize,
    /// Transactions in the release.
    pub transactions_released: usize,
    /// Lemma 3's `g` on the release.
    pub point_valued_cracks: usize,
    /// δ_med interval O-estimate on the release.
    pub oestimate: f64,
    /// O-estimate over the *original* domain size (comparable across
    /// candidates).
    pub crack_fraction: f64,
    /// F1 of the release's frequent itemsets against the full data's
    /// (support thresholds scaled to the release size).
    pub mining_f1: f64,
}

/// Portfolio evaluation settings.
#[derive(Clone, Copy, Debug)]
pub struct PortfolioConfig {
    /// Absolute support threshold for the utility comparison, on the
    /// full database (scaled proportionally for samples).
    pub min_support: u64,
    /// RNG seed (sampling / sanitization randomness).
    pub seed: u64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            min_support: 2,
            seed: 0x90_27F0,
        }
    }
}

/// Evaluates every candidate against the same database.
///
/// # Errors
///
/// Propagates candidate-construction failures (bad fractions or
/// buckets) and analysis failures.
pub fn evaluate_portfolio(
    db: &Database,
    candidates: &[ReleaseCandidate],
    config: &PortfolioConfig,
) -> Result<Vec<CandidateReport>> {
    if config.min_support == 0 {
        return Err(Error::InvalidParameter(
            "min_support must be positive".into(),
        ));
    }
    let truth = fpgrowth(db, config.min_support);
    let n_full = db.n_items();

    candidates
        .iter()
        .map(|candidate| {
            let mut rng = StdRng::seed_from_u64(config.seed);
            // Build the released database plus an id map back to the
            // original domain (identity except for suppression).
            let (released, back_map): (Database, Option<Vec<u32>>) = match candidate {
                ReleaseCandidate::Full => (db.clone(), None),
                ReleaseCandidate::Sample { fraction } => {
                    if !(*fraction > 0.0 && *fraction <= 1.0) {
                        return Err(Error::InvalidParameter(format!(
                            "sample fraction {fraction} out of (0, 1]"
                        )));
                    }
                    (sample_fraction(db, *fraction, &mut rng), None)
                }
                ReleaseCandidate::Sanitized { bucket } => {
                    (round_supports(db, *bucket, &mut rng)?.database, None)
                }
                ReleaseCandidate::Suppressed { tolerance } => {
                    let belief = delta_med_belief(db)?;
                    let profile = OutdegreeProfile::plain(
                        &belief.build_graph(&db.supports(), db.n_transactions() as u64),
                    );
                    let plan = suppression_plan(&profile, *tolerance)?;
                    let mut keep = vec![true; n_full];
                    for &x in &plan.suppress {
                        keep[x] = false;
                    }
                    let (projected, kept) = project(db, &keep).map_err(Error::Data)?;
                    (projected, Some(kept))
                }
            };

            // Risk side, on the release itself.
            let supports = released.supports();
            let m = released.n_transactions() as u64;
            let groups = FrequencyGroups::from_supports(&supports, m);
            let belief = delta_med_belief(&released)?;
            let profile = OutdegreeProfile::plain(&belief.build_graph(&supports, m));
            let oe = profile.oestimate();

            // Utility side: mine the release, map back, F1 vs truth.
            let scaled_support = match candidate {
                ReleaseCandidate::Sample { fraction } => {
                    ((config.min_support as f64 * fraction).round() as u64).max(1)
                }
                _ => config.min_support,
            };
            let mined = fpgrowth(&released, scaled_support);
            let comparable = match &back_map {
                Some(kept) => {
                    // Projected ids -> original ids.
                    let mut relabel = vec![0u32; released.n_items()];
                    for (new, &old) in kept.iter().enumerate() {
                        relabel[new] = old;
                    }
                    mined.relabel(&relabel)
                }
                None => mined,
            };

            Ok(CandidateReport {
                label: candidate.label(),
                items_released: supports.iter().filter(|&&s| s > 0).count(),
                transactions_released: released.n_transactions(),
                point_valued_cracks: groups.groups.iter().filter(|g| g.support > 0).count(),
                oestimate: oe,
                crack_fraction: oe / n_full as f64,
                mining_f1: f1(&truth, &comparable),
            })
        })
        .collect()
}

/// The recipe's δ_med-widened compliant belief for a database.
fn delta_med_belief(db: &Database) -> Result<BeliefFunction> {
    let groups = FrequencyGroups::of_database(db);
    let delta = groups.median_gap().unwrap_or(0.0);
    BeliefFunction::widened(&db.frequencies(), delta)
}

/// F1 of `got` against `truth`, on itemset identity (supports are
/// allowed to drift).
fn f1(truth: &MiningResult, got: &MiningResult) -> f64 {
    if truth.is_empty() && got.is_empty() {
        return 1.0;
    }
    if truth.is_empty() || got.is_empty() {
        return 0.0;
    }
    let tp = got
        .iter()
        .filter(|(s, _)| truth.support(s).is_some())
        .count() as f64;
    let precision = tp / got.len() as f64;
    let recall = tp / truth.len() as f64;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andi_data::bigmart;

    fn config() -> PortfolioConfig {
        PortfolioConfig {
            min_support: 2,
            seed: 42,
        }
    }

    #[test]
    fn full_release_is_the_baseline() {
        let db = bigmart();
        let reports = evaluate_portfolio(&db, &[ReleaseCandidate::Full], &config()).unwrap();
        let r = &reports[0];
        assert_eq!(r.label, "full");
        assert_eq!(r.items_released, 6);
        assert_eq!(r.transactions_released, 10);
        assert_eq!(r.point_valued_cracks, 3);
        assert!(
            (r.mining_f1 - 1.0).abs() < 1e-12,
            "full release mines the truth"
        );
    }

    #[test]
    fn sanitized_release_trades_risk_for_utility() {
        let db = bigmart();
        let reports = evaluate_portfolio(
            &db,
            &[
                ReleaseCandidate::Full,
                ReleaseCandidate::Sanitized { bucket: 5 },
            ],
            &config(),
        )
        .unwrap();
        let (full, rounded) = (&reports[0], &reports[1]);
        assert!(rounded.point_valued_cracks < full.point_valued_cracks);
        assert!(rounded.mining_f1 <= full.mining_f1 + 1e-12);
    }

    #[test]
    fn suppressed_release_drops_items() {
        let db = bigmart();
        let reports = evaluate_portfolio(
            &db,
            &[ReleaseCandidate::Suppressed { tolerance: 0.2 }],
            &config(),
        )
        .unwrap();
        let r = &reports[0];
        assert!(r.items_released < 6, "the plan withholds items");
        assert!(r.label.starts_with("suppressed"));
        assert!(
            r.mining_f1 < 1.0,
            "patterns involving withheld items vanish"
        );
        assert!(r.mining_f1 > 0.0, "the rest survives");
    }

    #[test]
    fn sample_release_scales_counts() {
        let db = bigmart();
        let reports = evaluate_portfolio(
            &db,
            &[ReleaseCandidate::Sample { fraction: 0.5 }],
            &config(),
        )
        .unwrap();
        let r = &reports[0];
        assert_eq!(r.transactions_released, 5);
        assert!(r.label.contains("50%"));
    }

    #[test]
    fn invalid_candidates_are_rejected() {
        let db = bigmart();
        assert!(evaluate_portfolio(
            &db,
            &[ReleaseCandidate::Sample { fraction: 0.0 }],
            &config()
        )
        .is_err());
        assert!(
            evaluate_portfolio(&db, &[ReleaseCandidate::Sanitized { bucket: 0 }], &config())
                .is_err()
        );
        let bad = PortfolioConfig {
            min_support: 0,
            ..config()
        };
        assert!(evaluate_portfolio(&db, &[ReleaseCandidate::Full], &bad).is_err());
    }

    #[test]
    fn reports_align_with_candidates() {
        let db = bigmart();
        let candidates = vec![
            ReleaseCandidate::Full,
            ReleaseCandidate::Sample { fraction: 0.8 },
            ReleaseCandidate::Sanitized { bucket: 2 },
            ReleaseCandidate::Suppressed { tolerance: 0.3 },
        ];
        let reports = evaluate_portfolio(&db, &candidates, &config()).unwrap();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.crack_fraction >= 0.0 && r.crack_fraction <= 1.0 + 1e-9);
            assert!((0.0..=1.0).contains(&r.mining_f1));
        }
    }
}

//! `andi` — command-line disclosure-risk toolkit.
//!
//! Everything a data owner needs before releasing anonymized
//! baskets, over FIMI `.dat` files:
//!
//! ```text
//! andi stats <file.dat>                      dataset summary (Figure 9 row)
//! andi assess <file.dat> [--tau T] [--no-propagation] [--budget-ms N]
//!             [--belief inst.txt] [--provenance-json out.json]
//!                                            the Assess-Risk recipe (Figure 8);
//!                                            with a budget the estimate degrades
//!                                            exact -> sampler -> O-estimate and
//!                                            the exit code is 3 when degraded;
//!                                            --belief runs the ladder under the
//!                                            hacker belief of an oracle instance
//!                                            file instead of the recipe's own
//! andi advise <file.dat> [--tau T]           which items to withhold to pass
//! andi portfolio <file.dat> [--min-support N] [--tau T]
//!                                            full/sample/rounded/suppressed scorecard
//! andi oe <file.dat> [--delta D] [--exact]   O-estimate (default delta = delta_med)
//! andi similarity <file.dat> [--fractions 0.1,0.25,0.5]
//!                                            Similarity-by-Sampling (Figure 13)
//! andi anonymize <in.dat> <out.dat> [--seed S] [--mapping map.txt]
//!                                            release an anonymized copy
//! andi mine <file.dat> --min-support N [--algo apriori|fpgrowth|eclat] [--rules C]
//!                                            frequent sets (and rules)
//! andi demo                                  the paper's BigMart walkthrough
//! ```

use std::process::ExitCode;

use andi::core::assess_risk_budgeted;
use andi::core::report::TextTable;
use andi::core::similarity::{GapPolicy, SimilarityConfig};
use andi::data::fimi;
use andi::data::DatasetSummary;
use andi::graph::Budget;
use andi::mining::{generate_rules, Algorithm};
use andi::{
    assess_risk, similarity_by_sampling, AnonymizationMapping, BeliefFunction, Database,
    OutdegreeProfile, RecipeConfig, RiskAssessment, RiskDecision,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

/// Exit code for a budgeted assessment whose answer came from a rung
/// below exact-permanent: the run *succeeded*, but scripts must be
/// able to tell a degraded figure from an exact one.
const EXIT_DEGRADED: u8 = 3;

/// Renders the usage text; built at call time so the exact-permanent
/// cap in the help tracks [`andi::graph::MAX_PERMANENT_N`] instead of
/// drifting when the kernel's ceiling moves.
fn usage() -> String {
    format!(
        "usage:
  andi stats <file.dat>
  andi assess <file.dat> [--tau T] [--no-propagation] [--budget-ms N]
              [--belief inst.txt] [--provenance-json out.json]
  andi advise <file.dat> [--tau T]
  andi portfolio <file.dat> [--min-support N] [--tau T]
  andi oe <file.dat> [--delta D] [--exact]
  andi similarity <file.dat> [--fractions 0.1,0.25,0.5]
  andi anonymize <in.dat> <out.dat> [--seed S] [--mapping map.txt]
  andi mine <file.dat> --min-support N [--algo apriori|fpgrowth|eclat] [--rules C]
  andi demo

exact kernels (assess's exact rung, oe --exact) handle domains of up
to {cap} items; larger domains answer from the sampler / O-estimate
rungs instead

exit codes: 0 success, 1 error, 3 budgeted assessment answered by a
degraded rung (see the provenance lines)",
        cap = andi::graph::MAX_PERMANENT_N
    )
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err("no command given".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "stats" => cmd_stats(rest).map(|()| ExitCode::SUCCESS),
        "assess" => cmd_assess(rest),
        "advise" => cmd_advise(rest).map(|()| ExitCode::SUCCESS),
        "portfolio" => cmd_portfolio(rest).map(|()| ExitCode::SUCCESS),
        "oe" => cmd_oe(rest).map(|()| ExitCode::SUCCESS),
        "similarity" => cmd_similarity(rest).map(|()| ExitCode::SUCCESS),
        "anonymize" => cmd_anonymize(rest).map(|()| ExitCode::SUCCESS),
        "mine" => cmd_mine(rest).map(|()| ExitCode::SUCCESS),
        "demo" => cmd_demo().map(|()| ExitCode::SUCCESS),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Reads the positional argument at `idx`, failing with a decent
/// message.
fn positional<'a>(args: &'a [String], idx: usize, name: &str) -> Result<&'a str, String> {
    args.iter()
        .filter(|a| !a.starts_with("--"))
        .nth(idx)
        .map(String::as_str)
        .ok_or_else(|| format!("missing <{name}> argument"))
}

/// Reads `--flag value` style options.
fn option(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse<T: std::str::FromStr>(text: &str, what: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("cannot parse {what}: {text:?}"))
}

fn load(path: &str) -> Result<Database, String> {
    let ds = fimi::read_fimi_file(path)?;
    eprintln!(
        "loaded {}: {} items, {} transactions",
        path,
        ds.database.n_items(),
        ds.database.n_transactions()
    );
    Ok(ds.database)
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let db = load(positional(args, 0, "file.dat")?)?;
    println!("{}", DatasetSummary::of(&db));
    Ok(())
}

fn cmd_assess(args: &[String]) -> Result<ExitCode, String> {
    let db = load(positional(args, 0, "file.dat")?)?;
    let tau: f64 = match option(args, "--tau") {
        Some(t) => parse(&t, "--tau")?,
        None => 0.1,
    };
    let config = RecipeConfig {
        tolerance: tau,
        use_propagation: !flag(args, "--no-propagation"),
        ..RecipeConfig::default()
    };
    let supports = db.supports();
    let m = db.n_transactions() as u64;

    if let Some(inst_path) = option(args, "--belief") {
        return assess_with_belief(args, &supports, m, &config, &inst_path);
    }

    if let Some(ms) = option(args, "--budget-ms") {
        let ms: u64 = parse(&ms, "--budget-ms")?;
        let budget = Budget::with_deadline(std::time::Duration::from_millis(ms));
        let result =
            assess_risk_budgeted(&supports, m, &config, &budget).map_err(|e| e.to_string())?;
        print_assessment(&result.assessment, tau);
        print!("{}", result.provenance.render());
        write_provenance_json(args, &result.provenance)?;
        return Ok(if result.is_degraded() {
            ExitCode::from(EXIT_DEGRADED)
        } else {
            ExitCode::SUCCESS
        });
    }

    let verdict = assess_risk(&supports, m, &config).map_err(|e| e.to_string())?;
    print_assessment(&verdict, tau);
    Ok(ExitCode::SUCCESS)
}

/// Writes the provenance record as JSON when `--provenance-json` was
/// given (the format round-trips through `andi_oracle::serial`).
fn write_provenance_json(
    args: &[String],
    provenance: &andi::core::Provenance,
) -> Result<(), String> {
    if let Some(path) = option(args, "--provenance-json") {
        let json = andi_oracle::provenance_to_json(provenance);
        std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote provenance JSON to {path}");
    }
    Ok(())
}

/// `assess --belief`: run the degradation ladder under the hacker
/// belief of an oracle instance file (its intervals, against this
/// database's supports) instead of the recipe's own widened belief.
/// Unlike the recipe path, an inconsistent belief makes the
/// [`EmptyMappingSpace`](andi::core::Error::EmptyMappingSpace) abort
/// reachable from the command line.
fn assess_with_belief(
    args: &[String],
    supports: &[u64],
    m: u64,
    config: &RecipeConfig,
    inst_path: &str,
) -> Result<ExitCode, String> {
    let inst =
        andi_oracle::corpus::load(std::path::Path::new(inst_path)).map_err(|e| e.to_string())?;
    if inst.n() != supports.len() {
        return Err(format!(
            "belief instance has {} items but the database has {}",
            inst.n(),
            supports.len()
        ));
    }
    let belief =
        BeliefFunction::from_intervals(inst.intervals.clone()).map_err(|e| e.to_string())?;
    let graph = belief.build_graph(supports, m);
    let budget = match option(args, "--budget-ms") {
        Some(ms) => {
            let ms: u64 = parse(&ms, "--budget-ms")?;
            Budget::with_deadline(std::time::Duration::from_millis(ms))
        }
        None => Budget::unlimited(),
    };
    let (provenance, probs) = andi::core::ladder_crack_probabilities(
        &graph,
        config,
        andi::graph::par::available_threads(),
        &budget,
    )
    .map_err(|e| e.to_string())?;
    let expected: f64 = probs.iter().sum();
    println!("belief instance         : {}", inst.label);
    println!("domain size n           : {}", supports.len());
    println!("expected cracks         : {expected:.4}");
    print!("{}", provenance.render());
    write_provenance_json(args, &provenance)?;
    Ok(if provenance.degraded {
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    })
}

fn print_assessment(verdict: &RiskAssessment, tau: f64) {
    println!("domain size n           : {}", verdict.n_items);
    println!("tolerance tau           : {}", verdict.tolerance);
    println!(
        "budget tau*n            : {:.2}",
        tau * verdict.n_items as f64
    );
    println!(
        "point-valued cracks (g) : {:.0}",
        verdict.point_valued_cracks
    );
    println!("delta_med               : {:.6}", verdict.delta_med);
    println!(
        "full-compliance OE      : {:.2}",
        verdict.full_compliance_oe
    );
    match &verdict.decision {
        RiskDecision::DiscloseAtPointValued => {
            println!("verdict                 : DISCLOSE (safe even against exact frequencies)")
        }
        RiskDecision::DiscloseAtFullCompliance => {
            println!("verdict                 : DISCLOSE (interval knowledge within tolerance)")
        }
        RiskDecision::AlphaMax {
            alpha_max,
            oestimate_at_alpha,
        } => {
            println!("verdict                 : JUDGEMENT CALL");
            println!("alpha_max               : {alpha_max:.3}");
            println!("OE at alpha_max         : {oestimate_at_alpha:.2}");
            println!(
                "reading                 : a hacker must guess the frequency interval of \
                 {:.0}% of items correctly to crack more than tolerated",
                alpha_max * 100.0
            );
        }
    }
}

fn cmd_advise(args: &[String]) -> Result<(), String> {
    let db = load(positional(args, 0, "file.dat")?)?;
    let tau: f64 = match option(args, "--tau") {
        Some(t) => parse(&t, "--tau")?,
        None => 0.1,
    };
    let supports = db.supports();
    let m = db.n_transactions() as u64;
    let groups = andi::FrequencyGroups::from_supports(&supports, m);
    let delta = groups.median_gap().unwrap_or(0.0);
    let belief = BeliefFunction::widened(&db.frequencies(), delta).map_err(|e| e.to_string())?;
    let graph = belief.build_graph(&supports, m);
    let profile = OutdegreeProfile::propagated(&graph).map_err(|e| e.to_string())?;
    let plan = andi::core::advisor::suppression_plan(&profile, tau).map_err(|e| e.to_string())?;
    println!("full-compliance OE        : {:.2}", profile.oestimate());
    println!("budget (tau*n)            : {:.2}", plan.budget);
    if plan.n_suppressed() == 0 {
        println!("advice                    : release as-is; already within tolerance");
        return Ok(());
    }
    println!(
        "advice                    : withhold {} item(s); residual OE = {:.2}",
        plan.n_suppressed(),
        plan.residual_oestimate
    );
    for (x, p) in plan.suppress.iter().zip(plan.exposure.iter()).take(20) {
        println!("  withhold item {x:<6} (crack probability {p:.3})");
    }
    if plan.n_suppressed() > 20 {
        println!("  ... {} more", plan.n_suppressed() - 20);
    }
    Ok(())
}

fn cmd_portfolio(args: &[String]) -> Result<(), String> {
    use andi::{evaluate_portfolio, PortfolioConfig, ReleaseCandidate};
    let db = load(positional(args, 0, "file.dat")?)?;
    let min_support: u64 = match option(args, "--min-support") {
        Some(s) => parse(&s, "--min-support")?,
        None => ((db.n_transactions() / 20).max(2)) as u64,
    };
    let tau: f64 = match option(args, "--tau") {
        Some(t) => parse(&t, "--tau")?,
        None => 0.1,
    };
    let candidates = vec![
        ReleaseCandidate::Full,
        ReleaseCandidate::Sample { fraction: 0.1 },
        ReleaseCandidate::Sample { fraction: 0.5 },
        ReleaseCandidate::Sanitized {
            bucket: (db.n_transactions() as u64 / 20).max(2),
        },
        ReleaseCandidate::Suppressed { tolerance: tau },
    ];
    let reports = evaluate_portfolio(
        &db,
        &candidates,
        &PortfolioConfig {
            min_support,
            ..PortfolioConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;

    let mut table = TextTable::new([
        "candidate",
        "items",
        "txns",
        "g",
        "OE",
        "crack frac",
        "mining F1",
    ]);
    for r in &reports {
        table.add_row([
            r.label.clone(),
            r.items_released.to_string(),
            r.transactions_released.to_string(),
            r.point_valued_cracks.to_string(),
            format!("{:.2}", r.oestimate),
            format!("{:.4}", r.crack_fraction),
            format!("{:.3}", r.mining_f1),
        ]);
    }
    println!("{}", table.render());
    println!("(risk columns use the delta_med interval hacker; F1 at min support {min_support})");
    Ok(())
}

fn cmd_oe(args: &[String]) -> Result<(), String> {
    let db = load(positional(args, 0, "file.dat")?)?;
    let supports = db.supports();
    let m = db.n_transactions() as u64;
    let groups = andi::FrequencyGroups::from_supports(&supports, m);
    let delta: f64 = match option(args, "--delta") {
        Some(d) => parse(&d, "--delta")?,
        None => groups.median_gap().unwrap_or(0.0),
    };
    let belief = BeliefFunction::widened(&db.frequencies(), delta).map_err(|e| e.to_string())?;
    let graph = belief.build_graph(&supports, m);
    let plain = OutdegreeProfile::plain(&graph);
    let propagated = OutdegreeProfile::propagated(&graph).map_err(|e| e.to_string())?;
    println!("interval half-width delta : {delta:.6}");
    println!("O-estimate (plain)        : {:.3}", plain.oestimate());
    println!("O-estimate (propagated)   : {:.3}", propagated.oestimate());
    println!("certain cracks            : {}", propagated.forced_cracks());
    println!(
        "expected crack fraction   : {:.4}",
        propagated.oestimate() / db.n_items() as f64
    );
    if flag(args, "--exact") {
        match andi::best_expected_cracks(&graph, 3_000_000) {
            Ok(e) => println!(
                "best estimate             : {:.3} via {:?}",
                e.value, e.method
            ),
            Err(e) => println!("best estimate             : unavailable ({e})"),
        }
    }
    Ok(())
}

fn cmd_similarity(args: &[String]) -> Result<(), String> {
    let db = load(positional(args, 0, "file.dat")?)?;
    let fractions: Vec<f64> = match option(args, "--fractions") {
        Some(list) => list
            .split(',')
            .map(|t| parse::<f64>(t.trim(), "--fractions entry"))
            .collect::<Result<_, _>>()?,
        None => vec![0.01, 0.05, 0.10, 0.25, 0.50, 0.75],
    };
    let points = similarity_by_sampling(
        &db,
        &fractions,
        &SimilarityConfig {
            samples_per_size: 10,
            gap_policy: GapPolicy::Median,
            seed: 0xC11,
        },
    )
    .map_err(|e| e.to_string())?;
    let mut table = TextTable::new(["sample %", "mean alpha", "std", "delta'_med"]);
    for p in &points {
        table.add_row([
            format!("{:.1}%", p.fraction * 100.0),
            format!("{:.3}", p.mean_alpha),
            format!("{:.3}", p.std_alpha),
            format!("{:.6}", p.mean_delta),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_anonymize(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "in.dat")?;
    let output = positional(args, 1, "out.dat")?.to_string();
    let db = load(input)?;
    let seed: u64 = match option(args, "--seed") {
        Some(s) => parse(&s, "--seed")?,
        None => 0xA_2005,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mapping = AnonymizationMapping::random(db.n_items(), &mut rng);
    let released = mapping.anonymize_database(&db).map_err(|e| e.to_string())?;
    let out = std::fs::File::create(&output).map_err(|e| format!("cannot create {output}: {e}"))?;
    fimi::write_fimi(&released, out)?;
    println!("wrote anonymized database to {output}");
    if let Some(map_path) = option(args, "--mapping") {
        let mut text = String::from("# original_dense_id anonymized_id\n");
        for (x, &xp) in mapping.forward().iter().enumerate() {
            text.push_str(&format!("{x} {xp}\n"));
        }
        std::fs::write(&map_path, text).map_err(|e| format!("cannot write {map_path}: {e}"))?;
        println!("wrote secret mapping to {map_path} — keep it private!");
    }
    Ok(())
}

fn cmd_mine(args: &[String]) -> Result<(), String> {
    let db = load(positional(args, 0, "file.dat")?)?;
    let min_support: u64 = parse(
        &option(args, "--min-support").ok_or("--min-support is required")?,
        "--min-support",
    )?;
    let algo = match option(args, "--algo").as_deref() {
        None | Some("fpgrowth") => Algorithm::FpGrowth,
        Some("apriori") => Algorithm::Apriori,
        Some("eclat") => Algorithm::Eclat,
        Some(other) => return Err(format!("unknown algorithm {other:?}")),
    };
    let result = algo.mine(&db, min_support);
    println!(
        "{} frequent itemsets at min support {min_support} ({algo})",
        result.len()
    );
    for (s, c) in result.iter().take(25) {
        println!("  {s}  (support {c})");
    }
    if result.len() > 25 {
        println!("  ... {} more", result.len() - 25);
    }
    if let Some(conf) = option(args, "--rules") {
        let min_conf: f64 = parse(&conf, "--rules")?;
        let rules = generate_rules(&result, db.n_transactions() as u64, min_conf);
        println!("\n{} rules at confidence >= {min_conf}", rules.len());
        for r in rules.iter().take(25) {
            println!("  {r}");
        }
    }
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    let db = andi::bigmart();
    println!("The paper's BigMart example: 6 items, 10 transactions.\n");
    println!("{}\n", DatasetSummary::of(&db));
    for tau in [0.6, 0.3, 0.1] {
        let verdict = assess_risk(
            &db.supports(),
            db.n_transactions() as u64,
            &RecipeConfig {
                tolerance: tau,
                ..RecipeConfig::default()
            },
        )
        .map_err(|e| e.to_string())?;
        let text = match verdict.decision {
            RiskDecision::DiscloseAtPointValued => "disclose (even point-valued safe)".into(),
            RiskDecision::DiscloseAtFullCompliance => "disclose (OE within budget)".into(),
            RiskDecision::AlphaMax { alpha_max, .. } => {
                format!("alpha_max = {alpha_max:.2}")
            }
        };
        println!("tau = {tau:>4}: {text}");
    }
    Ok(())
}

//! Smoke-scale versions of the paper's experiments on the benchmark
//! analogs: every figure's qualitative claim, checked in CI time.

use andi::core::recipe::compliancy_curve;
use andi::{
    assess_risk, similarity_by_sampling, Analog, GapPolicy, OutdegreeProfile, RecipeConfig,
    SimilarityConfig,
};

/// Figure 9: the analogs hit the published group/singleton counts
/// exactly and track the mean gap.
#[test]
fn fig9_shape_matches_paper() {
    let expected: [(Analog, usize, usize, f64); 6] = [
        (Analog::Connect, 125, 122, 0.0081),
        (Analog::Pumsb, 650, 421, 0.00154),
        (Analog::Accidents, 310, 286, 0.00324),
        (Analog::Retail, 582, 218, 0.00099),
        (Analog::Mushroom, 90, 77, 0.01124),
        (Analog::Chess, 73, 71, 0.01389),
    ];
    for (analog, groups, singles, mean_gap) in expected {
        let fg = analog.frequency_groups();
        assert_eq!(fg.n_groups(), groups, "{analog} group count");
        assert_eq!(fg.n_singleton_groups(), singles, "{analog} singleton count");
        let stats = fg.gap_stats().unwrap();
        assert!(
            (stats.mean - mean_gap).abs() / mean_gap < 0.25,
            "{analog}: mean gap {} vs paper {mean_gap}",
            stats.mean
        );
        assert!(
            stats.median <= stats.mean,
            "{analog}: gap distribution must be right-skewed"
        );
    }
}

/// Section 6.1's observation: for all benchmarks the number of
/// singleton groups is high relative to the domain, so point-valued
/// compliance gives an unacceptably high crack estimate.
#[test]
fn point_valued_estimate_is_too_high_on_all_analogs() {
    for analog in Analog::ALL {
        let fg = analog.frequency_groups();
        let n = analog.spec().n_items as f64;
        let g = fg.n_groups() as f64;
        assert!(
            g / n > 0.03,
            "{analog}: g/n = {} should dwarf any sane tolerance",
            g / n
        );
    }
}

/// Figure 11's qualitative ordering at τ = 0.1: RETAIL discloses
/// outright; CONNECT's α_max is small; the α_max of PUMSB and
/// ACCIDENTS is comfortably higher than CONNECT's.
#[test]
fn fig11_qualitative_ordering() {
    let tau = 0.1;
    let alpha_of = |analog: Analog| {
        let spec = analog.spec();
        let verdict = assess_risk(
            &analog.supports(),
            spec.n_transactions,
            &RecipeConfig {
                tolerance: tau,
                use_propagation: false,
                n_mask_runs: 3,
                seed: 1,
                ..RecipeConfig::default()
            },
        )
        .unwrap();
        verdict.alpha_max()
    };

    let retail = alpha_of(Analog::Retail);
    assert_eq!(retail, None, "RETAIL should disclose outright at tau = 0.1");

    let connect = alpha_of(Analog::Connect).expect("CONNECT must need the search");
    let pumsb = alpha_of(Analog::Pumsb).expect("PUMSB must need the search");
    let accidents = alpha_of(Analog::Accidents).expect("ACCIDENTS must need the search");
    assert!(
        connect < pumsb && connect < accidents,
        "CONNECT ({connect:.2}) must cross tolerance earliest \
         (PUMSB {pumsb:.2}, ACCIDENTS {accidents:.2})"
    );
    assert!(
        connect < 0.4,
        "paper: CONNECT alpha_max ≈ 0.2, got {connect:.2}"
    );
    assert!(pumsb > 0.4, "paper: PUMSB alpha_max ≈ 0.7, got {pumsb:.2}");
}

/// The compliancy curve is monotone and anchored for every analog.
#[test]
fn fig11_curves_are_monotone() {
    for analog in [Analog::Chess, Analog::Mushroom, Analog::Connect] {
        let spec = analog.spec();
        let supports = analog.supports();
        let freqs: Vec<f64> = supports
            .iter()
            .map(|&s| s as f64 / spec.n_transactions as f64)
            .collect();
        let fg = analog.frequency_groups();
        let belief = andi::BeliefFunction::widened(&freqs, fg.median_gap().unwrap()).unwrap();
        let graph = belief.build_graph(&supports, spec.n_transactions);
        let profile = OutdegreeProfile::plain(&graph);
        let alphas: Vec<f64> = (0..=10).map(|k| k as f64 / 10.0).collect();
        let curve = compliancy_curve(&profile, &alphas, 3, 5);
        for w in curve.windows(2) {
            assert!(w[0].fraction <= w[1].fraction + 1e-12, "{analog}");
        }
        assert!(curve[0].fraction.abs() < 1e-12);
        assert!((curve[10].oestimate - profile.oestimate()).abs() < 1e-9);
    }
}

/// Figure 12's headline claims, on the smallest analog (CHESS, so
/// the test stays fast): small samples already carry real
/// compliancy; the sampled *average* gap is far more permissive than
/// the median (the paper's ~0.99 observation); and compliancy grows
/// broadly with sample size for a dense dataset.
#[test]
fn fig12_small_samples_are_dangerous() {
    let db = Analog::Chess.database();
    let config = SimilarityConfig {
        samples_per_size: 4,
        gap_policy: GapPolicy::Median,
        seed: 3,
    };
    let points = similarity_by_sampling(&db, &[0.10, 0.50, 1.0], &config).unwrap();
    // With only 3 196 transactions, a 10% CHESS sample has large
    // frequency noise; compliancy is modest but far from zero — the
    // qualitative "samples leak" point stands.
    assert!(
        points[0].mean_alpha > 0.15,
        "a 10% sample should carry nontrivial compliancy, got {}",
        points[0].mean_alpha
    );
    assert!(
        points[2].mean_alpha > points[0].mean_alpha,
        "compliancy must grow toward the full sample"
    );
    assert!(
        (points[2].mean_alpha - 1.0).abs() < 1e-12,
        "full sample is exact"
    );

    let mean_points = similarity_by_sampling(
        &db,
        &[0.10, 0.50, 1.0],
        &SimilarityConfig {
            gap_policy: GapPolicy::Mean,
            ..config
        },
    )
    .unwrap();
    for (med, mean) in points.iter().zip(mean_points.iter()) {
        assert!(
            mean.mean_alpha >= med.mean_alpha - 1e-12,
            "mean-gap intervals are wider, hence at least as compliant"
        );
    }
    assert!(
        mean_points[1].mean_alpha > 0.8,
        "the mean-gap policy is misleadingly permissive (paper: ~0.99), got {}",
        mean_points[1].mean_alpha
    );
}

/// The recipe's three-stage structure fires in the right order as
/// tolerance moves, on a real analog profile.
#[test]
fn recipe_stages_on_mushroom() {
    let analog = Analog::Mushroom;
    let spec = analog.spec();
    let supports = analog.supports();
    // g = 90 groups over 120 items: g/n = 0.75.
    let stage1 = assess_risk(
        &supports,
        spec.n_transactions,
        &RecipeConfig {
            tolerance: 0.8,
            use_propagation: false,
            ..RecipeConfig::default()
        },
    )
    .unwrap();
    assert_eq!(stage1.decision, andi::RiskDecision::DiscloseAtPointValued);

    let stage3 = assess_risk(
        &supports,
        spec.n_transactions,
        &RecipeConfig {
            tolerance: 0.05,
            use_propagation: false,
            ..RecipeConfig::default()
        },
    )
    .unwrap();
    assert!(
        stage3.alpha_max().is_some(),
        "tight tolerance reaches the search"
    );
}

/// Analog materialization is faithful: group structure of the
/// generated transactions matches the profile (up to rare
/// empty-transaction fills).
#[test]
fn materialized_analogs_match_profiles() {
    for analog in [Analog::Chess, Analog::Mushroom] {
        let spec = analog.spec();
        let db = analog.database();
        assert_eq!(db.n_items(), spec.n_items);
        assert_eq!(db.n_transactions() as u64, spec.n_transactions);
        let fg = andi::FrequencyGroups::of_database(&db);
        let drift = (fg.n_groups() as i64 - spec.n_groups as i64).abs();
        assert!(
            drift <= 3,
            "{analog}: groups {} vs {}",
            fg.n_groups(),
            spec.n_groups
        );
    }
}

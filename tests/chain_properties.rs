//! Property tests for the chain closed forms: Lemma 5 (length-2
//! chains) and Lemma 6 (length-k chains) must agree with the exact
//! per-item crack marginals on every realizable chain with n <= 9
//! items, including the k = 1 and k = n boundary chains.
//!
//! Chains are built by walking the item-conservation recurrence —
//! group i holds `e_i` exclusive items, the tail of the shared group
//! `S_{i-1}` and the head of `S_i` — so every generated spec is
//! structurally consistent by construction, and the oracle's
//! instance types carry them into the same estimators the
//! conformance sweeps use.

use andi::ChainSpec;
use andi_oracle::estimators::{crack_probabilities_of, ClosedForm, OEstimate};
use andi_oracle::{Estimator, Instance, Regime};
use proptest::prelude::*;

/// Builds a consistent chain over `sizes` by walking the
/// conservation recurrence, using `picks` in [0, 1] to drive every
/// free choice (how much of each group feeds the next shared group).
fn build_chain(sizes: &[usize], picks: &[f64]) -> Option<ChainSpec> {
    let k = sizes.len();
    let mut e = Vec::with_capacity(k);
    let mut s = Vec::with_capacity(k.saturating_sub(1));
    let mut v_prev = 0usize; // items of S_{i-1} placed in group i
    let mut pick = picks.iter().cycle();
    for i in 0..k {
        let remaining = sizes[i].checked_sub(v_prev)?;
        if i + 1 == k {
            e.push(remaining);
            break;
        }
        // u_i of the remaining items start the shared group S_i.
        let u = (pick.next()? * (remaining + 1) as f64).floor() as usize;
        let u = u.min(remaining);
        e.push(remaining - u);
        // v_i items of S_i land in group i+1.
        let v = (pick.next()? * (sizes[i + 1] + 1) as f64).floor() as usize;
        let v = v.min(sizes[i + 1]);
        s.push(u + v);
        v_prev = v;
    }
    ChainSpec::new(sizes.to_vec(), e, s).ok()
}

/// Realizes a chain spec as an oracle instance over `m`
/// transactions.
fn realized(spec: &ChainSpec, m: u64) -> Instance {
    let (supports, belief) = spec.realize(m).expect("small chains realize");
    Instance {
        label: "prop:chain".into(),
        regime: Regime::Chain,
        supports,
        m,
        intervals: belief.intervals().to_vec(),
        mask: None,
    }
}

/// Asserts the closed forms against the exact marginals: Lemma 5/6
/// for the expectation, the Section 5.2 formula for the O-estimate.
fn assert_chain_conforms(spec: &ChainSpec) {
    let inst = realized(spec, 100);
    let exact: f64 = crack_probabilities_of(&inst)
        .expect("realized chains are feasible")
        .iter()
        .sum();
    assert!(
        (exact - spec.expected_cracks()).abs() < 1e-9,
        "closed form {} vs marginal sum {exact} (k = {}, n = {})",
        spec.expected_cracks(),
        spec.k(),
        spec.n_items()
    );
    let plain = OEstimate { propagated: false }.estimate(&inst).unwrap();
    assert!(
        (plain.value - spec.oestimate()).abs() < 1e-9,
        "chain OE formula {} vs graph OE {} (k = {})",
        spec.oestimate(),
        plain.value,
        spec.k()
    );
    // The closed-form estimator re-detects the chain from the graph.
    assert!(ClosedForm.applies_to(&inst), "chain must be detectable");
    let closed = ClosedForm.estimate(&inst).unwrap();
    assert!((closed.value - spec.expected_cracks()).abs() < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 6 on random chains of length 1..=4 with n <= 9 items.
    #[test]
    fn lemma_6_matches_marginals_on_random_chains(
        sizes in prop::collection::vec(1usize..=3, 1..=4),
        picks in prop::collection::vec(0.0f64..=1.0, 8),
    ) {
        let spec = build_chain(&sizes, &picks);
        prop_assume!(spec.is_some());
        let spec = spec.unwrap();
        prop_assume!(spec.n_items() <= 9);
        assert_chain_conforms(&spec);
    }

    /// Lemma 5: every length-2 chain — two groups, one shared set —
    /// agrees with the exact marginals.
    #[test]
    fn lemma_5_matches_marginals_on_length_2_chains(
        n1 in 1usize..=4, n2 in 1usize..=4,
        picks in prop::collection::vec(0.0f64..=1.0, 2),
    ) {
        let spec = build_chain(&[n1, n2], &picks);
        prop_assume!(spec.is_some());
        let spec = spec.unwrap();
        prop_assert_eq!(spec.k(), 2);
        assert_chain_conforms(&spec);
    }

    /// The k = n boundary: every group is a singleton, so the walk
    /// produces maximal-length chains of alternating shared links.
    #[test]
    fn k_equals_n_boundary_chains_conform(
        n in 1usize..=9,
        picks in prop::collection::vec(0.0f64..=1.0, 16),
    ) {
        let spec = build_chain(&vec![1; n], &picks);
        prop_assume!(spec.is_some());
        let spec = spec.unwrap();
        prop_assert_eq!(spec.k(), n);
        assert_chain_conforms(&spec);
    }
}

/// The k = 1 boundary: a chain of one group is a single frequency
/// group, whose expectation is exactly one crack for every size
/// (Lemma 6 degenerates to Lemma 3 with g = 1).
#[test]
fn k_equals_1_boundary_chains_conform() {
    for n in 1..=9 {
        let spec = ChainSpec::new(vec![n], vec![n], vec![]).unwrap();
        assert_eq!(spec.k(), 1);
        assert!(
            (spec.expected_cracks() - 1.0).abs() < 1e-12,
            "one group of {n} expects one crack"
        );
        assert_chain_conforms(&spec);
    }
}

/// A deterministic fully-shared k = n chain: each singleton group
/// hands one shared item to the next link.
#[test]
fn fully_shared_singleton_chain_conforms() {
    for n in 2..=9 {
        let mut e = vec![0; n - 1];
        e.push(1);
        let s = vec![1; n - 1];
        let spec = ChainSpec::new(vec![1; n], e, s).unwrap();
        assert_eq!(spec.k(), n);
        assert_eq!(spec.n_items(), n);
        assert_chain_conforms(&spec);
    }
}

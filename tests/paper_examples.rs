//! Integration tests pinning every worked number in the paper.
//!
//! Each test cites the section it reproduces; together they are the
//! ground-truth anchor for the whole pipeline (data -> belief ->
//! graph -> estimate). The instances come from
//! [`andi_oracle::cases`], so every hand-written example here is the
//! same object that lives in the committed conformance corpus and is
//! replayed by the oracle's sweeps.

use andi::core::ItemStatus;
use andi::graph::permanent;
use andi::{bigmart, ChainSpec, FrequencyGroups, OutdegreeProfile};
use andi_oracle::estimators::{crack_probabilities_of, ClosedForm, OEstimate, Permanent};
use andi_oracle::{cases, Confidence, Estimator};

/// Evaluates one estimator, asserting it applies to the instance.
fn value_of(est: &dyn Estimator, inst: &andi_oracle::Instance) -> f64 {
    assert!(
        est.applies_to(inst),
        "{} must apply to {}",
        est.name(),
        inst.label
    );
    est.estimate(inst).unwrap().value
}

#[test]
fn figure_1_bigmart_frequencies() {
    let db = bigmart();
    let want = [0.5, 0.4, 0.5, 0.5, 0.3, 0.5];
    for (x, (&got, &w)) in db.frequencies().iter().zip(want.iter()).enumerate() {
        assert!((got - w).abs() < 1e-12, "item {x}");
    }
    // The oracle's BigMart instances are that same database.
    assert_eq!(cases::bigmart_h().supports, db.supports());
    assert_eq!(cases::bigmart_h().frequencies(), db.frequencies());
}

#[test]
fn section_2_3_consistent_mappings_of_h() {
    // "1' can be mapped to 1, 2, 3, 4 and 6; ... 2' can be mapped to
    // 1, 2, 4 and 5."
    let g = cases::bigmart_h().graph().unwrap();
    let one_prime: Vec<usize> = (0..6).filter(|&y| g.has_edge(0, y)).collect();
    assert_eq!(one_prime, vec![0, 1, 2, 3, 5]);
    let two_prime: Vec<usize> = (0..6).filter(|&y| g.has_edge(1, y)).collect();
    assert_eq!(two_prime, vec![0, 1, 3, 4]);
}

#[test]
fn figure_3b_group_structure() {
    // Groups {5'}, {2'}, {1',3',4',6'} with frequencies .3/.4/.5.
    let fg = FrequencyGroups::from_supports(&cases::BIGMART_SUPPORTS, cases::BIGMART_M);
    assert_eq!(fg.n_groups(), 3);
    assert_eq!(fg.sizes(), vec![1, 1, 4]);
}

#[test]
fn lemma_1_and_3_on_bigmart() {
    // Lemma 3: the point-valued belief cracks one item per group.
    let point = cases::bigmart_point();
    assert_eq!(value_of(&ClosedForm, &point), 3.0);
    // The exact computation agrees: point-valued graph is three
    // complete blocks.
    let exact = value_of(&Permanent::default(), &point);
    assert!((exact - 3.0).abs() < 1e-9);
    // Lemma 1: the ignorant belief cracks exactly one item.
    let ignorant = cases::bigmart_ignorant();
    assert_eq!(value_of(&ClosedForm, &ignorant), 1.0);
    assert!((value_of(&Permanent::default(), &ignorant) - 1.0).abs() < 1e-9);
}

#[test]
fn section_4_2_chain_example_74_over_45() {
    let chain = ChainSpec::new(vec![5, 3], vec![3, 2], vec![3]).unwrap();
    assert!((chain.expected_cracks() - 74.0 / 45.0).abs() < 1e-12);
    // The paper quotes 1.644 cracks on average.
    assert!((chain.expected_cracks() - 1.644).abs() < 1e-3);
    // Cross-check the closed form against the exact permanent
    // computation on the realized corpus instance: ClosedForm
    // detects the chain, Permanent sums the marginals.
    let inst = cases::section_4_2_chain().unwrap();
    let closed = value_of(&ClosedForm, &inst);
    assert!((closed - 74.0 / 45.0).abs() < 1e-12);
    let exact = value_of(&Permanent::default(), &inst);
    assert!(
        (exact - 74.0 / 45.0).abs() < 1e-9,
        "permanent-exact {exact} vs Lemma 5"
    );
}

#[test]
fn section_5_1_oestimate_of_figure_5() {
    // OE for h on BigMart: outdegrees 6,5,4,5,2,4.
    let inst = cases::bigmart_h();
    let g = inst.graph().unwrap();
    assert_eq!(g.outdegrees(), vec![6, 5, 4, 5, 2, 4]);
    let oe = OEstimate { propagated: false }.estimate(&inst).unwrap();
    let want = 1.0 / 6.0 + 1.0 / 5.0 + 0.25 + 0.2 + 0.5 + 0.25;
    assert!((oe.value - want).abs() < 1e-12);
    assert_eq!(oe.confidence, Confidence::LowerBound);
}

#[test]
fn figure_6a_staircase_25_over_12_vs_4() {
    // O-estimate 25/12 without propagation; the true number of
    // cracks is 4 (unique matching), which propagation recovers.
    let inst = cases::staircase_6a();
    let plain = value_of(&OEstimate { propagated: false }, &inst);
    assert!((plain - 25.0 / 12.0).abs() < 1e-12);
    let graph = inst.graph().unwrap();
    let prop = OutdegreeProfile::propagated(&graph).unwrap();
    assert_eq!(prop.forced_cracks(), 4);
    assert!((value_of(&OEstimate { propagated: true }, &inst) - 4.0).abs() < 1e-12);
    // Exact agrees: the permanent is 1, so all four marginals are 1.
    assert_eq!(permanent(&graph.to_dense()), 1);
    assert!((value_of(&Permanent::default(), &inst) - 4.0).abs() < 1e-9);
}

#[test]
fn section_5_2_chain_oestimate_197_over_120() {
    let chain = ChainSpec::new(vec![5, 3], vec![3, 2], vec![3]).unwrap();
    assert!((chain.oestimate() - 197.0 / 120.0).abs() < 1e-12);
    assert!(
        (chain.oestimate() - 1.6417).abs() < 1e-4,
        "paper quotes 1.6417"
    );
    // The realized corpus instance reproduces the same OE through
    // the graph-side estimator, and detection recovers the spec.
    let inst = cases::section_4_2_chain().unwrap();
    let plain = value_of(&OEstimate { propagated: false }, &inst);
    assert!((plain - 197.0 / 120.0).abs() < 1e-9);
    let spec = ChainSpec::detect(&inst.graph().unwrap()).expect("paper chain detects");
    assert!((spec.oestimate() - 197.0 / 120.0).abs() < 1e-12);
}

#[test]
fn section_5_2_delta_table() {
    // The published percentage errors of the Δ table, one per corpus
    // instance. The camera-ready's e1 = 15 rows violate item
    // conservation; e1 = 5 reproduces the published errors exactly.
    // (Row 5: published 7.23; our exact arithmetic gives 7.27.)
    let want = [
        (1.54, 0.01),
        (4.80, 0.01),
        (8.33, 0.04),
        (5.76, 0.01),
        (7.27, 0.01),
    ];
    let rows = cases::delta_table().unwrap();
    assert_eq!(rows.len(), want.len());
    for (inst, &(pct, tol)) in rows.iter().zip(want.iter()) {
        let spec = ChainSpec::detect(&inst.graph().unwrap()).expect("delta chain detects");
        let got = spec.percentage_error();
        assert!(
            (got - pct).abs() <= tol,
            "{}: {got:.3}% vs {pct}%",
            inst.label
        );
        // The closed form and the exact permanent agree on every row.
        let closed = value_of(&ClosedForm, inst);
        assert!((closed - spec.expected_cracks()).abs() < 1e-12);
    }
}

#[test]
fn figure_6b_identified_pairs_and_exact_probabilities() {
    // 1'/2' indistinguishable individually, yet {1',2'} -> {1,2}.
    let inst = cases::figure_6b();
    let graph = inst.graph().unwrap();
    let id = andi::identify_sets(&graph);
    assert_eq!(id.blocks.len(), 2);
    assert_eq!(id.blocks[0].original_items, vec![0, 1]);
    // Exact marginals: each of items 0,1 is cracked w.p. 1/2.
    let probs = crack_probabilities_of(&inst).unwrap();
    assert!((probs[0] - 0.5).abs() < 1e-9);
    assert!((probs[1] - 0.5).abs() < 1e-9);
}

#[test]
fn figure_2_compliance_classification() {
    let h = cases::bigmart_h();
    let f = cases::bigmart_point();
    let g = cases::bigmart_ignorant();
    // All three Figure 2 beliefs are fully compliant.
    assert!((f.alpha() - 1.0).abs() < 1e-12);
    assert!((g.alpha() - 1.0).abs() < 1e-12);
    assert!((h.alpha() - 1.0).abs() < 1e-12);
    let f = f.belief().unwrap();
    let g = g.belief().unwrap();
    let h = h.belief().unwrap();
    assert!(f.is_point_valued() && !f.is_interval());
    assert!(g.is_ignorant() && g.is_interval());
    assert!(h.is_interval() && !h.is_ignorant());
}

#[test]
fn h_exact_expectation_brackets_the_oestimate() {
    // Exact E for belief h on BigMart is 1.8125 (permanent
    // computation); the O-estimate 1.5667 underestimates, as the
    // paper's Δ analysis predicts (OE <= exact on entangled
    // structures).
    let inst = cases::bigmart_h();
    let exact = value_of(&Permanent::default(), &inst);
    assert!((exact - 1.8125).abs() < 1e-9, "exact = {exact}");
    let oe = value_of(&OEstimate { propagated: false }, &inst);
    assert!(oe < exact);
    // Propagation cannot hurt on a compliant belief.
    let prop = value_of(&OEstimate { propagated: true }, &inst);
    assert!(prop >= oe - 1e-12);
    assert!(prop <= exact + 1e-9);
}

#[test]
fn propagated_statuses_on_point_valued_bigmart() {
    // Singleton groups (items 2', 5') are forced cracks under the
    // point-valued belief; the four-item group stays free.
    let graph = cases::bigmart_point().graph().unwrap();
    let prof = OutdegreeProfile::propagated(&graph).unwrap();
    assert_eq!(prof.status(1), ItemStatus::ForcedCrack);
    assert_eq!(prof.status(4), ItemStatus::ForcedCrack);
    assert_eq!(prof.status(0), ItemStatus::Free { outdegree: 4 });
    assert_eq!(prof.forced_cracks(), 2);
}

#[test]
fn every_paper_case_passes_the_conformance_battery() {
    // The same instances live in the committed corpus; the full
    // differential battery must come back clean on each.
    let config = andi_oracle::CheckConfig::default();
    for inst in cases::all().unwrap() {
        let report = andi_oracle::check_instance(&inst, &config).unwrap();
        assert!(
            report.violations.is_empty(),
            "{}: {:?}",
            inst.label,
            report.violations
        );
    }
}

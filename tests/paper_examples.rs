//! Integration tests pinning every worked number in the paper.
//!
//! Each test cites the section it reproduces; together they are the
//! ground-truth anchor for the whole pipeline (data -> belief ->
//! graph -> estimate).

use andi::core::{point_valued_expected_cracks, ItemStatus};
use andi::graph::{crack_probabilities, expected_cracks, permanent};
use andi::{bigmart, BeliefFunction, ChainSpec, FrequencyGroups, OutdegreeProfile};

const BIGMART_SUPPORTS: [u64; 6] = [5, 4, 5, 5, 3, 5];
const M: u64 = 10;

fn bigmart_freqs() -> Vec<f64> {
    BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect()
}

/// The belief function `h` of Figure 2 (0-based item ids).
fn belief_h() -> BeliefFunction {
    BeliefFunction::from_intervals(vec![
        (0.0, 1.0),
        (0.4, 0.5),
        (0.5, 0.5),
        (0.4, 0.6),
        (0.1, 0.4),
        (0.5, 0.5),
    ])
    .unwrap()
}

#[test]
fn figure_1_bigmart_frequencies() {
    let db = bigmart();
    let want = [0.5, 0.4, 0.5, 0.5, 0.3, 0.5];
    for (x, (&got, &w)) in db.frequencies().iter().zip(want.iter()).enumerate() {
        assert!((got - w).abs() < 1e-12, "item {x}");
    }
}

#[test]
fn section_2_3_consistent_mappings_of_h() {
    // "1' can be mapped to 1, 2, 3, 4 and 6; ... 2' can be mapped to
    // 1, 2, 4 and 5."
    let g = belief_h().build_graph(&BIGMART_SUPPORTS, M);
    let one_prime: Vec<usize> = (0..6).filter(|&y| g.has_edge(0, y)).collect();
    assert_eq!(one_prime, vec![0, 1, 2, 3, 5]);
    let two_prime: Vec<usize> = (0..6).filter(|&y| g.has_edge(1, y)).collect();
    assert_eq!(two_prime, vec![0, 1, 3, 4]);
}

#[test]
fn figure_3b_group_structure() {
    // Groups {5'}, {2'}, {1',3',4',6'} with frequencies .3/.4/.5.
    let fg = FrequencyGroups::from_supports(&BIGMART_SUPPORTS, M);
    assert_eq!(fg.n_groups(), 3);
    assert_eq!(fg.sizes(), vec![1, 1, 4]);
}

#[test]
fn lemma_1_and_3_on_bigmart() {
    let fg = FrequencyGroups::from_supports(&BIGMART_SUPPORTS, M);
    assert_eq!(point_valued_expected_cracks(&fg), 3.0);
    // The exact computation agrees: point-valued graph is three
    // complete blocks.
    let b = BeliefFunction::point_valued(&bigmart_freqs()).unwrap();
    let dense = b.build_graph(&BIGMART_SUPPORTS, M).to_dense();
    assert!((expected_cracks(&dense).unwrap() - 3.0).abs() < 1e-9);
    // And the ignorant graph gives exactly one crack.
    let ign = BeliefFunction::ignorant(6).build_graph(&BIGMART_SUPPORTS, M);
    assert!((expected_cracks(&ign.to_dense()).unwrap() - 1.0).abs() < 1e-9);
}

#[test]
fn section_4_2_chain_example_74_over_45() {
    let chain = ChainSpec::new(vec![5, 3], vec![3, 2], vec![3]).unwrap();
    assert!((chain.expected_cracks() - 74.0 / 45.0).abs() < 1e-12);
    // The paper quotes 1.644 cracks on average.
    assert!((chain.expected_cracks() - 1.644).abs() < 1e-3);
    // Cross-check the closed form against the exact permanent
    // computation on a realized instance.
    let (supports, belief) = chain.realize(90).unwrap();
    let dense = belief.build_graph(&supports, 90).to_dense();
    let exact = expected_cracks(&dense).unwrap();
    assert!(
        (exact - 74.0 / 45.0).abs() < 1e-9,
        "permanent-exact {exact} vs Lemma 5"
    );
}

#[test]
fn section_5_1_oestimate_of_figure_5() {
    // OE for h on BigMart: outdegrees 6,5,4,5,2,4.
    let g = belief_h().build_graph(&BIGMART_SUPPORTS, M);
    assert_eq!(g.outdegrees(), vec![6, 5, 4, 5, 2, 4]);
    let oe = OutdegreeProfile::plain(&g).oestimate();
    let want = 1.0 / 6.0 + 1.0 / 5.0 + 0.25 + 0.2 + 0.5 + 0.25;
    assert!((oe - want).abs() < 1e-12);
}

#[test]
fn figure_6a_staircase_25_over_12_vs_4() {
    // O-estimate 25/12 without propagation; the true number of
    // cracks is 4 (unique matching), which propagation recovers.
    let supports = vec![2u64, 4, 6, 8];
    let f = |s: u64| s as f64 / 10.0;
    let belief = BeliefFunction::from_intervals(vec![
        (f(2), f(2)),
        (f(2), f(4)),
        (f(2), f(6)),
        (f(2), f(8)),
    ])
    .unwrap();
    let graph = belief.build_graph(&supports, 10);
    let plain = OutdegreeProfile::plain(&graph).oestimate();
    assert!((plain - 25.0 / 12.0).abs() < 1e-12);
    let prop = OutdegreeProfile::propagated(&graph).unwrap();
    assert_eq!(prop.forced_cracks(), 4);
    assert!((prop.oestimate() - 4.0).abs() < 1e-12);
    // Exact agrees: the permanent is 1.
    let dense = belief.build_graph(&supports, 10).to_dense();
    assert_eq!(permanent(&dense), 1);
}

#[test]
fn section_5_2_chain_oestimate_197_over_120() {
    let chain = ChainSpec::new(vec![5, 3], vec![3, 2], vec![3]).unwrap();
    assert!((chain.oestimate() - 197.0 / 120.0).abs() < 1e-12);
    assert!(
        (chain.oestimate() - 1.6417).abs() < 1e-4,
        "paper quotes 1.6417"
    );
}

#[test]
fn section_5_2_delta_table() {
    // (e1, e2, e3, s1, s2) -> published percentage error. The
    // camera-ready's e1 = 15 rows violate item conservation; e1 = 5
    // reproduces the published errors exactly.
    let rows: [(usize, usize, usize, usize, usize, f64, f64); 5] = [
        (10, 10, 10, 20, 20, 1.54, 0.01),
        (5, 10, 10, 25, 20, 4.80, 0.01),
        (5, 10, 5, 25, 25, 8.33, 0.04),
        (5, 6, 5, 27, 27, 5.76, 0.01),
        // Published 7.23; our exact arithmetic gives 7.27.
        (10, 20, 10, 15, 15, 7.27, 0.01),
    ];
    for &(e1, e2, e3, s1, s2, want, tol) in &rows {
        let chain = ChainSpec::new(vec![20, 30, 20], vec![e1, e2, e3], vec![s1, s2]).unwrap();
        let got = chain.percentage_error();
        assert!(
            (got - want).abs() <= tol,
            "row ({e1},{e2},{e3},{s1},{s2}): {got:.3}% vs {want}%"
        );
    }
}

#[test]
fn figure_6b_identified_pairs_and_exact_probabilities() {
    // 1'/2' indistinguishable individually, yet {1',2'} -> {1,2}.
    let supports = vec![2u64, 4, 6, 8];
    let f = |s: u64| s as f64 / 10.0;
    let belief = BeliefFunction::from_intervals(vec![
        (f(2), f(4)),
        (f(2), f(4)),
        (f(4), f(8)),
        (f(6), f(8)),
    ])
    .unwrap();
    let graph = belief.build_graph(&supports, 10);
    let id = andi::identify_sets(&graph);
    assert_eq!(id.blocks.len(), 2);
    assert_eq!(id.blocks[0].original_items, vec![0, 1]);
    // Exact marginals: each of items 0,1 is cracked w.p. 1/2.
    let probs = crack_probabilities(&graph.to_dense()).unwrap();
    assert!((probs[0] - 0.5).abs() < 1e-9);
    assert!((probs[1] - 0.5).abs() < 1e-9);
}

#[test]
fn figure_2_compliance_classification() {
    let freqs = bigmart_freqs();
    let f = BeliefFunction::point_valued(&freqs).unwrap();
    let g = BeliefFunction::ignorant(6);
    let h = belief_h();
    assert!((f.alpha(&freqs) - 1.0).abs() < 1e-12);
    assert!((g.alpha(&freqs) - 1.0).abs() < 1e-12);
    assert!((h.alpha(&freqs) - 1.0).abs() < 1e-12);
    assert!(f.is_point_valued() && !f.is_interval());
    assert!(g.is_ignorant() && g.is_interval());
    assert!(h.is_interval() && !h.is_ignorant());
}

#[test]
fn h_exact_expectation_brackets_the_oestimate() {
    // Exact E for belief h on BigMart is 1.8125 (permanent
    // computation); the O-estimate 1.5667 underestimates, as the
    // paper's Δ analysis predicts (OE <= exact on entangled
    // structures).
    let graph = belief_h().build_graph(&BIGMART_SUPPORTS, M);
    let exact = expected_cracks(&graph.to_dense()).unwrap();
    assert!((exact - 1.8125).abs() < 1e-9, "exact = {exact}");
    let oe = OutdegreeProfile::plain(&graph).oestimate();
    assert!(oe < exact);
    // Propagation cannot hurt.
    let prop = OutdegreeProfile::propagated(&graph).unwrap().oestimate();
    assert!(prop >= oe - 1e-12);
    assert!(prop <= exact + 1e-9);
}

#[test]
fn propagated_statuses_on_point_valued_bigmart() {
    // Singleton groups (items 2', 5') are forced cracks under the
    // point-valued belief; the four-item group stays free.
    let b = BeliefFunction::point_valued(&bigmart_freqs()).unwrap();
    let graph = b.build_graph(&BIGMART_SUPPORTS, M);
    let prof = OutdegreeProfile::propagated(&graph).unwrap();
    assert_eq!(prof.status(1), ItemStatus::ForcedCrack);
    assert_eq!(prof.status(4), ItemStatus::ForcedCrack);
    assert_eq!(prof.status(0), ItemStatus::Free { outdegree: 4 });
    assert_eq!(prof.forced_cracks(), 2);
}

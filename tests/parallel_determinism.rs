//! The parallel layer's determinism contract, property-tested end to
//! end: every threaded hot path — recipe curves, Ryser permanents,
//! the sharded sampler — must return **bit-identical** results at
//! every thread count from 1 to 8, across random graphs, beliefs,
//! seeds and schedules. (`andi_core::parallel` documents the
//! contract; these tests are its teeth.)

use andi_core::{
    compliancy_curve_decoy_with_threads, compliancy_curve_probs_with_threads, compliant_count,
    BeliefFunction, OutdegreeProfile,
};
use andi_graph::permanent::try_permanent_of_rows_with_threads;
use andi_graph::sampler::{sample_cracks_with_threads, SamplerConfig};
use andi_graph::{GroupedBigraph, Matching};
use proptest::prelude::*;

/// Strategy: supports plus a compliant widened belief over m = 60,
/// rendered as a grouped graph.
fn grouped_graph() -> impl Strategy<Value = GroupedBigraph> {
    (2usize..=10).prop_flat_map(|n| {
        (prop::collection::vec(1u64..60, n), 0.0f64..0.3).prop_map(|(supports, delta)| {
            let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 60.0).collect();
            let belief = BeliefFunction::widened(&freqs, delta).unwrap();
            belief.build_graph(&supports, 60)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compliancy curve (per-run mask fan-out) is bit-identical
    /// at every thread count.
    #[test]
    fn recipe_curve_is_bit_identical_across_threads(
        g in grouped_graph(),
        n_runs in 1usize..9,
        seed in 0u64..1000,
    ) {
        let probs = OutdegreeProfile::plain(&g).probabilities();
        let alphas: Vec<f64> = (0..=10).map(|k| k as f64 / 10.0).collect();
        let serial = compliancy_curve_probs_with_threads(&probs, &alphas, n_runs, seed, 1);
        for threads in 2..=8 {
            let par = compliancy_curve_probs_with_threads(&probs, &alphas, n_runs, seed, threads);
            for (a, b) in serial.iter().zip(&par) {
                prop_assert_eq!(
                    a.oestimate.to_bits(), b.oestimate.to_bits(),
                    "threads={}, alpha={}", threads, a.alpha
                );
            }
        }
    }

    /// The decoy curve (per-α fan-out) is bit-identical at every
    /// thread count.
    #[test]
    fn decoy_curve_is_bit_identical_across_threads(
        g in grouped_graph(),
        n_runs in 1usize..7,
        seed in 0u64..1000,
        width_pct in 0u32..40,
    ) {
        let width = width_pct as f64 / 100.0;
        let alphas: Vec<f64> = (0..=8).map(|k| k as f64 / 8.0).collect();
        let serial = compliancy_curve_decoy_with_threads(&g, width, &alphas, n_runs, seed, 1);
        for threads in 2..=8 {
            let par = compliancy_curve_decoy_with_threads(&g, width, &alphas, n_runs, seed, threads);
            for (a, b) in serial.iter().zip(&par) {
                prop_assert_eq!(
                    a.oestimate.to_bits(), b.oestimate.to_bits(),
                    "threads={}, alpha={}", threads, a.alpha
                );
            }
        }
    }

    /// Chunked-parallel Ryser equals the serial walk exactly (integer
    /// arithmetic, so no tolerance at all) on random row masks.
    #[test]
    fn permanent_is_identical_across_threads(
        rows in prop::collection::vec(1u64..(1 << 12), 12),
        extra_density in 0u64..(1 << 12),
    ) {
        let n = rows.len();
        // Mix in a shared mask so some instances are dense.
        let rows: Vec<u64> = rows.iter().map(|&r| r | extra_density).collect();
        let serial = try_permanent_of_rows_with_threads(&rows, n, 1);
        for threads in 2..=8 {
            prop_assert_eq!(
                try_permanent_of_rows_with_threads(&rows, n, threads),
                serial,
                "threads={}", threads
            );
        }
    }

    /// The sharded sampler returns the same sample vector — not just
    /// the same mean — at every thread count.
    #[test]
    fn sampler_is_bit_identical_across_threads(
        g in grouped_graph(),
        rng_seed in 0u64..1000,
        per_seed in 8usize..40,
    ) {
        let seed = g.greedy_matching();
        prop_assume!(seed.size() > 0);
        let config = SamplerConfig {
            warmup_swaps: 200,
            swaps_between_samples: 20,
            samples_per_seed: per_seed,
            n_samples: 100,
            use_locality: true,
        };
        let serial = sample_cracks_with_threads(&g, &seed, &config, rng_seed, 1).unwrap();
        for threads in 2..=8 {
            let par = sample_cracks_with_threads(&g, &seed, &config, rng_seed, threads).unwrap();
            prop_assert_eq!(&par.counts, &serial.counts, "threads={}", threads);
        }
    }

    /// `compliant_count` is monotone in α and inverts exact grid
    /// points: `compliant_count(c/n, n) == c`.
    #[test]
    fn compliant_count_round_trips_grid_points(n in 1usize..500, steps in 1usize..50) {
        for c in 0..=n.min(steps) {
            prop_assert_eq!(compliant_count(c as f64 / n as f64, n), c);
        }
        let mut prev = 0;
        for k in 0..=steps {
            let alpha = k as f64 / steps as f64;
            let c = compliant_count(alpha, n);
            prop_assert!(c >= prev, "not monotone at alpha={}", alpha);
            prop_assert!(c <= n);
            prev = c;
        }
    }
}

/// A seed matching must exist for the sampler property to be
/// non-vacuous on at least the complete graph; pin one concrete case
/// outside the proptest so a pathological strategy can't silently
/// reject everything.
#[test]
fn sampler_shard_determinism_concrete_case() {
    use andi_graph::DenseBigraph;
    let g = DenseBigraph::complete(7);
    let config = SamplerConfig::quick();
    let a = sample_cracks_with_threads(&g, &Matching::identity(7), &config, 3, 1).unwrap();
    let b = sample_cracks_with_threads(&g, &Matching::identity(7), &config, 3, 6).unwrap();
    assert_eq!(a.counts, b.counts);
}

/// The proptest above stays at n = 12 — below `PARALLEL_MIN_N`, so it
/// pins the *dispatch*, not the fan-out. These sizes actually split
/// into per-worker chunk walks, one on each side of the
/// `SAFE_UNCHECKED_N = 22` accumulator-lane boundary, so both the
/// half-space fast lane and the overflow-checked lane prove
/// thread-count invariance on real chunk seams.
#[test]
fn permanent_lane_boundary_is_identical_across_threads() {
    for n in [22usize, 23] {
        // Deterministic mixed-density rows: diagonal plus a splitmix-
        // style scramble, masked to n columns.
        let rows: Vec<u64> = (0..n)
            .map(|i| {
                let mut x = (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                x ^= x >> 31;
                (x | (1 << i)) & ((1 << n) - 1)
            })
            .collect();
        let serial = try_permanent_of_rows_with_threads(&rows, n, 1);
        assert!(serial.is_some(), "n={n} instance should not overflow");
        for threads in [2, 4, 8] {
            assert_eq!(
                try_permanent_of_rows_with_threads(&rows, n, threads),
                serial,
                "n={n} threads={threads}"
            );
        }
    }
}

//! Property-based consistency tests across the estimator stack:
//! exact permanents, closed-form lemmas, O-estimates and the MCMC
//! sampler must agree wherever their domains overlap.
//!
//! Randomized inputs are expressed as [`andi_oracle::Instance`]
//! values and evaluated through the oracle's [`Estimator`] surface,
//! so these properties exercise exactly the objects the conformance
//! sweeps and the committed corpus replay.

use andi::graph::{expected_cracks, sample_cracks, Matching};
use andi::{BeliefFunction, ChainSpec, OutdegreeProfile};
use andi_oracle::estimators::{crack_probabilities_of, ClosedForm, OEstimate, Permanent};
use andi_oracle::{Estimator, Instance, Regime};
use proptest::prelude::*;

/// Strategy: a small support profile over m = 100 transactions.
fn small_profile() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..100, 2..9)
}

/// Wraps supports + intervals as an oracle instance over m = 100.
fn instance(supports: Vec<u64>, intervals: Vec<(f64, f64)>) -> Instance {
    Instance {
        label: "prop:estimator-consistency".into(),
        regime: Regime::AlphaCompliant,
        supports,
        m: 100,
        intervals,
        mask: None,
    }
}

/// Strategy: a compliant interval belief for the given supports —
/// each interval is the true frequency widened by random slack on
/// both sides.
fn compliant_belief(supports: &[u64]) -> impl Strategy<Value = Vec<(f64, f64)>> {
    let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 100.0).collect();
    prop::collection::vec((0.0f64..0.3, 0.0f64..0.3), freqs.len()).prop_map(move |slacks| {
        freqs
            .iter()
            .zip(slacks.iter())
            .map(|(&f, &(a, b))| ((f - a).max(0.0), (f + b).min(1.0)))
            .collect()
    })
}

/// Strategy: a compliant instance over m = 100.
fn compliant_instance() -> impl Strategy<Value = Instance> {
    small_profile().prop_flat_map(|s| {
        let b = compliant_belief(&s);
        (Just(s), b).prop_map(|(supports, intervals)| instance(supports, intervals))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plain OE is refined by propagation on compliant beliefs, and
    /// both stay within [0, n]; the exact expectation also lies
    /// between the certain-crack count and n.
    #[test]
    fn oe_bounds_hold(inst in compliant_instance()) {
        let n = inst.n() as f64;
        let plain = OEstimate { propagated: false }.estimate(&inst).unwrap().value;
        let propagated = OEstimate { propagated: true }.estimate(&inst).unwrap().value;
        prop_assert!(plain >= 0.0 && plain <= n + 1e-9);
        prop_assert!(propagated + 1e-9 >= plain, "propagation sharpens: {propagated} < {plain}");

        let exact: f64 = crack_probabilities_of(&inst)
            .expect("compliant is feasible")
            .iter()
            .sum();
        prop_assert!(exact <= n + 1e-9);
        let prop_profile = OutdegreeProfile::propagated(&inst.graph().unwrap()).unwrap();
        prop_assert!(
            exact + 1e-9 >= prop_profile.forced_cracks() as f64,
            "certain cracks lower-bound the expectation"
        );
    }

    /// Lemma 8 (monotonicity): widening every interval cannot raise
    /// the O-estimate.
    #[test]
    fn lemma_8_monotonicity(supports in small_profile(), extra in 0.0f64..0.4) {
        let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 100.0).collect();
        let narrow = BeliefFunction::widened(&freqs, 0.02).unwrap();
        let wide = BeliefFunction::widened(&freqs, 0.02 + extra).unwrap();
        prop_assert!(narrow.refines(&wide));
        let inst_n = instance(supports.clone(), narrow.intervals().to_vec());
        let inst_w = instance(supports, wide.intervals().to_vec());
        let est = OEstimate { propagated: false };
        let oe_n = est.estimate(&inst_n).unwrap().value;
        let oe_w = est.estimate(&inst_w).unwrap().value;
        prop_assert!(oe_n + 1e-9 >= oe_w, "{oe_n} < {oe_w}");
    }

    /// Lemma 10 (α-monotonicity): removing items from the compliant
    /// set cannot raise the masked O-estimate.
    #[test]
    fn lemma_10_monotonicity(supports in small_profile(), seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 100.0).collect();
        let belief = BeliefFunction::widened(&freqs, 0.05).unwrap();
        let mut inst = instance(supports, belief.intervals().to_vec());
        let n = inst.n();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let est = OEstimate { propagated: false };
        let whole = est.estimate(&inst).unwrap().value;
        let mut mask = vec![false; n];
        let mut prev = 0.0;
        for &x in &order {
            mask[x] = true;
            inst.mask = Some(mask.clone());
            let oe = est.estimate(&inst).unwrap().value;
            prop_assert!(oe + 1e-12 >= prev, "masked OE must grow with the compliant set");
            prev = oe;
        }
        prop_assert!((prev - whole).abs() < 1e-9);
    }

    /// The Lemma 6 chain closed form agrees with the exact
    /// permanent computation on every realizable small chain, with
    /// the oracle's ClosedForm estimator re-detecting the chain from
    /// the realized instance.
    #[test]
    fn chain_formula_matches_permanent(
        n1 in 1usize..4, n2 in 1usize..4, n3 in 1usize..4,
        e1_frac in 0.0f64..=1.0, split in 0.0f64..=1.0,
    ) {
        // Construct a consistent chain: pick e1 <= n1, then u1 =
        // n1 - e1 items of S1 are in group 1; pick v1 <= n2 items of
        // S1 in group 2; continue for one shared link only (k = 2)
        // and for k = 3 via the second split.
        let e1 = (e1_frac * n1 as f64).floor() as usize;
        let u1 = n1 - e1;
        let v1 = (split * n2 as f64).floor() as usize;
        let s1 = u1 + v1;
        let rest2 = n2 - v1; // items of group 2 fed by e2 or S2
        // Keep k = 2 by making everything else exclusive.
        let e2 = rest2;
        let e3 = n3;
        // Chain of length 3 with empty second shared group.
        let chain = ChainSpec::new(vec![n1, n2, n3], vec![e1, e2, e3], vec![s1, 0]);
        prop_assume!(chain.is_ok());
        let chain = chain.unwrap();
        prop_assume!(chain.n_items() <= 10);

        let (supports, belief) = chain.realize(100).unwrap();
        let inst = Instance {
            regime: Regime::Chain,
            ..instance(supports, belief.intervals().to_vec())
        };
        let exact = Permanent { cap: 10 }.estimate(&inst).unwrap().value;
        prop_assert!(
            (exact - chain.expected_cracks()).abs() < 1e-9,
            "Lemma 6 gives {}, permanent gives {exact}",
            chain.expected_cracks()
        );
        // ClosedForm re-detects the chain from the graph and lands
        // on the same number.
        prop_assert!(ClosedForm.applies_to(&inst));
        let closed = ClosedForm.estimate(&inst).unwrap().value;
        prop_assert!((closed - exact).abs() < 1e-9);
    }

    /// The grouped and dense graphs always agree on outdegrees, and
    /// the sampler accepts any compliant instance.
    #[test]
    fn grouped_dense_agreement(supports in small_profile()) {
        let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 100.0).collect();
        let belief = BeliefFunction::widened(&freqs, 0.07).unwrap();
        let inst = instance(supports.clone(), belief.intervals().to_vec());
        let graph = inst.graph().unwrap();
        let dense = graph.to_dense();
        prop_assert_eq!(graph.outdegrees(), dense.right_degrees());
        prop_assert_eq!(graph.n_edges(), dense.n_edges());
        for i in 0..supports.len() {
            for y in 0..supports.len() {
                prop_assert_eq!(graph.has_edge(i, y), dense.has_edge(i, y));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The prefix-tight block decomposition is sound: matchings never
    /// cross block boundaries, so the exact crack marginals computed
    /// on each block's standalone subgraph equal the marginals of the
    /// whole graph.
    #[test]
    fn identified_blocks_localize_marginals(inst in compliant_instance()) {
        let graph = inst.graph().unwrap();
        let id = andi::identify_sets(&graph);
        prop_assume!(!id.blocks.is_empty());
        let whole = crack_probabilities_of(&inst).expect("compliant");

        for block in &id.blocks {
            // Tightness: for compliant beliefs in aligned indexing,
            // the block's anonymized and original item sets coincide.
            let mut anon_sorted = block.anonymized_items.clone();
            anon_sorted.sort_unstable();
            prop_assert_eq!(&anon_sorted, &block.original_items);

            // The block's standalone sub-instance (re-indexed).
            let sub = Instance {
                label: "prop:block".into(),
                regime: inst.regime,
                supports: block
                    .original_items
                    .iter()
                    .map(|&i| inst.supports[i])
                    .collect(),
                m: inst.m,
                intervals: block
                    .original_items
                    .iter()
                    .map(|&y| inst.intervals[y])
                    .collect(),
                mask: None,
            };
            let local = crack_probabilities_of(&sub).expect("block is feasible");
            for (k, &y) in block.original_items.iter().enumerate() {
                prop_assert!(
                    (whole[y] - local[k]).abs() < 1e-9,
                    "item {y}: whole-graph {} vs block-local {}",
                    whole[y],
                    local[k]
                );
            }
        }
    }
}

/// Non-proptest: the sampler's long-run mean matches the exact
/// expectation on a batch of random compliant instances (this is the
/// statistical contract the paper's Figure 10 relies on).
#[test]
fn sampler_tracks_exact_on_random_instances() {
    use andi::graph::sampler::SamplerConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    let config = SamplerConfig {
        warmup_swaps: 20_000,
        swaps_between_samples: 400,
        samples_per_seed: 500,
        n_samples: 1_500,
        use_locality: true,
    };
    for trial in 0..6 {
        let n = rng.gen_range(4..9);
        let supports: Vec<u64> = (0..n).map(|_| rng.gen_range(1..100)).collect();
        let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 100.0).collect();
        let delta = rng.gen_range(0.01..0.2);
        let belief = BeliefFunction::widened(&freqs, delta).unwrap();
        let graph = belief.build_graph(&supports, 100);
        let exact = expected_cracks(&graph.to_dense()).expect("feasible");
        let samples = sample_cracks(&graph, &Matching::identity(n), &config, &mut rng).unwrap();
        let mean = samples.mean();
        assert!(
            (mean - exact).abs() < 0.2,
            "trial {trial}: sampled {mean} vs exact {exact} (n={n}, delta={delta:.3})"
        );
    }
}

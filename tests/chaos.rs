//! Chaos suite for the fault-tolerance layer: under a deterministic
//! seeded fault schedule the budgeted recipe, permanent, and sampler
//! must never hang, never abort the process, and produce an identical
//! result — or an identical structured error — at every thread count.
//!
//! Every test grabs `CHAOS_LOCK` first so an installed override never
//! bleeds into the ambient-schedule test running on a sibling thread.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use andi::core::{assess_risk_budgeted_with_threads, Error};
use andi::graph::faults::FaultSchedule;
use andi::graph::par::ExecError;
use andi::graph::permanent::try_permanent_of_rows_budgeted;
use andi::graph::sampler::{sample_cracks_budgeted, SamplerConfig};
use andi::graph::{DenseBigraph, Matching};
use andi::{Budget, BudgetedAssessment, RecipeConfig, Rung};

/// Serializes the chaos tests within this binary. `install()` holds
/// its own global lock, but the ambient test takes no guard, so
/// without this it could observe a sibling test's override schedule.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Sixteen items in eight frequency groups of two — small enough for
/// the exact-permanent rung, structured enough that every rung has
/// real work to do.
fn supports16() -> Vec<u64> {
    (0..16u64).map(|i| 3 * (i / 2 + 1)).collect()
}

const M: u64 = 100;

fn assess(threads: usize, tolerance: f64, budget: &Budget) -> Result<BudgetedAssessment, Error> {
    let config = RecipeConfig {
        tolerance,
        ..RecipeConfig::default()
    };
    assess_risk_budgeted_with_threads(&supports16(), M, &config, budget, threads)
}

/// Everything that must be thread-count invariant about an outcome:
/// the structured error, or the decision, the bit-exact numbers, and
/// the provenance minus the wall-clock `spent_ms` field.
fn fingerprint(out: &Result<BudgetedAssessment, Error>) -> String {
    match out {
        Ok(b) => format!(
            "ok rung={:?} degraded={} trips={:?} decision={:?} g={:016x} oe={:016x}",
            b.provenance.rung,
            b.provenance.degraded,
            b.provenance.trips,
            b.assessment.decision,
            b.assessment.point_valued_cracks.to_bits(),
            b.assessment.full_compliance_oe.to_bits(),
        ),
        Err(e) => format!("err {e:?}"),
    }
}

#[test]
fn full_rate_panic_schedule_degrades_identically_at_every_thread_count() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = FaultSchedule::parse("7:1.0").unwrap().install();
    // Every probe fires, so the exact and sampler rungs both lose
    // their first task to an injected panic and the O-estimate floor
    // answers. Tolerance 0.9 keeps g under budget so the verdict
    // lands before the (also fully-faulted) mask runs.
    let baseline = assess(1, 0.9, &Budget::unlimited());
    let b = baseline
        .as_ref()
        .expect("the O-estimate floor always answers");
    assert_eq!(b.provenance.rung, Rung::OEstimate);
    assert!(b.provenance.degraded);
    assert_eq!(b.provenance.trips.len(), 2);
    assert_eq!(b.provenance.trips[0].0, Rung::Exact);
    assert_eq!(b.provenance.trips[1].0, Rung::Sampler);
    for trip in &b.provenance.trips {
        assert!(
            matches!(trip.1, Error::WorkerPanic { .. }),
            "expected an isolated injected panic, got {:?}",
            trip.1
        );
    }
    for threads in [2usize, 4] {
        let out = assess(threads, 0.9, &Budget::unlimited());
        assert_eq!(
            fingerprint(&out),
            fingerprint(&baseline),
            "threads={threads}"
        );
    }
}

#[test]
fn partial_panic_schedules_are_thread_count_invariant() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Three different seeds and rates; whatever each schedule does —
    // a clean pass, a degraded answer, or a structured worker-panic
    // error from the mask runs — it must do the same thing at every
    // thread count.
    for spec in ["3:0.2", "11:0.35", "99:0.08"] {
        let _guard = FaultSchedule::parse(spec).unwrap().install();
        let baseline = assess(1, 0.1, &Budget::unlimited());
        if let Err(e) = &baseline {
            assert!(
                matches!(e, Error::WorkerPanic { .. }),
                "{spec}: only isolated panics may surface, got {e:?}"
            );
        }
        for threads in [2usize, 4] {
            let out = assess(threads, 0.1, &Budget::unlimited());
            assert_eq!(
                fingerprint(&out),
                fingerprint(&baseline),
                "spec={spec} threads={threads}"
            );
        }
    }
}

#[test]
fn zero_budget_with_delay_faults_lands_on_the_oestimate_floor() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = FaultSchedule::parse("5:0.5:delay").unwrap().install();
    let baseline = assess(1, 0.1, &Budget::with_deadline(Duration::ZERO));
    let b = baseline
        .as_ref()
        .expect("zero budget degrades, never errors");
    assert_eq!(b.provenance.rung, Rung::OEstimate);
    assert_eq!(
        b.provenance.trips,
        vec![
            (Rung::Exact, Error::BudgetExceeded { budget_ms: 0 }),
            (Rung::Sampler, Error::BudgetExceeded { budget_ms: 0 }),
        ]
    );
    assert!(
        b.provenance
            .render()
            .contains("answered by o-estimate (degraded)"),
        "report must name the answering rung: {}",
        b.provenance.render()
    );
    for threads in [2usize, 4] {
        let out = assess(threads, 0.1, &Budget::with_deadline(Duration::ZERO));
        assert_eq!(
            fingerprint(&out),
            fingerprint(&baseline),
            "threads={threads}"
        );
    }
}

#[test]
fn delay_faults_do_not_change_any_number() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Rate 0 disables injection outright — a clean baseline that is
    // immune to whatever ANDI_FAULTS the chaos CI job exports.
    let clean = {
        let _guard = FaultSchedule::parse("0:0.0").unwrap().install();
        assess(1, 0.1, &Budget::unlimited())
    };
    let _guard = FaultSchedule::parse("9:0.8:delay").unwrap().install();
    for threads in [1usize, 4] {
        let delayed = assess(threads, 0.1, &Budget::unlimited());
        assert_eq!(
            fingerprint(&delayed),
            fingerprint(&clean),
            "threads={threads}: delays must not change results"
        );
    }
}

#[test]
fn timed_budget_with_mix_faults_never_hangs_or_aborts() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = FaultSchedule::parse("13:0.4:mix").unwrap().install();
    for threads in [1usize, 4] {
        let start = Instant::now();
        let out = assess(
            threads,
            0.1,
            &Budget::with_deadline(Duration::from_millis(250)),
        );
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(60),
            "threads={threads}: {elapsed:?} — the budget stopped binding"
        );
        match out {
            Ok(b) => assert!(matches!(
                b.provenance.rung,
                Rung::Exact | Rung::Sampler | Rung::OEstimate
            )),
            Err(e) => assert!(
                matches!(e, Error::WorkerPanic { .. } | Error::BudgetExceeded { .. }),
                "threads={threads}: unstructured failure {e:?}"
            ),
        }
    }
}

#[test]
fn faulted_permanent_is_thread_count_invariant() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let schedule = FaultSchedule::parse("21:0.15").unwrap();
    // 2^16 subsets split into sixteen chunk tasks: make sure this
    // seed actually exercises the panic path on at least one of them.
    assert!(
        (0..16).any(|c| schedule.fires("permanent.chunk", c).is_some()),
        "seed 21 no longer fires on any chunk; pick another seed"
    );
    let _guard = schedule.install();
    let rows = vec![(1u64 << 16) - 1; 16];
    let baseline = try_permanent_of_rows_budgeted(&rows, 16, 1, &Budget::unlimited());
    assert!(
        matches!(baseline, Err(ExecError::WorkerPanic { .. })),
        "got {baseline:?}"
    );
    for threads in [2usize, 4, 8] {
        let out = try_permanent_of_rows_budgeted(&rows, 16, threads, &Budget::unlimited());
        assert_eq!(out, baseline, "threads={threads}");
    }
}

#[test]
fn faulted_permanent_panic_names_the_probe_point() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = FaultSchedule::parse("7:1.0").unwrap().install();
    let rows = vec![(1u64 << 16) - 1; 16];
    let err = try_permanent_of_rows_budgeted(&rows, 16, 4, &Budget::unlimited())
        .expect_err("every chunk fires");
    match err {
        ExecError::WorkerPanic { task, payload } => {
            assert_eq!(task, 0, "fetch_min must report the minimal chunk");
            assert_eq!(payload, "injected fault at permanent.chunk[0]");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn faulted_sampler_is_thread_count_invariant() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = DenseBigraph::complete(10);
    let config = SamplerConfig {
        n_samples: 400,
        ..SamplerConfig::quick()
    };
    for spec in ["17:0.5", "4:0.3:mix", "2:1.0:delay"] {
        let _guard = FaultSchedule::parse(spec).unwrap().install();
        let baseline = sample_cracks_budgeted(
            &g,
            &Matching::identity(10),
            &config,
            7,
            1,
            &Budget::unlimited(),
        );
        for threads in [2usize, 4] {
            let out = sample_cracks_budgeted(
                &g,
                &Matching::identity(10),
                &config,
                7,
                threads,
                &Budget::unlimited(),
            );
            match (&out, &baseline) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.counts, b.counts, "spec={spec} threads={threads}")
                }
                (Err(a), Err(b)) => assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "spec={spec} threads={threads}"
                ),
                _ => panic!("spec={spec} threads={threads}: {out:?} vs baseline {baseline:?}"),
            }
        }
    }
}

#[test]
fn ambient_schedule_outcome_is_thread_count_invariant() {
    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // No override installed: probes consult ANDI_FAULTS, which the
    // chaos CI job exports and local runs usually leave unset. Either
    // way the firing decision is a pure function of (seed, point,
    // index), so the outcome must not depend on the thread count.
    let baseline = assess(1, 0.1, &Budget::unlimited());
    if let Err(e) = &baseline {
        assert!(
            matches!(e, Error::WorkerPanic { .. }),
            "only isolated injected panics may surface ambiently, got {e:?}"
        );
    }
    for threads in [2usize, 4] {
        let out = assess(threads, 0.1, &Budget::unlimited());
        assert_eq!(
            fingerprint(&out),
            fingerprint(&baseline),
            "threads={threads}"
        );
    }
}

#[test]
fn fault_mid_delta_leaves_the_incremental_engine_consistent() {
    use andi::core::{DeltaBatch, Edit, IncrementalEngine};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let _serial = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let supports = supports16();
    // Point beliefs at the true frequency for odd items, ignorance
    // for even ones: a mix of populated and reusable groups.
    let intervals: Vec<(f64, f64)> = supports
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            if i % 2 == 0 {
                (0.0, 1.0)
            } else {
                (s as f64 / M as f64, s as f64 / M as f64)
            }
        })
        .collect();
    let batch = DeltaBatch::new(vec![
        Edit::Insert {
            items: vec![0, 3, 7],
        },
        Edit::Replace {
            old: vec![0],
            new: vec![5, 9],
        },
        Edit::Delete { items: vec![3, 7] },
    ]);

    // Whatever a schedule injects mid-delta — a panic out of the
    // staging probe, an isolated worker panic during assessment, or
    // nothing — the engine must stay consistent: once faults stop,
    // its incremental answer is bit-identical to a from-scratch
    // recompute of whatever summary it actually holds.
    for spec in ["7:1.0", "3:0.2", "11:0.35", "13:0.4:mix"] {
        let mut engine = IncrementalEngine::new(&supports, M, &intervals).unwrap();
        let before = engine.summary_fingerprint();
        let committed;
        {
            let _guard = FaultSchedule::parse(spec).unwrap().install();
            let applied = catch_unwind(AssertUnwindSafe(|| engine.apply(&batch)));
            committed = matches!(applied, Ok(Ok(())));
            // An assessment attempt under faults may fail with an
            // isolated worker panic; it must never corrupt the cache.
            let _ = catch_unwind(AssertUnwindSafe(|| {
                engine.assess_risk_delta(4, &Budget::unlimited())
            }));
        }
        // Apply is transactional: it either fully committed or left
        // the summary untouched.
        if committed {
            assert_ne!(engine.summary_fingerprint(), before, "spec={spec}");
        } else {
            assert_eq!(engine.summary_fingerprint(), before, "spec={spec}");
        }
        let _quiet = FaultSchedule::parse("1:0").unwrap().install();
        for threads in [1usize, 4] {
            let out = engine
                .assess_risk_delta(threads, &Budget::unlimited())
                .unwrap();
            let (oe, probs) = engine.assess_from_scratch();
            assert_eq!(
                out.expected_cracks.to_bits(),
                oe.to_bits(),
                "spec={spec} threads={threads}: O-estimate diverged after fault"
            );
            for (i, (a, b)) in out.probabilities.iter().zip(&probs).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "spec={spec} threads={threads} item={i}"
                );
            }
        }
    }
}

//! End-to-end tests of the `andi` command-line binary, driving the
//! real executable over real FIMI files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn andi(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_andi"))
        .args(args)
        .output()
        .expect("the andi binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Writes the BigMart database as a FIMI file in a temp dir.
fn bigmart_file(dir: &std::path::Path) -> PathBuf {
    let db = andi::bigmart();
    let mut buf = Vec::new();
    andi::data::fimi::write_fimi(&db, &mut buf).unwrap();
    let path = dir.join("bigmart.dat");
    std::fs::write(&path, buf).unwrap();
    path
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("andi-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = andi(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn help_succeeds() {
    let out = andi(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("assess"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = andi(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("frobnicate"));
}

#[test]
fn demo_walks_bigmart() {
    let out = andi(&["demo"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("BigMart"));
    assert!(
        text.contains("tau =") && text.contains("0.1:"),
        "got:\n{text}"
    );
}

#[test]
fn stats_reports_figure_9_columns() {
    let dir = temp_dir("stats");
    let file = bigmart_file(&dir);
    let out = andi(&["stats", file.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("items:            6"));
    assert!(text.contains("frequency groups: 3 (2 singletons)"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn assess_produces_a_verdict() {
    let dir = temp_dir("assess");
    let file = bigmart_file(&dir);
    let out = andi(&["assess", file.to_str().unwrap(), "--tau", "0.6"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("DISCLOSE"));

    let out = andi(&["assess", file.to_str().unwrap(), "--tau", "0.1"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("JUDGEMENT CALL"));
    assert!(text.contains("alpha_max"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn assess_with_budget_reports_provenance_and_exit_codes() {
    let dir = temp_dir("assess-budget");
    let file = bigmart_file(&dir);

    // A generous budget answers on the exact rung: exit 0, and the
    // provenance names the rung that produced the numbers.
    let out = andi(&[
        "assess",
        file.to_str().unwrap(),
        "--tau",
        "0.1",
        "--budget-ms",
        "60000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("answered by exact-permanent (exact)"),
        "got:\n{text}"
    );

    // A zero budget trips every rung above the O-estimate floor: the
    // verdict still prints, but the run exits with the degraded code.
    let out = andi(&[
        "assess",
        file.to_str().unwrap(),
        "--tau",
        "0.1",
        "--budget-ms",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("answered by o-estimate (degraded)"),
        "got:\n{text}"
    );
    assert!(text.contains("exact-permanent tripped"), "got:\n{text}");
    assert!(text.contains("matching-sampler tripped"), "got:\n{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oe_with_exact_estimator() {
    let dir = temp_dir("oe");
    let file = bigmart_file(&dir);
    let out = andi(&["oe", file.to_str().unwrap(), "--exact"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("O-estimate (plain)"));
    assert!(text.contains("best estimate"));
    assert!(text.contains("ConvexExact") || text.contains("RyserExact"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn anonymize_roundtrip_through_files() {
    let dir = temp_dir("anon");
    let file = bigmart_file(&dir);
    let anon = dir.join("anon.dat");
    let map = dir.join("map.txt");
    let out = andi(&[
        "anonymize",
        file.to_str().unwrap(),
        anon.to_str().unwrap(),
        "--seed",
        "9",
        "--mapping",
        map.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(anon.exists());
    let mapping_text = std::fs::read_to_string(&map).unwrap();
    assert!(mapping_text.lines().count() >= 7, "header + 6 items");

    // The released file parses and has the same support multiset.
    let released = andi::data::fimi::read_fimi_file(&anon).unwrap();
    let mut a = released.database.supports();
    let mut b = andi::bigmart().supports();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mine_lists_itemsets_and_rules() {
    let dir = temp_dir("mine");
    let file = bigmart_file(&dir);
    let out = andi(&[
        "mine",
        file.to_str().unwrap(),
        "--min-support",
        "4",
        "--rules",
        "0.9",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("frequent itemsets"));
    assert!(text.contains("rules at confidence"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mine_requires_min_support() {
    let dir = temp_dir("mine2");
    let file = bigmart_file(&dir);
    let out = andi(&["mine", file.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--min-support"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn similarity_prints_curve() {
    let dir = temp_dir("sim");
    let file = bigmart_file(&dir);
    let out = andi(&[
        "similarity",
        file.to_str().unwrap(),
        "--fractions",
        "0.5,1.0",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("mean alpha"));
    assert!(text.contains("100.0%"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn advise_recommends_suppression() {
    let dir = temp_dir("advise");
    let file = bigmart_file(&dir);
    let out = andi(&["advise", file.to_str().unwrap(), "--tau", "0.2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("advice"), "got: {text}");
    assert!(text.contains("withhold"), "got: {text}");

    let out = andi(&["advise", file.to_str().unwrap(), "--tau", "0.99"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("release as-is"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn portfolio_compares_candidates() {
    let dir = temp_dir("portfolio");
    let file = bigmart_file(&dir);
    let out = andi(&["portfolio", file.to_str().unwrap(), "--min-support", "2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("candidate"), "got: {text}");
    assert!(text.contains("full"));
    assert!(text.contains("suppressed"));
    assert!(text.contains("mining F1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = andi(&["stats", "/nonexistent/nope.dat"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("nope.dat"));
}

/// Writes a FIMI file of 4 identical transactions over 31 items, so
/// every item has support 4 and the domain exceeds the
/// exact-permanent cap of 30.
fn wide_file(dir: &std::path::Path) -> PathBuf {
    let row: Vec<String> = (1..=31).map(|i| i.to_string()).collect();
    let row = row.join(" ");
    let text = format!("{row}\n{row}\n{row}\n{row}\n");
    let path = dir.join("wide.dat");
    std::fs::write(&path, text).unwrap();
    path
}

/// Writes an ignorant 31-item belief instance matching [`wide_file`]
/// in the oracle's instance format.
fn wide_ignorant_instance(dir: &std::path::Path) -> PathBuf {
    let inst = andi_oracle::Instance {
        label: "cli:wide-ignorant".into(),
        regime: andi_oracle::Regime::Ignorant,
        supports: vec![4; 31],
        m: 4,
        intervals: vec![(0.0, 1.0); 31],
        mask: None,
    };
    let path = dir.join("wide-ignorant.txt");
    std::fs::write(&path, inst.to_text()).unwrap();
    path
}

#[test]
fn assess_belief_degrades_to_sampler_above_the_permanent_cap() {
    let dir = temp_dir("belief-sampler");
    let file = wide_file(&dir);
    let inst = wide_ignorant_instance(&dir);
    let json = dir.join("prov.json");

    // 31 items exceed the exact-permanent cap, so the ladder answers
    // on the sampler rung: degraded exit code, one recorded trip.
    let out = andi(&[
        "assess",
        file.to_str().unwrap(),
        "--belief",
        inst.to_str().unwrap(),
        "--provenance-json",
        json.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("answered by matching-sampler (degraded)"),
        "got:\n{text}"
    );
    assert!(text.contains("exact-permanent tripped"), "got:\n{text}");

    // The provenance JSON round-trips through the oracle's parser.
    let raw = std::fs::read_to_string(&json).unwrap();
    let prov = andi_oracle::provenance_from_json(&raw).unwrap();
    assert_eq!(prov.rung, andi::Rung::Sampler);
    assert!(prov.degraded);
    assert_eq!(prov.trips.len(), 1);
    assert_eq!(prov.trips[0].0, andi::Rung::Exact);
    assert_eq!(andi_oracle::provenance_to_json(&prov), raw.trim_end());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn assess_belief_degrades_to_oestimate_on_a_zero_budget() {
    let dir = temp_dir("belief-oe");
    let file = wide_file(&dir);
    let inst = wide_ignorant_instance(&dir);
    let json = dir.join("prov.json");

    let out = andi(&[
        "assess",
        file.to_str().unwrap(),
        "--belief",
        inst.to_str().unwrap(),
        "--budget-ms",
        "0",
        "--provenance-json",
        json.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("answered by o-estimate (degraded)"),
        "got:\n{text}"
    );
    assert!(text.contains("exact-permanent tripped"), "got:\n{text}");
    assert!(text.contains("matching-sampler tripped"), "got:\n{text}");

    let raw = std::fs::read_to_string(&json).unwrap();
    let prov = andi_oracle::provenance_from_json(&raw).unwrap();
    assert_eq!(prov.rung, andi::Rung::OEstimate);
    assert!(prov.degraded);
    assert_eq!(prov.trips.len(), 2);
    assert_eq!(prov.budget_ms, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn assess_belief_rejects_an_empty_mapping_space() {
    let dir = temp_dir("belief-empty");
    let file = bigmart_file(&dir);

    // Two point believers both claim the singleton frequency-3 group:
    // no consistent crack mapping exists.
    let inst = andi_oracle::Instance {
        label: "cli:bigmart-infeasible".into(),
        regime: andi_oracle::Regime::NearDegenerate,
        supports: vec![5, 4, 5, 5, 3, 5],
        m: 10,
        intervals: vec![
            (0.5, 0.5),
            (0.3, 0.3),
            (0.5, 0.5),
            (0.5, 0.5),
            (0.3, 0.3),
            (0.5, 0.5),
        ],
        mask: None,
    };
    let inst_path = dir.join("infeasible.txt");
    std::fs::write(&inst_path, inst.to_text()).unwrap();

    let out = andi(&[
        "assess",
        file.to_str().unwrap(),
        "--belief",
        inst_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    assert!(
        stderr(&out).contains("mappings is empty"),
        "got: {}",
        stderr(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn assess_budget_writes_provenance_json() {
    let dir = temp_dir("assess-prov-json");
    let file = bigmart_file(&dir);
    let json = dir.join("prov.json");

    let out = andi(&[
        "assess",
        file.to_str().unwrap(),
        "--tau",
        "0.1",
        "--budget-ms",
        "60000",
        "--provenance-json",
        json.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let raw = std::fs::read_to_string(&json).unwrap();
    let prov = andi_oracle::provenance_from_json(&raw).unwrap();
    assert_eq!(prov.rung, andi::Rung::Exact);
    assert!(!prov.degraded);
    assert!(prov.trips.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

//! End-to-end scenarios spanning all four crates: owner anonymizes,
//! hacker attacks, and the estimates predict what actually happens.

use andi::graph::sampler::SamplerConfig;
use andi::graph::{hopcroft_karp, sample_cracks};
use andi::mining::Algorithm;
use andi::{
    assess_risk, sampled_belief, AnonymizationMapping, BeliefFunction, OutdegreeProfile,
    RecipeConfig, SimilarityConfig,
};
use andi_data::synth::quest::{generate, QuestConfig};
use andi_data::{bigmart, Database};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An actual end-to-end attack: the owner anonymizes; the hacker
/// (holding the true frequencies) finds a consistent crack mapping
/// via maximum matching on the *released* data; the number of true
/// cracks equals what Lemma 3's group analysis allows.
#[test]
fn real_attack_on_bigmart_with_exact_knowledge() {
    let db = bigmart();
    let n = db.n_items();
    let mut rng = StdRng::seed_from_u64(404);
    let mapping = AnonymizationMapping::random(n, &mut rng);
    let released = mapping.anonymize_database(&db).unwrap();

    // The hacker knows the exact frequencies (compliant point-valued
    // belief) and observes the released supports.
    let released_supports = released.supports();
    let belief = BeliefFunction::point_valued(&db.frequencies()).unwrap();

    // Build the hacker's graph in *release* indexing: edge (i, y)
    // iff released item i's frequency lies in y's interval.
    let m = released.n_transactions() as f64;
    let mut g = andi::graph::DenseBigraph::new(n);
    for (i, &sup) in released_supports.iter().enumerate() {
        let f = sup as f64 / m;
        for y in 0..n {
            let (l, r) = belief.interval(y);
            if l <= f && f <= r {
                g.add_edge(i, y);
            }
        }
    }
    let matching = hopcroft_karp(&g);
    assert!(
        matching.is_perfect(),
        "point-valued space admits a matching"
    );

    // Count true cracks against the secret mapping.
    let crack_map: Vec<u32> = (0..n)
        .map(|i| matching.left_partner[i].unwrap() as u32)
        .collect();
    let cracks = mapping.count_cracks(&crack_map);
    // The two singleton frequency groups are cracked for sure; the
    // 4-group items may or may not be.
    assert!(
        cracks >= 2,
        "singleton groups are always cracked, got {cracks}"
    );
    assert!(cracks <= n);
}

/// The full mining-as-a-service loop: anonymized mining results map
/// back exactly, for all three miners.
#[test]
fn mining_roundtrip_through_anonymization() {
    let mut rng = StdRng::seed_from_u64(777);
    let db = generate(
        &QuestConfig {
            n_items: 60,
            n_transactions: 500,
            n_patterns: 12,
            avg_pattern_len: 3,
            patterns_per_transaction: 2,
            noise_prob: 0.2,
            noise_max: 2,
        },
        &mut rng,
    );
    let mapping = AnonymizationMapping::random(db.n_items(), &mut rng);
    let released = mapping.anonymize_database(&db).unwrap();
    let min_support = 25;
    let direct = Algorithm::FpGrowth.mine(&db, min_support);
    assert!(!direct.is_empty(), "workload should have frequent sets");
    for algo in Algorithm::ALL {
        let anon_result = algo.mine(&released, min_support);
        assert_eq!(
            anon_result.relabel(mapping.backward()),
            direct,
            "{algo} roundtrip"
        );
    }
}

/// The recipe and an actual simulated hacker agree on BigMart: the
/// recipe's full-compliance OE matches a long simulation within a
/// few percent.
#[test]
fn recipe_oe_matches_simulated_hacker() {
    let db = bigmart();
    let supports = db.supports();
    let verdict = assess_risk(
        &supports,
        db.n_transactions() as u64,
        &RecipeConfig {
            tolerance: 0.01, // force the full path
            ..RecipeConfig::default()
        },
    )
    .unwrap();

    let belief = BeliefFunction::widened(&db.frequencies(), verdict.delta_med).unwrap();
    let graph = belief.build_graph(&supports, db.n_transactions() as u64);
    let mut rng = StdRng::seed_from_u64(11);
    let samples = sample_cracks(
        &graph,
        &andi::graph::Matching::identity(db.n_items()),
        &SamplerConfig {
            warmup_swaps: 20_000,
            swaps_between_samples: 500,
            samples_per_seed: 500,
            n_samples: 2_000,
            use_locality: true,
        },
        &mut rng,
    )
    .unwrap();
    let sim = samples.mean();
    // The exact value for this 6-item instance is computable too.
    let exact = andi::graph::expected_cracks(&graph.to_dense()).expect("feasible");
    assert!(
        (sim - exact).abs() < 0.15,
        "simulation {sim} should approach exact {exact}"
    );
    // OE is within the paper's observed error band of the exact
    // value on this tiny entangled instance.
    assert!(
        (verdict.full_compliance_oe - exact).abs() / exact < 0.25,
        "OE {} vs exact {exact}",
        verdict.full_compliance_oe
    );
}

/// Similarity-by-sampling feeds the recipe: a belief function built
/// from a 100% "sample" is fully compliant, and its masked OE equals
/// the full OE.
#[test]
fn sampled_belief_plugs_into_profile_machinery() {
    let db = bigmart();
    let mut rng = StdRng::seed_from_u64(21);
    let sb = sampled_belief(&db, 1.0, &SimilarityConfig::default(), &mut rng).unwrap();
    assert!((sb.alpha - 1.0).abs() < 1e-12);
    let graph = sb
        .belief
        .build_graph(&db.supports(), db.n_transactions() as u64);
    let profile = OutdegreeProfile::plain(&graph);
    let mask = sb.belief.compliance_mask(&db.frequencies());
    assert!((profile.oestimate_masked(&mask).unwrap() - profile.oestimate()).abs() < 1e-12);
}

/// Anonymization's protective value degrades gracefully: a hacker
/// with a 30% sample cracks more than an ignorant one but less than
/// a point-valued one (in O-estimate terms).
#[test]
fn knowledge_ladder_is_ordered() {
    // A mid-size synthetic workload with collisions.
    let mut rng = StdRng::seed_from_u64(31);
    let db = generate(
        &QuestConfig {
            n_items: 80,
            n_transactions: 2_000,
            ..QuestConfig::default()
        },
        &mut rng,
    );
    let supports = db.supports();
    let m = db.n_transactions() as u64;
    let freqs = db.frequencies();

    let oe_ignorant = andi::oestimate(&BeliefFunction::ignorant(80), &supports, m);
    let point = BeliefFunction::point_valued(&freqs).unwrap();
    let oe_point = andi::oestimate(&point, &supports, m);

    let sb = sampled_belief(&db, 0.3, &SimilarityConfig::default(), &mut rng).unwrap();
    let graph = sb.belief.build_graph(&supports, m);
    let mask = sb.belief.compliance_mask(&freqs);
    let oe_sampled = OutdegreeProfile::plain(&graph)
        .oestimate_masked(&mask)
        .unwrap();

    assert!(
        oe_ignorant <= oe_sampled + 1e-9,
        "ignorant {oe_ignorant} vs sampled {oe_sampled}"
    );
    assert!(
        oe_sampled <= oe_point + 1e-9,
        "sampled {oe_sampled} vs point-valued {oe_point}"
    );
}

/// Database relabeling composes: anonymizing twice with two mappings
/// equals anonymizing once with the composition.
#[test]
fn anonymization_composes() {
    let db = bigmart();
    let mut rng = StdRng::seed_from_u64(41);
    let m1 = AnonymizationMapping::random(6, &mut rng);
    let m2 = AnonymizationMapping::random(6, &mut rng);
    let step = m2
        .anonymize_database(&m1.anonymize_database(&db).unwrap())
        .unwrap();
    let composed: Vec<u32> = (0..6)
        .map(|x| m2.forward()[m1.forward()[x] as usize])
        .collect();
    let direct = AnonymizationMapping::from_permutation(composed)
        .unwrap()
        .anonymize_database(&db)
        .unwrap();
    assert_eq!(step.supports(), direct.supports());
    for (a, b) in step.transactions().iter().zip(direct.transactions()) {
        assert_eq!(a.items(), b.items());
    }
}

/// FIMI round-trip through anonymization and back preserves the
/// database exactly.
#[test]
fn fimi_anonymize_roundtrip() {
    let db = bigmart();
    let mut rng = StdRng::seed_from_u64(51);
    let mapping = AnonymizationMapping::random(6, &mut rng);
    let released = mapping.anonymize_database(&db).unwrap();
    let mut buf = Vec::new();
    andi::data::fimi::write_fimi(&released, &mut buf).unwrap();
    let parsed = andi::data::fimi::read_fimi(buf.as_slice()).unwrap();
    let recovered = mapping.deanonymize_database(&parsed.database).unwrap();
    assert_eq!(recovered.supports(), db.supports());
}

/// Degenerate databases flow through the whole pipeline without
/// panics: single item, single transaction.
#[test]
fn degenerate_databases() {
    let db = Database::from_raw(1, &[&[0]]).unwrap();
    let supports = db.supports();
    let verdict = assess_risk(
        &supports,
        1,
        &RecipeConfig {
            tolerance: 1.0,
            ..RecipeConfig::default()
        },
    )
    .unwrap();
    // One item, one group: g = 1 <= 1.0 * 1.
    assert!(verdict.discloses());
    let b = BeliefFunction::ignorant(1);
    assert_eq!(andi::oestimate(&b, &supports, 1), 1.0);
}

//! Integration scenarios for the beyond-the-paper extensions:
//! exact estimation, the advisor, sanitization, powerset beliefs and
//! condensed mining — each exercised across crate boundaries.

use andi::core::advisor::suppression_plan;
use andi::core::powerset::{ItemsetBelief, PowersetBelief};
use andi::core::sanitize::{round_supports, utility_loss};
use andi::mining::{closed_itemsets, maximal_itemsets, Algorithm};
use andi::{
    assess_powerset_risk, best_expected_cracks, bigmart, BeliefFunction, EstimateMethod,
    FrequencyGroups, OutdegreeProfile, RecipeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact recipe == heuristic recipe on structure, with a value at
/// least as large (the O-estimate underestimates).
#[test]
fn exact_recipe_dominates_heuristic() {
    let db = bigmart();
    let supports = db.supports();
    let heuristic = andi::assess_risk(
        &supports,
        10,
        &RecipeConfig {
            tolerance: 0.01,
            ..RecipeConfig::default()
        },
    )
    .unwrap();
    let exact = andi::assess_risk(
        &supports,
        10,
        &RecipeConfig {
            tolerance: 0.01,
            use_exact: true,
            ..RecipeConfig::default()
        },
    )
    .unwrap();
    assert!(exact.full_compliance_oe >= heuristic.full_compliance_oe - 1e-9);
    // Exact risk is higher, so the exact alpha_max is at most the
    // heuristic one: the owner using exact values is *more* cautious.
    let (a_exact, a_heur) = (exact.alpha_max().unwrap(), heuristic.alpha_max().unwrap());
    assert!(a_exact <= a_heur + 0.2, "{a_exact} vs {a_heur}");
}

/// The advisor's plan actually works: recomputing the O-estimate on
/// the suppressed release (projected database) meets the budget.
#[test]
fn suppression_plan_verifies_end_to_end() {
    let db = bigmart();
    let supports = db.supports();
    let m = db.n_transactions() as u64;
    let groups = FrequencyGroups::from_supports(&supports, m);
    let delta = groups.median_gap().unwrap();
    let belief = BeliefFunction::widened(&db.frequencies(), delta).unwrap();
    let profile = OutdegreeProfile::plain(&belief.build_graph(&supports, m));
    let tau = 0.2;
    let plan = suppression_plan(&profile, tau).unwrap();
    assert!(plan.n_suppressed() > 0, "tight budget must suppress");

    // Re-check the residual against a fresh masked computation.
    let mut keep = vec![true; db.n_items()];
    for &x in &plan.suppress {
        keep[x] = false;
    }
    let masked = profile.oestimate_masked(&keep).unwrap();
    assert!(
        (masked - plan.residual_oestimate).abs() < 1e-12,
        "plan bookkeeping must match the masked estimate"
    );
    assert!(masked <= tau * db.n_items() as f64 + 1e-12);
}

/// Sanitization lowers the recipe's risk but costs mining fidelity —
/// the full trade-off in one assertion chain.
#[test]
fn sanitization_tradeoff_end_to_end() {
    let db = bigmart();
    let mut rng = StdRng::seed_from_u64(5);
    let sanitized = round_supports(&db, 5, &mut rng).unwrap();

    // Risk side: g collapses from 3 to 1 (Lemma 3).
    let g_before = FrequencyGroups::of_database(&db).n_groups();
    let g_after = FrequencyGroups::of_database(&sanitized.database).n_groups();
    assert_eq!(g_before, 3);
    assert_eq!(g_after, 1);

    // Utility side: frequencies drifted, mining results differ.
    let loss = utility_loss(&db, &sanitized).unwrap();
    assert!(loss.mean_frequency_error > 0.0);
    let before = Algorithm::FpGrowth.mine(&db, 4);
    let after = Algorithm::FpGrowth.mine(&sanitized.database, 4);
    assert_ne!(before, after, "perturbation must show up in mining");
}

/// Powerset knowledge strictly refines item knowledge, and the
/// refined graph remains usable by the exact estimators.
#[test]
fn powerset_pruning_feeds_exact_estimation() {
    let db = bigmart();
    let item_belief = BeliefFunction::point_valued(&db.frequencies()).unwrap();

    // Item-level exact expectation.
    let item_graph = item_belief.build_graph(&db.supports(), 10);
    let item_exact = best_expected_cracks(&item_graph, 1_000_000).unwrap();
    assert!(item_exact.method.is_exact());
    assert!((item_exact.value - 3.0).abs() < 1e-9);

    // Pair-level pruning raises the exact expectation.
    let pair_support = db.itemset_support(&[andi::ItemId(0), andi::ItemId(1)]);
    let f = pair_support as f64 / 10.0;
    let belief = PowersetBelief::item_only(item_belief)
        .with_set(ItemsetBelief::new(vec![0, 1], (f, f)).unwrap())
        .unwrap();
    let risk = assess_powerset_risk(&db, &belief).unwrap();
    let pruned_exact = andi::graph::expected_cracks(&risk.graph).unwrap();
    assert!(
        pruned_exact > item_exact.value + 0.5,
        "pair knowledge must raise the exact expectation: {pruned_exact}"
    );
}

/// Condensed mining representations survive the anonymization
/// round-trip exactly like the full results.
#[test]
fn condensed_mining_roundtrips_through_anonymization() {
    let db = bigmart();
    let mut rng = StdRng::seed_from_u64(7);
    let mapping = andi::AnonymizationMapping::random(db.n_items(), &mut rng);
    let released = mapping.anonymize_database(&db).unwrap();

    let truth_closed = closed_itemsets(&Algorithm::Eclat.mine(&db, 3));
    let anon_closed = closed_itemsets(&Algorithm::Eclat.mine(&released, 3));
    assert_eq!(anon_closed.relabel(mapping.backward()), truth_closed);

    let truth_maximal = maximal_itemsets(&Algorithm::Apriori.mine(&db, 3));
    let anon_maximal = maximal_itemsets(&Algorithm::Apriori.mine(&released, 3));
    assert_eq!(anon_maximal.relabel(mapping.backward()), truth_maximal);
}

/// Brute-force soundness of the powerset pruning: an edge is pruned
/// only if NO full crack mapping consistent with every set belief
/// uses it. Verified by enumerating all consistent perfect matchings
/// of the item-level graph and filtering by the set constraints.
#[test]
fn powerset_pruning_is_sound_by_enumeration() {
    let db = bigmart();
    let n = db.n_items();
    let item_belief = BeliefFunction::point_valued(&db.frequencies()).unwrap();

    // A handful of pair/triple beliefs with their true frequencies.
    let sets: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3], vec![0, 1, 2]];
    let mut belief = PowersetBelief::item_only(item_belief.clone());
    let mut constraints: Vec<(Vec<usize>, f64)> = Vec::new();
    for items in &sets {
        let ids: Vec<andi::ItemId> = items.iter().map(|&x| andi::ItemId(x as u32)).collect();
        let f = db.itemset_support(&ids) as f64 / 10.0;
        constraints.push((items.clone(), f));
        belief = belief
            .with_set(ItemsetBelief::new(items.clone(), (f, f)).unwrap())
            .unwrap();
    }
    let risk = assess_powerset_risk(&db, &belief).unwrap();
    assert!(risk.pruned_edges > 0, "constraints must bite");

    // Enumerate all perfect matchings of the UNPRUNED item graph and
    // keep those where every believed set's observed frequency (the
    // frequency of the matched anonymized counterparts) matches.
    let item_graph = item_belief.build_graph(&db.supports(), 10).to_dense();
    let mut surviving_edges = vec![vec![false; n]; n];
    let mut assignment = vec![usize::MAX; n];
    // assignment[y] = anonymized item matched to original y.
    fn rec(
        g: &andi::graph::DenseBigraph,
        db: &andi::Database,
        constraints: &[(Vec<usize>, f64)],
        y: usize,
        used: &mut Vec<bool>,
        assignment: &mut Vec<usize>,
        surviving: &mut Vec<Vec<bool>>,
    ) {
        let n = g.n();
        if y == n {
            // Check every set constraint under this full mapping.
            for (items, f) in constraints {
                let anon: Vec<andi::ItemId> = items
                    .iter()
                    .map(|&orig| andi::ItemId(assignment[orig] as u32))
                    .collect();
                let observed = db.itemset_support(&anon) as f64 / 10.0;
                if (observed - f).abs() > 1e-12 {
                    return;
                }
            }
            for (orig, &anon) in assignment.iter().enumerate() {
                surviving[anon][orig] = true;
            }
            return;
        }
        for i in 0..n {
            if !used[i] && g.has_edge(i, y) {
                used[i] = true;
                assignment[y] = i;
                rec(g, db, constraints, y + 1, used, assignment, surviving);
                used[i] = false;
            }
        }
    }
    let mut used = vec![false; n];
    rec(
        &item_graph,
        &db,
        &constraints,
        0,
        &mut used,
        &mut assignment,
        &mut surviving_edges,
    );

    // Soundness: every edge used by some surviving matching must have
    // survived the pruning.
    for (i, row) in surviving_edges.iter().enumerate() {
        for (y, &survives) in row.iter().enumerate() {
            if survives {
                assert!(
                    risk.graph.has_edge(i, y),
                    "edge ({i}', {y}) used by a consistent mapping but pruned"
                );
            }
        }
    }
}

/// The exact estimator's provenance is reported truthfully: forcing
/// the fallback chain produces the expected methods.
#[test]
fn estimator_provenance_chain() {
    let db = bigmart();
    let belief = BeliefFunction::widened(&db.frequencies(), 0.1).unwrap();
    let graph = belief.build_graph(&db.supports(), 10);

    let fast = best_expected_cracks(&graph, 1_000_000).unwrap();
    assert!(matches!(fast.method, EstimateMethod::ConvexExact { .. }));

    let ryser = best_expected_cracks(&graph, 0).unwrap();
    assert_eq!(ryser.method, EstimateMethod::RyserExact);
    assert!(
        (fast.value - ryser.value).abs() < 1e-9,
        "both exact paths agree: {} vs {}",
        fast.value,
        ryser.value
    );
}

//! A vendored keep-alive HTTP client for tests, the load harness,
//! and the README quick-start — the same wire layer the server uses,
//! pointed the other way.
//!
//! Supports one-shot request/response and explicit pipelining
//! (`send` N times, then `recv` N times), which is what lets the
//! seeded load harness push ≥10⁵ requests through a handful of
//! connections.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::http::{read_response, Response, WireError, WireLimits};

/// A keep-alive connection to an andi-serve instance.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    limits: WireLimits,
}

impl Client {
    /// Connects with generous read/write timeouts (the wire layer's
    /// stall-tick cap turns them into a bounded watchdog).
    ///
    /// # Errors
    ///
    /// Connection or socket-option failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(200)))?;
        stream.set_write_timeout(Some(Duration::from_millis(10_000)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            stream,
            reader,
            limits: WireLimits::default(),
        })
    }

    /// Overrides the response-side wire limits (and with them the
    /// per-response watchdog: `read timeout × max_stall_ticks`).
    pub fn with_limits(mut self, limits: WireLimits) -> Client {
        self.limits = limits;
        self
    }

    /// Writes one request without waiting for the response
    /// (pipelining half).
    ///
    /// # Errors
    ///
    /// Transport write failures.
    pub fn send(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: andi-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Reads one pipelined response.
    ///
    /// # Errors
    ///
    /// Wire-layer failures, including the stall watchdog.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        read_response(&mut self.reader, &self.limits)
    }

    /// One-shot request/response.
    ///
    /// # Errors
    ///
    /// Write failures (as [`WireError::Io`]) or response wire
    /// failures.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<Response, WireError> {
        self.send(method, path, body)
            .map_err(|e| WireError::Io(e.kind().to_string()))?;
        self.recv()
    }

    /// Sends raw bytes on the wire (malformed-input tests).
    ///
    /// # Errors
    ///
    /// Transport write failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }
}

//! The andi-serve server: accept loop, admission, workers, watcher.
//!
//! Life of a request:
//!
//! 1. The accept loop (nonblocking + drain poll) takes the TCP
//!    connection, runs the `serve.accept` fault probe under
//!    `catch_unwind`, and offers the connection to the bounded
//!    [`Admission`] queue — shedding a structured `429` +
//!    `Retry-After` when full, a `503` when draining.
//! 2. A worker picks the connection up and serves its keep-alive
//!    request stream. Each request runs under `catch_unwind` with the
//!    `serve.request` probe inside, so injected panics become
//!    structured `500`s, never aborts.
//! 3. `POST /assess` parses the oracle instance format, builds a
//!    per-request [`Budget`] + [`CancelToken`] (wired to client
//!    disconnect via the watcher thread and to the server-wide drain),
//!    and answers with the full budgeted-ladder result — coalescing
//!    identical requests and same-database scaffold work through the
//!    two [`ShardedCache`]s.
//! 4. [`ServerHandle::shutdown`] drains: stops accepting, cancels
//!    every in-flight token, lets workers finish their current
//!    request, and joins all service threads.
//!
//! Responses are deterministic: provenance in the body carries
//! `spent_ms: 0` (the measured value rides in the `X-Andi-Spent-Ms`
//! header) and only untripped results enter the cache, so a cache hit
//! is bit-identical to the cold path and a seeded load run reproduces
//! its exact response multiset.

use std::collections::{BTreeMap, BTreeSet};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use andi_core::incremental::{apply_edits_to_summary, DeltaBatch};
use andi_core::recipe::{ladder_crack_probabilities, RecipeConfig};
use andi_core::report::Provenance;
use andi_core::Error;
use andi_graph::par::{self, Budget, CancelToken, WorkerHandle};
use andi_graph::{faults, FrequencyScaffold};
use andi_oracle::editscript::parse_edit;
use andi_oracle::instance::{json_string, Instance};
use andi_oracle::serial::{error_to_json, provenance_to_json};

use crate::admission::{Admission, Offer};
use crate::cache::{fnv1a_u64, Outcome, ShardedCache, FNV_OFFSET};
use crate::http::{read_request, Request, Response, WireError, WireLimits};
use crate::stats::ServerStats;

/// Server configuration; [`Default`] gives test-friendly values.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Request worker threads.
    pub workers: usize,
    /// Admission queue capacity (waiting connections beyond the
    /// workers); `0` sheds everything — useful for tests.
    pub queue_cap: usize,
    /// Per-request wall-clock budget in ms; `0` means no deadline.
    pub request_budget_ms: u64,
    /// Result/scaffold cache capacity per shard.
    pub cache_cap_per_shard: usize,
    /// Wire-layer byte and stall caps.
    pub limits: WireLimits,
    /// Emit one access-log line per request on stdout. Lines carry
    /// method, path, status, sizes, and timing only — never belief
    /// intervals, supports, or transactions.
    pub access_log: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            request_budget_ms: 2_000,
            cache_cap_per_shard: 64,
            limits: WireLimits::default(),
            access_log: false,
        }
    }
}

/// A registered in-flight request: the watcher peeks the stream and
/// fires the token when the client goes away.
struct WatchEntry {
    stream: TcpStream,
    token: CancelToken,
    done: Arc<AtomicBool>,
}

/// Registry of in-flight requests for the disconnect watcher.
#[derive(Default)]
struct Watchlist {
    entries: Mutex<Vec<WatchEntry>>,
}

/// Deregisters a request on drop (normal return or unwind).
struct WatchGuard {
    done: Arc<AtomicBool>,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        self.done.store(true, Ordering::SeqCst);
    }
}

impl Watchlist {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<WatchEntry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a request's stream + token; `None` (no disconnect
    /// detection, request still served) when the clone fails.
    fn register(&self, stream: &TcpStream, token: CancelToken) -> Option<WatchGuard> {
        let clone = stream.try_clone().ok()?;
        // A short receive timeout bounds each watcher peek; the
        // worker re-asserts its own timeout before its next read.
        if clone
            .set_read_timeout(Some(Duration::from_millis(1)))
            .is_err()
        {
            return None;
        }
        let done = Arc::new(AtomicBool::new(false));
        self.lock().push(WatchEntry {
            stream: clone,
            token,
            done: Arc::clone(&done),
        });
        Some(WatchGuard { done })
    }

    /// One watcher pass: drop finished entries, cancel dead peers.
    fn sweep(&self) {
        let mut entries = self.lock();
        entries.retain(|e| !e.done.load(Ordering::SeqCst));
        for entry in entries.iter() {
            let mut probe_buf = [0u8; 1];
            match entry.stream.peek(&mut probe_buf) {
                // EOF: the client hung up — cancel the computation.
                Ok(0) => entry.token.cancel(),
                // Buffered bytes (e.g. a pipelined next request):
                // the client is alive.
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                // Reset or other transport death.
                Err(_) => entry.token.cancel(),
            }
        }
    }

    /// Fires every in-flight token (drain).
    fn cancel_all(&self) {
        for entry in self.lock().iter() {
            entry.token.cancel();
        }
    }
}

/// State shared by every service thread.
struct Shared {
    cfg: ServeConfig,
    admission: Admission,
    stats: ServerStats,
    results: ShardedCache<Arc<str>>,
    scaffolds: ShardedCache<Arc<FrequencyScaffold>>,
    /// Secondary index database fingerprint -> result-cache keys, so
    /// `POST /update` can invalidate exactly the cached results whose
    /// database changed. Bounded; eviction only widens invalidation
    /// misses into plain cache misses, never staleness (result keys
    /// are content-addressed).
    db_index: Mutex<BTreeMap<u64, BTreeSet<u64>>>,
    watch: Watchlist,
    draining: AtomicBool,
    request_seq: AtomicU64,
    recipe: RecipeConfig,
    threads: usize,
}

/// A running server: its bound address and the means to drain it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<WorkerHandle<()>>,
}

impl ServerHandle {
    /// The bound socket address (with the OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server stats as JSON (same shape as `GET /stats`).
    pub fn stats_json(&self) -> String {
        stats_json(&self.shared)
    }

    /// Graceful drain: stop accepting, cancel in-flight tokens, let
    /// workers finish their current request, join every service
    /// thread. Returns when the server is fully stopped.
    pub fn shutdown(self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.admission.drain();
        self.shared.watch.cancel_all();
        for handle in self.threads {
            // A panicked service thread already surfaced through its
            // catch_unwind; joining the corpse is best-effort.
            if handle.join().is_err() {
                self.shared
                    .stats
                    .server_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Binds and starts the service threads.
///
/// # Errors
///
/// Bind or thread-spawn failures.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared {
        admission: Admission::new(cfg.queue_cap),
        stats: ServerStats::default(),
        results: ShardedCache::new(cfg.cache_cap_per_shard),
        scaffolds: ShardedCache::new(cfg.cache_cap_per_shard),
        db_index: Mutex::new(BTreeMap::new()),
        watch: Watchlist::default(),
        draining: AtomicBool::new(false),
        request_seq: AtomicU64::new(0),
        recipe: RecipeConfig::default(),
        threads: par::available_threads(),
        cfg,
    });

    let mut threads = Vec::with_capacity(workers + 2);
    let accept_shared = Arc::clone(&shared);
    threads.push(par::spawn_worker("serve-accept", move || {
        accept_loop(&accept_shared, &listener)
    })?);
    for i in 0..workers {
        let worker_shared = Arc::clone(&shared);
        threads.push(par::spawn_worker(
            &format!("serve-worker-{i}"),
            move || worker_loop(&worker_shared),
        )?);
    }
    let watch_shared = Arc::clone(&shared);
    threads.push(par::spawn_worker("serve-watch", move || {
        watcher_loop(&watch_shared)
    })?);

    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

/// Nonblocking accept + drain poll.
fn accept_loop(shared: &Shared, listener: &TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        // Without nonblocking accept the drain poll cannot work;
        // refuse to serve rather than hang shutdown forever.
        return;
    }
    let mut accept_index: usize = 0;
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                accept_index += 1;
                let probed = catch_unwind(AssertUnwindSafe(|| {
                    faults::probe("serve.accept", accept_index);
                }));
                if let Err(payload) = probed {
                    // Injected accept-path fault: answer structurally
                    // instead of dropping the connection.
                    respond_and_close(
                        &stream,
                        Response::json(
                            500,
                            error_to_json(&Error::WorkerPanic {
                                task: accept_index,
                                payload: panic_text(payload.as_ref()),
                            }),
                        ),
                    );
                    continue;
                }
                match shared.admission.offer(stream) {
                    Offer::Accepted => {}
                    Offer::Full(stream) => shed(shared, &stream),
                    Offer::Draining(stream) => {
                        respond_and_close(&stream, Response::json(503, "{\"kind\":\"draining\"}"))
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => par::sleep_ms(1),
            Err(_) => par::sleep_ms(5),
        }
    }
}

/// Sheds a connection with `429` + `Retry-After`.
fn shed(shared: &Shared, stream: &TcpStream) {
    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
    let retry = shared
        .stats
        .retry_after_secs(shared.admission.backlog(), shared.cfg.workers.max(1));
    let body = format!("{{\"kind\":\"overloaded\",\"retry_after_s\":{retry}}}");
    respond_and_close(
        stream,
        Response::json(429, body).with_header("retry-after", retry.to_string()),
    );
}

/// Best-effort bounded write of a response, then close.
fn respond_and_close(stream: &TcpStream, resp: Response) {
    if stream
        .set_write_timeout(Some(Duration::from_millis(1_000)))
        .is_err()
    {
        return;
    }
    let mut w = stream;
    if resp.write_to(&mut w, true).is_err() {
        // The peer is gone; nothing structural left to say.
    }
}

/// Worker: serve queued connections until drain.
fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.admission.take() {
        handle_connection(shared, stream);
    }
}

/// Watcher: poll in-flight request streams for disconnect.
fn watcher_loop(shared: &Shared) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        shared.watch.sweep();
        par::sleep_ms(5);
    }
}

/// Serves one connection's keep-alive request stream.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    if stream
        .set_write_timeout(Some(Duration::from_millis(10_000)))
        .is_err()
    {
        return;
    }
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        // Re-asserted every iteration: the watcher may have shrunk
        // the shared receive timeout while a compute was in flight.
        if stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .is_err()
        {
            return;
        }
        match read_request(&mut reader, &shared.cfg.limits) {
            Err(WireError::Idle) => continue,
            Err(WireError::Closed) => return,
            Err(e) => {
                let status = e.status();
                if status != 0 {
                    let resp = Response::json(status, e.to_json());
                    shared.stats.count_response(status);
                    respond_and_close(&stream, resp);
                }
                return;
            }
            Ok(req) => {
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                let seq = shared.request_seq.fetch_add(1, Ordering::Relaxed);
                let close = req.wants_close() || shared.draining.load(Ordering::SeqCst);
                let resp = dispatch(shared, &req, seq, &stream);
                shared.stats.count_response(resp.status);
                if shared.cfg.access_log {
                    // Method/path/status/sizes/latency only: never
                    // echo request bodies (supports, intervals) here.
                    println!(
                        "access: {} {} {} req={}b resp={}b",
                        req.method,
                        req.target,
                        resp.status,
                        req.body.len(),
                        resp.body.len()
                    );
                }
                let mut w = &stream;
                if resp.write_to(&mut w, close).is_err() {
                    return;
                }
                if close {
                    return;
                }
            }
        }
    }
}

/// Fault-isolated request dispatch: panics inside become `500`s.
fn dispatch(shared: &Shared, req: &Request, seq: u64, stream: &TcpStream) -> Response {
    let outcome = catch_unwind(AssertUnwindSafe(|| route(shared, req, seq, stream)));
    match outcome {
        Ok(resp) => resp,
        Err(payload) => Response::json(
            500,
            error_to_json(&Error::WorkerPanic {
                task: seq as usize,
                payload: panic_text(payload.as_ref()),
            }),
        ),
    }
}

/// Routes a request to its endpoint.
fn route(shared: &Shared, req: &Request, seq: u64, stream: &TcpStream) -> Response {
    faults::probe("serve.request", seq as usize);
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/health") => Response::json(200, "{\"ok\":true}"),
        ("GET", "/stats") => Response::json(200, stats_json(shared)),
        ("POST", "/assess") => assess(shared, req, stream),
        ("POST", "/update") => update(shared, req),
        (_, "/health" | "/stats" | "/assess" | "/update") => Response::json(
            405,
            format!(
                "{{\"kind\":\"method-not-allowed\",\"method\":{}}}",
                json_string(&req.method)
            ),
        ),
        _ => Response::json(404, "{\"kind\":\"not-found\"}"),
    }
}

/// `POST /assess`: oracle instance text in, budgeted ladder result
/// out.
fn assess(shared: &Shared, req: &Request, stream: &TcpStream) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => {
            return Response::json(
                400,
                "{\"kind\":\"malformed\",\"message\":\"body is not utf-8\"}",
            )
        }
    };
    let instance = match Instance::from_text(text) {
        Ok(i) => i,
        Err(e) => return invalid_instance(&e),
    };
    if let Err(e) = instance.validate() {
        return invalid_instance(&e);
    }

    let token = CancelToken::new();
    let budget = if shared.cfg.request_budget_ms == 0 {
        Budget::unlimited().with_token(token.clone())
    } else {
        Budget::with_deadline(Duration::from_millis(shared.cfg.request_budget_ms))
            .with_token(token.clone())
    };
    // Keep the guard alive for the whole compute: dropping it marks
    // the entry done for the watcher.
    let _watch = shared.watch.register(stream, token.clone());

    let db_key = database_fingerprint(instance.m, &instance.supports);
    let result_key = result_fingerprint(db_key, &instance);
    index_result_key(shared, db_key, result_key);
    let computed = shared.results.get_or_compute(result_key, || {
        compute_assess(shared, &instance, db_key, &budget)
    });
    let spent_ms = budget.spent().as_millis();
    self_observe(shared, &budget);
    match computed {
        Ok((body, outcome)) => Response::json(200, body.as_ref())
            .with_header("x-andi-cache", outcome_name(outcome))
            .with_header("x-andi-spent-ms", spent_ms.to_string()),
        // An uncacheable (tripped/degraded) result is still a full
        // answer; it just bypassed the cache.
        Err(AssessFailure::Uncached(body)) => Response::json(200, body)
            .with_header("x-andi-cache", "uncached")
            .with_header("x-andi-spent-ms", spent_ms.to_string()),
        Err(AssessFailure::Core(e)) => {
            core_error_response(&e).with_header("x-andi-spent-ms", spent_ms.to_string())
        }
    }
}

/// Why a flight produced no cacheable value.
enum AssessFailure {
    /// The ladder answered, but with trips or degradation — correct,
    /// yet dependent on timing/faults, so never cached.
    Uncached(String),
    /// The ladder aborted with a structured core error.
    Core(Error),
}

/// The cold path: scaffold (coalesced per database) + per-belief
/// graph completion + the budgeted degradation ladder.
fn compute_assess(
    shared: &Shared,
    instance: &Instance,
    db_key: u64,
    budget: &Budget,
) -> Result<Arc<str>, AssessFailure> {
    if let Err(e) = budget.check() {
        return Err(AssessFailure::Core(e.into()));
    }
    let scaffold = shared
        .scaffolds
        .get_or_compute(db_key, || {
            Ok::<_, AssessFailure>(Arc::new(FrequencyScaffold::new(
                &instance.supports,
                instance.m,
            )))
        })
        .map(|(s, _)| s)?;
    let graph = scaffold.graph_for(&instance.intervals);
    let (provenance, probs) =
        ladder_crack_probabilities(&graph, &shared.recipe, shared.threads, budget)
            .map_err(AssessFailure::Core)?;
    let body = render_assess(&provenance, &probs);
    if provenance.trips.is_empty() && !provenance.degraded {
        Ok(Arc::from(body))
    } else {
        Err(AssessFailure::Uncached(body))
    }
}

/// Renders the deterministic response body: `spent_ms` is zeroed (the
/// measured value rides in a header) so identical requests always
/// produce identical bytes.
fn render_assess(provenance: &Provenance, probs: &[f64]) -> String {
    let mut normalized = provenance.clone();
    normalized.spent_ms = 0;
    let expected: f64 = probs.iter().sum();
    let probs_json: Vec<String> = probs.iter().map(|p| p.to_string()).collect();
    format!(
        "{{\"n\":{},\"expected_cracks\":{},\"provenance\":{},\"probs\":[{}]}}",
        probs.len(),
        expected,
        provenance_to_json(&normalized),
        probs_json.join(",")
    )
}

/// 400 for an unparseable or invalid instance. The message comes from
/// the oracle's own validation and parse errors.
fn invalid_instance(e: &andi_oracle::OracleError) -> Response {
    Response::json(
        400,
        format!(
            "{{\"kind\":\"invalid-instance\",\"message\":{}}}",
            json_string(&e.to_string())
        ),
    )
}

/// Maps a core error to its HTTP status + serialized body.
fn core_error_response(e: &Error) -> Response {
    let status = match e {
        Error::EmptyMappingSpace => 422,
        Error::Cancelled => 503,
        Error::BudgetExceeded { .. } => 504,
        Error::WorkerPanic { .. } | Error::Overflow(_) => 500,
        _ => 400,
    };
    Response::json(status, error_to_json(e))
}

/// Feeds the latency EWMA from the request's own budget clock.
fn self_observe(shared: &Shared, budget: &Budget) {
    let spent = budget.spent();
    let us = spent.as_micros().min(u128::from(u64::MAX)) as u64;
    shared.stats.observe_latency_us(us);
}

fn outcome_name(outcome: Outcome) -> &'static str {
    match outcome {
        Outcome::Hit => "hit",
        Outcome::Joined => "join",
        Outcome::Computed => "miss",
    }
}

/// Belief-independent fingerprint of a database summary.
fn database_fingerprint(m: u64, supports: &[u64]) -> u64 {
    let mut h = fnv1a_u64(FNV_OFFSET, m);
    h = fnv1a_u64(h, supports.len() as u64);
    for &s in supports {
        h = fnv1a_u64(h, s);
    }
    h
}

/// How many database entries (and result keys per database) the
/// invalidation index retains. Eviction is deterministic
/// (`pop_first`) and safe: an evicted key merely escapes targeted
/// invalidation, and result keys are content-addressed so it can
/// never be served for a *different* database.
const DB_INDEX_CAP: usize = 1024;

/// Records that `result_key` was derived from `db_key`, for
/// `POST /update` invalidation.
fn index_result_key(shared: &Shared, db_key: u64, result_key: u64) {
    let mut index = shared.db_index.lock().unwrap_or_else(|e| e.into_inner());
    if !index.contains_key(&db_key) && index.len() >= DB_INDEX_CAP {
        index.pop_first();
    }
    let keys = index.entry(db_key).or_default();
    if keys.len() >= DB_INDEX_CAP {
        keys.pop_first();
    }
    keys.insert(result_key);
}

/// `POST /update`: applies a [`DeltaBatch`] to a database summary and
/// invalidates exactly the cache entries the edit affects — the old
/// summary's scaffold and every indexed result key — then warms the
/// scaffold cache for the edited summary so the next `/assess`
/// against it starts from a hit.
///
/// Body format (line-oriented, like the oracle formats):
///
/// ```text
/// andi-serve update v1
/// m: 10
/// supports: 5 4 5 5 3 5
/// edit: insert 1 4
/// edit: replace 0 / 2
/// ```
fn update(shared: &Shared, req: &Request) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => {
            return Response::json(
                400,
                "{\"kind\":\"malformed\",\"message\":\"body is not utf-8\"}",
            )
        }
    };
    let parsed = match parse_update(text) {
        Ok(p) => p,
        Err(message) => {
            return Response::json(
                400,
                format!(
                    "{{\"kind\":\"invalid-update\",\"message\":{}}}",
                    json_string(&message)
                ),
            )
        }
    };
    let (m, supports, batch) = parsed;
    let (new_supports, new_m) = match apply_edits_to_summary(&supports, m, &batch) {
        Ok(edited) => edited,
        Err(e) => return core_error_response(&e),
    };

    let old_db = database_fingerprint(m, &supports);
    let new_db = database_fingerprint(new_m, &new_supports);
    let scaffold_invalidated = shared.scaffolds.invalidate(old_db);
    let stale_results = shared
        .db_index
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&old_db)
        .unwrap_or_default();
    let mut results_invalidated = 0usize;
    for key in stale_results {
        if shared.results.invalidate(key) {
            results_invalidated += 1;
        }
    }
    // Warm the edited summary's scaffold so write traffic keeps the
    // cache hot instead of just cold.
    let warmed = shared
        .scaffolds
        .get_or_compute(new_db, || {
            Ok::<_, std::convert::Infallible>(Arc::new(FrequencyScaffold::new(
                &new_supports,
                new_m,
            )))
        })
        .is_ok();
    Response::json(
        200,
        format!(
            "{{\"kind\":\"updated\",\"edits\":{},\"old_db\":\"{:016x}\",\
             \"new_db\":\"{:016x}\",\"scaffold_invalidated\":{},\
             \"results_invalidated\":{},\"warmed\":{}}}",
            batch.len(),
            old_db,
            new_db,
            scaffold_invalidated,
            results_invalidated,
            warmed
        ),
    )
}

/// Parses the `/update` body into `(m, supports, batch)`. Error
/// messages are structural only — they never echo supports or item
/// values.
fn parse_update(text: &str) -> Result<(u64, Vec<u64>, DeltaBatch), String> {
    const UPDATE_HEADER: &str = "andi-serve update v1";
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    if header.trim() != UPDATE_HEADER {
        return Err(format!("bad header (want {UPDATE_HEADER:?})"));
    }
    let mut m: Option<u64> = None;
    let mut supports: Option<Vec<u64>> = None;
    let mut edits = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once(':').ok_or("missing ':' in a body line")?;
        let value = value.trim();
        match key.trim() {
            "m" => m = Some(value.parse::<u64>().map_err(|_| "m is not a number")?),
            "supports" => {
                supports = Some(
                    value
                        .split_whitespace()
                        .map(|t| t.parse::<u64>().map_err(|_| "a support is not a number"))
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            "edit" => edits.push(parse_edit(value).map_err(|e| e.to_string())?),
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    let m = m.ok_or("missing m")?;
    let supports = supports.ok_or("missing supports")?;
    if supports.is_empty() {
        return Err("supports must name at least one item".into());
    }
    if m == 0 {
        return Err("m must be positive".into());
    }
    if supports.iter().any(|&s| s > m) {
        return Err("a support exceeds the transaction count".into());
    }
    Ok((m, supports, DeltaBatch::new(edits)))
}

/// Full result fingerprint: database + belief intervals. The label,
/// regime, and mask do not enter the assessment, so requests that
/// differ only there coalesce.
fn result_fingerprint(db_key: u64, instance: &Instance) -> u64 {
    let mut h = fnv1a_u64(db_key, 0x5eed);
    for &(l, r) in &instance.intervals {
        h = fnv1a_u64(h, l.to_bits());
        h = fnv1a_u64(h, r.to_bits());
    }
    h
}

/// The `/stats` document.
fn stats_json(shared: &Shared) -> String {
    let s = &shared.stats;
    format!(
        "{{\"accepted\":{},\"shed\":{},\"requests\":{},\
         \"responses\":{{\"ok\":{},\"client_error\":{},\"server_error\":{}}},\
         \"latency_ewma_us\":{},\"backlog\":{},\"draining\":{},\
         \"result_cache\":{},\"scaffold_cache\":{}}}",
        s.accepted.load(Ordering::Relaxed),
        s.shed.load(Ordering::Relaxed),
        s.requests.load(Ordering::Relaxed),
        s.ok.load(Ordering::Relaxed),
        s.client_errors.load(Ordering::Relaxed),
        s.server_errors.load(Ordering::Relaxed),
        s.latency_ewma_us(),
        shared.admission.backlog(),
        shared.draining.load(Ordering::SeqCst),
        shared.results.stats().to_json(),
        shared.scaffolds.stats().to_json(),
    )
}

/// Extracts a printable payload from a caught panic.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

//! # andi-serve — the fault-isolated risk-assessment service
//!
//! ROADMAP item 1: the budgeted Assess-Risk ladder
//! ([`andi_core::recipe::ladder_crack_probabilities`]) behind a
//! long-running TCP service, built from `std` only (the offline-
//! vendor pattern: a thin HTTP/1.1 layer lives in [`http`]).
//!
//! Three interlocking robustness subsystems:
//!
//! * **Admission control** ([`admission`]) — a bounded connection
//!   queue; overflow is shed with a structured `429` whose
//!   `Retry-After` comes from the observed request-latency EWMA
//!   ([`stats`]), and a server-wide drain empties everything
//!   deterministically on shutdown.
//! * **Coalescing shard cache** ([`cache`]) — fingerprint-keyed,
//!   FNV-sharded, bounded-LRU, poison-tolerant, with single-flight
//!   coalescing at two levels: identical `(database, belief)`
//!   requests share one ladder run, and same-database requests share
//!   one [`andi_graph::FrequencyScaffold`] precomputation.
//! * **Fault isolation** ([`server`]) — `serve.accept`,
//!   `serve.request`, and `cache.shard` probe points
//!   ([`andi_graph::faults`]) sit inside `catch_unwind` boundaries,
//!   so injected panics and delays surface as structured `500`s and
//!   slow responses, never aborts or hangs. Every request runs under
//!   its own [`andi_graph::par::Budget`]/cancel token, wired to
//!   client disconnect and the drain signal.
//!
//! Responses are deterministic (provenance `spent_ms` is zeroed in
//! bodies; real timing rides in the `X-Andi-Spent-Ms` header), so the
//! seeded load harness ([`load`]) can demand an exact response
//! multiset across runs and thread counts.

#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod http;
pub mod load;
pub mod server;
pub mod stats;

pub use admission::{Admission, Offer};
pub use cache::{CacheStats, Outcome, ShardedCache};
pub use client::Client;
pub use http::{Request, Response, WireError, WireLimits};
pub use load::{run_load, LoadConfig, LoadReport};
pub use server::{start, ServeConfig, ServerHandle};
pub use stats::ServerStats;

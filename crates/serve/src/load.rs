//! The seeded synthetic load harness.
//!
//! Drives a deterministic request mix against a running server:
//! a small pool of seeded instances (domains sized for the exact
//! rung, so every answer is cacheable) sampled with heavy duplication
//! by a SplitMix64 stream, pushed over a few pipelined keep-alive
//! connections. The report carries an **order-independent multiset
//! hash** of every response body, so two runs with the same seed —
//! regardless of connection count, worker count, or interleaving —
//! must produce the same hash. That is the service determinism
//! contract in one number.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use andi_graph::par;
use andi_oracle::instance::{Instance, Regime};

use crate::cache::fnv1a;
use crate::client::Client;

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Mix seed: same seed ⇒ same request multiset.
    pub seed: u64,
    /// Total requests to send.
    pub count: u64,
    /// Client connections driving the mix (each takes a contiguous,
    /// deterministic slice of the request indices).
    pub connections: usize,
    /// Distinct instances in the pool (the duplication knob: `count /
    /// pool` requests share each instance).
    pub pool: usize,
    /// Pipelining batch size per connection.
    pub batch: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            seed: 7,
            count: 100_000,
            connections: 4,
            pool: 32,
            batch: 64,
        }
    }
}

/// What a load run produced.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// `200` responses.
    pub ok: u64,
    /// Non-`200` responses (any of these is a failed acceptance).
    pub failed: u64,
    /// Transport-level errors (aborted requests).
    pub aborted: u64,
    /// Reconnections performed after a mid-run connection loss (e.g.
    /// an injected accept fault); the lost requests were resent.
    pub reconnects: u64,
    /// Order-independent hash of the response-body multiset.
    pub multiset_hash: u64,
}

/// Builds the deterministic instance pool: small domains (n ≤ 8) with
/// truth-containing intervals, so the exact rung answers untripped
/// and every response is cacheable.
fn build_pool(seed: u64, pool: usize) -> Vec<String> {
    let mut texts = Vec::with_capacity(pool);
    for p in 0..pool {
        let mut s = splitmix64(seed ^ (p as u64).wrapping_mul(0x9e37_79b9));
        let n = 4 + (s % 5) as usize; // 4..=8
        let m: u64 = 40;
        let mut supports = Vec::with_capacity(n);
        let mut intervals = Vec::with_capacity(n);
        for _ in 0..n {
            s = splitmix64(s);
            let support = 1 + s % m; // 1..=m
            let f = support as f64 / m as f64;
            s = splitmix64(s);
            let slack = (s % 100) as f64 / 1000.0; // 0..0.099
            supports.push(support);
            intervals.push(((f - slack).max(0.0), (f + slack).min(1.0)));
        }
        let instance = Instance {
            label: format!("load pool={p}"),
            regime: Regime::PointCompliant,
            supports,
            m,
            intervals,
            mask: None,
        };
        texts.push(instance.to_text());
    }
    texts
}

/// Runs the load mix and reports.
///
/// # Errors
///
/// Connection failures when opening the client connections.
pub fn run_load(cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let pool = Arc::new(build_pool(cfg.seed, cfg.pool.max(1)));
    let connections = cfg.connections.max(1);
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    let reconnects = Arc::new(AtomicU64::new(0));
    let multiset = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::with_capacity(connections);
    for c in 0..connections {
        let lo = cfg.count * c as u64 / connections as u64;
        let hi = cfg.count * (c as u64 + 1) / connections as u64;
        let pool = Arc::clone(&pool);
        let ok = Arc::clone(&ok);
        let failed = Arc::clone(&failed);
        let aborted = Arc::clone(&aborted);
        let reconnects = Arc::clone(&reconnects);
        let multiset = Arc::clone(&multiset);
        let addr = cfg.addr.clone();
        let seed = cfg.seed;
        let batch = cfg.batch.max(1);
        handles.push(par::spawn_worker(&format!("load-conn-{c}"), move || {
            let mut client = match Client::connect(&addr) {
                Ok(c) => c,
                Err(_) => {
                    aborted.fetch_add(hi - lo, Ordering::Relaxed);
                    return;
                }
            };
            // A connection killed mid-batch (e.g. an injected accept
            // fault answered 500 and closed) is not an abort: the
            // unanswered tail of the batch is resent on a fresh
            // connection. Only exhausting the reconnect allowance
            // counts the remaining requests as aborted.
            let mut reconnects_left = 64u32;
            let mut index = lo;
            while index < hi {
                let upto = (index + batch as u64).min(hi);
                let picks: Vec<usize> = (index..upto)
                    .map(|i| (splitmix64(seed ^ i) as usize) % pool.len())
                    .collect();
                let mut answered = 0usize;
                while answered < picks.len() {
                    let mut sent = answered;
                    for &pick in &picks[answered..] {
                        if client
                            .send("POST", "/assess", pool[pick].as_bytes())
                            .is_err()
                        {
                            break;
                        }
                        sent += 1;
                    }
                    while answered < sent {
                        match client.recv() {
                            Ok(resp) => {
                                if resp.status == 200 {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                }
                                // Commutative multiset hash: the sum
                                // of well-mixed per-body hashes is
                                // invariant under response ordering.
                                let h = splitmix64(fnv1a(&resp.body));
                                multiset.fetch_add(h, Ordering::Relaxed);
                                answered += 1;
                            }
                            Err(_) => break,
                        }
                    }
                    if answered < picks.len() {
                        if reconnects_left == 0 {
                            aborted.fetch_add(hi - index - answered as u64, Ordering::Relaxed);
                            return;
                        }
                        reconnects_left -= 1;
                        reconnects.fetch_add(1, Ordering::Relaxed);
                        match Client::connect(&addr) {
                            Ok(fresh) => client = fresh,
                            Err(_) => {
                                aborted.fetch_add(hi - index - answered as u64, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                }
                index = upto;
            }
        })?);
    }
    for handle in handles {
        if handle.join().is_err() {
            aborted.fetch_add(1, Ordering::Relaxed);
        }
    }

    Ok(LoadReport {
        sent: cfg.count,
        ok: ok.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        aborted: aborted.load(Ordering::Relaxed),
        reconnects: reconnects.load(Ordering::Relaxed),
        multiset_hash: multiset.load(Ordering::Relaxed),
    })
}

/// SplitMix64 finalizer (the mix's only randomness source).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

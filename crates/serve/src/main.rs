//! `andi-serve` — serve the budgeted Assess-Risk ladder over HTTP.
//!
//! ```text
//! andi-serve --addr 127.0.0.1:0 [--workers N] [--queue-cap N]
//!            [--budget-ms N] [--quiet]
//! ```
//!
//! Prints `listening on <addr>` once bound, then serves until the
//! process is killed. Endpoints: `POST /assess` (oracle instance
//! text in, ladder result JSON out), `GET /stats`, `GET /health`.

use andi_graph::par;
use andi_serve::{start, ServeConfig};

fn usage() -> String {
    "usage: andi-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] \
     [--budget-ms N] [--quiet]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7341".to_string(),
        access_log: true,
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value_for("--addr")?,
            "--workers" => {
                cfg.workers = value_for("--workers")?
                    .parse()
                    .map_err(|_| format!("bad --workers value\n{}", usage()))?
            }
            "--queue-cap" => {
                cfg.queue_cap = value_for("--queue-cap")?
                    .parse()
                    .map_err(|_| format!("bad --queue-cap value\n{}", usage()))?
            }
            "--budget-ms" => {
                cfg.request_budget_ms = value_for("--budget-ms")?
                    .parse()
                    .map_err(|_| format!("bad --budget-ms value\n{}", usage()))?
            }
            "--quiet" => cfg.access_log = false,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(cfg)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = parse_args(&args)?;
    let handle = start(cfg).map_err(|e| format!("failed to start: {e}"))?;
    println!("listening on {}", handle.addr());
    loop {
        par::sleep_ms(60_000);
    }
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("{msg}");
        std::process::exit(2);
    }
}

//! A sharded, fingerprint-keyed, single-flight result cache.
//!
//! Generalizes `andi_core::estimate::cached_profile` for the service
//! layer: entries are keyed by a caller-computed 64-bit structural
//! fingerprint, spread across a fixed power-of-two number of shards
//! (so unrelated requests never contend on one lock), bounded by a
//! per-shard deterministic LRU, and **coalesced** — when several
//! requests miss on the same key at once, exactly one computes while
//! the rest wait and share the result, so a stampede of identical
//! requests costs one ladder run instead of N.
//!
//! Locks are poison-tolerant throughout: the guarded state is a pure
//! memo plus flight bookkeeping, and a leader that panics mid-compute
//! (e.g. an injected `cache.shard` fault) unwinds through an RAII
//! guard that clears its flight and wakes the waiters, who then
//! elect a new leader. No fault can strand a follower.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use andi_graph::faults;

/// Number of shards; a power of two so the shard pick is a mask.
const SHARDS: usize = 8;

/// How a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Served from a cached entry.
    Hit,
    /// Waited on another request's in-flight computation and shared
    /// its result.
    Joined,
    /// Led the computation (a miss).
    Computed,
}

/// Monotonic counters describing cache behavior, snapshot into the
/// server's stats JSON.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    joins: AtomicU64,
    evictions: AtomicU64,
    failures: AtomicU64,
    waiters: AtomicU64,
    invalidations: AtomicU64,
}

impl CacheStats {
    /// Served-from-cache count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Led-computation count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Shared-an-in-flight-result count.
    pub fn joins(&self) -> u64 {
        self.joins.load(Ordering::Relaxed)
    }

    /// Evicted-entry count.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Failed-flight count (leader returned an error or panicked).
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Requests currently blocked on another request's flight
    /// (a gauge, not a counter; tests use it to rendezvous).
    pub fn waiters(&self) -> u64 {
        self.waiters.load(Ordering::Relaxed)
    }

    /// Explicitly-invalidated entry count (delta updates).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Renders the counters as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"joins\":{},\"evictions\":{},\"failures\":{},\"invalidations\":{}}}",
            self.hits(),
            self.misses(),
            self.joins(),
            self.evictions(),
            self.failures(),
            self.invalidations()
        )
    }
}

struct ShardState<V> {
    tick: u64,
    entries: BTreeMap<u64, (u64, V)>,
    flights: BTreeSet<u64>,
}

struct Shard<V> {
    state: Mutex<ShardState<V>>,
    cv: Condvar,
}

impl<V> Shard<V> {
    fn lock(&self) -> MutexGuard<'_, ShardState<V>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sharded single-flight cache. `V` is the cached value —
/// something cheap to clone (`Arc<str>`, `Arc<FrequencyScaffold>`).
pub struct ShardedCache<V> {
    shards: Vec<Shard<V>>,
    cap_per_shard: usize,
    stats: CacheStats,
}

/// Clears a failed flight and wakes its waiters when the leader
/// unwinds without completing (error return or injected panic).
struct FlightGuard<'a, V> {
    shard: &'a Shard<V>,
    key: u64,
    armed: bool,
}

impl<V> Drop for FlightGuard<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            self.shard.lock().flights.remove(&self.key);
            self.shard.cv.notify_all();
        }
    }
}

impl<V: Clone> ShardedCache<V> {
    /// Creates a cache with `cap_per_shard` LRU slots per shard
    /// (minimum 1).
    pub fn new(cap_per_shard: usize) -> Self {
        let mut shards = Vec::with_capacity(SHARDS);
        for _ in 0..SHARDS {
            shards.push(Shard {
                state: Mutex::new(ShardState {
                    tick: 0,
                    entries: BTreeMap::new(),
                    flights: BTreeSet::new(),
                }),
                cv: Condvar::new(),
            });
        }
        ShardedCache {
            shards,
            cap_per_shard: cap_per_shard.max(1),
            stats: CacheStats::default(),
        }
    }

    /// The cache's counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Deterministic shard pick: remix the fingerprint so keys that
    /// share low bits still spread.
    fn shard_of(&self, key: u64) -> &Shard<V> {
        let ix = (splitmix64(key) as usize) & (SHARDS - 1);
        &self.shards[ix]
    }

    /// Looks up `key`, coalescing concurrent misses: the first caller
    /// computes via `compute` while later callers for the same key
    /// block and share the result. The `cache.shard` fault probe
    /// fires here, so injected faults exercise the failure path of
    /// the flight protocol; callers run lookups inside their request
    /// `catch_unwind`.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error to the leader. Waiters never see
    /// another request's error: a failed flight wakes them to elect a
    /// new leader (or hit the entry a racing leader stored).
    pub fn get_or_compute<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, Outcome), E> {
        faults::probe("cache.shard", key as usize);
        let shard = self.shard_of(key);
        let mut waited = false;
        let mut st = shard.lock();
        loop {
            st.tick += 1;
            let tick = st.tick;
            if let Some((last_used, value)) = st.entries.get_mut(&key) {
                *last_used = tick;
                let value = value.clone();
                drop(st);
                if waited {
                    self.stats.joins.fetch_add(1, Ordering::Relaxed);
                    return Ok((value, Outcome::Joined));
                }
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((value, Outcome::Hit));
            }
            if st.flights.contains(&key) {
                waited = true;
                self.stats.waiters.fetch_add(1, Ordering::Relaxed);
                // The timeout is liveness belt-and-braces only: a
                // leader that dies always notifies via its guard.
                let (guard, _) = shard
                    .cv
                    .wait_timeout(st, Duration::from_millis(20))
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                self.stats.waiters.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            st.flights.insert(key);
            break;
        }
        drop(st);

        let mut flight = FlightGuard {
            shard,
            key,
            armed: true,
        };
        match compute() {
            Ok(value) => {
                let mut st = shard.lock();
                st.tick += 1;
                let tick = st.tick;
                if !st.entries.contains_key(&key) && st.entries.len() >= self.cap_per_shard {
                    if let Some(coldest) = st
                        .entries
                        .iter()
                        .min_by_key(|(_, (last_used, _))| *last_used)
                        .map(|(k, _)| *k)
                    {
                        st.entries.remove(&coldest);
                        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                st.entries.insert(key, (tick, value.clone()));
                st.flights.remove(&key);
                flight.armed = false;
                drop(st);
                shard.cv.notify_all();
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                Ok((value, Outcome::Computed))
            }
            Err(e) => {
                // The guard clears the flight and notifies.
                self.stats.failures.fetch_add(1, Ordering::Relaxed);
                drop(flight);
                Err(e)
            }
        }
    }

    /// Explicitly removes a cached entry, returning whether one was
    /// present. This is the delta-update path: a `POST /update`
    /// invalidates exactly the entries whose fingerprints it affects,
    /// touching only the one shard that owns the key. An in-flight
    /// computation for the key is untouched — its value is derived
    /// from the key (content-addressed), so whatever it stores is
    /// correct *for that key*; invalidation exists for callers that
    /// re-derive keys from mutable identifiers.
    pub fn invalidate(&self, key: u64) -> bool {
        let shard = self.shard_of(key);
        let removed = shard.lock().entries.remove(&key).is_some();
        if removed {
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Total cached entries across all shards (for stats/tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// SplitMix64 finalizer, for the shard pick.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over arbitrary bytes; the service's fingerprint primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Extends an FNV-1a hash with one 64-bit word (little-endian).
pub fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The FNV-1a offset basis, for chained fingerprints.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

//! Bounded admission queue with load-shedding and drain.
//!
//! The accept loop offers each new connection here; workers block on
//! [`Admission::take`]. A full queue bounces the connection back to
//! the acceptor, which sheds it with a structured `429` and a
//! `Retry-After` derived from observed latencies — the service
//! degrades by refusing crisply, never by queueing unboundedly.
//! [`Admission::drain`] flips the queue into shutdown mode: `offer`
//! refuses everything and `take` returns `None` once the backlog is
//! empty, so workers exit deterministically.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex, MutexGuard};

struct QueueState {
    queue: VecDeque<TcpStream>,
    draining: bool,
}

/// The bounded connection queue.
pub struct Admission {
    state: Mutex<QueueState>,
    cv: Condvar,
    cap: usize,
}

/// Result of offering a connection.
pub enum Offer {
    /// Enqueued; a worker will pick it up.
    Accepted,
    /// Queue full — shed it (the stream comes back for the 429).
    Full(TcpStream),
    /// Server draining — refuse it (the stream comes back for the
    /// 503).
    Draining(TcpStream),
}

impl Admission {
    /// A queue holding at most `cap` waiting connections.
    pub fn new(cap: usize) -> Self {
        Admission {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            cap,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Offers a connection; never blocks.
    pub fn offer(&self, stream: TcpStream) -> Offer {
        let mut st = self.lock();
        if st.draining {
            return Offer::Draining(stream);
        }
        if st.queue.len() >= self.cap {
            return Offer::Full(stream);
        }
        st.queue.push_back(stream);
        drop(st);
        self.cv.notify_one();
        Offer::Accepted
    }

    /// Blocks until a connection is available; `None` once draining
    /// and empty (the worker's exit signal).
    pub fn take(&self) -> Option<TcpStream> {
        let mut st = self.lock();
        loop {
            if let Some(stream) = st.queue.pop_front() {
                return Some(stream);
            }
            if st.draining {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Switches to drain mode and wakes every blocked worker.
    pub fn drain(&self) {
        self.lock().draining = true;
        self.cv.notify_all();
    }

    /// Connections currently waiting for a worker.
    pub fn backlog(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether drain mode is on.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }
}

//! A thin vendored HTTP/1.1 layer over `std` byte streams.
//!
//! The service speaks just enough HTTP for its three endpoints:
//! request/status lines, `Content-Length` framing, keep-alive, and
//! nothing else (`Transfer-Encoding` is declined with `501`). Every
//! read path is bounded — head and body byte caps from
//! [`WireLimits`], plus a timeout-tick cap so a trickling client
//! cannot pin a worker — and every failure maps to a structured
//! status + JSON body via [`WireError`], never a panic.

use std::io::{BufRead, ErrorKind, Write};

use andi_oracle::instance::json_string;

/// Byte caps on a single request.
#[derive(Clone, Copy, Debug)]
pub struct WireLimits {
    /// Cap on the request line + headers, in bytes.
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length` body, in bytes.
    pub max_body_bytes: usize,
    /// Cap on read-timeout ticks while a request is mid-flight; with
    /// the socket's read timeout this bounds total wire-read time.
    pub max_stall_ticks: u32,
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            max_stall_ticks: 100,
        }
    }
}

/// Structured wire-layer failure. Each variant knows its HTTP status
/// and renders a JSON body, so a malformed request always gets a
/// well-formed response.
#[derive(Debug)]
pub enum WireError {
    /// Clean EOF (or reset) before any request bytes: the peer left.
    Closed,
    /// Read timeout before any request bytes: nothing in flight, the
    /// caller may poll shutdown flags and retry.
    Idle,
    /// The peer stalled mid-request past the tick cap.
    Stalled,
    /// Transport error mid-request.
    Io(String),
    /// Request line + headers exceeded `max_head_bytes`.
    HeadTooLarge { limit: usize },
    /// Declared body exceeds `max_body_bytes`.
    BodyTooLarge { limit: usize, got: usize },
    /// Unparseable request line, header, or framing.
    Malformed(String),
    /// Syntactically fine but unsupported (e.g. `Transfer-Encoding`).
    Unsupported(String),
}

impl WireError {
    /// The HTTP status the error maps to (`0` for [`WireError::Closed`]
    /// and [`WireError::Idle`], which produce no response).
    pub fn status(&self) -> u16 {
        match self {
            WireError::Closed | WireError::Idle => 0,
            WireError::Stalled => 408,
            WireError::Io(_) => 400,
            WireError::HeadTooLarge { .. } => 431,
            WireError::BodyTooLarge { .. } => 413,
            WireError::Malformed(_) => 400,
            WireError::Unsupported(_) => 501,
        }
    }

    /// Structured JSON body for the error response.
    pub fn to_json(&self) -> String {
        match self {
            WireError::Closed => "{\"kind\":\"closed\"}".to_string(),
            WireError::Idle => "{\"kind\":\"idle\"}".to_string(),
            WireError::Stalled => {
                "{\"kind\":\"stalled\",\"message\":\"request read timed out\"}".to_string()
            }
            WireError::Io(msg) => {
                format!("{{\"kind\":\"io\",\"message\":{}}}", json_string(msg))
            }
            WireError::HeadTooLarge { limit } => {
                format!("{{\"kind\":\"head-too-large\",\"limit_bytes\":{limit}}}")
            }
            WireError::BodyTooLarge { limit, got } => format!(
                "{{\"kind\":\"body-too-large\",\"limit_bytes\":{limit},\"got_bytes\":{got}}}"
            ),
            WireError::Malformed(msg) => {
                format!(
                    "{{\"kind\":\"malformed\",\"message\":{}}}",
                    json_string(msg)
                )
            }
            WireError::Unsupported(msg) => {
                format!(
                    "{{\"kind\":\"unsupported\",\"message\":{}}}",
                    json_string(msg)
                )
            }
        }
    }
}

/// A parsed request: method, target, headers, body.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercased method token.
    pub method: String,
    /// Request target exactly as sent (path + optional query).
    pub target: String,
    /// Header name/value pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one head block (request or status line + headers) up to the
/// blank line, enforcing the byte cap and the stall-tick cap.
fn read_head<R: BufRead>(r: &mut R, limits: &WireLimits) -> Result<Vec<String>, WireError> {
    let mut head: Vec<u8> = Vec::new();
    let mut stalls: u32 = 0;
    loop {
        let mut line: Vec<u8> = Vec::new();
        loop {
            // read_until can return a timeout mid-line; accumulate
            // manually so partial progress is kept across ticks.
            match r.read_until(b'\n', &mut line) {
                Ok(0) => {
                    if head.is_empty() && line.is_empty() {
                        return Err(WireError::Closed);
                    }
                    return Err(WireError::Malformed("eof inside request head".into()));
                }
                Ok(_) => {
                    if line.last() == Some(&b'\n') {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if head.is_empty() && line.is_empty() {
                        return Err(WireError::Idle);
                    }
                    stalls += 1;
                    if stalls > limits.max_stall_ticks {
                        return Err(WireError::Stalled);
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    if head.is_empty() && line.is_empty() {
                        return Err(WireError::Closed);
                    }
                    return Err(WireError::Io(e.kind().to_string()));
                }
            }
            if head.len() + line.len() > limits.max_head_bytes {
                return Err(WireError::HeadTooLarge {
                    limit: limits.max_head_bytes,
                });
            }
        }
        let text = String::from_utf8_lossy(&line);
        let trimmed = text.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            if head.is_empty() {
                // Tolerate leading blank lines between pipelined
                // requests, as RFC 9112 suggests.
                continue;
            }
            break;
        }
        head.extend_from_slice(&line);
        if head.len() > limits.max_head_bytes {
            return Err(WireError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
    }
    let text = String::from_utf8_lossy(&head).into_owned();
    Ok(text
        .lines()
        .map(|l| l.trim_end_matches('\r').to_string())
        .collect())
}

/// Reads exactly `want` body bytes, honoring the stall-tick cap.
fn read_body<R: BufRead>(
    r: &mut R,
    want: usize,
    limits: &WireLimits,
) -> Result<Vec<u8>, WireError> {
    let mut body = vec![0u8; want];
    let mut got = 0usize;
    let mut stalls: u32 = 0;
    while got < want {
        match r.read(&mut body[got..]) {
            Ok(0) => return Err(WireError::Malformed("eof inside request body".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                stalls += 1;
                if stalls > limits.max_stall_ticks {
                    return Err(WireError::Stalled);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.kind().to_string())),
        }
    }
    Ok(body)
}

/// Parses shared head framing: splits header lines into lowercased
/// name/value pairs and resolves the body length.
fn parse_headers(
    lines: &[String],
    limits: &WireLimits,
) -> Result<(Vec<(String, String)>, usize), WireError> {
    let mut headers = Vec::with_capacity(lines.len());
    let mut content_length = 0usize;
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| WireError::Malformed(format!("header line without colon: {line:?}")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name.is_empty() {
            return Err(WireError::Malformed("empty header name".into()));
        }
        if name == "transfer-encoding" {
            return Err(WireError::Unsupported(
                "transfer-encoding is not supported; use content-length".into(),
            ));
        }
        if name == "content-length" {
            content_length = value
                .parse::<usize>()
                .map_err(|_| WireError::Malformed(format!("bad content-length {value:?}")))?;
            if content_length > limits.max_body_bytes {
                return Err(WireError::BodyTooLarge {
                    limit: limits.max_body_bytes,
                    got: content_length,
                });
            }
        }
        headers.push((name, value));
    }
    Ok((headers, content_length))
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// [`WireError::Closed`]/[`WireError::Idle`] when no request started;
/// otherwise a variant carrying the 4xx/5xx mapping for the reply.
pub fn read_request<R: BufRead>(r: &mut R, limits: &WireLimits) -> Result<Request, WireError> {
    let lines = read_head(r, limits)?;
    let request_line = lines
        .first()
        .ok_or_else(|| WireError::Malformed("empty request head".into()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| WireError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| WireError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| WireError::Malformed("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(WireError::Malformed("extra tokens on request line".into()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(WireError::Unsupported(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if !method.chars().all(|c| c.is_ascii_alphabetic()) {
        return Err(WireError::Malformed(format!("bad method token {method:?}")));
    }
    let (headers, content_length) = parse_headers(&lines[1..], limits)?;
    let body = read_body(r, content_length, limits)?;
    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// A response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Length`/`Content-Type`/`Connection`
    /// are emitted automatically).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Canonical reason phrase for the status codes the service uses.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Content Too Large",
            422 => "Unprocessable Content",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serializes the response, appending `Connection: close` when
    /// `close` is set.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn write_to<W: Write>(&self, w: &mut W, close: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            Response::reason(self.status)
        );
        head.push_str("content-type: application/json\r\n");
        head.push_str(&format!("content-length: {}\r\n", self.body.len()));
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if close {
            head.push_str("connection: close\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reads and parses one response (the vendored client's half of the
/// wire).
///
/// # Errors
///
/// As [`read_request`], with [`WireError::Malformed`] for bad status
/// lines.
pub fn read_response<R: BufRead>(r: &mut R, limits: &WireLimits) -> Result<Response, WireError> {
    let lines = read_head(r, limits)?;
    let status_line = lines
        .first()
        .ok_or_else(|| WireError::Malformed("empty response head".into()))?;
    let mut parts = status_line.split_ascii_whitespace();
    let version = parts
        .next()
        .ok_or_else(|| WireError::Malformed("missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::Malformed(format!("bad version {version:?}")));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| WireError::Malformed("bad status code".into()))?;
    let (headers, content_length) = parse_headers(&lines[1..], limits)?;
    let body = read_body(r, content_length, limits)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// First response header value for `name` (lowercase).
pub fn response_header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
    resp.headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

//! Server-wide counters and the `Retry-After` estimator.
//!
//! All timing flows from each request's [`andi_graph::par::Budget`]
//! (`Budget::spent()` at completion) — the service itself never reads
//! a wall clock, keeping the `wallclock-in-core` invariant intact.
//! The latency EWMA feeds the shed path: `Retry-After` is the
//! observed per-request latency scaled by the backlog a new request
//! would sit behind.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic request counters plus the latency EWMA, rendered into
/// the `/stats` JSON alongside the cache counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections shed with a 429.
    pub shed: AtomicU64,
    /// Requests parsed off the wire.
    pub requests: AtomicU64,
    /// 2xx responses.
    pub ok: AtomicU64,
    /// 4xx responses.
    pub client_errors: AtomicU64,
    /// 5xx responses.
    pub server_errors: AtomicU64,
    /// EWMA of per-request latency, in microseconds (α = 1/8).
    latency_ewma_us: AtomicU64,
}

impl ServerStats {
    /// Records a finished request's budget-measured latency.
    pub fn observe_latency_us(&self, sample_us: u64) {
        // Single-writer precision does not matter here; a racy
        // read-modify-write only slightly misweights one sample.
        let old = self.latency_ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample_us
        } else {
            old - old / 8 + sample_us / 8
        };
        self.latency_ewma_us.store(new, Ordering::Relaxed);
    }

    /// The latency EWMA in microseconds.
    pub fn latency_ewma_us(&self) -> u64 {
        self.latency_ewma_us.load(Ordering::Relaxed)
    }

    /// Counts a response by status class.
    pub fn count_response(&self, status: u16) {
        if (200..300).contains(&status) {
            self.ok.fetch_add(1, Ordering::Relaxed);
        } else if (400..500).contains(&status) {
            self.client_errors.fetch_add(1, Ordering::Relaxed);
        } else {
            self.server_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Seconds a shed client should wait before retrying: the
    /// latency EWMA times the queue position it would occupy, spread
    /// over the worker pool, rounded up and clamped to `[1, 60]`.
    pub fn retry_after_secs(&self, backlog: usize, workers: usize) -> u64 {
        let per_request_us = self.latency_ewma_us().max(1);
        let pending = (backlog as u64).saturating_add(1);
        let workers = workers.max(1) as u64;
        let wait_us = per_request_us.saturating_mul(pending) / workers;
        (wait_us / 1_000_000 + 1).clamp(1, 60)
    }
}

//! Differential acceptance: over generated oracle instances from all
//! six regimes, a cache-hit response must be bit-identical to the
//! cold-path response that populated it, and error responses must be
//! deterministic. Runs with an unlimited request budget and fault
//! injection masked, so every successful answer is clean (untripped,
//! undegraded) and therefore cacheable.

use andi_graph::faults::{FaultMode, FaultSchedule};
use andi_oracle::generate::generate;
use andi_oracle::instance::{Instance, Regime};
use andi_serve::http::response_header;
use andi_serve::{start, Client, ServeConfig};

/// Adversarial instances draw `n` up to the exact-permanent cap (32),
/// which a debug-build differential cannot afford; scan indices for
/// representatives the exact rung answers quickly. Every other regime
/// is already small and is taken as generated.
fn regime_instances(regime: Regime, per_regime: usize) -> Vec<Instance> {
    let mut picked = Vec::with_capacity(per_regime);
    let mut index = 0u64;
    while picked.len() < per_regime && index < 10_000 {
        let instance = generate(0xd1ff ^ regime as u64, index, regime);
        if regime != Regime::Adversarial || instance.supports.len() <= 12 {
            picked.push(instance);
        }
        index += 1;
    }
    assert_eq!(picked.len(), per_regime, "generator ran dry for {regime:?}");
    picked
}

#[test]
fn cache_hits_are_bit_identical_to_cold_responses_across_all_regimes() {
    let _quiet = FaultSchedule {
        seed: 0,
        rate_ppm: 0,
        mode: FaultMode::Panic,
    }
    .install();
    let handle = start(ServeConfig {
        request_budget_ms: 0, // unlimited: nothing trips, all clean
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let mut hits = 0u32;
    let mut errors = 0u32;
    for regime in Regime::ALL {
        for instance in regime_instances(regime, 3) {
            let body = instance.to_text();
            let cold = client
                .request("POST", "/assess", body.as_bytes())
                .expect("cold request answered");
            let again = client
                .request("POST", "/assess", body.as_bytes())
                .expect("repeat request answered");
            assert_eq!(
                cold.status, again.status,
                "{regime:?}/{}: repeat status changed",
                instance.label
            );
            if cold.status == 200 {
                // Unlimited budget and no faults: the answer is
                // clean, so the repeat must be served by the cache
                // and must be byte-for-byte the cold response.
                assert_eq!(
                    response_header(&again, "x-andi-cache"),
                    Some("hit"),
                    "{regime:?}/{}: clean repeat not served from cache",
                    instance.label
                );
                assert_eq!(
                    cold.body, again.body,
                    "{regime:?}/{}: cache hit differs from cold path",
                    instance.label
                );
                hits += 1;
            } else {
                // Structured, deterministic errors (e.g. 422 for an
                // empty mapping space) repeat identically.
                assert!(
                    (400..=599).contains(&cold.status),
                    "{regime:?}/{}: unexpected status {}",
                    instance.label,
                    cold.status
                );
                assert_eq!(
                    cold.body, again.body,
                    "{regime:?}/{}: error response not deterministic",
                    instance.label
                );
                errors += 1;
            }
        }
    }
    assert!(
        hits >= 12,
        "expected most regimes to produce cacheable answers (hits={hits}, errors={errors})"
    );
    handle.shutdown();
}

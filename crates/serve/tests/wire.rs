//! Wire-layer robustness: proptest round-trips of the framing, and
//! hostile inputs (junk, truncation, oversize) always producing a
//! structured 4xx/5xx — never a panic or a hang. Every client read
//! is bounded by the wire layer's stall watchdog (read timeout ×
//! `max_stall_ticks`), so a hang fails the test instead of wedging
//! the suite.

use std::io::{BufReader, Cursor, Read, Write};

use andi_serve::http::{read_request, read_response, Request, Response, WireLimits};
use andi_serve::{start, Client, ServeConfig};
use proptest::prelude::*;

fn write_request(req: &Request) -> Vec<u8> {
    let mut bytes = Vec::new();
    let head = format!(
        "{} {} HTTP/1.1\r\ncontent-length: {}\r\n",
        req.method,
        req.target,
        req.body.len()
    );
    bytes.extend_from_slice(head.as_bytes());
    for (name, value) in &req.headers {
        bytes.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    bytes.extend_from_slice(b"\r\n");
    bytes.extend_from_slice(&req.body);
    bytes
}

fn token() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 1..12).prop_map(|bytes| {
        bytes
            .iter()
            .map(|b| (b'a' + (b % 26)) as char)
            .collect::<String>()
    })
}

proptest! {
    #[test]
    fn request_framing_round_trips(
        method in token(),
        path in token(),
        header_names in prop::collection::vec(token(), 0..4),
        header_values in prop::collection::vec(token(), 0..4),
        body in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let headers: Vec<(String, String)> = header_names
            .iter()
            .zip(header_values.iter())
            .filter(|(n, _)| {
                *n != "content-length" && *n != "transfer-encoding" && *n != "connection"
            })
            .map(|(n, v)| (n.clone(), v.clone()))
            .collect();
        let req = Request {
            method: method.to_ascii_uppercase(),
            target: format!("/{path}"),
            headers,
            body,
        };
        let bytes = write_request(&req);
        let mut reader = BufReader::new(Cursor::new(bytes));
        let parsed = read_request(&mut reader, &WireLimits::default()).unwrap();
        prop_assert_eq!(&parsed.method, &req.method);
        prop_assert_eq!(&parsed.target, &req.target);
        prop_assert_eq!(&parsed.body, &req.body);
        for (name, value) in &req.headers {
            prop_assert_eq!(parsed.header(name), Some(value.as_str()));
        }
    }

    #[test]
    fn response_framing_round_trips(
        status in 200u16..600,
        body in prop::collection::vec(any::<u8>(), 0..2048),
        close in prop::bool::ANY,
    ) {
        let resp = Response {
            status,
            headers: vec![("x-andi-cache".to_string(), "hit".to_string())],
            body,
        };
        let mut bytes = Vec::new();
        resp.write_to(&mut bytes, close).unwrap();
        let mut reader = BufReader::new(Cursor::new(bytes));
        let parsed = read_response(&mut reader, &WireLimits::default()).unwrap();
        prop_assert_eq!(parsed.status, resp.status);
        prop_assert_eq!(&parsed.body, &resp.body);
    }

    /// Arbitrary junk either parses (and then re-serializes sanely) or
    /// fails with a structured error carrying a real HTTP status —
    /// never a panic.
    #[test]
    fn junk_bytes_never_panic_the_parser(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut reader = BufReader::new(Cursor::new(bytes));
        match read_request(&mut reader, &WireLimits::default()) {
            Ok(req) => prop_assert!(!req.method.is_empty()),
            Err(e) => {
                let status = e.status();
                prop_assert!(status == 0 || (400..=599).contains(&status));
            }
        }
    }
}

/// One-byte-at-a-time variants of every hostile request against a
/// live server: each must yield a structured response or a clean
/// close within the watchdog, and the server must stay healthy.
#[test]
fn hostile_requests_get_structured_responses_and_server_survives() {
    let handle = start(ServeConfig::default()).unwrap();
    let addr = handle.addr();

    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty-then-close", b"".to_vec()),
        ("garbage-line", b"\x00\x01\x02\xff garbage\r\n\r\n".to_vec()),
        ("bad-version", b"GET / HTTP/9.9\r\n\r\n".to_vec()),
        ("missing-target", b"GET\r\n\r\n".to_vec()),
        (
            "bad-content-length",
            b"POST /assess HTTP/1.1\r\ncontent-length: banana\r\n\r\n".to_vec(),
        ),
        (
            "oversized-body-declared",
            b"POST /assess HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n".to_vec(),
        ),
        (
            "transfer-encoding",
            b"POST /assess HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
        ),
        (
            "truncated-body",
            b"POST /assess HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort".to_vec(),
        ),
        ("oversized-head", {
            let mut head = b"GET / HTTP/1.1\r\n".to_vec();
            for i in 0..2000 {
                head.extend_from_slice(format!("x-h{i}: value\r\n").as_bytes());
            }
            head.extend_from_slice(b"\r\n");
            head
        }),
    ];

    for (name, bytes) in cases {
        let mut client = Client::connect(addr).unwrap();
        client.send_raw(&bytes).unwrap();
        // Truncated cases need EOF to resolve; close our write half
        // by dropping after a short read attempt window. The recv
        // itself is watchdog-bounded either way.
        match client.recv() {
            Ok(resp) => {
                assert!(
                    (400..=599).contains(&resp.status),
                    "case {name}: expected 4xx/5xx, got {}",
                    resp.status
                );
                assert!(
                    std::str::from_utf8(&resp.body)
                        .unwrap()
                        .contains("\"kind\":"),
                    "case {name}: body should be structured JSON"
                );
            }
            Err(e) => {
                // A clean close (or our own watchdog) is acceptable
                // for inputs the server cannot even frame an answer
                // to; a hang is not, and would have failed above.
                let status = e.status();
                assert!(
                    status == 0 || (400..=599).contains(&status),
                    "case {name}: unexpected wire error {e:?}"
                );
            }
        }
    }

    // The server survived all of it.
    let mut client = Client::connect(addr).unwrap();
    let health = client.request("GET", "/health", b"").unwrap();
    assert_eq!(health.status, 200);
    handle.shutdown();
}

/// A trickling client cannot pin a worker forever: the stall watchdog
/// turns it into a 408 (or clean close).
#[test]
fn slow_trickle_hits_the_stall_watchdog() {
    let cfg = ServeConfig {
        limits: WireLimits {
            max_stall_ticks: 3,
            ..WireLimits::default()
        },
        ..ServeConfig::default()
    };
    let handle = start(cfg).unwrap();
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(b"GET /health HT").unwrap();
    stream.flush().unwrap();
    // Never send the rest. The server should close with a 408 within
    // ~max_stall_ticks × 100ms.
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    assert!(
        text.contains("408") && text.contains("stalled"),
        "expected a 408 stalled response, got: {text:?}"
    );
    handle.shutdown();
}

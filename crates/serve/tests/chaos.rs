//! Chaos suite: with deterministic fault injection active at the
//! service probes (`serve.accept`, `serve.request`, `cache.shard`)
//! *and* every ladder-internal probe, the server must never hang and
//! never abort: every request gets a structured response (a result, a
//! degraded result with full `Provenance`, or a structured error),
//! cached results stay coherent, and drain completes under an
//! explicit watchdog.
//!
//! When `ANDI_FAULTS` is ambient (the CI chaos job) the ambient
//! schedule is exercised; otherwise two built-in schedules run so
//! a plain `cargo test` still covers both panic and delay actions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use andi_graph::faults::{self, FaultSchedule};
use andi_oracle::instance::{Instance, Regime};
use andi_serve::{start, Client, ServeConfig, ServerHandle};

/// The schedules a test runs under: the ambient one when the harness
/// (CI) provides it, both built-ins otherwise.
fn schedules() -> Vec<FaultSchedule> {
    match faults::ambient() {
        Some(ambient) => vec![*ambient],
        None => vec![
            FaultSchedule::parse("7:0.05:mix").expect("built-in schedule parses"),
            FaultSchedule::parse("13:0.1:panic").expect("built-in schedule parses"),
        ],
    }
}

/// Joins a drain on a watchdog: a hung shutdown fails the test
/// instead of wedging the suite.
fn shutdown_within(handle: ServerHandle, secs: u64) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("drain did not complete within the watchdog");
}

fn small_instance(variant: u64) -> Instance {
    Instance {
        label: format!("chaos variant={variant}"),
        regime: Regime::PointCompliant,
        supports: vec![5, 4 + variant % 3, 5, 2],
        m: 10,
        intervals: vec![(0.4, 0.6), (0.3, 0.6), (0.5, 0.5), (0.1, 0.4)],
        mask: None,
    }
}

/// Every request in a mixed workload — duplicates, varied instances,
/// malformed bodies, health probes — gets a structured response while
/// faults fire, and the drain afterwards is clean. Fresh connection
/// per request maximizes `serve.accept` probe coverage.
#[test]
fn every_request_gets_a_structured_response_under_faults() {
    for schedule in schedules() {
        let _guard = schedule.install();
        let handle = start(ServeConfig {
            workers: 2,
            request_budget_ms: 1000,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let addr = handle.addr().to_string();

        let duplicate = small_instance(0).to_text();
        for i in 0..160u64 {
            let (method, path, body): (&str, &str, Vec<u8>) = match i % 4 {
                0 => ("POST", "/assess", duplicate.clone().into_bytes()),
                1 => ("POST", "/assess", small_instance(i).to_text().into_bytes()),
                2 => ("POST", "/assess", b"not an instance".to_vec()),
                _ => ("GET", "/health", Vec::new()),
            };
            let mut client = Client::connect(&addr).expect("connect");
            let resp = client
                .request(method, path, &body)
                .unwrap_or_else(|e| panic!("request {i} got no structured response: {e:?}"));
            assert!(
                resp.status == 200 || (400..=599).contains(&resp.status),
                "request {i}: unstructured status {}",
                resp.status
            );
            assert!(
                resp.body.first() == Some(&b'{'),
                "request {i}: body is not structured JSON: {:?}",
                String::from_utf8_lossy(&resp.body)
            );
        }

        shutdown_within(handle, 60);
    }
}

/// Cache coherence under chaos: among many responses for one
/// instance, every *clean* answer (untripped, undegraded — the only
/// ones the cache may serve) is bit-identical.
#[test]
fn faults_never_corrupt_cached_results() {
    for schedule in schedules() {
        let _guard = schedule.install();
        let handle = start(ServeConfig {
            workers: 2,
            request_budget_ms: 1000,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let addr = handle.addr().to_string();
        let body = small_instance(1).to_text();

        let mut clean_bodies: Vec<Vec<u8>> = Vec::new();
        for i in 0..120u64 {
            let mut client = Client::connect(&addr).expect("connect");
            let resp = client
                .request("POST", "/assess", body.as_bytes())
                .unwrap_or_else(|e| panic!("request {i} aborted: {e:?}"));
            if resp.status != 200 {
                continue; // injected failure: structured error, fine
            }
            let text = std::str::from_utf8(&resp.body).expect("utf-8 body");
            if text.contains("\"trips\":[]") && text.contains("\"degraded\":false") {
                clean_bodies.push(resp.body.clone());
            }
        }
        assert!(
            clean_bodies.len() >= 2,
            "expected repeated clean answers even under faults"
        );
        for body in &clean_bodies[1..] {
            assert_eq!(
                body, &clean_bodies[0],
                "clean answers for one instance must be bit-identical"
            );
        }

        shutdown_within(handle, 60);
    }
}

/// Drain while requests are in flight: shutdown must complete within
/// the watchdog, in-flight clients must see structured responses or
/// clean closes, and nothing may wedge.
#[test]
fn drain_completes_while_requests_are_in_flight() {
    for schedule in schedules() {
        let _guard = schedule.install();
        let handle = start(ServeConfig {
            workers: 2,
            request_budget_ms: 500,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let addr = handle.addr().to_string();

        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let mut drivers = Vec::new();
        for d in 0..2u64 {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            drivers.push(std::thread::spawn(move || {
                let body = small_instance(d).to_text();
                while !stop.load(Ordering::SeqCst) {
                    // Post-drain connects and requests may fail; a
                    // hang may not (every recv is watchdog-bounded).
                    let Ok(mut client) = Client::connect(&addr) else {
                        break;
                    };
                    if client.request("POST", "/assess", body.as_bytes()).is_ok() {
                        served.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }

        // Let real traffic build up, then drain underneath it.
        while served.load(Ordering::SeqCst) < 5 {
            std::thread::yield_now();
        }
        shutdown_within(handle, 60);
        stop.store(true, Ordering::SeqCst);
        for driver in drivers {
            driver.join().expect("driver thread panicked");
        }
    }
}

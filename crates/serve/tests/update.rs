//! `POST /update`: delta application and exact cache invalidation.

use andi_oracle::instance::{Instance, Regime};
use andi_serve::http::response_header;
use andi_serve::{start, Client, ServeConfig};

fn bigmart_instance() -> Instance {
    Instance {
        label: "paper:bigmart-h".to_string(),
        regime: Regime::Ignorant,
        supports: vec![5, 4, 5, 5, 3, 5],
        m: 10,
        intervals: vec![
            (0.0, 1.0),
            (0.4, 0.5),
            (0.5, 0.5),
            (0.4, 0.6),
            (0.1, 0.4),
            (0.5, 0.5),
        ],
        mask: None,
    }
}

fn update_body(m: u64, supports: &[u64], edits: &[&str]) -> String {
    let words: Vec<String> = supports.iter().map(u64::to_string).collect();
    let mut body = format!(
        "andi-serve update v1\nm: {m}\nsupports: {}\n",
        words.join(" ")
    );
    for edit in edits {
        body.push_str(&format!("edit: {edit}\n"));
    }
    body
}

#[test]
fn update_invalidates_exactly_the_affected_entries() {
    let handle = start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let instance = bigmart_instance();
    let body = instance.to_text();

    // An unrelated database whose cache entry must survive the update.
    let mut other = bigmart_instance();
    other.supports = vec![7, 2, 7, 7, 1, 7];
    other.intervals = vec![(0.0, 1.0); 6];
    let other_body = other.to_text();

    let cold = client.request("POST", "/assess", body.as_bytes()).unwrap();
    assert_eq!(cold.status, 200, "{}", String::from_utf8_lossy(&cold.body));
    assert_eq!(response_header(&cold, "x-andi-cache"), Some("miss"));
    let other_cold = client
        .request("POST", "/assess", other_body.as_bytes())
        .unwrap();
    assert_eq!(other_cold.status, 200);

    let hit = client.request("POST", "/assess", body.as_bytes()).unwrap();
    assert_eq!(response_header(&hit, "x-andi-cache"), Some("hit"));

    // Append one transaction {1, 4} to the bigmart database.
    let upd = update_body(instance.m, &instance.supports, &["insert 1 4"]);
    let resp = client.request("POST", "/update", upd.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let text = std::str::from_utf8(&resp.body).unwrap();
    assert!(text.contains("\"kind\":\"updated\""), "{text}");
    assert!(text.contains("\"edits\":1"), "{text}");
    assert!(text.contains("\"scaffold_invalidated\":true"), "{text}");
    assert!(text.contains("\"results_invalidated\":1"), "{text}");
    assert!(text.contains("\"warmed\":true"), "{text}");

    // The stale result for the pre-edit database can never be
    // served: the same request now recomputes (miss, not hit) — and,
    // being content-addressed, reproduces the same bytes.
    let recomputed = client.request("POST", "/assess", body.as_bytes()).unwrap();
    assert_eq!(recomputed.status, 200);
    assert_eq!(response_header(&recomputed, "x-andi-cache"), Some("miss"));
    assert_eq!(cold.body, recomputed.body);

    // The unrelated database's entry was untouched.
    let other_hit = client
        .request("POST", "/assess", other_body.as_bytes())
        .unwrap();
    assert_eq!(response_header(&other_hit, "x-andi-cache"), Some("hit"));
    assert_eq!(other_cold.body, other_hit.body);

    // The post-edit database was warmed: its first assessment reuses
    // the scaffold the update built (scaffold-cache hit).
    let stats_before = client.request("GET", "/stats", b"").unwrap();
    let before = std::str::from_utf8(&stats_before.body).unwrap().to_string();
    let mut edited = bigmart_instance();
    edited.supports = vec![5, 5, 5, 5, 4, 5];
    edited.m = 11;
    edited.intervals = vec![(0.0, 1.0); 6];
    let edited_resp = client
        .request("POST", "/assess", edited.to_text().as_bytes())
        .unwrap();
    assert_eq!(edited_resp.status, 200);
    let stats_after = client.request("GET", "/stats", b"").unwrap();
    let after = std::str::from_utf8(&stats_after.body).unwrap().to_string();
    let hits = |s: &str| {
        let ix = s.find("\"scaffold_cache\":").unwrap();
        let rest = &s[ix..];
        let h = rest.find("\"hits\":").unwrap() + "\"hits\":".len();
        rest[h..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse::<u64>()
            .unwrap()
    };
    assert!(
        hits(&after) > hits(&before),
        "warmed scaffold not reused: before {before} after {after}"
    );
    assert!(
        after.contains("\"invalidations\":1"),
        "result-cache invalidation count missing: {after}"
    );

    handle.shutdown();
}

#[test]
fn update_validates_body_and_edits() {
    let handle = start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Bad header.
    let resp = client.request("POST", "/update", b"wrong header").unwrap();
    assert_eq!(resp.status, 400);
    assert!(std::str::from_utf8(&resp.body)
        .unwrap()
        .contains("invalid-update"));

    // Missing supports.
    let resp = client
        .request("POST", "/update", b"andi-serve update v1\nm: 5\n")
        .unwrap();
    assert_eq!(resp.status, 400);

    // Support exceeding m.
    let resp = client
        .request(
            "POST",
            "/update",
            b"andi-serve update v1\nm: 5\nsupports: 9\nedit: insert 0\n",
        )
        .unwrap();
    assert_eq!(resp.status, 400);

    // Unknown edit verb.
    let resp = client
        .request(
            "POST",
            "/update",
            b"andi-serve update v1\nm: 5\nsupports: 3 2\nedit: explode 0\n",
        )
        .unwrap();
    assert_eq!(resp.status, 400);

    // Structurally valid body, inapplicable edit (deleting a
    // transaction not naming the full-support item).
    let resp = client
        .request(
            "POST",
            "/update",
            b"andi-serve update v1\nm: 3\nsupports: 3 1\nedit: delete 1\n",
        )
        .unwrap();
    assert_eq!(resp.status, 400, "{}", String::from_utf8_lossy(&resp.body));

    // Wrong method.
    let resp = client.request("GET", "/update", b"").unwrap();
    assert_eq!(resp.status, 405);

    handle.shutdown();
}

#[test]
fn update_with_no_prior_traffic_is_a_clean_noop_invalidation() {
    let handle = start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let body = update_body(10, &[5, 4, 5, 5, 3, 5], &["replace 1 / 4", "insert 0 2"]);
    let resp = client.request("POST", "/update", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let text = std::str::from_utf8(&resp.body).unwrap();
    assert!(text.contains("\"edits\":2"), "{text}");
    assert!(text.contains("\"scaffold_invalidated\":false"), "{text}");
    assert!(text.contains("\"results_invalidated\":0"), "{text}");
    assert!(text.contains("\"warmed\":true"), "{text}");
    handle.shutdown();
}

//! Seeded load acceptance: ≥10⁵ requests with zero transport aborts,
//! a response multiset that reproduces exactly across same-seed runs
//! with radically different interleavings (4 workers × 4 pipelined
//! connections vs 1 × 1), and coalescing observable in the stats
//! JSON. A separate chaos-mode run proves the load client and server
//! together survive fault injection without a single unanswered
//! request.
//!
//! `ANDI_LOAD_COUNT` overrides the request count (default 100 000).

use andi_graph::faults::{self, FaultMode, FaultSchedule};
use andi_serve::{run_load, start, LoadConfig, ServeConfig};

fn load_count() -> u64 {
    std::env::var("ANDI_LOAD_COUNT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

/// A rate-zero schedule: installing it masks any ambient
/// `ANDI_FAULTS` so the determinism contract is measured on the
/// faultless path (the chaos-mode run below is the faulty one), and
/// its global install lock serializes the load tests.
fn faultless() -> FaultSchedule {
    FaultSchedule {
        seed: 0,
        rate_ppm: 0,
        mode: FaultMode::Panic,
    }
}

/// Pulls `"hits":N` out of the first cache object in the stats JSON.
fn result_cache_hits(stats: &str) -> u64 {
    let cache = stats
        .split("\"result_cache\":")
        .nth(1)
        .expect("stats JSON has a result_cache object");
    let after = cache
        .split("\"hits\":")
        .nth(1)
        .expect("result_cache has a hits counter");
    after
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("hits counter is a number")
}

#[test]
fn seeded_load_reproduces_the_response_multiset_exactly() {
    let _quiet = faultless().install();
    let count = load_count();

    // Run A: full concurrency — 4 workers, 4 pipelined connections.
    let handle = start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let report_a = run_load(&LoadConfig {
        addr: handle.addr().to_string(),
        count,
        ..LoadConfig::default()
    })
    .expect("load run completes");
    assert_eq!(report_a.aborted, 0, "no aborts allowed: {report_a:?}");
    assert_eq!(report_a.failed, 0, "no failures allowed: {report_a:?}");
    assert_eq!(report_a.ok, count);
    assert_eq!(report_a.reconnects, 0, "faultless run never reconnects");

    // Coalescing is observable in the stats JSON: heavy duplication
    // over a 32-instance pool means nearly every request is a cache
    // hit, and the single-flight join counter is published.
    let stats = handle.stats_json();
    assert!(
        result_cache_hits(&stats) > 0,
        "expected result-cache hits under duplication: {stats}"
    );
    assert!(
        stats.contains("\"joins\":"),
        "stats must publish the coalescing counter: {stats}"
    );
    handle.shutdown();

    // Run B: same seed, no concurrency anywhere — 1 worker, 1
    // connection. The response-body multiset must be identical.
    let handle = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let report_b = run_load(&LoadConfig {
        addr: handle.addr().to_string(),
        count,
        connections: 1,
        ..LoadConfig::default()
    })
    .expect("load run completes");
    handle.shutdown();
    assert_eq!(report_b.aborted, 0, "no aborts allowed: {report_b:?}");
    assert_eq!(report_b.failed, 0, "no failures allowed: {report_b:?}");
    assert_eq!(
        report_a.multiset_hash, report_b.multiset_hash,
        "same seed must reproduce the exact response multiset"
    );
}

/// Chaos-mode load: with faults firing at every probe the load
/// client may see injected 500s (structured failures) and closed
/// connections (it reconnects and resends), but not one request may
/// go unanswered.
#[test]
fn load_survives_fault_injection_without_aborts() {
    let schedule = faults::ambient()
        .copied()
        .unwrap_or_else(|| FaultSchedule::parse("11:0.02:mix").expect("built-in schedule parses"));
    let _guard = schedule.install();

    let handle = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let count = 2_000;
    let report = run_load(&LoadConfig {
        addr: handle.addr().to_string(),
        count,
        connections: 2,
        ..LoadConfig::default()
    })
    .expect("load run completes");
    handle.shutdown();

    assert_eq!(
        report.aborted, 0,
        "every request must be answered even under faults: {report:?}"
    );
    assert_eq!(
        report.ok + report.failed,
        count,
        "answered responses must account for every request: {report:?}"
    );
}

//! ShardedCache semantics: LRU bounds, deterministic eviction,
//! single-flight coalescing (joins observable), and failed-flight
//! recovery (no stranded waiters).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use andi_serve::cache::{Outcome, ShardedCache};

#[test]
fn hit_join_miss_outcomes_and_counters() {
    let cache: ShardedCache<Arc<str>> = ShardedCache::new(8);
    let (v1, o1) = cache
        .get_or_compute(42, || Ok::<_, ()>(Arc::from("value-a")))
        .unwrap();
    assert_eq!(o1, Outcome::Computed);
    assert_eq!(v1.as_ref(), "value-a");

    let (v2, o2) = cache
        .get_or_compute(42, || Ok::<_, ()>(Arc::from("never-used")))
        .unwrap();
    assert_eq!(o2, Outcome::Hit);
    assert_eq!(v2.as_ref(), "value-a");

    assert_eq!(cache.stats().hits(), 1);
    assert_eq!(cache.stats().misses(), 1);
    assert_eq!(cache.stats().joins(), 0);
}

#[test]
fn bounded_lru_keeps_hot_entries() {
    let cache: ShardedCache<Arc<str>> = ShardedCache::new(4);
    let hot: Arc<str> = Arc::from("hot");
    let hot_clone = Arc::clone(&hot);
    cache
        .get_or_compute(0, move || Ok::<_, ()>(hot_clone))
        .unwrap();
    // Flood well past the per-shard cap, touching the hot key
    // between inserts.
    for k in 1..=64u64 {
        cache
            .get_or_compute(k, || Ok::<_, ()>(Arc::from(format!("cold-{k}"))))
            .unwrap();
        let (v, o) = cache
            .get_or_compute(0, || Ok::<_, ()>(Arc::from("rebuilt")))
            .unwrap();
        assert_eq!(o, Outcome::Hit, "hot entry evicted after filler {k}");
        assert!(Arc::ptr_eq(&v, &hot));
    }
    assert!(cache.stats().evictions() > 0, "flood should have evicted");
    // Total size stays bounded by shards × cap.
    assert!(cache.len() <= 8 * 4, "len {} exceeds bound", cache.len());
}

/// Deterministic coalescing rendezvous: a leader blocks inside its
/// compute until the test observes a waiter, so exactly one join is
/// guaranteed — no sleeps, no racy timing.
#[test]
fn concurrent_identical_requests_coalesce_into_one_flight() {
    let cache: Arc<ShardedCache<Arc<str>>> = Arc::new(ShardedCache::new(8));
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let computes = Arc::new(AtomicU64::new(0));

    let leader = {
        let cache = Arc::clone(&cache);
        let gate = Arc::clone(&gate);
        let computes = Arc::clone(&computes);
        std::thread::spawn(move || {
            cache
                .get_or_compute(7, move || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                    Ok::<_, ()>(Arc::from("coalesced"))
                })
                .unwrap()
        })
    };

    // Wait until the leader is inside its compute.
    while computes.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }

    let follower = {
        let cache = Arc::clone(&cache);
        let computes = Arc::clone(&computes);
        std::thread::spawn(move || {
            cache
                .get_or_compute(7, move || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    Ok::<_, ()>(Arc::from("should-not-compute"))
                })
                .unwrap()
        })
    };

    // Rendezvous: wait for the follower to block on the flight.
    while cache.stats().waiters() == 0 {
        std::thread::yield_now();
    }
    {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    let (lv, lo) = leader.join().unwrap();
    let (fv, fo) = follower.join().unwrap();
    assert_eq!(lo, Outcome::Computed);
    assert_eq!(fo, Outcome::Joined);
    assert_eq!(lv.as_ref(), "coalesced");
    assert!(Arc::ptr_eq(&lv, &fv), "joined value must be shared");
    assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
    assert_eq!(cache.stats().joins(), 1);
}

/// A leader that fails (error or panic) must not strand its waiters:
/// they elect a new leader and finish.
#[test]
fn failed_flight_wakes_waiters_who_recover() {
    let cache: Arc<ShardedCache<Arc<str>>> = Arc::new(ShardedCache::new(8));
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let attempts = Arc::new(AtomicU64::new(0));

    // Leader: panics inside compute once released.
    let leader = {
        let cache = Arc::clone(&cache);
        let gate = Arc::clone(&gate);
        let attempts = Arc::clone(&attempts);
        std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cache.get_or_compute(9, move || {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                    panic!("injected leader failure");
                    #[allow(unreachable_code)]
                    Ok::<Arc<str>, ()>(Arc::from("unreachable"))
                })
            }));
            assert!(result.is_err(), "leader should have panicked");
        })
    };

    while attempts.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }

    let follower = {
        let cache = Arc::clone(&cache);
        let attempts = Arc::clone(&attempts);
        std::thread::spawn(move || {
            cache
                .get_or_compute(9, move || {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    Ok::<_, ()>(Arc::from("recovered"))
                })
                .unwrap()
        })
    };

    while cache.stats().waiters() == 0 {
        std::thread::yield_now();
    }
    {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    leader.join().unwrap();
    let (v, o) = follower.join().unwrap();
    assert_eq!(v.as_ref(), "recovered");
    assert_eq!(o, Outcome::Computed, "waiter should have become leader");
    assert_eq!(attempts.load(Ordering::SeqCst), 2);
}

/// Error-returning flights propagate only to the leader and leave
/// nothing cached.
#[test]
fn error_flights_cache_nothing() {
    let cache: ShardedCache<Arc<str>> = ShardedCache::new(8);
    let err = cache.get_or_compute(5, || Err::<Arc<str>, String>("boom".to_string()));
    assert_eq!(err.unwrap_err(), "boom");
    assert!(cache.is_empty());
    assert_eq!(cache.stats().failures(), 1);
    let (_, o) = cache
        .get_or_compute(5, || Ok::<_, String>(Arc::from("fine")))
        .unwrap();
    assert_eq!(o, Outcome::Computed);
}

//! End-to-end service behavior: routing, assessment, caching
//! headers, admission shedding, and graceful drain.

use andi_oracle::instance::{Instance, Regime};
use andi_oracle::serial::provenance_from_json;
use andi_serve::http::response_header;
use andi_serve::{start, Client, ServeConfig};

fn bigmart_instance() -> Instance {
    Instance {
        label: "paper:bigmart-h".to_string(),
        regime: Regime::Ignorant,
        supports: vec![5, 4, 5, 5, 3, 5],
        m: 10,
        intervals: vec![
            (0.0, 1.0),
            (0.4, 0.5),
            (0.5, 0.5),
            (0.4, 0.6),
            (0.1, 0.4),
            (0.5, 0.5),
        ],
        mask: None,
    }
}

#[test]
fn health_stats_and_unknown_routes() {
    let handle = start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let health = client.request("GET", "/health", b"").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(std::str::from_utf8(&health.body).unwrap(), "{\"ok\":true}");

    let stats = client.request("GET", "/stats", b"").unwrap();
    assert_eq!(stats.status, 200);
    let text = std::str::from_utf8(&stats.body).unwrap();
    for field in [
        "\"accepted\":",
        "\"shed\":",
        "\"result_cache\":",
        "\"scaffold_cache\":",
        "\"joins\":",
        "\"hits\":",
    ] {
        assert!(text.contains(field), "stats JSON missing {field}: {text}");
    }

    let missing = client.request("GET", "/nope", b"").unwrap();
    assert_eq!(missing.status, 404);
    let wrong_method = client.request("GET", "/assess", b"").unwrap();
    assert_eq!(wrong_method.status, 405);

    handle.shutdown();
}

#[test]
fn assess_answers_with_ladder_result_and_cache_is_bit_identical() {
    let handle = start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let body = bigmart_instance().to_text();

    let cold = client.request("POST", "/assess", body.as_bytes()).unwrap();
    assert_eq!(
        cold.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&cold.body)
    );
    assert_eq!(response_header(&cold, "x-andi-cache"), Some("miss"));
    assert!(response_header(&cold, "x-andi-spent-ms").is_some());
    let text = std::str::from_utf8(&cold.body).unwrap();
    assert!(text.contains("\"n\":6"), "{text}");
    assert!(text.contains("\"expected_cracks\":1.8125"), "{text}");
    assert!(text.contains("\"spent_ms\":0"), "{text}");

    // Extract and re-parse the provenance object via the oracle's
    // serializer: the service speaks the committed format.
    let start_ix = text.find("\"provenance\":").unwrap() + "\"provenance\":".len();
    let rest = &text[start_ix..];
    let end_ix = rest.find(",\"probs\"").unwrap();
    let prov = provenance_from_json(&rest[..end_ix]).unwrap();
    assert!(prov.trips.is_empty());
    assert!(!prov.degraded);

    let hit = client.request("POST", "/assess", body.as_bytes()).unwrap();
    assert_eq!(hit.status, 200);
    assert_eq!(response_header(&hit, "x-andi-cache"), Some("hit"));
    assert_eq!(cold.body, hit.body, "cache hit must be bit-identical");

    // Same database, different belief: shares the scaffold, not the
    // result.
    let mut other = bigmart_instance();
    other.intervals = vec![(0.0, 1.0); 6];
    let second = client
        .request("POST", "/assess", other.to_text().as_bytes())
        .unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(response_header(&second, "x-andi-cache"), Some("miss"));
    assert_ne!(cold.body, second.body);

    let stats = client.request("GET", "/stats", b"").unwrap();
    let stats_text = std::str::from_utf8(&stats.body).unwrap();
    assert!(
        stats_text.contains("\"result_cache\":{\"hits\":1"),
        "expected one result-cache hit: {stats_text}"
    );

    handle.shutdown();
}

#[test]
fn invalid_instances_get_structured_400s() {
    let handle = start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Junk body.
    let resp = client
        .request("POST", "/assess", b"not an instance")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(std::str::from_utf8(&resp.body)
        .unwrap()
        .contains("\"kind\":\"invalid-instance\""));

    // Structurally invalid: support exceeds m.
    let mut bad = bigmart_instance();
    bad.supports[0] = 99;
    let resp = client
        .request("POST", "/assess", bad.to_text().as_bytes())
        .unwrap();
    assert_eq!(resp.status, 400);

    // Empty mapping space: disjoint point beliefs.
    let empty = Instance {
        label: "empty".to_string(),
        regime: Regime::Adversarial,
        supports: vec![4, 8],
        m: 10,
        intervals: vec![(0.4, 0.4), (0.4, 0.4)],
        mask: None,
    };
    let resp = client
        .request("POST", "/assess", empty.to_text().as_bytes())
        .unwrap();
    assert_eq!(resp.status, 422);
    assert!(std::str::from_utf8(&resp.body)
        .unwrap()
        .contains("empty-mapping-space"));

    handle.shutdown();
}

#[test]
fn zero_capacity_queue_sheds_with_retry_after() {
    let cfg = ServeConfig {
        queue_cap: 0,
        ..ServeConfig::default()
    };
    let handle = start(cfg).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client.request("GET", "/health", b"").unwrap();
    assert_eq!(resp.status, 429);
    let retry = response_header(&resp, "retry-after").unwrap();
    assert!(retry.parse::<u64>().unwrap() >= 1);
    assert!(std::str::from_utf8(&resp.body)
        .unwrap()
        .contains("\"kind\":\"overloaded\""));
    handle.shutdown();
}

#[test]
fn shutdown_drains_cleanly_with_idle_keepalive_connections() {
    let handle = start(ServeConfig::default()).unwrap();
    // Open idle keep-alive connections and one that completed a
    // request; drain must not hang on any of them.
    let _idle1 = Client::connect(handle.addr()).unwrap();
    let _idle2 = Client::connect(handle.addr()).unwrap();
    let mut active = Client::connect(handle.addr()).unwrap();
    let resp = active.request("GET", "/health", b"").unwrap();
    assert_eq!(resp.status, 200);
    handle.shutdown();
}

//! Synthetic dataset substrate.
//!
//! The paper evaluates on six UCI/FIMI benchmarks that are not
//! redistributable here. This module provides *analogs*: generators
//! calibrated to the published Figure 9 statistics of each benchmark
//! (see DESIGN.md for the substitution rationale). Real FIMI files
//! drop in via [`crate::fimi`] when available.

pub mod materialize;
pub mod profile;
pub mod quest;
pub mod zipf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::database::Database;
use crate::stats::FrequencyGroups;
use materialize::materialize;
use profile::{AnalogSpec, GapShape};

/// The six benchmark analogs of Figure 9.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Analog {
    /// CONNECT: small dense domain, almost every support distinct.
    Connect,
    /// PUMSB: mid-size domain with heavy low-support collision mass.
    Pumsb,
    /// ACCIDENTS: large transaction count, mostly distinct supports.
    Accidents,
    /// RETAIL: very sparse; the paper's outlier dataset.
    Retail,
    /// MUSHROOM: small dense domain.
    Mushroom,
    /// CHESS: smallest, densest domain.
    Chess,
}

impl Analog {
    /// All six analogs in the paper's Figure 9 order.
    pub const ALL: [Analog; 6] = [
        Analog::Connect,
        Analog::Pumsb,
        Analog::Accidents,
        Analog::Retail,
        Analog::Mushroom,
        Analog::Chess,
    ];

    /// The four analogs shown in Figures 10 and 11.
    pub const FIGURE_10: [Analog; 4] = [
        Analog::Connect,
        Analog::Pumsb,
        Analog::Accidents,
        Analog::Retail,
    ];

    /// The calibrated shape specification (numbers from Figure 9).
    pub fn spec(self) -> AnalogSpec {
        match self {
            Analog::Connect => AnalogSpec {
                name: "CONNECT",
                n_items: 130,
                n_transactions: 67_557,
                n_groups: 125,
                n_singleton_groups: 122,
                mean_gap: 0.0081,
                median_gap: 0.0029,
                min_frequency: 0.02,
                size_exponent: 1.0,
                collisions_at_bottom: false,
                gap_shape: GapShape::Shuffled,
            },
            Analog::Pumsb => AnalogSpec {
                name: "PUMSB",
                n_items: 2_113,
                n_transactions: 49_046,
                n_groups: 650,
                n_singleton_groups: 421,
                mean_gap: 0.00154,
                median_gap: 0.000041,
                min_frequency: 0.0005,
                size_exponent: 1.3,
                collisions_at_bottom: true,
                gap_shape: GapShape::Ascending,
            },
            Analog::Accidents => AnalogSpec {
                name: "ACCIDENTS",
                n_items: 469,
                n_transactions: 340_184,
                n_groups: 310,
                n_singleton_groups: 286,
                mean_gap: 0.00324,
                median_gap: 0.000176,
                min_frequency: 0.002,
                size_exponent: 1.1,
                collisions_at_bottom: true,
                gap_shape: GapShape::Ascending,
            },
            Analog::Retail => AnalogSpec {
                name: "RETAIL",
                n_items: 16_470,
                n_transactions: 88_163,
                n_groups: 582,
                n_singleton_groups: 218,
                mean_gap: 0.00099,
                median_gap: 0.0000113,
                min_frequency: 0.00002,
                size_exponent: 1.6,
                collisions_at_bottom: true,
                gap_shape: GapShape::Ascending,
            },
            Analog::Mushroom => AnalogSpec {
                name: "MUSHROOM",
                n_items: 120,
                n_transactions: 8_124,
                n_groups: 90,
                n_singleton_groups: 77,
                mean_gap: 0.01124,
                median_gap: 0.00394,
                min_frequency: 0.01,
                size_exponent: 1.1,
                collisions_at_bottom: false,
                gap_shape: GapShape::Shuffled,
            },
            Analog::Chess => AnalogSpec {
                name: "CHESS",
                n_items: 75,
                n_transactions: 3_196,
                n_groups: 73,
                n_singleton_groups: 71,
                mean_gap: 0.01389,
                median_gap: 0.00657,
                min_frequency: 0.03,
                size_exponent: 1.0,
                collisions_at_bottom: false,
                gap_shape: GapShape::Shuffled,
            },
        }
    }

    /// Dataset name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// A fixed per-analog seed so experiments are reproducible.
    fn default_seed(self) -> u64 {
        match self {
            Analog::Connect => 0xC0_2005,
            Analog::Pumsb => 0x70_2005,
            Analog::Accidents => 0xAC_2005,
            Analog::Retail => 0x4E_2005,
            Analog::Mushroom => 0x30_2005,
            Analog::Chess => 0xCE_2005,
        }
    }

    /// Synthesizes the support profile with the default seed.
    pub fn supports(self) -> Vec<u64> {
        self.supports_seeded(self.default_seed())
    }

    /// Synthesizes the support profile with an explicit seed.
    pub fn supports_seeded(self, seed: u64) -> Vec<u64> {
        let spec = self.spec();
        let mut rng = StdRng::seed_from_u64(seed);
        spec.synthesize_supports(&mut rng)
    }

    /// The frequency-group decomposition of the default profile.
    pub fn frequency_groups(self) -> FrequencyGroups {
        FrequencyGroups::from_supports(&self.supports(), self.spec().n_transactions)
    }

    /// Materializes a full transaction database (default seed).
    ///
    /// The large analogs allocate tens of millions of item
    /// occurrences; prefer [`Analog::supports`] when only the
    /// frequency profile is needed.
    pub fn database(self) -> Database {
        self.database_seeded(self.default_seed())
    }

    /// Materializes a full transaction database with an explicit
    /// seed.
    pub fn database_seeded(self, seed: u64) -> Database {
        let spec = self.spec();
        let supports = self.supports_seeded(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_F00D);
        materialize(&supports, spec.n_transactions, &mut rng).database
    }
}

impl std::fmt::Display for Analog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_are_consistent() {
        for analog in Analog::ALL {
            let spec = analog.spec();
            // Synthesizing validates internally; also check the
            // published shape is honored exactly.
            let supports = analog.supports();
            assert_eq!(supports.len(), spec.n_items, "{analog}");
            let fg = FrequencyGroups::from_supports(&supports, spec.n_transactions);
            assert_eq!(fg.n_groups(), spec.n_groups, "{analog}");
            assert_eq!(fg.n_singleton_groups(), spec.n_singleton_groups, "{analog}");
        }
    }

    #[test]
    fn default_seed_is_stable() {
        let a = Analog::Chess.supports();
        let b = Analog::Chess.supports();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Analog::Chess.supports_seeded(1);
        let b = Analog::Chess.supports_seeded(2);
        assert_ne!(a, b);
    }

    #[test]
    fn chess_database_materializes() {
        let db = Analog::Chess.database();
        assert_eq!(db.n_items(), 75);
        assert_eq!(db.n_transactions(), 3_196);
        // Supports of the materialized database group like the
        // profile up to rare empty-transaction fills.
        let fg = FrequencyGroups::of_database(&db);
        let target = Analog::Chess.spec();
        let diff = (fg.n_groups() as i64 - target.n_groups as i64).abs();
        assert!(
            diff <= 3,
            "groups {} vs target {}",
            fg.n_groups(),
            target.n_groups
        );
    }

    #[test]
    fn mushroom_gap_stats_are_in_band() {
        let fg = Analog::Mushroom.frequency_groups();
        let stats = fg.gap_stats().unwrap();
        let spec = Analog::Mushroom.spec();
        assert!(
            (stats.mean - spec.mean_gap).abs() / spec.mean_gap < 0.3,
            "mean {} vs {}",
            stats.mean,
            spec.mean_gap
        );
        assert!(stats.median <= stats.mean);
    }

    #[test]
    fn display_names() {
        assert_eq!(Analog::Retail.to_string(), "RETAIL");
        assert_eq!(Analog::ALL.len(), 6);
        assert_eq!(Analog::FIGURE_10.len(), 4);
    }
}

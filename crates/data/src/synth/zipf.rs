//! Power-law (Zipf) support-profile generators.
//!
//! These are general-purpose profiles used by property tests,
//! mining workloads and ad-hoc experiments. The calibrated
//! per-benchmark analogs live in [`super::profile`].

use rand::Rng;

/// Deterministic Zipf support profile: item of rank `r` (1-based)
/// gets support `round(top_support / r^theta)`, clamped to
/// `[min_support, n_transactions]`.
///
/// Items are returned in rank order (item 0 is the most frequent).
///
/// # Panics
///
/// Panics if `n_items == 0`, `top_support == 0`, or
/// `min_support > top_support`.
pub fn zipf_supports(
    n_items: usize,
    n_transactions: u64,
    top_support: u64,
    theta: f64,
    min_support: u64,
) -> Vec<u64> {
    assert!(n_items > 0, "need at least one item");
    assert!(top_support > 0, "top support must be positive");
    assert!(
        min_support <= top_support,
        "min support {min_support} exceeds top support {top_support}"
    );
    (1..=n_items)
        .map(|r| {
            let raw = top_support as f64 / (r as f64).powf(theta);
            (raw.round() as u64).clamp(min_support, n_transactions)
        })
        .collect()
}

/// Random support profile: each item's frequency is drawn as
/// `u^skew` for `u ~ Uniform(0,1)`, scaled into
/// `[min_support, max_support]`. `skew > 1` concentrates mass at low
/// frequencies (the shape of real transaction data); `skew == 1` is
/// uniform.
///
/// # Panics
///
/// Panics on an empty domain or an inverted support range.
pub fn random_supports<R: Rng + ?Sized>(
    n_items: usize,
    min_support: u64,
    max_support: u64,
    skew: f64,
    rng: &mut R,
) -> Vec<u64> {
    assert!(n_items > 0, "need at least one item");
    assert!(
        min_support <= max_support,
        "support range is inverted: {min_support} > {max_support}"
    );
    let span = (max_support - min_support) as f64;
    (0..n_items)
        .map(|_| {
            let u: f64 = rng.gen();
            min_support + (u.powf(skew) * span).round() as u64
        })
        .collect()
}

/// One-call synthetic dataset: a Zipf support profile materialized
/// into transactions.
///
/// # Examples
///
/// ```
/// use andi_data::synth::zipf::zipf_database;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let db = zipf_database(50, 500, 250, 1.1, &mut rng);
/// assert_eq!(db.n_items(), 50);
/// assert_eq!(db.n_transactions(), 500);
/// // Head items dominate the tail, Zipf-style.
/// let s = db.supports();
/// assert!(s[0] > 5 * s[49]);
/// ```
///
/// # Panics
///
/// As [`zipf_supports`] / the materializer: positive domain and
/// transaction counts, `top_support <= n_transactions`.
pub fn zipf_database<R: Rng + ?Sized>(
    n_items: usize,
    n_transactions: u64,
    top_support: u64,
    theta: f64,
    rng: &mut R,
) -> crate::database::Database {
    let supports = zipf_supports(n_items, n_transactions, top_support, theta, 1);
    crate::synth::materialize::materialize(&supports, n_transactions, rng).database
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_monotone_nonincreasing() {
        let s = zipf_supports(100, 10_000, 5_000, 1.1, 1);
        assert_eq!(s.len(), 100);
        assert!(s.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(s[0], 5_000);
        assert!(*s.last().unwrap() >= 1);
    }

    #[test]
    fn zipf_respects_clamps() {
        let s = zipf_supports(50, 100, 1_000, 1.0, 3);
        assert!(s.iter().all(|&x| (3..=100).contains(&x)));
    }

    #[test]
    fn zipf_theta_zero_is_flat() {
        let s = zipf_supports(10, 1_000, 42, 0.0, 1);
        assert!(s.iter().all(|&x| x == 42));
    }

    #[test]
    fn random_supports_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = random_supports(500, 10, 90, 2.0, &mut rng);
        assert!(s.iter().all(|&x| (10..=90).contains(&x)));
    }

    #[test]
    fn random_supports_skew_shifts_mass_down() {
        let mut rng = StdRng::seed_from_u64(12);
        let flat = random_supports(5_000, 0, 1_000, 1.0, &mut rng);
        let skewed = random_supports(5_000, 0, 1_000, 4.0, &mut rng);
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            mean(&skewed) < mean(&flat) * 0.5,
            "skew 4 should concentrate well below the uniform mean"
        );
    }
}

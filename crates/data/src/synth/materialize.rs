//! Materializing a transaction database from a support profile.
//!
//! Given target supports `s_x` over `m` transactions, each item is
//! placed into exactly `s_x` distinct transactions chosen uniformly
//! at random. The resulting database reproduces the support profile
//! *exactly* (the quantity all of the paper's analysis consumes);
//! item co-occurrence is independent, which is the documented
//! substitution for the unavailable benchmark files (see DESIGN.md).
//!
//! Transactions must be non-empty; a transaction left empty by the
//! random placement receives one uniformly chosen item, whose support
//! grows by one (a vanishing perturbation for realistic profiles, and
//! reported by [`MaterializedDatabase::support_adjustments`]).

use rand::seq::index::sample as index_sample;
use rand::Rng;

use crate::database::Database;
use crate::item::ItemId;
use crate::transaction::Transaction;

/// A materialized database plus bookkeeping about the (rare) empty-
/// transaction repairs.
#[derive(Clone, Debug)]
pub struct MaterializedDatabase {
    /// The generated database.
    pub database: Database,
    /// Number of transactions that required a filler item.
    pub filled_transactions: usize,
}

impl MaterializedDatabase {
    /// How many item supports differ (by +1 each) from the requested
    /// profile. Equals `filled_transactions`.
    pub fn support_adjustments(&self) -> usize {
        self.filled_transactions
    }
}

/// Materializes a database with the given per-item supports over
/// `n_transactions` transactions.
///
/// # Panics
///
/// Panics if any support exceeds `n_transactions`, if the profile is
/// empty, or if `n_transactions` is zero.
pub fn materialize<R: Rng + ?Sized>(
    supports: &[u64],
    n_transactions: u64,
    rng: &mut R,
) -> MaterializedDatabase {
    assert!(!supports.is_empty(), "empty support profile");
    assert!(n_transactions > 0, "need at least one transaction");
    let m = n_transactions as usize;
    for (x, &s) in supports.iter().enumerate() {
        assert!(
            s <= n_transactions,
            "item {x} has support {s} > {n_transactions} transactions"
        );
    }

    let mut contents: Vec<Vec<ItemId>> = vec![Vec::new(); m];
    for (x, &s) in supports.iter().enumerate() {
        if s == 0 {
            continue;
        }
        for t in index_sample(rng, m, s as usize) {
            contents[t].push(ItemId(x as u32));
        }
    }

    let n_items = supports.len();
    let mut filled = 0usize;
    let transactions: Vec<Transaction> = contents
        .into_iter()
        .map(|mut items| {
            if items.is_empty() {
                filled += 1;
                items.push(ItemId(rng.gen_range(0..n_items as u32)));
            }
            items.sort_unstable();
            Transaction::from_sorted_unique(items)
        })
        .collect();

    // The generator pads every transaction to non-empty and ids stay
    // < n_items, so the trusted constructor applies.
    let database = Database::from_trusted(n_items, transactions);
    MaterializedDatabase {
        database,
        filled_transactions: filled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn supports_match_exactly_without_fills() {
        let mut rng = StdRng::seed_from_u64(21);
        // Dense enough that no transaction stays empty.
        let supports = vec![90, 80, 70, 95, 60];
        let md = materialize(&supports, 100, &mut rng);
        assert_eq!(md.filled_transactions, 0);
        assert_eq!(md.database.supports(), supports);
        assert_eq!(md.database.n_transactions(), 100);
    }

    #[test]
    fn fills_report_support_drift() {
        let mut rng = StdRng::seed_from_u64(22);
        // Extremely sparse: most transactions will be empty.
        let supports = vec![1, 1];
        let md = materialize(&supports, 50, &mut rng);
        assert!(md.filled_transactions >= 46);
        let got = md.database.supports();
        // Each fill bumps exactly one item by one.
        let drift: u64 = got.iter().sum::<u64>() - 2;
        assert_eq!(drift, md.filled_transactions as u64);
        assert_eq!(md.support_adjustments(), md.filled_transactions);
    }

    #[test]
    fn zero_support_items_appear_only_as_fills() {
        let mut rng = StdRng::seed_from_u64(23);
        let supports = vec![10, 0];
        let md = materialize(&supports, 10, &mut rng);
        assert_eq!(md.filled_transactions, 0);
        assert_eq!(md.database.supports(), vec![10, 0]);
    }

    #[test]
    #[should_panic(expected = "support")]
    fn rejects_support_above_m() {
        let mut rng = StdRng::seed_from_u64(24);
        let _ = materialize(&[11], 10, &mut rng);
    }

    #[test]
    fn deterministic_under_seed() {
        let supports = vec![5, 3, 8, 2];
        let a = materialize(&supports, 10, &mut StdRng::seed_from_u64(25));
        let b = materialize(&supports, 10, &mut StdRng::seed_from_u64(25));
        for (ta, tb) in a
            .database
            .transactions()
            .iter()
            .zip(b.database.transactions())
        {
            assert_eq!(ta.items(), tb.items());
        }
    }

    #[test]
    fn all_transactions_nonempty() {
        let mut rng = StdRng::seed_from_u64(26);
        let supports = vec![2, 3, 1, 1];
        let md = materialize(&supports, 20, &mut rng);
        assert!(md.database.transactions().iter().all(|t| !t.is_empty()));
    }
}

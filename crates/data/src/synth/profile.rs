//! Calibrated support-profile synthesis for the paper's benchmarks.
//!
//! The real UCI/FIMI datasets are unavailable offline, but every
//! quantity the paper's analysis consumes is a function of the item
//! *frequency profile*: the frequency groups, their sizes, and the
//! gaps between them (Figure 9). We therefore synthesize profiles
//! that match the published shape *by construction*:
//!
//! 1. the number of frequency groups `g` and singleton groups are
//!    taken directly from Figure 9;
//! 2. the `g - 1` gaps between group frequencies are drawn from a
//!    log-normal whose `σ` is fitted to the published mean/median gap
//!    ratio (`mean/median = exp(σ²/2)` for a log-normal), then scaled
//!    so the total span matches `mean_gap · (g - 1)`;
//! 3. non-singleton group sizes follow a power law, and (matching the
//!    bottom-heavy frequency distribution of real transaction data)
//!    large groups are assigned to the lowest frequencies for the
//!    sparse datasets.
//!
//! The result is a support profile whose Figure 9 row is close to the
//! paper's — `fig9_stats` prints both side by side.

use rand::Rng;

/// Samples a standard normal deviate via the Box–Muller transform.
/// Kept local to avoid pulling in `rand_distr` for one distribution.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // gen::<f64>() yields [0, 1); shift to (0, 1] so ln() is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `LogNormal(mu = 0, sigma)`.
fn lognormal<R: Rng + ?Sized>(sigma: f64, rng: &mut R) -> f64 {
    (sigma * standard_normal(rng)).exp()
}

/// How the drawn gaps are arranged along the frequency axis.
///
/// The gap *multiset* (hence every Figure 9 statistic) is identical
/// either way; the arrangement controls where groups concentrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapShape {
    /// Gaps in random draw order: group frequencies spread roughly
    /// uniformly over the span (dense datasets like CONNECT/CHESS,
    /// whose items range up to very high frequencies).
    Shuffled,
    /// Gaps sorted ascending: tiny gaps first, so most groups crowd
    /// the low-frequency end and a few giant gaps push the top items
    /// out — the bottom-heavy profile of real sparse transaction
    /// data (RETAIL/PUMSB/ACCIDENTS).
    Ascending,
}

/// Shape specification for one benchmark analog.
#[derive(Clone, Debug)]
pub struct AnalogSpec {
    /// Dataset name (for reports).
    pub name: &'static str,
    /// Domain size `n = |I|` (Figure 9 "# items").
    pub n_items: usize,
    /// Number of transactions `m` (Figure 9 "# Trans.").
    pub n_transactions: u64,
    /// Target number of frequency groups (Figure 9 "# Gps.").
    pub n_groups: usize,
    /// Target number of singleton groups (Figure 9 "Size 1 Gps.").
    pub n_singleton_groups: usize,
    /// Published mean gap between successive group frequencies.
    pub mean_gap: f64,
    /// Published median gap.
    pub median_gap: f64,
    /// Lowest item frequency to generate.
    pub min_frequency: f64,
    /// Exponent of the power law over non-singleton group sizes.
    pub size_exponent: f64,
    /// Sparse datasets collide at the bottom of the frequency
    /// spectrum; dense ones scatter their few collisions randomly.
    pub collisions_at_bottom: bool,
    /// Arrangement of the gaps along the frequency axis.
    pub gap_shape: GapShape,
}

impl AnalogSpec {
    /// Synthesizes a support profile matching this spec.
    ///
    /// The returned vector has `n_items` entries; entry `x` is the
    /// support count of item `x`. Group and singleton counts match
    /// the spec exactly; gap statistics match in distribution.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (more groups than items,
    /// more singletons than groups, or a span that does not fit in
    /// `(0, 1)`).
    pub fn synthesize_supports<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        self.assert_consistent();
        let g = self.n_groups;
        let m = self.n_transactions;

        let group_supports = self.group_supports(rng);
        debug_assert_eq!(group_supports.len(), g);
        debug_assert!(group_supports.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(group_supports.last().is_some_and(|&s| s <= m));

        let sizes = self.group_sizes(rng);
        debug_assert_eq!(sizes.len(), g);
        debug_assert_eq!(sizes.iter().sum::<usize>(), self.n_items);

        // Emit supports item by item. Item ids within a group are
        // consecutive; the caller anonymizes anyway.
        let mut supports = Vec::with_capacity(self.n_items);
        for (s, &size) in group_supports.iter().zip(sizes.iter()) {
            supports.extend(std::iter::repeat_n(*s, size));
        }
        supports
    }

    /// Draws `g` strictly increasing support counts whose gaps follow
    /// the fitted log-normal.
    fn group_supports<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        let g = self.n_groups;
        let m = self.n_transactions as f64;
        if g == 1 {
            return vec![(self.min_frequency * m).round().max(1.0) as u64];
        }
        // mean/median = exp(sigma^2 / 2) for LogNormal(mu, sigma).
        let ratio = (self.mean_gap / self.median_gap).max(1.0 + 1e-9);
        let sigma = (2.0 * ratio.ln()).sqrt();

        let span_counts = (self.mean_gap * (g - 1) as f64 * m).round();
        let start = (self.min_frequency * m).round().max(1.0);
        // Keep the top frequency strictly below 1.
        let span_counts = span_counts.min(m - start - 1.0);

        let mut raw: Vec<f64> = (0..g - 1).map(|_| lognormal(sigma, rng)).collect();
        if self.gap_shape == GapShape::Ascending {
            raw.sort_by(f64::total_cmp);
        }
        let total: f64 = raw.iter().sum();
        let mut supports = Vec::with_capacity(g);
        let mut acc = start;
        supports.push(acc as u64);
        for r in &raw {
            // Scale to the target span; every gap is at least one
            // transaction so supports stay strictly increasing.
            let gap = (r / total * span_counts).round().max(1.0);
            acc = (acc + gap).min(m - 1.0);
            supports.push(acc as u64);
        }
        // The min-gap floor and the m-1 cap can introduce ties at the
        // extremes; restore strict monotonicity by shifting down from
        // the top (supports stay >= 1).
        for i in (0..g - 1).rev() {
            if supports[i] >= supports[i + 1] {
                supports[i] = supports[i + 1] - 1;
            }
        }
        assert!(
            supports[0] >= 1,
            "support profile underflowed; spec too tight"
        );
        supports
    }

    /// Splits `n_items` into `n_groups` sizes with exactly
    /// `n_singleton_groups` ones; non-singleton sizes follow a power
    /// law. Large groups go to low frequencies when
    /// `collisions_at_bottom`, otherwise positions are shuffled.
    fn group_sizes<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        let g = self.n_groups;
        let singles = self.n_singleton_groups;
        let multi_groups = g - singles;
        let multi_items = self.n_items - singles;

        let mut multi_sizes = vec![0usize; multi_groups];
        if multi_groups > 0 {
            // Power-law weights, largest first; start every group at
            // size 2 and distribute the remainder proportionally.
            debug_assert!(multi_items >= 2 * multi_groups);
            let weights: Vec<f64> = (1..=multi_groups)
                .map(|i| 1.0 / (i as f64).powf(self.size_exponent))
                .collect();
            let wsum: f64 = weights.iter().sum();
            let spare = multi_items - 2 * multi_groups;
            let mut assigned = 0usize;
            for (sz, w) in multi_sizes.iter_mut().zip(weights.iter()) {
                let extra = (w / wsum * spare as f64).floor() as usize;
                *sz = 2 + extra;
                assigned += extra;
            }
            // Largest-remainder leftovers go to the head groups.
            let mut leftover = spare - assigned;
            let mut i = 0;
            while leftover > 0 {
                multi_sizes[i % multi_groups] += 1;
                leftover -= 1;
                i += 1;
            }
        }

        // Positions of the multi groups along the frequency axis.
        let mut positions: Vec<usize> = (0..g).collect();
        if !self.collisions_at_bottom {
            use rand::seq::SliceRandom;
            positions.shuffle(rng);
        }
        let mut sizes = vec![1usize; g];
        // multi_sizes is descending; positions[0..multi_groups] are
        // the lowest frequencies in the sparse layout.
        for (k, &sz) in multi_sizes.iter().enumerate() {
            sizes[positions[k]] = sz;
        }
        sizes
    }

    fn assert_consistent(&self) {
        assert!(self.n_groups >= 1, "{}: need at least one group", self.name);
        assert!(
            self.n_groups <= self.n_items,
            "{}: more groups than items",
            self.name
        );
        assert!(
            self.n_singleton_groups <= self.n_groups,
            "{}: more singleton groups than groups",
            self.name
        );
        let multi_groups = self.n_groups - self.n_singleton_groups;
        let multi_items = self.n_items - self.n_singleton_groups;
        assert!(
            multi_items >= 2 * multi_groups,
            "{}: non-singleton groups need at least two items each",
            self.name
        );
        assert!(
            self.min_frequency > 0.0 && self.min_frequency < 1.0,
            "{}: min frequency out of range",
            self.name
        );
        assert!(
            self.mean_gap > 0.0 && self.median_gap > 0.0,
            "{}: gaps must be positive",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::FrequencyGroups;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_spec() -> AnalogSpec {
        AnalogSpec {
            name: "TOY",
            n_items: 100,
            n_transactions: 10_000,
            n_groups: 40,
            n_singleton_groups: 25,
            mean_gap: 0.004,
            median_gap: 0.001,
            min_frequency: 0.001,
            size_exponent: 1.2,
            collisions_at_bottom: true,
            gap_shape: GapShape::Shuffled,
        }
    }

    #[test]
    fn matches_group_and_singleton_targets_exactly() {
        let spec = toy_spec();
        let mut rng = StdRng::seed_from_u64(7);
        let supports = spec.synthesize_supports(&mut rng);
        assert_eq!(supports.len(), 100);
        let fg = FrequencyGroups::from_supports(&supports, spec.n_transactions);
        assert_eq!(fg.n_groups(), 40);
        assert_eq!(fg.n_singleton_groups(), 25);
    }

    #[test]
    fn supports_are_valid_counts() {
        let spec = toy_spec();
        let mut rng = StdRng::seed_from_u64(8);
        let supports = spec.synthesize_supports(&mut rng);
        assert!(supports.iter().all(|&s| s >= 1 && s < spec.n_transactions));
    }

    #[test]
    fn gap_shape_tracks_targets() {
        let spec = toy_spec();
        let mut rng = StdRng::seed_from_u64(9);
        let supports = spec.synthesize_supports(&mut rng);
        let fg = FrequencyGroups::from_supports(&supports, spec.n_transactions);
        let stats = fg.gap_stats().unwrap();
        // Mean gap is matched by scaling up to rounding/floor effects.
        assert!(
            (stats.mean - spec.mean_gap).abs() / spec.mean_gap < 0.25,
            "mean gap {} vs target {}",
            stats.mean,
            spec.mean_gap
        );
        // Median is matched in distribution; allow a loose band.
        assert!(
            stats.median < stats.mean,
            "log-normal gaps must have median below mean"
        );
    }

    #[test]
    fn dense_layout_scatters_collisions() {
        let mut spec = toy_spec();
        spec.collisions_at_bottom = false;
        let mut rng = StdRng::seed_from_u64(10);
        let supports = spec.synthesize_supports(&mut rng);
        let fg = FrequencyGroups::from_supports(&supports, spec.n_transactions);
        assert_eq!(fg.n_groups(), 40);
        assert_eq!(fg.n_singleton_groups(), 25);
        // At least one non-singleton group must sit in the upper half
        // of the spectrum with overwhelming probability.
        let upper_multi = fg.groups[20..]
            .iter()
            .filter(|grp| grp.items.len() > 1)
            .count();
        assert!(upper_multi > 0, "collisions should be scattered");
    }

    #[test]
    fn single_group_spec_works() {
        let spec = AnalogSpec {
            name: "ONE",
            n_items: 5,
            n_transactions: 100,
            n_groups: 1,
            n_singleton_groups: 0,
            mean_gap: 0.01,
            median_gap: 0.01,
            min_frequency: 0.5,
            size_exponent: 1.0,
            collisions_at_bottom: true,
            gap_shape: GapShape::Shuffled,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let supports = spec.synthesize_supports(&mut rng);
        assert!(supports.iter().all(|&s| s == supports[0]));
    }

    #[test]
    #[should_panic(expected = "more groups than items")]
    fn rejects_inconsistent_spec() {
        let mut spec = toy_spec();
        spec.n_groups = 200;
        spec.n_singleton_groups = 200;
        let mut rng = StdRng::seed_from_u64(12);
        let _ = spec.synthesize_supports(&mut rng);
    }
}

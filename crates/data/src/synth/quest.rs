//! IBM Quest-style correlated market-basket generator.
//!
//! The frequency-profile analogs in [`super::profile`] generate items
//! independently, which is all the disclosure analysis needs. The
//! frequent-set-mining examples and benches, however, want realistic
//! *co-occurrence*: transactions assembled from a pool of latent
//! patterns, in the spirit of Agrawal & Srikant's Quest generator
//! referenced by the paper's frequent-set lineage \[6\].

use rand::seq::SliceRandom;
use rand::Rng;

use crate::database::Database;
use crate::item::ItemId;
use crate::transaction::Transaction;

/// Parameters of the basket generator.
#[derive(Clone, Debug)]
pub struct QuestConfig {
    /// Domain size.
    pub n_items: usize,
    /// Number of transactions to generate.
    pub n_transactions: usize,
    /// Number of latent patterns in the pool.
    pub n_patterns: usize,
    /// Average pattern length (lengths are `2..=2*avg-2`, uniform).
    pub avg_pattern_len: usize,
    /// Patterns drawn per transaction (at least one).
    pub patterns_per_transaction: usize,
    /// Probability of adding each of up to `noise_max` random noise
    /// items to a transaction.
    pub noise_prob: f64,
    /// Maximum noise items per transaction.
    pub noise_max: usize,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            n_items: 200,
            n_transactions: 2_000,
            n_patterns: 40,
            avg_pattern_len: 4,
            patterns_per_transaction: 2,
            noise_prob: 0.3,
            noise_max: 3,
        }
    }
}

/// Generates a correlated basket database.
///
/// Patterns themselves are drawn Zipf-ish over the domain so some
/// items are structurally hotter than others; each transaction is a
/// union of randomly chosen patterns plus noise items.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no items, patterns
/// longer than the domain, no transactions).
/// # Examples
///
/// ```
/// use andi_data::synth::quest::{generate, QuestConfig};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let db = generate(&QuestConfig::default(), &mut rng);
/// assert_eq!(db.n_items(), 200);
/// assert!(db.avg_transaction_len() > 2.0);
/// ```
pub fn generate<R: Rng + ?Sized>(config: &QuestConfig, rng: &mut R) -> Database {
    assert!(config.n_items >= 2, "domain too small");
    assert!(config.n_transactions >= 1, "need at least one transaction");
    assert!(config.n_patterns >= 1, "need at least one pattern");
    assert!(
        config.avg_pattern_len >= 2 && 2 * config.avg_pattern_len - 2 <= config.n_items,
        "pattern lengths must fit the domain"
    );
    assert!(config.patterns_per_transaction >= 1);

    // Zipf-weighted item popularity for pattern construction.
    let weights: Vec<f64> = (1..=config.n_items)
        .map(|r| 1.0 / (r as f64).sqrt())
        .collect();
    let total_w: f64 = weights.iter().sum();
    let pick_item = |rng: &mut R| -> ItemId {
        let mut t = rng.gen::<f64>() * total_w;
        for (i, w) in weights.iter().enumerate() {
            t -= w;
            if t <= 0.0 {
                return ItemId(i as u32);
            }
        }
        ItemId((config.n_items - 1) as u32)
    };

    // Build the latent pattern pool.
    let min_len = 2;
    let max_len = 2 * config.avg_pattern_len - 2;
    let mut patterns: Vec<Vec<ItemId>> = Vec::with_capacity(config.n_patterns);
    for _ in 0..config.n_patterns {
        let len = rng.gen_range(min_len..=max_len.max(min_len));
        let mut p = Vec::with_capacity(len);
        while p.len() < len {
            let item = pick_item(rng);
            if !p.contains(&item) {
                p.push(item);
            }
        }
        patterns.push(p);
    }

    let mut transactions = Vec::with_capacity(config.n_transactions);
    let mut scratch: Vec<ItemId> = Vec::new();
    for _ in 0..config.n_transactions {
        scratch.clear();
        for _ in 0..config.patterns_per_transaction {
            // andi::allow(lib-unwrap) — the pattern pool is built with at least one pattern above
            let p = patterns.choose(rng).expect("pool is non-empty");
            scratch.extend_from_slice(p);
        }
        for _ in 0..config.noise_max {
            if rng.gen_bool(config.noise_prob) {
                scratch.push(ItemId(rng.gen_range(0..config.n_items as u32)));
            }
        }
        transactions
            // andi::allow(lib-unwrap) — scratch holds at least one non-empty pattern, so the transaction is non-empty
            .push(Transaction::new(scratch.iter().copied()).expect("patterns are non-empty"));
    }
    // Every transaction was built non-empty with ids < n_items.
    Database::from_trusted(config.n_items, transactions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_shape() {
        let mut rng = StdRng::seed_from_u64(31);
        let db = generate(&QuestConfig::default(), &mut rng);
        assert_eq!(db.n_items(), 200);
        assert_eq!(db.n_transactions(), 2_000);
        assert!(db.avg_transaction_len() >= 2.0);
    }

    #[test]
    fn patterns_create_cooccurrence() {
        // With few patterns and no noise, some item pair must co-occur
        // far above the independence expectation.
        let config = QuestConfig {
            n_items: 50,
            n_transactions: 1_000,
            n_patterns: 5,
            avg_pattern_len: 3,
            patterns_per_transaction: 1,
            noise_prob: 0.0,
            noise_max: 0,
        };
        let mut rng = StdRng::seed_from_u64(32);
        let db = generate(&config, &mut rng);
        let f = db.frequencies();
        let m = db.n_transactions() as f64;
        let mut max_lift = 0.0f64;
        for a in 0..10u32 {
            for b in (a + 1)..10u32 {
                let joint = db.itemset_support(&[ItemId(a), ItemId(b)]) as f64 / m;
                let indep = f[a as usize] * f[b as usize];
                if indep > 0.0 {
                    max_lift = max_lift.max(joint / indep);
                }
            }
        }
        assert!(
            max_lift > 2.0,
            "expected correlated pairs, best lift was {max_lift}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let config = QuestConfig::default();
        let a = generate(&config, &mut StdRng::seed_from_u64(33));
        let b = generate(&config, &mut StdRng::seed_from_u64(33));
        assert_eq!(a.supports(), b.supports());
    }

    #[test]
    #[should_panic(expected = "domain too small")]
    fn rejects_tiny_domain() {
        let config = QuestConfig {
            n_items: 1,
            ..QuestConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(34);
        let _ = generate(&config, &mut rng);
    }
}

//! Frequency groups and gap statistics (the Figure 9 columns).
//!
//! Anonymized items are grouped by their *observed frequency*
//! (Section 3.2): two items belong to the same frequency group iff
//! their supports are equal. To avoid floating-point equality
//! pitfalls, grouping is performed on the integer support counts;
//! frequencies are derived as `support / m` only afterwards.
//!
//! The gap statistics (mean/median/min/max gap between successive
//! frequency groups) feed the paper's `δ_med` heuristic: the Assess-
//! Risk recipe widens each item's believed frequency to
//! `[f - δ_med, f + δ_med]` where `δ_med` is the *median* gap
//! (Section 6.1).

use crate::database::Database;
use crate::item::ItemId;

/// One frequency group: the items sharing a common support count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrequencyGroup {
    /// Common support count of every item in the group.
    pub support: u64,
    /// Members, in increasing item-id order.
    pub items: Vec<ItemId>,
}

/// The complete frequency-group decomposition of a database's item
/// domain, ordered by increasing support.
#[derive(Clone, Debug)]
pub struct FrequencyGroups {
    /// Number of transactions the supports are relative to.
    pub n_transactions: u64,
    /// Groups in strictly increasing support order.
    pub groups: Vec<FrequencyGroup>,
}

impl FrequencyGroups {
    /// Computes the frequency groups of `db` (all items, including
    /// support-0 items, which form a group of their own if present).
    pub fn of_database(db: &Database) -> Self {
        Self::from_supports(&db.supports(), db.n_transactions() as u64)
    }

    /// Groups an explicit support profile. `supports[x]` is the
    /// support count of item `x`.
    pub fn from_supports(supports: &[u64], n_transactions: u64) -> Self {
        let mut order: Vec<usize> = (0..supports.len()).collect();
        order.sort_unstable_by_key(|&x| (supports[x], x));
        let mut groups: Vec<FrequencyGroup> = Vec::new();
        for x in order {
            let s = supports[x];
            match groups.last_mut() {
                Some(g) if g.support == s => g.items.push(ItemId(x as u32)),
                _ => groups.push(FrequencyGroup {
                    support: s,
                    items: vec![ItemId(x as u32)],
                }),
            }
        }
        FrequencyGroups {
            n_transactions,
            groups,
        }
    }

    /// Number of distinct observed frequencies, the paper's `g`
    /// (Lemma 3: the expected number of cracks under the compliant
    /// point-valued belief function).
    #[inline]
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of groups consisting of a single item ("Size 1 Gps." in
    /// Figure 9). Singleton-group items are cracked outright by a
    /// point-valued-compliant hacker.
    pub fn n_singleton_groups(&self) -> usize {
        self.groups.iter().filter(|g| g.items.len() == 1).count()
    }

    /// Total number of items across all groups.
    pub fn n_items(&self) -> usize {
        self.groups.iter().map(|g| g.items.len()).sum()
    }

    /// The frequency (support / m) of group `i`.
    #[inline]
    pub fn frequency(&self, i: usize) -> f64 {
        self.groups[i].support as f64 / self.n_transactions as f64
    }

    /// All group frequencies in increasing order.
    pub fn frequencies(&self) -> Vec<f64> {
        (0..self.groups.len()).map(|i| self.frequency(i)).collect()
    }

    /// Group sizes `n_1, ..., n_g` in increasing frequency order.
    pub fn sizes(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.items.len()).collect()
    }

    /// Gaps between successive group frequencies (length
    /// `n_groups - 1`; empty if fewer than two groups).
    pub fn gaps(&self) -> Vec<f64> {
        let m = self.n_transactions as f64;
        self.groups
            .windows(2)
            .map(|w| (w[1].support - w[0].support) as f64 / m)
            .collect()
    }

    /// Summary gap statistics, `None` if fewer than two groups.
    pub fn gap_stats(&self) -> Option<GapStats> {
        GapStats::from_gaps(&self.gaps())
    }

    /// The `δ_med` of the recipe: the median gap between successive
    /// frequency groups, or `None` with fewer than two groups.
    pub fn median_gap(&self) -> Option<f64> {
        self.gap_stats().map(|s| s.median)
    }

    /// Looks up the group index whose support equals `support`, if
    /// any (binary search over the sorted groups).
    pub fn group_of_support(&self, support: u64) -> Option<usize> {
        self.groups
            .binary_search_by_key(&support, |g| g.support)
            .ok()
    }

    /// The smallest group size — the frequency analog of a
    /// k-anonymity level: against a point-valued-compliant hacker,
    /// every item is hidden among at least this many candidates.
    /// `None` when there are no groups.
    pub fn min_group_size(&self) -> Option<usize> {
        self.groups.iter().map(|g| g.items.len()).min()
    }

    /// Histogram of group sizes: `hist[k]` counts groups of exactly
    /// `k` items (index 0 unused). The "camouflage profile" of the
    /// release.
    pub fn group_size_histogram(&self) -> Vec<usize> {
        let max = self.groups.iter().map(|g| g.items.len()).max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for g in &self.groups {
            hist[g.items.len()] += 1;
        }
        hist
    }
}

/// Mean/median/min/max statistics over the frequency gaps — the last
/// four columns of Figure 9.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GapStats {
    pub mean: f64,
    pub median: f64,
    pub min: f64,
    pub max: f64,
}

impl GapStats {
    /// Computes the statistics from raw gaps; `None` on empty input.
    pub fn from_gaps(gaps: &[f64]) -> Option<Self> {
        if gaps.is_empty() {
            return None;
        }
        let mut sorted = gaps.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        Some(GapStats {
            mean,
            median,
            min: sorted[0],
            max: sorted[n - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::bigmart;

    #[test]
    fn bigmart_has_three_groups() {
        // Frequencies 0.3, 0.4, 0.5 with sizes 1, 1, 4 (Figure 3(b)).
        let fg = FrequencyGroups::of_database(&bigmart());
        assert_eq!(fg.n_groups(), 3);
        assert_eq!(fg.sizes(), vec![1, 1, 4]);
        assert_eq!(fg.n_singleton_groups(), 2);
        assert_eq!(fg.n_items(), 6);
        let f = fg.frequencies();
        assert!((f[0] - 0.3).abs() < 1e-12);
        assert!((f[1] - 0.4).abs() < 1e-12);
        assert!((f[2] - 0.5).abs() < 1e-12);
        // Group of frequency 0.5 holds items 0, 2, 3, 5.
        assert_eq!(
            fg.groups[2].items,
            vec![ItemId(0), ItemId(2), ItemId(3), ItemId(5)]
        );
    }

    #[test]
    fn gaps_and_median() {
        let fg = FrequencyGroups::of_database(&bigmart());
        let gaps = fg.gaps();
        assert_eq!(gaps.len(), 2);
        assert!((gaps[0] - 0.1).abs() < 1e-12);
        assert!((gaps[1] - 0.1).abs() < 1e-12);
        let stats = fg.gap_stats().unwrap();
        assert!((stats.median - 0.1).abs() < 1e-12);
        assert!((stats.mean - 0.1).abs() < 1e-12);
        assert!((stats.min - 0.1).abs() < 1e-12);
        assert!((stats.max - 0.1).abs() < 1e-12);
    }

    #[test]
    fn from_supports_groups_equal_counts() {
        let fg = FrequencyGroups::from_supports(&[7, 3, 7, 3, 1], 10);
        assert_eq!(fg.n_groups(), 3);
        assert_eq!(fg.sizes(), vec![1, 2, 2]);
        assert_eq!(fg.groups[0].items, vec![ItemId(4)]);
        assert_eq!(fg.groups[1].items, vec![ItemId(1), ItemId(3)]);
        assert_eq!(fg.groups[2].items, vec![ItemId(0), ItemId(2)]);
    }

    #[test]
    fn single_group_has_no_gaps() {
        let fg = FrequencyGroups::from_supports(&[5, 5, 5], 10);
        assert_eq!(fg.n_groups(), 1);
        assert!(fg.gaps().is_empty());
        assert!(fg.gap_stats().is_none());
        assert!(fg.median_gap().is_none());
    }

    #[test]
    fn median_even_number_of_gaps() {
        // Supports 1, 2, 4, 8 over 10 transactions -> gaps .1, .2, .4.
        let fg = FrequencyGroups::from_supports(&[1, 2, 4, 8], 10);
        assert!((fg.median_gap().unwrap() - 0.2).abs() < 1e-12);
        // Supports 1, 2, 4 -> gaps .1, .2 -> median .15.
        let fg = FrequencyGroups::from_supports(&[1, 2, 4], 10);
        assert!((fg.median_gap().unwrap() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn group_of_support_lookup() {
        let fg = FrequencyGroups::from_supports(&[7, 3, 7, 3, 1], 10);
        assert_eq!(fg.group_of_support(1), Some(0));
        assert_eq!(fg.group_of_support(3), Some(1));
        assert_eq!(fg.group_of_support(7), Some(2));
        assert_eq!(fg.group_of_support(2), None);
    }

    #[test]
    fn gap_stats_empty_is_none() {
        assert!(GapStats::from_gaps(&[]).is_none());
    }

    #[test]
    fn camouflage_metrics() {
        let fg = FrequencyGroups::of_database(&bigmart());
        // Two singletons and one 4-group: the k-anonymity analog is 1.
        assert_eq!(fg.min_group_size(), Some(1));
        let hist = fg.group_size_histogram();
        assert_eq!(hist[1], 2);
        assert_eq!(hist[4], 1);
        assert_eq!(hist.iter().sum::<usize>() - hist[0], 3);
    }
}

//! Transactions: non-empty, duplicate-free, sorted sets of items.
//!
//! A database `D` is a sequence of transactions `<T1, ..., Tm>` where
//! each transaction is a non-empty subset of the domain `I`
//! (Section 2.1). We store a transaction as a sorted, deduplicated
//! boxed slice of [`ItemId`]s, which makes membership tests
//! logarithmic and set operations (used heavily by the miners) linear
//! merges.

use crate::item::ItemId;

/// A single transaction: a sorted, duplicate-free, non-empty set of
/// items.
// andi::declassify(Debug renders item ids for test diagnostics and oracle counterexample shrinking; no production path formats a Transaction)
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Transaction {
    // andi::sensitive — the raw market basket: which items an owner bought
    items: Box<[ItemId]>,
}

impl Transaction {
    /// Builds a transaction from an arbitrary collection of item ids,
    /// sorting and deduplicating.
    ///
    /// Returns `None` if the input is empty — the paper's model has no
    /// empty transactions.
    pub fn new<I: IntoIterator<Item = ItemId>>(items: I) -> Option<Self> {
        let mut v: Vec<ItemId> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        if v.is_empty() {
            None
        } else {
            Some(Transaction {
                items: v.into_boxed_slice(),
            })
        }
    }

    /// Builds a transaction from items that are already sorted and
    /// unique.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the invariant does not hold or the
    /// slice is empty.
    pub fn from_sorted_unique(items: Vec<ItemId>) -> Self {
        debug_assert!(!items.is_empty(), "transactions must be non-empty");
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly increasing"
        );
        Transaction {
            items: items.into_boxed_slice(),
        }
    }

    /// The items of the transaction in increasing id order.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Number of items in the transaction.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Transactions are never empty; provided for clippy-compliance
    /// and API completeness. Always `false`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the transaction contains `item` (binary search).
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Whether this transaction contains *every* item of the given
    /// sorted itemset (linear merge).
    pub fn contains_all(&self, sorted_items: &[ItemId]) -> bool {
        let mut t = self.items.iter();
        'outer: for want in sorted_items {
            for have in t.by_ref() {
                match have.cmp(want) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Iterates over the items.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = ItemId> + '_ {
        self.items.iter().copied()
    }
}

impl<'a> IntoIterator for &'a Transaction {
    type Item = ItemId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ItemId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[u32]) -> Transaction {
        Transaction::new(ids.iter().map(|&i| ItemId(i))).expect("non-empty")
    }

    #[test]
    fn new_sorts_and_dedups() {
        let tx = t(&[3, 1, 2, 3, 1]);
        assert_eq!(
            tx.items(),
            &[ItemId(1), ItemId(2), ItemId(3)],
            "items must be sorted and unique"
        );
        assert_eq!(tx.len(), 3);
    }

    #[test]
    fn new_rejects_empty() {
        assert!(Transaction::new(std::iter::empty()).is_none());
    }

    #[test]
    fn contains_uses_membership() {
        let tx = t(&[2, 5, 9]);
        assert!(tx.contains(ItemId(5)));
        assert!(!tx.contains(ItemId(4)));
    }

    #[test]
    fn contains_all_on_subsets() {
        let tx = t(&[1, 3, 5, 7, 9]);
        assert!(tx.contains_all(&[ItemId(1), ItemId(9)]));
        assert!(tx.contains_all(&[ItemId(3), ItemId(5), ItemId(7)]));
        assert!(tx.contains_all(&[]));
        assert!(!tx.contains_all(&[ItemId(2)]));
        assert!(!tx.contains_all(&[ItemId(1), ItemId(2)]));
        assert!(!tx.contains_all(&[ItemId(9), ItemId(10)]));
    }

    #[test]
    fn from_sorted_unique_accepts_valid() {
        let tx = Transaction::from_sorted_unique(vec![ItemId(0), ItemId(4)]);
        assert_eq!(tx.len(), 2);
        assert!(!tx.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    #[cfg(debug_assertions)]
    fn from_sorted_unique_rejects_unsorted() {
        let _ = Transaction::from_sorted_unique(vec![ItemId(4), ItemId(0)]);
    }

    #[test]
    fn iteration_matches_items() {
        let tx = t(&[8, 2]);
        let via_iter: Vec<ItemId> = tx.iter().collect();
        assert_eq!(via_iter, tx.items());
        let via_ref: Vec<ItemId> = (&tx).into_iter().collect();
        assert_eq!(via_ref, tx.items());
    }
}

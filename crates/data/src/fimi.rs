//! FIMI `.dat` format I/O.
//!
//! The paper's benchmarks come from the FIMI repository
//! (`http://fimi.cs.helsinki.fi/fimi03/`), whose datasets are plain
//! text: one transaction per line, items as whitespace-separated
//! non-negative integers. This module reads and writes that format so
//! the real CONNECT/PUMSB/ACCIDENTS/RETAIL/MUSHROOM/CHESS files can be
//! dropped in when available; item ids are compacted to a dense
//! `0..n` domain on read (FIMI files routinely skip ids).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::database::Database;
use crate::item::ItemId;
use crate::transaction::Transaction;

/// Result of parsing a FIMI file: the dense database plus the map
/// back from dense ids to the raw ids found in the file.
#[derive(Clone, Debug)]
pub struct FimiDataset {
    /// The parsed database over the dense domain.
    pub database: Database,
    /// `raw_ids[x]` is the original file id of dense item `x`.
    pub raw_ids: Vec<u64>,
}

impl FimiDataset {
    /// The raw file id of a dense item.
    pub fn raw_id(&self, item: ItemId) -> u64 {
        self.raw_ids[item.index()]
    }
}

/// Parses FIMI-format text from any reader.
///
/// Blank lines are skipped; duplicate items within a line are
/// deduplicated (some FIMI exports contain them).
///
/// # Errors
///
/// Returns a message naming the offending line for unparsable tokens
/// or I/O failures, and an error if the input holds no transactions.
/// # Examples
///
/// ```
/// use andi_data::fimi::read_fimi;
///
/// let ds = read_fimi("1 2 3\n2 3\n".as_bytes()).unwrap();
/// assert_eq!(ds.database.n_transactions(), 2);
/// assert_eq!(ds.raw_ids, vec![1, 2, 3]); // ids compacted densely
/// ```
pub fn read_fimi<R: Read>(reader: R) -> Result<FimiDataset, String> {
    let buf = BufReader::new(reader);
    let mut raw_transactions: Vec<Vec<u64>> = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line.map_err(|e| format!("I/O error on line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut items = Vec::new();
        for tok in trimmed.split_ascii_whitespace() {
            // The error must not echo file contents: input lines are
            // transactions, i.e. the data this crate treats as
            // sensitive. Report position and length only.
            let id: u64 = tok.parse().map_err(|_| {
                format!(
                    "line {}: invalid item token ({} bytes, expected a non-negative integer)",
                    lineno + 1,
                    tok.len()
                )
            })?;
            items.push(id);
        }
        raw_transactions.push(items);
    }
    if raw_transactions.is_empty() {
        return Err("FIMI input contains no transactions".into());
    }

    // Compact the observed raw ids to a dense domain, in increasing
    // raw-id order so that dense ordering mirrors raw ordering.
    let mut dense: BTreeMap<u64, u32> = BTreeMap::new();
    for t in &raw_transactions {
        for &id in t {
            let next = dense.len() as u32;
            dense.entry(id).or_insert(next);
        }
    }
    // BTreeMap iteration is ordered by raw id, but insertion order
    // assigned dense ids first-come; reassign dense ids by raw order
    // for determinism.
    let mut raw_ids: Vec<u64> = dense.keys().copied().collect();
    raw_ids.sort_unstable();
    let index: BTreeMap<u64, u32> = raw_ids
        .iter()
        .enumerate()
        .map(|(i, &raw)| (raw, i as u32))
        .collect();

    let mut transactions = Vec::with_capacity(raw_transactions.len());
    for (lineno, t) in raw_transactions.into_iter().enumerate() {
        let tx = Transaction::new(t.into_iter().map(|id| ItemId(index[&id])))
            .ok_or_else(|| format!("line {}: empty transaction", lineno + 1))?;
        transactions.push(tx);
    }
    let database = Database::new(raw_ids.len(), transactions)?;
    Ok(FimiDataset { database, raw_ids })
}

/// Reads a FIMI `.dat` file from disk.
///
/// # Errors
///
/// See [`read_fimi`]; file-open failures are reported with the path.
pub fn read_fimi_file<P: AsRef<Path>>(path: P) -> Result<FimiDataset, String> {
    let path = path.as_ref();
    let f =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    read_fimi(f)
}

/// Writes a database in FIMI format (dense ids) to any writer.
///
/// # Errors
///
/// Propagates I/O errors as strings.
// andi::declassify(FIMI export is the sanctioned release path: callers invoke it only on databases already cleared for disclosure)
pub fn write_fimi<W: Write>(db: &Database, mut writer: W) -> Result<(), String> {
    let mut line = String::new();
    for t in db.transactions() {
        line.clear();
        for (i, item) in t.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&item.0.to_string());
        }
        line.push('\n');
        writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("write error: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::bigmart;

    #[test]
    fn parses_simple_input() {
        let input = "1 2 3\n2 3\n\n3 1\n";
        let ds = read_fimi(input.as_bytes()).unwrap();
        assert_eq!(ds.database.n_items(), 3);
        assert_eq!(ds.database.n_transactions(), 3);
        assert_eq!(ds.raw_ids, vec![1, 2, 3]);
        assert_eq!(ds.raw_id(ItemId(0)), 1);
        // Supports: raw 1 -> 2, raw 2 -> 2, raw 3 -> 3.
        assert_eq!(ds.database.supports(), vec![2, 2, 3]);
    }

    #[test]
    fn compacts_sparse_ids_in_raw_order() {
        let input = "100 7\n7 2000\n";
        let ds = read_fimi(input.as_bytes()).unwrap();
        assert_eq!(ds.raw_ids, vec![7, 100, 2000]);
        // Dense item 0 is raw 7 with support 2.
        assert_eq!(ds.database.supports(), vec![2, 1, 1]);
    }

    #[test]
    fn rejects_garbage_tokens() {
        let err = read_fimi("1 2\n3 x\n".as_bytes()).unwrap_err();
        // Pinned sanitized text: the message names the position but
        // must never echo the offending token (raw file contents).
        assert_eq!(
            err,
            "line 2: invalid item token (1 bytes, expected a non-negative integer)"
        );
        assert!(
            !err.contains("\"x\""),
            "token contents must not leak: {err}"
        );
    }

    #[test]
    fn rejects_empty_input() {
        assert!(read_fimi("".as_bytes()).is_err());
        assert!(read_fimi("\n\n".as_bytes()).is_err());
    }

    #[test]
    fn dedups_repeated_items_in_line() {
        let ds = read_fimi("5 5 5\n".as_bytes()).unwrap();
        assert_eq!(ds.database.transactions()[0].len(), 1);
    }

    #[test]
    fn roundtrip_preserves_database() {
        let db = bigmart();
        let mut out = Vec::new();
        write_fimi(&db, &mut out).unwrap();
        let back = read_fimi(out.as_slice()).unwrap();
        assert_eq!(back.database.n_items(), db.n_items());
        assert_eq!(back.database.n_transactions(), db.n_transactions());
        assert_eq!(back.database.supports(), db.supports());
        for (a, b) in back
            .database
            .transactions()
            .iter()
            .zip(db.transactions().iter())
        {
            assert_eq!(a.items(), b.items());
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("andi-fimi-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bigmart.dat");
        let db = bigmart();
        let mut buf = Vec::new();
        write_fimi(&db, &mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let ds = read_fimi_file(&path).unwrap();
        assert_eq!(ds.database.supports(), db.supports());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_reported_with_path() {
        let err = read_fimi_file("/nonexistent/nowhere.dat").unwrap_err();
        assert!(err.contains("/nonexistent/nowhere.dat"));
    }
}

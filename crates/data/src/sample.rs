//! Transaction sampling (the `D_p ⊂ D` of Figure 13).
//!
//! The Similarity-by-Sampling procedure draws samples of the original
//! database to simulate an attacker holding "similar" data. We
//! provide both an exact-size sample without replacement (what a p%
//! sample of the transaction list means operationally) and a
//! Bernoulli per-transaction sample; the paper's procedure is
//! agnostic, and exact-size sampling gives better-behaved small
//! samples.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::database::Database;

/// Draws a sample of exactly `⌈fraction · m⌉` transactions without
/// replacement (at least one transaction — a database must stay
/// non-empty).
///
/// # Panics
///
/// Panics if `fraction` is not within `(0, 1]`.
pub fn sample_fraction<R: Rng + ?Sized>(db: &Database, fraction: f64, rng: &mut R) -> Database {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "sample fraction must be in (0, 1], got {fraction}"
    );
    let m = db.n_transactions();
    let k = ((fraction * m as f64).ceil() as usize).clamp(1, m);
    sample_count(db, k, rng)
}

/// Draws a sample of exactly `k` transactions without replacement.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of transactions.
pub fn sample_count<R: Rng + ?Sized>(db: &Database, k: usize, rng: &mut R) -> Database {
    let m = db.n_transactions();
    assert!(k >= 1 && k <= m, "sample size {k} out of range 1..={m}");
    let mut idx: Vec<usize> = (0..m).collect();
    idx.shuffle(rng);
    idx.truncate(k);
    idx.sort_unstable(); // keep original transaction order
    let transactions = idx
        .into_iter()
        .map(|i| db.transactions()[i].clone())
        .collect();
    // The transactions come from a validated Database and k >= 1
    // keeps at least one, so the trusted constructor applies.
    Database::from_trusted(db.n_items(), transactions)
}

/// Bernoulli sample: keeps each transaction independently with
/// probability `p`. Guarantees a non-empty result by retrying the
/// pass until at least one transaction survives.
///
/// # Panics
///
/// Panics if `p` is not within `(0, 1]`.
pub fn sample_bernoulli<R: Rng + ?Sized>(db: &Database, p: f64, rng: &mut R) -> Database {
    assert!(
        p > 0.0 && p <= 1.0,
        "probability must be in (0, 1], got {p}"
    );
    loop {
        let transactions: Vec<_> = db
            .transactions()
            .iter()
            .filter(|_| rng.gen_bool(p))
            .cloned()
            .collect();
        if !transactions.is_empty() {
            // The guard ensures non-emptiness and the transactions
            // come from a validated Database.
            return Database::from_trusted(db.n_items(), transactions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::bigmart;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_count_exact_size() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(1);
        for k in 1..=10 {
            let s = sample_count(&db, k, &mut rng);
            assert_eq!(s.n_transactions(), k);
            assert_eq!(s.n_items(), db.n_items());
        }
    }

    #[test]
    fn sample_fraction_rounds_up() {
        let db = bigmart(); // 10 transactions
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample_fraction(&db, 0.05, &mut rng).n_transactions(), 1);
        assert_eq!(sample_fraction(&db, 0.25, &mut rng).n_transactions(), 3);
        assert_eq!(sample_fraction(&db, 1.0, &mut rng).n_transactions(), 10);
    }

    #[test]
    #[should_panic(expected = "sample fraction")]
    fn sample_fraction_rejects_zero() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sample_fraction(&db, 0.0, &mut rng);
    }

    #[test]
    fn full_sample_is_the_database() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(4);
        let s = sample_count(&db, db.n_transactions(), &mut rng);
        assert_eq!(s.supports(), db.supports());
    }

    #[test]
    fn samples_are_sub_multisets() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(5);
        let s = sample_count(&db, 4, &mut rng);
        // Every sampled transaction occurs at least as often in the
        // original database.
        for t in s.transactions() {
            let in_sample = s.transactions().iter().filter(|u| u == &t).count();
            let in_db = db.transactions().iter().filter(|u| u == &t).count();
            assert!(in_sample <= in_db);
        }
    }

    #[test]
    fn bernoulli_never_returns_empty() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let s = sample_bernoulli(&db, 0.05, &mut rng);
            assert!(s.n_transactions() >= 1);
        }
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let db = bigmart();
        let a = sample_count(&db, 5, &mut StdRng::seed_from_u64(7));
        let b = sample_count(&db, 5, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.supports(), b.supports());
    }
}

//! Incremental database construction and views.
//!
//! [`DatabaseBuilder`] accumulates transactions one by one (parsers,
//! generators, tests); projection and filtering produce focused
//! sub-databases — e.g. restricting to the items of interest before
//! mining.

use crate::database::Database;
use crate::item::ItemId;
use crate::transaction::Transaction;

/// Builds a [`Database`] incrementally.
/// # Examples
///
/// ```
/// use andi_data::DatabaseBuilder;
///
/// let mut builder = DatabaseBuilder::new(3);
/// builder.add([0, 2]).unwrap().add([1]).unwrap();
/// let db = builder.build().unwrap();
/// assert_eq!(db.supports(), vec![1, 1, 1]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DatabaseBuilder {
    n_items: usize,
    transactions: Vec<Transaction>,
    skipped_empty: usize,
}

impl DatabaseBuilder {
    /// Starts a builder over a dense domain of `n_items`.
    pub fn new(n_items: usize) -> Self {
        DatabaseBuilder {
            n_items,
            transactions: Vec::new(),
            skipped_empty: 0,
        }
    }

    /// Adds one transaction from raw item ids; duplicates are
    /// deduplicated, empty inputs counted and skipped.
    ///
    /// # Errors
    ///
    /// Rejects out-of-domain items by message.
    pub fn add<I: IntoIterator<Item = u32>>(&mut self, items: I) -> Result<&mut Self, String> {
        let ids: Vec<ItemId> = items.into_iter().map(ItemId).collect();
        if let Some(bad) = ids.iter().find(|x| x.index() >= self.n_items) {
            return Err(format!("item {bad} outside domain 0..{}", self.n_items));
        }
        match Transaction::new(ids) {
            Some(t) => {
                self.transactions.push(t);
                Ok(self)
            }
            None => {
                self.skipped_empty += 1;
                Ok(self)
            }
        }
    }

    /// Number of transactions accumulated so far.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Empty inputs that were skipped.
    pub fn skipped_empty(&self) -> usize {
        self.skipped_empty
    }

    /// Finalizes the database.
    ///
    /// # Errors
    ///
    /// At least one transaction must have been added.
    pub fn build(self) -> Result<Database, String> {
        Database::new(self.n_items, self.transactions)
    }
}

/// Projects a database onto a subset of items: keeps only the
/// selected items in every transaction and renumbers them densely
/// (`kept[new_id] = old_id` is returned alongside). Transactions
/// left empty by the projection are dropped.
///
/// Returns an error if the mask is the wrong size, selects nothing,
/// or no transaction survives.
pub fn project(db: &Database, keep: &[bool]) -> Result<(Database, Vec<u32>), String> {
    if keep.len() != db.n_items() {
        return Err(format!(
            "mask has {} entries for a domain of {}",
            keep.len(),
            db.n_items()
        ));
    }
    let kept: Vec<u32> = (0..db.n_items() as u32)
        .filter(|x| keep[*x as usize])
        .collect();
    if kept.is_empty() {
        return Err("projection selects no items".into());
    }
    let mut new_id = vec![u32::MAX; db.n_items()];
    for (new, &old) in kept.iter().enumerate() {
        new_id[old as usize] = new as u32;
    }
    let transactions: Vec<Transaction> = db
        .transactions()
        .iter()
        .filter_map(|t| {
            Transaction::new(
                t.iter()
                    .filter(|x| keep[x.index()])
                    .map(|x| ItemId(new_id[x.index()])),
            )
        })
        .collect();
    if transactions.is_empty() {
        return Err("no transaction survives the projection".into());
    }
    let projected = Database::new(kept.len(), transactions)?;
    Ok((projected, kept))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::bigmart;

    #[test]
    fn builder_accumulates_and_builds() {
        let mut b = DatabaseBuilder::new(4);
        b.add([0, 2]).unwrap().add([1, 1, 3]).unwrap();
        b.add(std::iter::empty::<u32>()).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.skipped_empty(), 1);
        assert!(!b.is_empty());
        let db = b.build().unwrap();
        assert_eq!(db.n_transactions(), 2);
        assert_eq!(db.supports(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn builder_rejects_out_of_domain() {
        let mut b = DatabaseBuilder::new(2);
        assert!(b.add([0, 5]).is_err());
    }

    #[test]
    fn builder_rejects_empty_database() {
        let b = DatabaseBuilder::new(2);
        assert!(b.is_empty());
        assert!(b.build().is_err());
    }

    #[test]
    fn projection_renumbers_and_preserves_supports() {
        let db = bigmart();
        // Keep items 1, 3, 5 (supports 4, 5, 5).
        let keep = [false, true, false, true, false, true];
        let (proj, kept) = project(&db, &keep).unwrap();
        assert_eq!(kept, vec![1, 3, 5]);
        assert_eq!(proj.n_items(), 3);
        assert_eq!(proj.supports(), vec![4, 5, 5]);
    }

    #[test]
    fn projection_drops_emptied_transactions() {
        let db = bigmart();
        // Item 4 appears in t7, t8, t9; t9 = {4, 5}. Keeping only
        // item 4 drops every transaction without it.
        let keep = [false, false, false, false, true, false];
        let (proj, _) = project(&db, &keep).unwrap();
        assert_eq!(proj.n_transactions(), 3);
        assert_eq!(proj.supports(), vec![3]);
    }

    #[test]
    fn projection_validation() {
        let db = bigmart();
        assert!(project(&db, &[true; 3]).is_err());
        assert!(project(&db, &[false; 6]).is_err());
    }
}

//! Dataset summaries: the descriptive statistics a data owner reads
//! before running the risk recipe (and the raw material of Figure 9).

use crate::database::Database;
use crate::stats::{FrequencyGroups, GapStats};

/// A one-stop descriptive summary of a transaction database.
/// # Examples
///
/// ```
/// use andi_data::{bigmart, DatasetSummary};
///
/// let summary = DatasetSummary::of(&bigmart());
/// assert_eq!(summary.n_groups, 3);
/// assert_eq!(summary.n_singleton_groups, 2);
/// println!("{summary}");
/// ```
#[derive(Clone, Debug)]
pub struct DatasetSummary {
    /// Domain size `n`.
    pub n_items: usize,
    /// Transaction count `m`.
    pub n_transactions: usize,
    /// Total item occurrences.
    pub total_occurrences: u64,
    /// Mean transaction length.
    pub avg_transaction_len: f64,
    /// Transaction-length percentiles `(p10, p50, p90, max)`.
    pub len_percentiles: (usize, usize, usize, usize),
    /// Density: occurrences / (n · m).
    pub density: f64,
    /// Number of frequency groups.
    pub n_groups: usize,
    /// Number of singleton frequency groups.
    pub n_singleton_groups: usize,
    /// Items that occur in no transaction.
    pub n_zero_support_items: usize,
    /// Gap statistics between successive frequency groups.
    pub gap_stats: Option<GapStats>,
    /// Gini coefficient of the support distribution (0 = uniform,
    /// near 1 = extremely skewed).
    pub support_gini: f64,
    /// Minimum and maximum item frequency.
    pub freq_range: (f64, f64),
}

impl DatasetSummary {
    /// Computes the summary in two passes over the database.
    pub fn of(db: &Database) -> Self {
        let supports = db.supports();
        let m = db.n_transactions();
        let groups = FrequencyGroups::from_supports(&supports, m as u64);

        let mut lens: Vec<usize> = db.transactions().iter().map(|t| t.len()).collect();
        lens.sort_unstable();
        let pct = |p: f64| lens[((p * (lens.len() - 1) as f64).round()) as usize];
        let total: u64 = db.total_occurrences();

        let min_s = supports.iter().copied().min().unwrap_or(0);
        let max_s = supports.iter().copied().max().unwrap_or(0);

        DatasetSummary {
            n_items: db.n_items(),
            n_transactions: m,
            total_occurrences: total,
            avg_transaction_len: db.avg_transaction_len(),
            len_percentiles: (pct(0.1), pct(0.5), pct(0.9), *lens.last().unwrap_or(&0)),
            density: total as f64 / (db.n_items() as f64 * m as f64),
            n_groups: groups.n_groups(),
            n_singleton_groups: groups.n_singleton_groups(),
            n_zero_support_items: supports.iter().filter(|&&s| s == 0).count(),
            gap_stats: groups.gap_stats(),
            support_gini: gini(&supports),
            freq_range: (min_s as f64 / m as f64, max_s as f64 / m as f64),
        }
    }
}

/// Gini coefficient of a non-negative count distribution.
///
/// Returns 0 for empty or all-zero input.
pub fn gini(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    // G = (2 Σ_i i·x_(i) / (n Σ x)) - (n + 1)/n, with 1-based ranks.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

impl std::fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "items:            {}", self.n_items)?;
        writeln!(f, "transactions:     {}", self.n_transactions)?;
        writeln!(f, "occurrences:      {}", self.total_occurrences)?;
        writeln!(
            f,
            "txn length:       mean {:.1}, p10/p50/p90/max {}/{}/{}/{}",
            self.avg_transaction_len,
            self.len_percentiles.0,
            self.len_percentiles.1,
            self.len_percentiles.2,
            self.len_percentiles.3
        )?;
        writeln!(f, "density:          {:.5}", self.density)?;
        writeln!(
            f,
            "frequency groups: {} ({} singletons)",
            self.n_groups, self.n_singleton_groups
        )?;
        writeln!(f, "zero-support:     {}", self.n_zero_support_items)?;
        if let Some(g) = self.gap_stats {
            writeln!(
                f,
                "group gaps:       mean {:.6}, median {:.6}, min {:.6}, max {:.5}",
                g.mean, g.median, g.min, g.max
            )?;
        }
        writeln!(f, "support gini:     {:.3}", self.support_gini)?;
        write!(
            f,
            "frequency range:  [{:.5}, {:.5}]",
            self.freq_range.0, self.freq_range.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::bigmart;

    #[test]
    fn bigmart_summary() {
        let s = DatasetSummary::of(&bigmart());
        assert_eq!(s.n_items, 6);
        assert_eq!(s.n_transactions, 10);
        assert_eq!(s.total_occurrences, 27);
        assert!((s.avg_transaction_len - 2.7).abs() < 1e-12);
        assert_eq!(s.n_groups, 3);
        assert_eq!(s.n_singleton_groups, 2);
        assert_eq!(s.n_zero_support_items, 0);
        assert!((s.density - 27.0 / 60.0).abs() < 1e-12);
        assert_eq!(s.freq_range, (0.3, 0.5));
        let g = s.gap_stats.unwrap();
        assert!((g.median - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gini_of_uniform_is_zero() {
        assert!((gini(&[5, 5, 5, 5]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn gini_of_concentrated_is_high() {
        let g = gini(&[0, 0, 0, 100]);
        assert!(g > 0.7, "got {g}");
        assert!(gini(&[1, 2, 3, 4]) > 0.0);
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
        assert_eq!(gini(&[7]), 0.0);
    }

    #[test]
    fn display_is_complete() {
        let text = DatasetSummary::of(&bigmart()).to_string();
        for needle in ["items:", "transactions:", "gini", "frequency range"] {
            assert!(text.contains(needle), "missing {needle} in\n{text}");
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let s = DatasetSummary::of(&bigmart());
        let (p10, p50, p90, max) = s.len_percentiles;
        assert!(p10 <= p50 && p50 <= p90 && p90 <= max);
    }
}

//! Item identifiers and the item domain.
//!
//! The paper works with a universe of items `I` with `|I| = n`
//! (Section 2.1). We represent the domain densely: items are integers
//! `0..n` wrapped in the [`ItemId`] newtype. The *anonymized* domain
//! `J` is kept type-distinct via [`AnonItemId`] so that original items
//! and anonymized items can never be confused at compile time — the
//! core crate's anonymization mapping is a bijection between the two.

use std::fmt;

/// Identifier of an item in the *original* domain `I`.
///
/// Dense: valid ids are `0..n` for a domain of size `n`. The `u32`
/// payload keeps item-heavy structures (transactions, tid-lists)
/// compact; the paper's largest benchmark domain (RETAIL, 16 470
/// items) fits with room to spare.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

/// Identifier of an item in the *anonymized* domain `J`.
///
/// The paper writes `x'` for the anonymized counterpart of item `x`.
/// Values are again dense `0..n`, but an `AnonItemId`'s numeric value
/// carries no relation to the original item it masks — that relation
/// is exactly what the `AnonymizationMapping` hides.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AnonItemId(pub u32);

impl ItemId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AnonItemId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for AnonItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper's prime notation: anonymized item x is written x'.
        write!(f, "a{}'", self.0)
    }
}

impl fmt::Display for AnonItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<u32> for AnonItemId {
    fn from(v: u32) -> Self {
        AnonItemId(v)
    }
}

/// An iterator over the dense item domain `0..n`.
pub fn domain(n: usize) -> impl ExactSizeIterator<Item = ItemId> {
    (0..n as u32).map(ItemId)
}

/// An iterator over the dense anonymized domain `0..n`.
pub fn anon_domain(n: usize) -> impl ExactSizeIterator<Item = AnonItemId> {
    (0..n as u32).map(AnonItemId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_id_roundtrip() {
        let x = ItemId(42);
        assert_eq!(x.index(), 42);
        assert_eq!(ItemId::from(42u32), x);
        assert_eq!(format!("{x}"), "42");
        assert_eq!(format!("{x:?}"), "i42");
    }

    #[test]
    fn anon_id_display_uses_prime() {
        let x = AnonItemId(7);
        assert_eq!(format!("{x}"), "7'");
        assert_eq!(format!("{x:?}"), "a7'");
    }

    #[test]
    fn domain_is_dense_and_sized() {
        let d: Vec<ItemId> = domain(4).collect();
        assert_eq!(d, vec![ItemId(0), ItemId(1), ItemId(2), ItemId(3)]);
        assert_eq!(domain(100).len(), 100);
        assert_eq!(anon_domain(3).count(), 3);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(ItemId(3) < ItemId(10));
        assert!(AnonItemId(0) < AnonItemId(1));
    }
}

//! # andi-data — transaction database substrate
//!
//! The data layer underneath the `andi` disclosure-risk analysis
//! (SIGMOD 2005, "To Do or Not To Do: The Dilemma of Disclosing
//! Anonymized Data"). It provides:
//!
//! * [`Database`] / [`Transaction`] — the paper's `D = <T1, ..., Tm>`
//!   over a dense item domain `I` (Section 2.1);
//! * [`stats::FrequencyGroups`] — the frequency-group decomposition
//!   and gap statistics that drive the `δ_med` heuristic (Figure 9);
//! * [`fimi`] — reader/writer for the FIMI `.dat` benchmark format;
//! * [`sample`] — transaction sampling for Similarity-by-Sampling
//!   (Figure 13);
//! * [`synth`] — calibrated analogs of the six paper benchmarks plus
//!   general-purpose Zipf and Quest-style generators.
//!
//! ```
//! use andi_data::{bigmart, stats::FrequencyGroups};
//!
//! let db = bigmart();
//! let groups = FrequencyGroups::of_database(&db);
//! assert_eq!(groups.n_groups(), 3); // frequencies 0.3, 0.4, 0.5
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod database;
pub mod fimi;
pub mod item;
pub mod sample;
pub mod stats;
pub mod summary;
pub mod synth;
pub mod transaction;

pub use builder::{project, DatabaseBuilder};
pub use database::{bigmart, Database};
pub use item::{anon_domain, domain, AnonItemId, ItemId};
pub use stats::{FrequencyGroups, GapStats};
pub use summary::DatasetSummary;
pub use synth::Analog;
pub use transaction::Transaction;

//! The transaction database `D` and its support/frequency profile.
//!
//! Following Section 2.1, a database is a sequence of transactions
//! over a dense item domain `0..n`. The frequency of an item is the
//! fraction of transactions containing it. All of the paper's
//! belief-function machinery consumes only the *support profile*
//! (the per-item transaction counts), which [`Database::supports`]
//! computes in a single pass.

use crate::item::ItemId;
use crate::transaction::Transaction;

/// A transaction database over a dense domain of `n_items` items.
// andi::declassify(Debug renders the full transaction list for test diagnostics and oracle counterexample shrinking; no production path formats a Database)
#[derive(Clone, Debug)]
pub struct Database {
    n_items: usize,
    // andi::sensitive — every owner's raw transaction row
    transactions: Vec<Transaction>,
}

impl Database {
    /// Creates a database over `n_items` items from the given
    /// transactions.
    ///
    /// # Errors
    ///
    /// Returns an error message if any transaction references an item
    /// `>= n_items` or if there are no transactions at all.
    pub fn new(n_items: usize, transactions: Vec<Transaction>) -> Result<Self, String> {
        if transactions.is_empty() {
            return Err("a database must contain at least one transaction".into());
        }
        for (i, t) in transactions.iter().enumerate() {
            // Items are sorted, so checking the maximum suffices. The
            // error reports the index and domain only — naming the
            // item would echo an element of the owner's basket.
            if let Some(&max) = t.items().last() {
                if max.index() >= n_items {
                    return Err(format!(
                        "transaction {i} references an item outside domain 0..{n_items}"
                    ));
                }
            }
        }
        Ok(Database {
            n_items,
            transactions,
        })
    }

    /// Crate-internal constructor for transactions the caller already
    /// validated (subsamplers and generators that build every
    /// transaction non-empty and in-domain). Debug builds re-check
    /// the [`Database::new`] invariants; release builds skip the
    /// pass — no panic path, so no suppression needed at call sites.
    pub(crate) fn from_trusted(n_items: usize, transactions: Vec<Transaction>) -> Self {
        debug_assert!(
            !transactions.is_empty(),
            "trusted databases hold at least one transaction"
        );
        debug_assert!(
            transactions
                .iter()
                .all(|t| t.items().last().is_some_and(|x| x.index() < n_items)),
            "trusted transactions stay inside the domain 0..{n_items}"
        );
        Database {
            n_items,
            transactions,
        }
    }

    /// Domain size `n = |I|`.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of transactions `m = |D|`.
    #[inline]
    pub fn n_transactions(&self) -> usize {
        self.transactions.len()
    }

    /// The transactions in order.
    #[inline]
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Per-item support counts: `supports()[x]` is the number of
    /// transactions containing item `x`. Single database pass.
    pub fn supports(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.n_items];
        for t in &self.transactions {
            for item in t {
                counts[item.index()] += 1;
            }
        }
        counts
    }

    /// Support count of a single itemset (sorted item list): the
    /// number of transactions containing every item of the set.
    pub fn itemset_support(&self, sorted_items: &[ItemId]) -> u64 {
        self.transactions
            .iter()
            .filter(|t| t.contains_all(sorted_items))
            .count() as u64
    }

    /// Per-item frequencies `support / m` as `f64`.
    pub fn frequencies(&self) -> Vec<f64> {
        let m = self.n_transactions() as f64;
        self.supports().iter().map(|&c| c as f64 / m).collect()
    }

    /// Frequency of one item.
    pub fn frequency(&self, item: ItemId) -> f64 {
        let c = self
            .transactions
            .iter()
            .filter(|t| t.contains(item))
            .count();
        c as f64 / self.n_transactions() as f64
    }

    /// Total number of item occurrences across all transactions.
    pub fn total_occurrences(&self) -> u64 {
        self.transactions.iter().map(|t| t.len() as u64).sum()
    }

    /// Average transaction length.
    pub fn avg_transaction_len(&self) -> f64 {
        self.total_occurrences() as f64 / self.n_transactions() as f64
    }

    /// Applies a per-item relabeling `relabel[x] -> new id` to every
    /// transaction, producing a new database over the same domain
    /// size.
    ///
    /// This is the mechanical half of anonymization (Section 2.1):
    /// the core crate wraps it with the typed
    /// `AnonymizationMapping`. The relabeling must be a permutation
    /// of `0..n`.
    ///
    /// # Errors
    ///
    /// Returns an error if `relabel` is not a permutation of the
    /// domain.
    pub fn relabel(&self, relabel: &[u32]) -> Result<Self, String> {
        if relabel.len() != self.n_items {
            return Err(format!(
                "relabeling has {} entries for a domain of {}",
                relabel.len(),
                self.n_items
            ));
        }
        let mut seen = vec![false; self.n_items];
        for &t in relabel {
            let t = t as usize;
            if t >= self.n_items || seen[t] {
                return Err("relabeling is not a permutation of the domain".into());
            }
            seen[t] = true;
        }
        let transactions = self
            .transactions
            .iter()
            .map(|t| {
                Transaction::new(t.iter().map(|x| ItemId(relabel[x.index()])))
                    // andi::allow(lib-unwrap) — relabeling is a bijection, so a non-empty transaction stays non-empty
                    .expect("relabeled transaction stays non-empty")
            })
            .collect();
        Ok(Database {
            n_items: self.n_items,
            transactions,
        })
    }

    /// The vertical representation: `tidlists()[x]` is the sorted
    /// list of transaction indices containing item `x`. One database
    /// pass; the layout Eclat-style miners and co-occurrence
    /// analyses consume.
    pub fn tidlists(&self) -> Vec<Vec<u32>> {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); self.n_items];
        for (tid, t) in self.transactions.iter().enumerate() {
            for x in t {
                lists[x.index()].push(tid as u32);
            }
        }
        lists
    }

    /// Builds a database from raw `u32` item lists; convenience for
    /// tests and examples.
    ///
    /// # Errors
    ///
    /// Propagates [`Database::new`] errors and rejects empty
    /// transactions.
    pub fn from_raw(n_items: usize, raw: &[&[u32]]) -> Result<Self, String> {
        let mut txs = Vec::with_capacity(raw.len());
        for (i, r) in raw.iter().enumerate() {
            let t = Transaction::new(r.iter().map(|&x| ItemId(x)))
                .ok_or_else(|| format!("transaction {i} is empty"))?;
            txs.push(t);
        }
        Database::new(n_items, txs)
    }
}

/// The BigMart example database of Figure 1, used throughout the
/// paper (and throughout our test suite).
///
/// Six items with frequencies 0.5, 0.4, 0.5, 0.5, 0.3, 0.5 over ten
/// transactions. Items are 0-based here (paper's item `1` is our
/// `ItemId(0)`).
pub fn bigmart() -> Database {
    // Supports: item0 5, item1 4, item2 5, item3 5, item4 3, item5 5.
    // Item k occupies a contiguous run of transactions:
    //   item0: t0..t4, item1: t0..t3, item2: t2..t6,
    //   item3: t4..t8, item4: t7..t9, item5: t5..t9.
    //
    // Each row is sorted, duplicate-free, and within 0..6, so the
    // trusted constructors apply directly — no fallible path, no
    // suppression; debug builds re-check the invariants.
    let raw: [&[u32]; 10] = [
        &[0, 1],
        &[0, 1],
        &[0, 1, 2],
        &[0, 1, 2],
        &[0, 2, 3],
        &[2, 3, 5],
        &[2, 3, 5],
        &[3, 4, 5],
        &[3, 4, 5],
        &[4, 5],
    ];
    let txs = raw
        .iter()
        .map(|r| Transaction::from_sorted_unique(r.iter().map(|&x| ItemId(x)).collect()))
        .collect();
    Database::from_trusted(6, txs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigmart_matches_paper_frequencies() {
        let db = bigmart();
        assert_eq!(db.n_items(), 6);
        assert_eq!(db.n_transactions(), 10);
        let f = db.frequencies();
        let expected = [0.5, 0.4, 0.5, 0.5, 0.3, 0.5];
        for (i, (&got, &want)) in f.iter().zip(expected.iter()).enumerate() {
            assert!((got - want).abs() < 1e-12, "item {i}: {got} != {want}");
        }
    }

    #[test]
    fn supports_single_pass_agrees_with_per_item() {
        let db = bigmart();
        let s = db.supports();
        for (x, &sx) in s.iter().enumerate() {
            let f = db.frequency(ItemId(x as u32));
            assert!((f - sx as f64 / 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_out_of_domain_items() {
        let err = Database::from_raw(2, &[&[0, 5]]).unwrap_err();
        assert!(err.contains("outside domain"), "got: {err}");
    }

    #[test]
    fn rejects_empty_database() {
        let err = Database::new(3, vec![]).unwrap_err();
        assert!(err.contains("at least one transaction"));
    }

    #[test]
    fn itemset_support_counts_containing_transactions() {
        let db = bigmart();
        // Items {3, 5} co-occur in transactions t5..t8 -> support 4.
        assert_eq!(db.itemset_support(&[ItemId(3), ItemId(5)]), 4);
        assert_eq!(db.itemset_support(&[ItemId(4)]), 3);
        // Empty itemset is contained in every transaction.
        assert_eq!(db.itemset_support(&[]), 10);
    }

    #[test]
    fn relabel_permutes_supports() {
        let db = bigmart();
        // Reverse permutation.
        let relabel: Vec<u32> = (0..6u32).rev().collect();
        let anon = db.relabel(&relabel).unwrap();
        let s = db.supports();
        let s2 = anon.supports();
        for (x, &sx) in s.iter().enumerate() {
            assert_eq!(sx, s2[5 - x], "support must follow the relabeling");
        }
        assert_eq!(anon.total_occurrences(), db.total_occurrences());
    }

    #[test]
    fn relabel_rejects_non_permutations() {
        let db = bigmart();
        assert!(db.relabel(&[0, 0, 1, 2, 3, 4]).is_err(), "duplicate target");
        assert!(db.relabel(&[0, 1, 2]).is_err(), "wrong length");
        assert!(db.relabel(&[0, 1, 2, 3, 4, 9]).is_err(), "out of range");
    }

    #[test]
    fn avg_transaction_len() {
        let db = Database::from_raw(3, &[&[0], &[0, 1, 2]]).unwrap();
        assert!((db.avg_transaction_len() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tidlists_are_the_vertical_view() {
        let db = bigmart();
        let lists = db.tidlists();
        assert_eq!(lists.len(), 6);
        // item 0 occupies t0..t4 by construction.
        assert_eq!(lists[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(lists[4], vec![7, 8, 9]);
        // Lengths reproduce the support profile.
        let via_lists: Vec<u64> = lists.iter().map(|l| l.len() as u64).collect();
        assert_eq!(via_lists, db.supports());
        // Lists are sorted.
        for l in &lists {
            assert!(l.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

//! Robustness tests: arbitrary inputs must produce clean errors,
//! never panics, and parse/serialize round-trips must be lossless.

use andi_data::fimi::{read_fimi, write_fimi};
use andi_data::sample::sample_count;
use andi_data::stats::FrequencyGroups;
use andi_data::{Database, DatabaseBuilder, ItemId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The FIMI parser never panics on arbitrary bytes.
    #[test]
    fn fimi_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_fimi(bytes.as_slice());
    }

    /// The FIMI parser never panics on arbitrary ASCII-ish text
    /// (digits, spaces, newlines, stray punctuation).
    #[test]
    fn fimi_parser_handles_messy_text(
        text in "[0-9 \t\r\n.,;x-]{0,256}"
    ) {
        let _ = read_fimi(text.as_bytes());
    }

    /// Valid databases round-trip through FIMI exactly.
    #[test]
    fn fimi_roundtrip(
        txs in prop::collection::vec(
            prop::collection::btree_set(0u32..40, 1..8),
            1..30,
        )
    ) {
        let mut builder = DatabaseBuilder::new(40);
        for t in &txs {
            builder.add(t.iter().copied()).unwrap();
        }
        let db = builder.build().unwrap();
        let mut buf = Vec::new();
        write_fimi(&db, &mut buf).unwrap();
        let parsed = read_fimi(buf.as_slice()).unwrap();
        // Dense ids can shift (unused items vanish), but the
        // transaction structure survives via the raw-id map.
        prop_assert_eq!(parsed.database.n_transactions(), db.n_transactions());
        for (orig, back) in db.transactions().iter().zip(parsed.database.transactions()) {
            let recovered: Vec<u64> =
                back.iter().map(|x| parsed.raw_id(x)).collect();
            let original: Vec<u64> =
                orig.iter().map(|x| x.0 as u64).collect();
            prop_assert_eq!(recovered, original);
        }
    }

    /// Frequency-group decomposition always partitions the domain
    /// with strictly increasing supports.
    #[test]
    fn frequency_groups_partition(
        supports in prop::collection::vec(0u64..100, 1..60)
    ) {
        let fg = FrequencyGroups::from_supports(&supports, 100);
        prop_assert_eq!(fg.n_items(), supports.len());
        let mut seen = vec![false; supports.len()];
        let mut last_support = None;
        for g in &fg.groups {
            if let Some(prev) = last_support {
                prop_assert!(g.support > prev, "groups must strictly increase");
            }
            last_support = Some(g.support);
            for &x in &g.items {
                prop_assert!(!seen[x.index()], "item in two groups");
                seen[x.index()] = true;
                prop_assert_eq!(supports[x.index()], g.support);
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// Sampling preserves the per-item support ordering constraint:
    /// a sample's support never exceeds the original.
    #[test]
    fn sample_supports_bounded(
        txs in prop::collection::vec(
            prop::collection::btree_set(0u32..20, 1..6),
            2..25,
        ),
        seed in 0u64..1000,
        keep_half in prop::bool::ANY,
    ) {
        let mut builder = DatabaseBuilder::new(20);
        for t in &txs {
            builder.add(t.iter().copied()).unwrap();
        }
        let db = builder.build().unwrap();
        let k = if keep_half { (db.n_transactions() / 2).max(1) } else { 1 };
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_count(&db, k, &mut rng);
        let orig = db.supports();
        for (x, &sup) in s.supports().iter().enumerate() {
            prop_assert!(sup <= orig[x]);
        }
        prop_assert_eq!(s.n_transactions(), k);
    }

    /// Relabeling by any permutation is always invertible.
    #[test]
    fn relabel_invertible(
        txs in prop::collection::vec(
            prop::collection::btree_set(0u32..12, 1..6),
            1..15,
        ),
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        let mut builder = DatabaseBuilder::new(12);
        for t in &txs {
            builder.add(t.iter().copied()).unwrap();
        }
        let db = builder.build().unwrap();
        let mut forward: Vec<u32> = (0..12).collect();
        forward.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut backward = vec![0u32; 12];
        for (x, &xp) in forward.iter().enumerate() {
            backward[xp as usize] = x as u32;
        }
        let there = db.relabel(&forward).unwrap();
        let back = there.relabel(&backward).unwrap();
        for (a, b) in db.transactions().iter().zip(back.transactions()) {
            prop_assert_eq!(a.items(), b.items());
        }
    }
}

/// Non-proptest regression: a FIMI file full of huge ids parses
/// without overflow.
#[test]
fn fimi_large_ids() {
    let text = "18446744073709551615 7\n7\n";
    let ds = read_fimi(text.as_bytes()).unwrap();
    assert_eq!(ds.database.n_items(), 2);
    assert_eq!(ds.raw_id(ItemId(1)), u64::MAX);
}

/// Ids beyond u64 produce a clean error.
#[test]
fn fimi_overflowing_ids_error() {
    let err = read_fimi("184467440737095516160\n".as_bytes()).unwrap_err();
    assert!(err.contains("invalid item token"), "got: {err}");
}

/// A database with one item in every transaction has a single group.
#[test]
fn degenerate_uniform_database() {
    let db = Database::from_raw(1, &[&[0], &[0], &[0]]).unwrap();
    let fg = FrequencyGroups::of_database(&db);
    assert_eq!(fg.n_groups(), 1);
    assert!(fg.median_gap().is_none());
}

//! Exact expected-crack computation via permanents (Section 4.1).
//!
//! Under the equal-likelihood assumption over consistent crack
//! mappings, the probability that anonymized item `x'` maps to its
//! true identity `x` is the fraction of perfect matchings using edge
//! `(x', x)`:
//!
//! ```text
//! P(crack x) = perm(A with row x' and column x deleted) / perm(A)
//! ```
//!
//! By linearity of expectation, `E[X]` is the sum of these ratios —
//! this avoids the paper's subset-sum formulation for the expectation
//! while producing identical values. The full crack-count
//! *distribution* `P(X = k)` is also provided for tiny domains,
//! following the paper's formula literally (enumerate cracked subsets
//! `S`, forbid crack edges outside `S`, count matchings).

use crate::dense::DenseBigraph;
use crate::par::{Budget, ExecError};
use crate::permanent::{
    permanent, permanent_of_rows, try_permanent_of_rows_budgeted,
    try_permanent_of_rows_with_threads, MAX_PERMANENT_N,
};

/// Structured failure of an exact computation: every condition the
/// panicking wrappers either panic on or fold into `None` gets its
/// own variant, so budgeted callers (the Assess-Risk degradation
/// ladder) can tell "descend a rung" apart from "abort".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExactError {
    /// The graph has no perfect matching: the mapping space is empty
    /// and crack probabilities are undefined.
    EmptyMappingSpace,
    /// The Ryser accumulator would overflow `i128` (dense graphs
    /// near [`MAX_PERMANENT_N`]).
    Overflow,
    /// A budgeted run was interrupted: deadline, cancellation, or an
    /// isolated worker panic.
    Interrupted(ExecError),
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::EmptyMappingSpace => {
                write!(f, "graph has no perfect matching; mapping space is empty")
            }
            ExactError::Overflow => {
                write!(
                    f,
                    "permanent overflowed i128; domain too dense for exact Ryser"
                )
            }
            ExactError::Interrupted(e) => write!(f, "exact computation interrupted: {e}"),
        }
    }
}

impl std::error::Error for ExactError {}

/// Exact expected number of cracks in the aligned graph `g`.
///
/// Returns `None` when the graph has no perfect matching at all (the
/// mapping space is empty and the expectation is undefined).
///
/// # Panics
///
/// Panics if `g.n() > MAX_PERMANENT_N`.
/// # Examples
///
/// ```
/// use andi_graph::{expected_cracks, DenseBigraph};
///
/// // Lemma 1: one expected crack on the complete graph.
/// let e = expected_cracks(&DenseBigraph::complete(5)).unwrap();
/// assert!((e - 1.0).abs() < 1e-9);
///
/// // No perfect matching -> undefined.
/// let g = DenseBigraph::from_edges(2, &[(0, 1), (1, 1)]);
/// assert_eq!(expected_cracks(&g), None);
/// ```
pub fn expected_cracks(g: &DenseBigraph) -> Option<f64> {
    let n = g.n();
    assert!(
        n <= MAX_PERMANENT_N,
        "exact computation limited to n <= {MAX_PERMANENT_N}"
    );
    let total = permanent(g);
    if total == 0 {
        return None;
    }
    let rows: Vec<u64> = (0..n).map(|i| g.row_words(i)[0]).collect();
    let mut e = 0.0f64;
    for x in 0..n {
        if !g.has_edge(x, x) {
            continue;
        }
        // Delete row x and column x.
        let reduced: Vec<u64> = (0..n)
            .filter(|&i| i != x)
            .map(|i| delete_column(rows[i], x))
            .collect();
        let fixed = permanent_of_rows(&reduced, n - 1);
        e += fixed as f64 / total as f64;
    }
    Some(e)
}

/// [`expected_cracks`] with every failure condition structured:
/// overflow is [`ExactError::Overflow`] (the legacy `permanent`
/// wrapper panicked here) and an empty mapping space is
/// [`ExactError::EmptyMappingSpace`] (the legacy path folded it into
/// `None`).
///
/// # Errors
///
/// See [`ExactError`].
///
/// # Panics
///
/// Panics if `g.n() > MAX_PERMANENT_N`.
pub fn try_expected_cracks(g: &DenseBigraph) -> Result<f64, ExactError> {
    try_expected_cracks_with_threads(g, crate::par::available_threads())
}

/// [`try_expected_cracks`] with an explicit worker count (results are
/// identical for every `threads`; the serial walk also short-circuits
/// overflow fastest, which the dense regression tests rely on).
///
/// # Errors
///
/// See [`ExactError`].
///
/// # Panics
///
/// Panics if `g.n() > MAX_PERMANENT_N`.
pub fn try_expected_cracks_with_threads(
    g: &DenseBigraph,
    threads: usize,
) -> Result<f64, ExactError> {
    let n = g.n();
    assert!(
        n <= MAX_PERMANENT_N,
        "exact computation limited to n <= {MAX_PERMANENT_N}"
    );
    let rows: Vec<u64> = (0..n).map(|i| g.row_words(i)[0]).collect();
    let total =
        try_permanent_of_rows_with_threads(&rows, n, threads).ok_or(ExactError::Overflow)?;
    if total == 0 {
        return Err(ExactError::EmptyMappingSpace);
    }
    let mut e = 0.0f64;
    for x in 0..n {
        if !g.has_edge(x, x) {
            continue;
        }
        let reduced: Vec<u64> = (0..n)
            .filter(|&i| i != x)
            .map(|i| delete_column(rows[i], x))
            .collect();
        let fixed = try_permanent_of_rows_with_threads(&reduced, n - 1, threads)
            .ok_or(ExactError::Overflow)?;
        e += fixed as f64 / total as f64;
    }
    Ok(e)
}

/// Budgeted, fault-isolated [`crack_probabilities`]: the full
/// permanent and each reduced permanent run through
/// [`try_permanent_of_rows_budgeted`], so the whole computation
/// respects the deadline/token and reports structured errors. Item
/// order is fixed, so the result is bit-identical at any thread
/// count.
///
/// # Errors
///
/// See [`ExactError`].
///
/// # Panics
///
/// Panics if `g.n() > MAX_PERMANENT_N`.
pub fn crack_probabilities_budgeted(
    g: &DenseBigraph,
    threads: usize,
    budget: &Budget,
) -> Result<Vec<f64>, ExactError> {
    let n = g.n();
    assert!(n <= MAX_PERMANENT_N);
    let rows: Vec<u64> = (0..n).map(|i| g.row_words(i)[0]).collect();
    let total = budgeted_permanent(&rows, n, threads, budget)?;
    if total == 0 {
        return Err(ExactError::EmptyMappingSpace);
    }
    let mut probs = Vec::with_capacity(n);
    for x in 0..n {
        if !g.has_edge(x, x) {
            probs.push(0.0);
            continue;
        }
        let reduced: Vec<u64> = (0..n)
            .filter(|&i| i != x)
            .map(|i| delete_column(rows[i], x))
            .collect();
        let fixed = budgeted_permanent(&reduced, n - 1, threads, budget)?;
        probs.push(fixed as f64 / total as f64);
    }
    Ok(probs)
}

/// Maps the budgeted permanent's three-way outcome onto
/// [`ExactError`].
fn budgeted_permanent(
    rows: &[u64],
    n: usize,
    threads: usize,
    budget: &Budget,
) -> Result<u128, ExactError> {
    match try_permanent_of_rows_budgeted(rows, n, threads, budget) {
        Err(e) => Err(ExactError::Interrupted(e)),
        Ok(None) => Err(ExactError::Overflow),
        Ok(Some(v)) => Ok(v),
    }
}

/// Per-item exact crack probabilities; entry `x` is
/// `P(x' maps to x)`. `None` if no perfect matching exists.
pub fn crack_probabilities(g: &DenseBigraph) -> Option<Vec<f64>> {
    let n = g.n();
    assert!(n <= MAX_PERMANENT_N);
    let total = permanent(g);
    if total == 0 {
        return None;
    }
    let rows: Vec<u64> = (0..n).map(|i| g.row_words(i)[0]).collect();
    let probs = (0..n)
        .map(|x| {
            if !g.has_edge(x, x) {
                return 0.0;
            }
            let reduced: Vec<u64> = (0..n)
                .filter(|&i| i != x)
                .map(|i| delete_column(rows[i], x))
                .collect();
            permanent_of_rows(&reduced, n - 1) as f64 / total as f64
        })
        .collect();
    Some(probs)
}

/// Removes bit `col` from a row mask, shifting higher bits down by
/// one (column deletion).
#[inline]
fn delete_column(row: u64, col: usize) -> u64 {
    let low = row & ((1u64 << col) - 1);
    let high = (row >> (col + 1)) << col;
    low | high
}

/// Maximum domain size for the full crack-count distribution.
pub const MAX_DISTRIBUTION_N: usize = 14;

/// The exact distribution `P(X = k)` of the number of cracks,
/// `k = 0..=n`, following the paper's Section 4.1 formula.
///
/// Returns `None` if the graph has no perfect matching.
///
/// # Panics
///
/// Panics if `g.n() > MAX_DISTRIBUTION_N`.
/// # Examples
///
/// ```
/// use andi_graph::{crack_distribution, DenseBigraph};
///
/// let dist = crack_distribution(&DenseBigraph::complete(4)).unwrap();
/// // Derangement structure: P(X = 3) = 0 (you cannot miss exactly one).
/// assert!(dist[3].abs() < 1e-12);
/// let mass: f64 = dist.iter().sum();
/// assert!((mass - 1.0).abs() < 1e-9);
/// ```
pub fn crack_distribution(g: &DenseBigraph) -> Option<Vec<f64>> {
    let n = g.n();
    assert!(
        n <= MAX_DISTRIBUTION_N,
        "distribution limited to n <= {MAX_DISTRIBUTION_N}"
    );
    let total = permanent(g);
    if total == 0 {
        return None;
    }
    let rows: Vec<u64> = (0..n).map(|i| g.row_words(i)[0]).collect();
    let mut dist = vec![0.0f64; n + 1];

    // Enumerate the subset S of cracked items. A matching cracks
    // exactly S iff it uses edge (x, x) for x in S and avoids (y, y)
    // for y outside S: delete S's rows/columns and zero the diagonal
    // of the remainder.
    for s in 0u64..(1u64 << n) {
        // All items of S must actually have their crack edge.
        let mut feasible = true;
        let mut bits = s;
        while bits != 0 {
            let x = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if rows[x] & (1u64 << x) == 0 {
                feasible = false;
                break;
            }
        }
        if !feasible {
            continue;
        }
        let k = s.count_ones() as usize;
        // Build the reduced matrix over items outside S with the
        // diagonal (crack) entries removed.
        let keep: Vec<usize> = (0..n).filter(|&i| s & (1u64 << i) == 0).collect();
        let reduced: Vec<u64> = keep
            .iter()
            .map(|&i| {
                let mut row = rows[i] & !(1u64 << i); // forbid own crack
                                                      // Delete the S columns (descending so shifts stay valid).
                for x in (0..n).rev() {
                    if s & (1u64 << x) != 0 {
                        row = delete_column(row, x);
                    }
                }
                row
            })
            .collect();
        let count = permanent_of_rows(&reduced, keep.len());
        if count > 0 {
            dist[k] += count as f64 / total as f64;
        }
    }
    Some(dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_expectation_is_one() {
        // Lemma 1: E[X] = 1 for the complete bipartite graph.
        for n in 1..=8usize {
            let g = DenseBigraph::complete(n);
            let e = expected_cracks(&g).unwrap();
            assert!((e - 1.0).abs() < 1e-9, "n={n}: E={e}");
        }
    }

    #[test]
    fn staircase_cracks_everything() {
        // Figure 6(a): the unique perfect matching cracks all four.
        let mut g = DenseBigraph::new(4);
        for j in 0..4 {
            for i in 0..=j {
                g.add_edge(i, j);
            }
        }
        assert!((expected_cracks(&g).unwrap() - 4.0).abs() < 1e-12);
        let p = crack_probabilities(&g).unwrap();
        assert!(p.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn two_blocks_expectation_is_two() {
        // Lemma 3 with g = 2 groups.
        let mut g = DenseBigraph::new(5);
        for i in 0..2 {
            for j in 0..2 {
                g.add_edge(i, j);
            }
        }
        for i in 2..5 {
            for j in 2..5 {
                g.add_edge(i, j);
            }
        }
        assert!((expected_cracks(&g).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_graph_returns_none() {
        let g = DenseBigraph::from_edges(2, &[(0, 1), (1, 1)]);
        assert_eq!(expected_cracks(&g), None);
        assert_eq!(crack_probabilities(&g), None);
        assert_eq!(crack_distribution(&g), None);
    }

    #[test]
    fn distribution_sums_to_one_and_matches_expectation() {
        let g = DenseBigraph::complete(5);
        let dist = crack_distribution(&g).unwrap();
        let mass: f64 = dist.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "total mass {mass}");
        let mean: f64 = dist.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
        // Complete graph cracks follow the derangement law:
        // P(X = n-1) = 0 (can't miss exactly one).
        assert!(dist[4].abs() < 1e-12);
    }

    #[test]
    fn distribution_of_the_bigmart_point_belief() {
        // Groups {1',3',4',6'}, {2'}, {5'}: cracks = 2 + cracks in a
        // complete 4-group. E[X] = 3 = g (Lemma 3).
        let mut g = DenseBigraph::new(6);
        for &i in &[0usize, 2, 3, 5] {
            for &j in &[0usize, 2, 3, 5] {
                g.add_edge(i, j);
            }
        }
        g.add_edge(1, 1);
        g.add_edge(4, 4);
        let e = expected_cracks(&g).unwrap();
        assert!((e - 3.0).abs() < 1e-9);
        let dist = crack_distribution(&g).unwrap();
        // X is always at least 2 (the singletons are forced cracks).
        assert!(dist[0].abs() < 1e-12);
        assert!(dist[1].abs() < 1e-12);
        let mean: f64 = dist.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert!((mean - 3.0).abs() < 1e-9);
    }

    #[test]
    fn try_expected_cracks_structures_every_failure() {
        // Happy path agrees with the legacy API.
        let g = DenseBigraph::complete(5);
        let e = try_expected_cracks(&g).unwrap();
        assert!((e - 1.0).abs() < 1e-9);

        // Empty mapping space is its own variant, not a panic or None.
        let g = DenseBigraph::from_edges(2, &[(0, 1), (1, 1)]);
        assert_eq!(try_expected_cracks(&g), Err(ExactError::EmptyMappingSpace));
    }

    #[test]
    fn dense_overflow_is_a_structured_error_not_a_panic() {
        // The satellite regression: the dense n=27 case that overflows
        // Ryser's i128 partial sums must surface as
        // `ExactError::Overflow` from the audited caller path (the
        // legacy `expected_cracks` would panic inside `permanent`).
        // Serial walk: overflow short-circuits, keeping this cheap.
        let mut g = DenseBigraph::new(27);
        for i in 0..27 {
            for j in 0..27 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(
            try_expected_cracks_with_threads(&g, 1),
            Err(ExactError::Overflow)
        );
    }

    #[test]
    fn budgeted_probabilities_match_legacy() {
        let mut g = DenseBigraph::new(6);
        for &i in &[0usize, 2, 3, 5] {
            for &j in &[0usize, 2, 3, 5] {
                g.add_edge(i, j);
            }
        }
        g.add_edge(1, 1);
        g.add_edge(4, 4);
        let legacy = crack_probabilities(&g).unwrap();
        for threads in 1..=4 {
            let b = Budget::unlimited();
            let budgeted = crack_probabilities_budgeted(&g, threads, &b).unwrap();
            assert_eq!(budgeted, legacy, "threads = {threads}");
        }

        let infeasible = DenseBigraph::from_edges(2, &[(0, 1), (1, 1)]);
        let b = Budget::unlimited();
        assert_eq!(
            crack_probabilities_budgeted(&infeasible, 2, &b),
            Err(ExactError::EmptyMappingSpace)
        );
    }

    #[test]
    fn budgeted_probabilities_zero_budget_is_interrupted() {
        let g = DenseBigraph::complete(5);
        let b = Budget::with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            crack_probabilities_budgeted(&g, 2, &b),
            Err(ExactError::Interrupted(ExecError::BudgetExceeded {
                budget_ms: 0
            }))
        );
    }

    #[test]
    fn delete_column_shifts() {
        // row bits {0, 2, 5}; deleting column 2 leaves {0, 4}.
        assert_eq!(delete_column(0b100101, 2), 0b10001);
        // Deleting an unset column just shifts the higher bits.
        assert_eq!(delete_column(0b100101, 1), 0b10011);
        assert_eq!(delete_column(0b1, 0), 0);
    }
}

//! Deterministic, seeded fault injection.
//!
//! The budgeted execution paths (`permanent`, `sampler`, the recipe)
//! carry named *probe points* — [`probe`] calls that are free when no
//! schedule is active and that inject a panic or a short delay when
//! one is. Whether a given probe fires is a **pure function** of
//! `(schedule, point name, task index)` — no clocks, no thread ids,
//! no global counters — so an injected fault lands on exactly the
//! same task at `ANDI_THREADS=1` and `ANDI_THREADS=4`, which is what
//! lets the chaos suite demand bit-identical outcomes across thread
//! counts.
//!
//! # Schedule grammar
//!
//! ```text
//! ANDI_FAULTS=<seed>:<rate>[:<mode>]
//! ```
//!
//! `seed` is a `u64`, `rate` a probability in `[0, 1]` (stored as
//! parts-per-million), `mode` one of `panic` (default), `delay`, or
//! `mix`. Example: `ANDI_FAULTS=7:0.05:panic` panics at ~5% of probe
//! hits, chosen deterministically by the seed.
//!
//! Every probe point sits *inside* a task run under
//! [`crate::par::try_map_indexed`]'s `catch_unwind`, so an injected
//! panic always surfaces as a structured
//! [`crate::par::ExecError::WorkerPanic`], never a process abort.
//!
//! The service layer (`crates/serve`) adds three probe points of its
//! own — `serve.accept` (indexed by connection sequence, fired
//! before a connection is queued), `serve.request` (indexed by
//! request sequence, fired before routing), and `cache.shard`
//! (indexed by the cache key, fired on every shard lookup). Each
//! sits under the server's own `catch_unwind` perimeter, so an
//! injected panic becomes a structured `500` response and the
//! connection (not the server) is what pays for it.
//!
//! # Activation
//!
//! Ambient activation reads [`FAULTS_ENV`] once per process (CI sets
//! it for the chaos job). Tests use [`FaultSchedule::install`], which
//! takes a process-wide lock for the guard's lifetime — serializing
//! chaos tests within a test binary — and overrides the ambient
//! schedule without mutating the environment.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};
use std::time::Duration;

/// Environment variable carrying the ambient fault schedule.
pub const FAULTS_ENV: &str = "ANDI_FAULTS";

/// What an active probe injects when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Every firing probe panics.
    Panic,
    /// Every firing probe sleeps for a few milliseconds.
    Delay,
    /// Each firing probe deterministically picks panic or delay.
    Mix,
}

/// The concrete action a firing probe takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a payload naming the probe point and index.
    Panic,
    /// Sleep for the given duration.
    Delay(Duration),
}

/// A deterministic fault schedule: seed, firing rate, and mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Seed mixed into every firing decision.
    pub seed: u64,
    /// Firing probability in parts per million.
    pub rate_ppm: u32,
    /// What a firing probe does.
    pub mode: FaultMode,
}

impl FaultSchedule {
    /// Parses the `<seed>:<rate>[:<mode>]` grammar. Returns `None`
    /// (with no side effects) on any malformed input.
    pub fn parse(spec: &str) -> Option<FaultSchedule> {
        let mut parts = spec.trim().split(':');
        let seed: u64 = parts.next()?.trim().parse().ok()?;
        let rate: f64 = parts.next()?.trim().parse().ok()?;
        if !(0.0..=1.0).contains(&rate) {
            return None;
        }
        let mode = match parts.next().map(str::trim) {
            None | Some("panic") => FaultMode::Panic,
            Some("delay") => FaultMode::Delay,
            Some("mix") => FaultMode::Mix,
            Some(_) => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(FaultSchedule {
            seed,
            rate_ppm: (rate * 1_000_000.0).round() as u32,
            mode,
        })
    }

    /// Pure firing decision for `(point, index)`: `Some(action)` when
    /// this probe hit should inject a fault. Identical for every
    /// thread count and every interleaving by construction.
    pub fn fires(&self, point: &str, index: usize) -> Option<FaultAction> {
        if self.rate_ppm == 0 {
            return None;
        }
        let h = splitmix64(self.seed ^ fnv1a(point.as_bytes()) ^ splitmix64(index as u64));
        if (h % 1_000_000) as u32 >= self.rate_ppm {
            return None;
        }
        let action_bits = h >> 32;
        let delay = Duration::from_millis(1 + (action_bits >> 1) % 4);
        match self.mode {
            FaultMode::Panic => Some(FaultAction::Panic),
            FaultMode::Delay => Some(FaultAction::Delay(delay)),
            FaultMode::Mix => {
                if action_bits & 1 == 0 {
                    Some(FaultAction::Panic)
                } else {
                    Some(FaultAction::Delay(delay))
                }
            }
        }
    }

    /// Installs this schedule as the process-wide override for the
    /// guard's lifetime, taking a global lock so concurrent tests
    /// with different schedules serialize instead of interleaving.
    pub fn install(self) -> ScheduleGuard {
        let serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        *OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) = Some(self);
        OVERRIDE_ACTIVE.store(true, Ordering::SeqCst);
        ScheduleGuard { _serial: serial }
    }
}

/// RAII guard for an installed override schedule; dropping it
/// deactivates injection and releases the serialization lock.
pub struct ScheduleGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for ScheduleGuard {
    fn drop(&mut self) {
        OVERRIDE_ACTIVE.store(false, Ordering::SeqCst);
        *OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

static INSTALL_LOCK: Mutex<()> = Mutex::new(());
static OVERRIDE: Mutex<Option<FaultSchedule>> = Mutex::new(None);
static OVERRIDE_ACTIVE: AtomicBool = AtomicBool::new(false);

/// The ambient schedule from [`FAULTS_ENV`], parsed once per
/// process. Malformed values warn once on `stderr` and deactivate
/// injection rather than erroring.
pub fn ambient() -> Option<&'static FaultSchedule> {
    static AMBIENT: OnceLock<Option<FaultSchedule>> = OnceLock::new();
    AMBIENT
        .get_or_init(|| match std::env::var(FAULTS_ENV) {
            Err(_) => None,
            Ok(spec) => {
                let parsed = FaultSchedule::parse(&spec);
                if parsed.is_none() {
                    warn_bad_schedule(&spec);
                }
                parsed
            }
        })
        .as_ref()
}

/// One-time warning for an unparseable `ANDI_FAULTS` value.
fn warn_bad_schedule(spec: &str) {
    static WARNED: Once = Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "warning: {FAULTS_ENV}={spec:?} does not match <seed>:<rate>[:panic|delay|mix]; \
             fault injection disabled"
        );
    });
}

/// A named probe point. No-op (two relaxed loads) unless a schedule
/// is active; otherwise consults [`FaultSchedule::fires`] and injects
/// the chosen fault. Call sites must sit inside a
/// [`crate::par::try_map_indexed`] task so injected panics stay
/// isolated.
pub fn probe(point: &str, index: usize) {
    let schedule = if OVERRIDE_ACTIVE.load(Ordering::SeqCst) {
        *OVERRIDE.lock().unwrap_or_else(|e| e.into_inner())
    } else {
        match ambient() {
            None => return,
            Some(s) => Some(*s),
        }
    };
    let Some(schedule) = schedule else { return };
    match schedule.fires(point, index) {
        None => {}
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(FaultAction::Panic) => {
            // andi::allow(panic-reachability) — deterministic injected fault; every probe site sits inside try_map_indexed's catch_unwind
            panic!("injected fault at {point}[{index}]")
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the probe-point name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_full_grammar() {
        assert_eq!(
            FaultSchedule::parse("7:0.05"),
            Some(FaultSchedule {
                seed: 7,
                rate_ppm: 50_000,
                mode: FaultMode::Panic
            })
        );
        assert_eq!(
            FaultSchedule::parse(" 1234 : 0.2 : mix "),
            Some(FaultSchedule {
                seed: 1234,
                rate_ppm: 200_000,
                mode: FaultMode::Mix
            })
        );
        assert_eq!(
            FaultSchedule::parse("0:1:delay").map(|s| s.mode),
            Some(FaultMode::Delay)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "7",
            "7:",
            "seven:0.1",
            "7:1.5",
            "7:-0.1",
            "7:0.1:boom",
            "7:0.1:panic:extra",
        ] {
            assert_eq!(FaultSchedule::parse(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn fires_is_pure_and_rate_zero_never_fires() {
        let s = FaultSchedule {
            seed: 42,
            rate_ppm: 500_000,
            mode: FaultMode::Mix,
        };
        for i in 0..64 {
            assert_eq!(s.fires("permanent.chunk", i), s.fires("permanent.chunk", i));
        }
        let off = FaultSchedule { rate_ppm: 0, ..s };
        assert!((0..256).all(|i| off.fires("sampler.batch", i).is_none()));
    }

    #[test]
    fn fires_rate_one_always_fires_and_varies_by_point() {
        let s = FaultSchedule {
            seed: 9,
            rate_ppm: 1_000_000,
            mode: FaultMode::Panic,
        };
        assert!((0..64).all(|i| s.fires("recipe.run", i) == Some(FaultAction::Panic)));
        let half = FaultSchedule {
            rate_ppm: 300_000,
            ..s
        };
        let a: Vec<bool> = (0..64)
            .map(|i| half.fires("recipe.run", i).is_some())
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|i| half.fires("sampler.batch", i).is_some())
            .collect();
        assert_ne!(a, b, "point name should decorrelate firing patterns");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn install_overrides_and_drop_restores() {
        let s = FaultSchedule {
            seed: 1,
            rate_ppm: 1_000_000,
            mode: FaultMode::Delay,
        };
        {
            let _guard = s.install();
            assert!(OVERRIDE_ACTIVE.load(Ordering::SeqCst));
            // A delay-mode probe must not panic.
            probe("permanent.chunk", 3);
        }
        assert!(!OVERRIDE_ACTIVE.load(Ordering::SeqCst));
    }
}

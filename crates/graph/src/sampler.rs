//! MCMC sampling of consistent crack mappings (Section 7.1).
//!
//! The paper estimates the expected number of cracks by sampling
//! perfect matchings that are "perfect, consistent, and as much as
//! possible, random": starting from a seed matching, it repeatedly
//! draws a random permutation `P` of the items and, for each `i`,
//! swaps the partners of `i` and `P(i)` whenever both new edges stay
//! consistent. Swap proposals are symmetric, so the walk's stationary
//! distribution is uniform over the reachable matchings; our test
//! suite validates the resulting crack-count means against the exact
//! permanent-based expectation on small graphs.
//!
//! Schedule (all configurable, defaults = the paper's): 100 000
//! warm-up swap attempts to produce a seed, one sample every 10 000
//! further attempts, 250 samples per seed, then the seed is rebuilt
//! from scratch; 5 000 samples in total.

use rand::Rng;

use crate::dense::DenseBigraph;
use crate::faults;
use crate::grouped::{GroupedBigraph, Matching};
use crate::par::{Budget, ExecError};

/// Anything that can answer consistency queries `(left, right)`.
///
/// The sampler needs only O(1) edge tests, so huge interval graphs
/// can be sampled without materializing adjacency.
pub trait EdgeOracle {
    /// Domain size per side.
    fn n(&self) -> usize;
    /// Whether the hacker may map anonymized `left` to original
    /// `right`.
    fn has_edge(&self, left: usize, right: usize) -> bool;
    /// An optional ordering of the left items such that nearby items
    /// tend to be mutually swappable (for interval graphs: sorted by
    /// observed frequency). Used for locality-aware swap proposals —
    /// any *static* pair distribution preserves the walk's uniform
    /// stationary distribution, because a swap is an involution and
    /// the proposal probability of a pair does not depend on the
    /// current matching.
    fn locality_order(&self) -> Option<Vec<usize>> {
        None
    }
}

impl EdgeOracle for DenseBigraph {
    fn n(&self) -> usize {
        DenseBigraph::n(self)
    }
    fn has_edge(&self, left: usize, right: usize) -> bool {
        DenseBigraph::has_edge(self, left, right)
    }
}

impl EdgeOracle for GroupedBigraph {
    fn n(&self) -> usize {
        GroupedBigraph::n(self)
    }
    fn has_edge(&self, left: usize, right: usize) -> bool {
        GroupedBigraph::has_edge(self, left, right)
    }
    fn locality_order(&self) -> Option<Vec<usize>> {
        // Items in frequency-group order: neighbors in this order
        // have close observed frequencies and are likely consistent
        // swap partners.
        let mut order = Vec::with_capacity(self.n());
        for g in 0..self.n_groups() {
            order.extend_from_slice(self.group_members(g));
        }
        Some(order)
    }
}

/// Sampler schedule.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Swap attempts before the first sample of each seed.
    pub warmup_swaps: usize,
    /// Swap attempts between successive samples.
    pub swaps_between_samples: usize,
    /// Samples taken per seed before reseeding.
    pub samples_per_seed: usize,
    /// Total number of samples.
    pub n_samples: usize,
    /// Whether to use locality-aware swap proposals when the oracle
    /// provides a frequency order (strongly recommended for large
    /// domains; `false` reproduces the paper's uniform-pair walk,
    /// and is exposed mainly for the mixing ablation bench).
    pub use_locality: bool,
}

impl Default for SamplerConfig {
    /// The paper's published schedule (plus locality proposals).
    fn default() -> Self {
        SamplerConfig {
            warmup_swaps: 100_000,
            swaps_between_samples: 10_000,
            samples_per_seed: 250,
            n_samples: 5_000,
            use_locality: true,
        }
    }
}

impl SamplerConfig {
    /// A lighter schedule for tests and quick estimates.
    pub fn quick() -> Self {
        SamplerConfig {
            warmup_swaps: 2_000,
            samples_per_seed: 100,
            swaps_between_samples: 200,
            n_samples: 400,
            use_locality: true,
        }
    }
}

/// Crack-count samples and their summary statistics.
#[derive(Clone, Debug)]
pub struct CrackSamples {
    /// One crack count per sampled matching.
    pub counts: Vec<usize>,
}

impl CrackSamples {
    /// Sample mean of the crack count.
    pub fn mean(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().sum::<usize>() as f64 / self.counts.len() as f64
    }

    /// Sample standard deviation (n-1 denominator).
    pub fn std_dev(&self) -> f64 {
        let n = self.counts.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Empirical histogram of crack counts: `hist[k]` = number of
    /// samples with exactly `k` cracks. Length = max observed + 1
    /// (empty for no samples).
    pub fn histogram(&self) -> Vec<usize> {
        let Some(&max) = self.counts.iter().max() else {
            return Vec::new();
        };
        let mut hist = vec![0usize; max + 1];
        for &c in &self.counts {
            hist[c] += 1;
        }
        hist
    }

    /// Empirical tail probability `P(X >= threshold)` — the figure
    /// an owner reads when the *chance* of a bad release matters
    /// more than the expectation.
    pub fn tail_probability(&self, threshold: usize) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().filter(|&&c| c >= threshold).count() as f64 / self.counts.len() as f64
    }

    /// Empirical `q`-quantile of the crack count (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or there are no samples.
    pub fn quantile(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(!self.counts.is_empty(), "no samples");
        let mut sorted = self.counts.clone();
        sorted.sort_unstable();
        let idx = ((q * (sorted.len() - 1) as f64).round()) as usize;
        sorted[idx]
    }
}

/// Errors from the sampler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SamplerError {
    /// The provided seed matching uses an edge the oracle rejects.
    InconsistentSeed { left: usize, right: usize },
    /// The seed matching matches nothing (empty walk space).
    EmptySeed,
    /// A budgeted run was interrupted: deadline, cancellation, or an
    /// isolated worker panic.
    Interrupted(ExecError),
}

impl std::fmt::Display for SamplerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplerError::InconsistentSeed { left, right } => {
                write!(f, "seed matching edge ({left}', {right}) is inconsistent")
            }
            SamplerError::EmptySeed => write!(f, "seed matching is empty"),
            SamplerError::Interrupted(e) => write!(f, "sampling interrupted: {e}"),
        }
    }
}

impl std::error::Error for SamplerError {}

/// Runs the swap-walk sampler over the matchings of `oracle`,
/// starting from `seed` (typically the identity under full
/// compliance, or a greedy/HK matching otherwise).
///
/// The seed may be partial (a maximum matching smaller than `n`);
/// the walk then permutes the matched pairs and additionally proposes
/// moving a matched left item onto a free right item, so unmatched
/// columns still circulate.
///
/// # Errors
///
/// Returns an error if the seed uses an inconsistent edge or is
/// empty.
/// # Examples
///
/// ```
/// use andi_graph::{sample_cracks, DenseBigraph, Matching};
/// use andi_graph::sampler::SamplerConfig;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // The complete graph: Lemma 1 says E[cracks] = 1.
/// let g = DenseBigraph::complete(6);
/// let mut rng = StdRng::seed_from_u64(1);
/// let samples = sample_cracks(&g, &Matching::identity(6),
///     &SamplerConfig::quick(), &mut rng).unwrap();
/// assert!((samples.mean() - 1.0).abs() < 0.3);
/// assert!(samples.tail_probability(0) == 1.0);
/// ```
pub fn sample_cracks<O: EdgeOracle, R: Rng + ?Sized>(
    oracle: &O,
    seed: &Matching,
    config: &SamplerConfig,
    rng: &mut R,
) -> Result<CrackSamples, SamplerError> {
    sample_cracks_core(oracle, seed, config, rng, &Budget::unlimited(), None)
}

/// Shared walk driver behind every sampling entry point: runs the
/// epoch schedule under `budget` (polled once per epoch and every
/// 1024 swap attempts inside [`Walk::run_swaps`]) and, when `hits`
/// is provided, tallies per-item crack frequencies alongside the
/// per-sample counts (`hits[i]` += 1 for every sample with item `i`
/// cracked; `hits` must have length `oracle.n()`).
fn sample_cracks_core<O: EdgeOracle, R: Rng + ?Sized>(
    oracle: &O,
    seed: &Matching,
    config: &SamplerConfig,
    rng: &mut R,
    budget: &Budget,
    mut hits: Option<&mut Vec<u64>>,
) -> Result<CrackSamples, SamplerError> {
    let n = oracle.n();
    assert_eq!(seed.left_partner.len(), n, "seed size mismatch");

    // Validate the seed once.
    let mut active: Vec<usize> = Vec::new();
    for (i, p) in seed.left_partner.iter().enumerate() {
        if let Some(y) = *p {
            if !oracle.has_edge(i, y) {
                return Err(SamplerError::InconsistentSeed { left: i, right: y });
            }
            active.push(i);
        }
    }
    if active.is_empty() {
        return Err(SamplerError::EmptySeed);
    }

    // Locality structure for the proposal kernel: positions of the
    // active items along the oracle's frequency-sorted order.
    let locality = if config.use_locality {
        oracle.locality_order()
    } else {
        None
    }
    .map(|order| {
        let order: Vec<usize> = order
            .into_iter()
            .filter(|&i| seed.left_partner[i].is_some())
            .collect();
        let mut pos = vec![usize::MAX; n];
        for (p, &i) in order.iter().enumerate() {
            pos[i] = p;
        }
        (order, pos)
    });

    let mut counts = Vec::with_capacity(config.n_samples);
    'outer: loop {
        budget.check().map_err(SamplerError::Interrupted)?;
        // (Re)seed.
        let mut partner: Vec<Option<usize>> = seed.left_partner.clone();
        let mut free_rights: Vec<usize> = (0..n)
            .filter(|&y| seed.right_partner[y].is_none())
            .collect();

        let mut walk = Walk {
            oracle,
            partner: &mut partner,
            active: &active,
            free_rights: &mut free_rights,
            locality: locality.as_ref(),
        };

        walk.run_swaps(config.warmup_swaps, rng, budget)
            .map_err(SamplerError::Interrupted)?;
        for _ in 0..config.samples_per_seed {
            walk.run_swaps(config.swaps_between_samples, rng, budget)
                .map_err(SamplerError::Interrupted)?;
            counts.push(count_cracks(walk.partner));
            if let Some(h) = hits.as_deref_mut() {
                tally_cracks(walk.partner, h);
            }
            if counts.len() >= config.n_samples {
                break 'outer;
            }
        }
    }
    Ok(CrackSamples { counts })
}

/// Parallel, thread-count-invariant version of [`sample_cracks`].
///
/// The schedule is sharded into *batches* of `config.samples_per_seed`
/// samples — exactly one seed epoch each, the walk's natural unit of
/// independence (every epoch restarts from `seed` anyway). Batch `b`
/// runs its own `StdRng` seeded `rng_seed.wrapping_add(b)`, and the
/// batches are concatenated in batch order, so the returned sample
/// vector depends only on `(oracle, seed, config, rng_seed)` — never
/// on the worker count. Runs on [`crate::par::available_threads`]
/// workers; see [`sample_cracks_with_threads`] for an explicit count.
///
/// Note the sharded stream is *not* the same stream `sample_cracks`
/// draws from one sequential RNG — it is a different (equally valid)
/// schedule with a per-epoch seeding discipline. What is guaranteed
/// is bit-identity of the sharded sampler with itself across thread
/// counts.
///
/// # Errors
///
/// Same conditions as [`sample_cracks`].
pub fn sample_cracks_sharded<O: EdgeOracle + Sync>(
    oracle: &O,
    seed: &Matching,
    config: &SamplerConfig,
    rng_seed: u64,
) -> Result<CrackSamples, SamplerError> {
    sample_cracks_with_threads(
        oracle,
        seed,
        config,
        rng_seed,
        crate::par::available_threads(),
    )
}

/// [`sample_cracks_sharded`] with an explicit worker count (for the
/// determinism property tests; results are identical for every
/// `threads`).
pub fn sample_cracks_with_threads<O: EdgeOracle + Sync>(
    oracle: &O,
    seed: &Matching,
    config: &SamplerConfig,
    rng_seed: u64,
    threads: usize,
) -> Result<CrackSamples, SamplerError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    assert!(
        config.samples_per_seed >= 1,
        "samples_per_seed must be >= 1"
    );
    let per_batch = config.samples_per_seed;
    let n_batches = config.n_samples.div_ceil(per_batch);
    if n_batches == 0 {
        return Ok(CrackSamples { counts: Vec::new() });
    }

    let batches = crate::par::map_indexed(threads, n_batches, |b| {
        let batch_len = per_batch.min(config.n_samples - b * per_batch);
        let batch_config = SamplerConfig {
            n_samples: batch_len,
            ..*config
        };
        let mut rng = StdRng::seed_from_u64(rng_seed.wrapping_add(b as u64));
        sample_cracks(oracle, seed, &batch_config, &mut rng)
    });

    let mut counts = Vec::with_capacity(config.n_samples);
    for batch in batches {
        counts.extend(batch?.counts);
    }
    Ok(CrackSamples { counts })
}

/// Budgeted, fault-isolated [`sample_cracks_with_threads`]: the same
/// batch sharding and per-batch seeding discipline (so with an
/// unlimited budget and no fault schedule the sample stream is
/// bit-identical to the legacy sharded sampler at every thread
/// count), but each batch runs as a [`crate::par::try_map_indexed`]
/// task carrying the `sampler.batch` fault probe, and the walk polls
/// `budget` per epoch and every 1024 swap attempts.
///
/// # Errors
///
/// Seed errors as in [`sample_cracks`];
/// [`SamplerError::Interrupted`] when the budget trips, the token
/// fires, or an injected fault panics a batch.
pub fn sample_cracks_budgeted<O: EdgeOracle + Sync>(
    oracle: &O,
    seed: &Matching,
    config: &SamplerConfig,
    rng_seed: u64,
    threads: usize,
    budget: &Budget,
) -> Result<CrackSamples, SamplerError> {
    let (samples, _hits) =
        sample_cracks_budgeted_inner(oracle, seed, config, rng_seed, threads, budget, false)?;
    Ok(samples)
}

/// Per-item crack probabilities estimated by the budgeted sampler:
/// `out[i]` is the fraction of sampled matchings in which item `i`
/// is cracked (mapped to itself). This is the sampler rung's answer
/// to the same question the exact permanent answers via
/// [`crate::exact::crack_probabilities`].
///
/// # Errors
///
/// Same conditions as [`sample_cracks_budgeted`].
pub fn sample_crack_probabilities_budgeted<O: EdgeOracle + Sync>(
    oracle: &O,
    seed: &Matching,
    config: &SamplerConfig,
    rng_seed: u64,
    threads: usize,
    budget: &Budget,
) -> Result<Vec<f64>, SamplerError> {
    let (samples, hits) =
        sample_cracks_budgeted_inner(oracle, seed, config, rng_seed, threads, budget, true)?;
    let total = samples.counts.len();
    if total == 0 {
        return Ok(vec![0.0; oracle.n()]);
    }
    Ok(hits.iter().map(|&h| h as f64 / total as f64).collect())
}

/// Shared batch fan-out for the budgeted samplers. Batch boundaries
/// and per-batch RNG seeds depend only on `(config, rng_seed)`, so
/// the concatenated stream (and the folded tallies, when `tally`)
/// never depend on the worker count.
fn sample_cracks_budgeted_inner<O: EdgeOracle + Sync>(
    oracle: &O,
    seed: &Matching,
    config: &SamplerConfig,
    rng_seed: u64,
    threads: usize,
    budget: &Budget,
    tally: bool,
) -> Result<(CrackSamples, Vec<u64>), SamplerError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    assert!(
        config.samples_per_seed >= 1,
        "samples_per_seed must be >= 1"
    );
    let n = oracle.n();
    let per_batch = config.samples_per_seed;
    let n_batches = config.n_samples.div_ceil(per_batch);
    if n_batches == 0 {
        return Ok((CrackSamples { counts: Vec::new() }, vec![0; n]));
    }

    let results = crate::par::try_map_indexed(threads, n_batches, budget, |b| {
        faults::probe("sampler.batch", b);
        let batch_len = per_batch.min(config.n_samples - b * per_batch);
        let batch_config = SamplerConfig {
            n_samples: batch_len,
            ..*config
        };
        let mut rng = StdRng::seed_from_u64(rng_seed.wrapping_add(b as u64));
        let mut batch_hits = if tally { Some(vec![0u64; n]) } else { None };
        let samples = sample_cracks_core(
            oracle,
            seed,
            &batch_config,
            &mut rng,
            budget,
            batch_hits.as_mut(),
        )?;
        Ok((samples, batch_hits.unwrap_or_default()))
    })
    .map_err(SamplerError::Interrupted)?;

    let mut counts = Vec::with_capacity(config.n_samples);
    let mut hits = vec![0u64; n];
    for result in results {
        let (samples, batch_hits): (CrackSamples, Vec<u64>) = result?;
        counts.extend(samples.counts);
        for (acc, h) in hits.iter_mut().zip(batch_hits) {
            *acc += h;
        }
    }
    Ok((CrackSamples { counts }, hits))
}

fn count_cracks(partner: &[Option<usize>]) -> usize {
    partner
        .iter()
        .enumerate()
        .filter(|&(i, p)| *p == Some(i))
        .count()
}

/// Adds each cracked item of one sample into the per-item tallies.
fn tally_cracks(partner: &[Option<usize>], hits: &mut [u64]) {
    for (i, p) in partner.iter().enumerate() {
        if *p == Some(i) {
            hits[i] += 1;
        }
    }
}

/// Half-width of the locality proposal window (in positions along
/// the frequency-sorted order).
const LOCALITY_WINDOW: usize = 32;

/// Internal walk state.
struct Walk<'a, O: EdgeOracle> {
    oracle: &'a O,
    partner: &'a mut Vec<Option<usize>>,
    active: &'a [usize],
    free_rights: &'a mut Vec<usize>,
    /// `(order, pos)`: active items in frequency order and each
    /// item's position in it.
    locality: Option<&'a (Vec<usize>, Vec<usize>)>,
}

impl<O: EdgeOracle> Walk<'_, O> {
    /// Executes `swaps` swap attempts, polling `budget` every 1024.
    /// Each attempt draws a pair `(i, j)` of matched items — `i`
    /// uniform; `j` uniform half the time and from a window around
    /// `i` in the frequency order otherwise (when the oracle provides
    /// one) — and swaps their partners if both new edges are
    /// consistent. The paper's uniform-permutation sweep is the
    /// special case without locality; mixing the two keeps the chain
    /// irreducible wherever the uniform kernel was, while the local
    /// moves let items in small frequency groups actually find their
    /// rare consistent peers.
    fn run_swaps<R: Rng + ?Sized>(
        &mut self,
        swaps: usize,
        rng: &mut R,
        budget: &Budget,
    ) -> Result<(), ExecError> {
        let k = self.active.len();
        let mut remaining = swaps;
        let mut since_poll = 0u32;
        while remaining > 0 {
            since_poll += 1;
            if since_poll >= 1024 {
                since_poll = 0;
                budget.check()?;
            }
            remaining -= 1;
            let i = self.active[rng.gen_range(0..k)];
            let j = match self.locality {
                Some((order, pos)) if !order.is_empty() && rng.gen_bool(0.5) => {
                    let p = pos[i];
                    debug_assert!(p != usize::MAX);
                    let w = LOCALITY_WINDOW.min(order.len().saturating_sub(1));
                    if w == 0 {
                        continue;
                    }
                    // Symmetric offset in [-w, w] \ {0}.
                    let mut off = rng.gen_range(1..=w) as isize;
                    if rng.gen_bool(0.5) {
                        off = -off;
                    }
                    let q = p as isize + off;
                    if q < 0 || q >= order.len() as isize {
                        continue;
                    }
                    order[q as usize]
                }
                _ => self.active[rng.gen_range(0..k)],
            };
            if i != j {
                self.try_swap(i, j);
            }
            // Occasionally rotate through free right columns so
            // partial matchings explore all columns.
            if !self.free_rights.is_empty() && remaining > 0 {
                remaining -= 1;
                self.try_relocate(i, rng);
            }
        }
        Ok(())
    }

    /// Swaps the partners of active lefts `i` and `j` if both new
    /// edges are consistent.
    fn try_swap(&mut self, i: usize, j: usize) {
        // Callers draw i, j from `active`, whose members are matched
        // by construction; an unmatched item is simply not swappable.
        let (Some(yi), Some(yj)) = (self.partner[i], self.partner[j]) else {
            return;
        };
        if self.oracle.has_edge(i, yj) && self.oracle.has_edge(j, yi) {
            self.partner[i] = Some(yj);
            self.partner[j] = Some(yi);
        }
    }

    /// Moves left `i` onto a random free right column if consistent,
    /// freeing its old column.
    fn try_relocate<R: Rng + ?Sized>(&mut self, i: usize, rng: &mut R) {
        let k = rng.gen_range(0..self.free_rights.len());
        let r = self.free_rights[k];
        // Callers draw i from `active`, whose members are matched by
        // construction; an unmatched item has nothing to free.
        if self.oracle.has_edge(i, r) {
            if let Some(old) = self.partner[i] {
                self.partner[i] = Some(r);
                self.free_rights[k] = old;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::expected_cracks;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick() -> SamplerConfig {
        SamplerConfig::quick()
    }

    #[test]
    fn complete_graph_mean_is_near_one() {
        // Lemma 1: E[X] = 1 on the complete graph.
        let g = DenseBigraph::complete(8);
        let mut rng = StdRng::seed_from_u64(61);
        let s = sample_cracks(&g, &Matching::identity(8), &quick(), &mut rng).unwrap();
        assert_eq!(s.counts.len(), quick().n_samples);
        let mean = s.mean();
        assert!((mean - 1.0).abs() < 0.3, "mean {mean} too far from 1");
    }

    #[test]
    fn sampler_matches_exact_on_random_graphs() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(62);
        let mut checked = 0;
        while checked < 5 {
            let n = rng.gen_range(4..=7);
            let mut g = DenseBigraph::new(n);
            // Dense enough to stay feasible and connected.
            for i in 0..n {
                g.add_edge(i, i);
                for j in 0..n {
                    if rng.gen_bool(0.6) {
                        g.add_edge(i, j);
                    }
                }
            }
            let exact = expected_cracks(&g).expect("diagonal present");
            let s = sample_cracks(&g, &Matching::identity(n), &quick(), &mut rng).unwrap();
            let mean = s.mean();
            assert!(
                (mean - exact).abs() < 0.35 + 3.0 * s.std_dev() / (s.counts.len() as f64).sqrt(),
                "n={n}: sampled {mean} vs exact {exact}"
            );
            checked += 1;
        }
    }

    #[test]
    fn rejects_inconsistent_seed() {
        let g = DenseBigraph::from_edges(2, &[(0, 1), (1, 0)]);
        let err = sample_cracks(
            &g,
            &Matching::identity(2),
            &quick(),
            &mut StdRng::seed_from_u64(63),
        )
        .unwrap_err();
        assert!(matches!(err, SamplerError::InconsistentSeed { .. }));
    }

    #[test]
    fn rejects_empty_seed() {
        let g = DenseBigraph::complete(2);
        let empty = Matching {
            left_partner: vec![None, None],
            right_partner: vec![None, None],
        };
        let err = sample_cracks(&g, &empty, &quick(), &mut StdRng::seed_from_u64(64)).unwrap_err();
        assert_eq!(err, SamplerError::EmptySeed);
    }

    #[test]
    fn frozen_graph_always_reports_full_cracks() {
        // Identity-only graph: the walk can never move.
        let mut g = DenseBigraph::new(5);
        for i in 0..5 {
            g.add_edge(i, i);
        }
        let mut rng = StdRng::seed_from_u64(65);
        let s = sample_cracks(&g, &Matching::identity(5), &quick(), &mut rng).unwrap();
        assert!(s.counts.iter().all(|&c| c == 5));
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn partial_seed_walks_over_free_columns() {
        // 3 lefts matched, 1 column free; relocation keeps things
        // consistent and counts stay within bounds.
        let g = DenseBigraph::complete(4);
        let seed = Matching {
            left_partner: vec![Some(0), Some(1), Some(2), None],
            right_partner: vec![Some(0), Some(1), Some(2), None],
        };
        let mut rng = StdRng::seed_from_u64(66);
        let s = sample_cracks(&g, &seed, &quick(), &mut rng).unwrap();
        assert!(s.counts.iter().all(|&c| c <= 3));
    }

    #[test]
    fn grouped_oracle_works() {
        // BigMart with the compliant point-valued belief: three
        // frequency blocks; E[X] = 3 (Lemma 3).
        let supports = vec![5u64, 4, 5, 5, 3, 5];
        let intervals: Vec<(f64, f64)> = supports
            .iter()
            .map(|&s| {
                let f = s as f64 / 10.0;
                (f, f)
            })
            .collect();
        let g = GroupedBigraph::new(&supports, 10, &intervals);
        let mut rng = StdRng::seed_from_u64(67);
        let s = sample_cracks(&g, &Matching::identity(6), &quick(), &mut rng).unwrap();
        let mean = s.mean();
        assert!((mean - 3.0).abs() < 0.4, "mean {mean} vs exact 3");
    }

    #[test]
    fn stats_on_empty_and_singleton() {
        let s = CrackSamples { counts: vec![] };
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.histogram().is_empty());
        assert_eq!(s.tail_probability(0), 0.0);
        let s = CrackSamples { counts: vec![4] };
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn histogram_tail_and_quantiles() {
        let s = CrackSamples {
            counts: vec![0, 1, 1, 2, 2, 2, 3, 5],
        };
        assert_eq!(s.histogram(), vec![1, 2, 3, 1, 0, 1]);
        assert!((s.tail_probability(2) - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(s.tail_probability(0), 1.0);
        assert!((s.tail_probability(6) - 0.0).abs() < 1e-12);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(0.5), 2);
        assert_eq!(s.quantile(1.0), 5);
    }

    #[test]
    fn sharded_sampler_is_thread_count_invariant() {
        let g = DenseBigraph::complete(6);
        let seed = Matching::identity(6);
        let config = SamplerConfig::quick();
        let serial = sample_cracks_with_threads(&g, &seed, &config, 99, 1).unwrap();
        assert_eq!(serial.counts.len(), config.n_samples);
        for threads in 2..=8 {
            let par = sample_cracks_with_threads(&g, &seed, &config, 99, threads).unwrap();
            assert_eq!(par.counts, serial.counts, "threads = {threads}");
        }
    }

    #[test]
    fn sharded_sampler_mean_stays_calibrated() {
        // Sharded seeding is a different stream than sequential, but
        // the estimate must still match the exact expectation.
        let g = DenseBigraph::complete(8);
        let s = sample_cracks_sharded(&g, &Matching::identity(8), &quick(), 7).unwrap();
        assert_eq!(s.counts.len(), quick().n_samples);
        assert!(
            (s.mean() - 1.0).abs() < 0.3,
            "mean {} too far from 1",
            s.mean()
        );
    }

    #[test]
    fn sharded_sampler_truncates_last_batch() {
        let g = DenseBigraph::complete(4);
        let config = SamplerConfig {
            warmup_swaps: 100,
            swaps_between_samples: 10,
            samples_per_seed: 64,
            n_samples: 150, // 2 full batches + one of 22
            use_locality: true,
        };
        let s = sample_cracks_with_threads(&g, &Matching::identity(4), &config, 5, 3).unwrap();
        assert_eq!(s.counts.len(), 150);
    }

    #[test]
    fn budgeted_matches_legacy_sharded_stream() {
        // Unlimited budget, no fault schedule: the budgeted sampler
        // must reproduce the legacy sharded stream bit for bit, at
        // every thread count.
        let g = DenseBigraph::complete(6);
        let seed = Matching::identity(6);
        let config = SamplerConfig::quick();
        let legacy = sample_cracks_with_threads(&g, &seed, &config, 99, 1).unwrap();
        for threads in 1..=8 {
            let b = Budget::unlimited();
            let s = sample_cracks_budgeted(&g, &seed, &config, 99, threads, &b).unwrap();
            assert_eq!(s.counts, legacy.counts, "threads = {threads}");
        }
    }

    #[test]
    fn budgeted_zero_budget_is_interrupted() {
        let g = DenseBigraph::complete(6);
        let b = Budget::with_deadline(std::time::Duration::ZERO);
        let err =
            sample_cracks_budgeted(&g, &Matching::identity(6), &quick(), 1, 4, &b).unwrap_err();
        assert_eq!(
            err,
            SamplerError::Interrupted(ExecError::BudgetExceeded { budget_ms: 0 })
        );
    }

    #[test]
    fn per_item_probabilities_sum_to_mean() {
        // Linearity: E[X] = Σ_i P(item i cracked), and the tallies
        // come from exactly the samples in `counts`.
        let g = DenseBigraph::complete(6);
        let seed = Matching::identity(6);
        let config = SamplerConfig::quick();
        let b = Budget::unlimited();
        let s = sample_cracks_budgeted(&g, &seed, &config, 7, 3, &b).unwrap();
        let probs = sample_crack_probabilities_budgeted(&g, &seed, &config, 7, 3, &b).unwrap();
        assert_eq!(probs.len(), 6);
        let total: f64 = probs.iter().sum();
        assert!((total - s.mean()).abs() < 1e-12, "{total} vs {}", s.mean());
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let s = CrackSamples { counts: vec![1] };
        let _ = s.quantile(1.5);
    }

    #[test]
    fn tail_matches_exact_distribution_on_blocks() {
        use crate::exact::crack_distribution;
        // Two complete blocks of sizes 2 and 3.
        let mut g = DenseBigraph::new(5);
        for i in 0..2 {
            for j in 0..2 {
                g.add_edge(i, j);
            }
        }
        for i in 2..5 {
            for j in 2..5 {
                g.add_edge(i, j);
            }
        }
        let exact = crack_distribution(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let config = SamplerConfig {
            warmup_swaps: 5_000,
            swaps_between_samples: 40,
            samples_per_seed: 3_000,
            n_samples: 9_000,
            use_locality: true,
        };
        let s = sample_cracks(&g, &Matching::identity(5), &config, &mut rng).unwrap();
        // P(X >= 2) from the histogram matches the exact tail.
        let exact_tail: f64 = exact[2..].iter().sum();
        assert!(
            (s.tail_probability(2) - exact_tail).abs() < 0.03,
            "sampled {} vs exact {exact_tail}",
            s.tail_probability(2)
        );
    }
}

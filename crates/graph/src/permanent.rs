//! Permanent of the bipartite adjacency matrix.
//!
//! The size of the mapping space is the number of perfect matchings,
//! i.e. the permanent of the adjacency matrix (Section 4.1). The
//! permanent is #P-complete [Valiant 1979]; the paper dismisses even
//! the Jerrum–Sinclair–Vigoda approximation as impractical (O(n^22)).
//! For *small* domains, however, Ryser's inclusion–exclusion formula
//! with Gray-code subset enumeration computes it exactly in
//! `O(2^n · n)` — that is what our tests use as ground truth for the
//! O-estimate and the matching sampler.

use crate::dense::DenseBigraph;

/// Hard cap on the domain size for exact permanents. `2^30` subset
/// iterations is the practical ceiling; beyond it the u128
/// accumulator could also overflow for dense graphs.
pub const MAX_PERMANENT_N: usize = 30;

/// Computes the permanent of the 0/1 adjacency matrix of `g` with
/// Ryser's formula.
///
/// # Panics
///
/// Panics if `g.n() > MAX_PERMANENT_N`.
/// # Examples
///
/// ```
/// use andi_graph::{permanent, DenseBigraph};
///
/// // perm(J_4) = 4! — the mapping space of an ignorant hacker.
/// assert_eq!(permanent(&DenseBigraph::complete(4)), 24);
/// ```
pub fn permanent(g: &DenseBigraph) -> u128 {
    let n = g.n();
    assert!(
        n <= MAX_PERMANENT_N,
        "permanent limited to n <= {MAX_PERMANENT_N}, got {n}"
    );
    if n == 0 {
        return 1;
    }
    // Rows as plain u64 masks (n <= 30 fits one word).
    let rows: Vec<u64> = (0..n).map(|i| g.row_words(i)[0]).collect();
    permanent_of_rows(&rows, n)
}

/// Ryser's formula over explicit row bitmasks. `rows[i]` has bit `j`
/// set iff matrix entry `(i, j)` is 1. Only the low `n` bits are
/// used.
///
/// Row sums over the current column subset are maintained
/// incrementally along a Gray-code walk of the subsets.
pub fn permanent_of_rows(rows: &[u64], n: usize) -> u128 {
    assert!(n <= MAX_PERMANENT_N);
    assert_eq!(rows.len(), n);
    if n == 0 {
        return 1;
    }
    // Quick zero: a row with no candidates kills every matching.
    if rows.iter().any(|&r| r & mask(n) == 0) {
        return 0;
    }

    // Signed accumulation: sum over non-empty subsets S of columns of
    // (-1)^(n - |S|) * prod_i |row_i ∩ S|.
    let mut row_sums = vec![0i64; n];
    let mut total: i128 = 0;
    let mut prev_gray: u64 = 0;
    for s in 1u64..(1u64 << n) {
        let gray = s ^ (s >> 1);
        let changed = gray ^ prev_gray;
        let col = changed.trailing_zeros() as usize;
        let added = gray & changed != 0;
        for (i, row) in rows.iter().enumerate() {
            if row & (1u64 << col) != 0 {
                row_sums[i] += if added { 1 } else { -1 };
            }
        }
        prev_gray = gray;

        let mut prod: i128 = 1;
        for &rs in &row_sums {
            if rs == 0 {
                prod = 0;
                break;
            }
            prod *= rs as i128;
        }
        if prod != 0 {
            let popcnt = gray.count_ones() as usize;
            if (n - popcnt).is_multiple_of(2) {
                total += prod;
            } else {
                total -= prod;
            }
        }
    }
    debug_assert!(total >= 0, "permanent of a 0/1 matrix is non-negative");
    total as u128
}

#[inline]
fn mask(n: usize) -> u64 {
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Brute-force permanent by recursive expansion; exponential and only
/// for cross-checking Ryser in tests.
pub fn permanent_naive(g: &DenseBigraph) -> u128 {
    let n = g.n();
    assert!(n <= 12, "naive permanent only for tiny graphs");
    let rows: Vec<u64> = (0..n)
        .map(|i| g.row_words(i).first().copied().unwrap_or(0))
        .collect();
    fn rec(rows: &[u64], i: usize, used: u64) -> u128 {
        if i == rows.len() {
            return 1;
        }
        let mut total = 0;
        let mut avail = rows[i] & !used;
        while avail != 0 {
            let j = avail.trailing_zeros() as u64;
            avail &= avail - 1;
            total += rec(rows, i + 1, used | (1 << j));
        }
        total
    }
    rec(&rows, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_permanent_is_factorial() {
        for n in 1..=8usize {
            let g = DenseBigraph::complete(n);
            let fact: u128 = (1..=n as u128).product();
            assert_eq!(permanent(&g), fact, "perm(J_{n}) = {n}!");
        }
    }

    #[test]
    fn empty_and_identity() {
        assert_eq!(permanent(&DenseBigraph::new(0)), 1);
        let g = DenseBigraph::new(3);
        assert_eq!(permanent(&g), 0, "no edges, no matchings");
        let mut id = DenseBigraph::new(3);
        for i in 0..3 {
            id.add_edge(i, i);
        }
        assert_eq!(permanent(&id), 1);
    }

    #[test]
    fn staircase_has_unique_matching() {
        // Figure 6(a): right j reachable from lefts 0..=j.
        let mut g = DenseBigraph::new(4);
        for j in 0..4 {
            for i in 0..=j {
                g.add_edge(i, j);
            }
        }
        assert_eq!(permanent(&g), 1);
    }

    #[test]
    fn block_diagonal_multiplies() {
        // Two disjoint complete blocks of sizes 2 and 3: 2! * 3! = 12.
        let mut g = DenseBigraph::new(5);
        for i in 0..2 {
            for j in 0..2 {
                g.add_edge(i, j);
            }
        }
        for i in 2..5 {
            for j in 2..5 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(permanent(&g), 12);
    }

    #[test]
    fn ryser_matches_naive_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..30 {
            let n = rng.gen_range(1..=7);
            let mut g = DenseBigraph::new(n);
            for i in 0..n {
                for j in 0..n {
                    if rng.gen_bool(0.55) {
                        g.add_edge(i, j);
                    }
                }
            }
            assert_eq!(
                permanent(&g),
                permanent_naive(&g),
                "trial {trial}, n={n}, graph={g:?}"
            );
        }
    }

    #[test]
    fn missing_row_gives_zero_fast() {
        let mut g = DenseBigraph::complete(6);
        g.clear_left(3);
        assert_eq!(permanent(&g), 0);
    }

    #[test]
    #[should_panic(expected = "permanent limited")]
    fn oversize_is_rejected() {
        let g = DenseBigraph::new(31);
        let _ = permanent(&g);
    }
}

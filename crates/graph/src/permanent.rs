//! Permanent of the bipartite adjacency matrix.
//!
//! The size of the mapping space is the number of perfect matchings,
//! i.e. the permanent of the adjacency matrix (Section 4.1). The
//! permanent is #P-complete [Valiant 1979]; the paper dismisses even
//! the Jerrum–Sinclair–Vigoda approximation as impractical (O(n^22)).
//! For *small* domains, however, Ryser's inclusion–exclusion formula
//! with Gray-code subset enumeration computes it exactly in
//! `O(2^n · n)` — that is what our tests use as ground truth for the
//! O-estimate and the matching sampler.
//!
//! # Kernel layout
//!
//! The inner loop is branchless. Per-row intersection sums
//! `|row_i ∩ S|` live in a flat SoA array; when the Gray-code walk
//! toggles column `j`, every sum is updated with the delta
//! `(row_i >> j) & 1` — pre-transposed into a contiguous per-column
//! table and sign-applied by mask arithmetic, so the update is pure
//! streaming load/xor/sub/add with no branch (and no multiply) per
//! row, and the compiler vectorizes it. The per-subset
//! product runs as eight independent multiply chains that are folded
//! pairwise at the end (one widening `i128` multiply per subset), and
//! the Ryser sign `(-1)^(n - |S|)` comes from the identity
//! `popcount(gray(s)) ≡ s (mod 2)` — no popcount in the loop. The
//! accumulator has two lanes:
//!
//! * **unchecked fast lane** (`n <= SAFE_UNCHECKED_N`): plain `i64`
//!   lane products and a plain `i128` total — the bounds below prove
//!   neither can wrap;
//! * **overflow-checked lane** (`n > SAFE_UNCHECKED_N`): lane
//!   products stay provably in-range `u64`s (lane width shrinks with
//!   `n`), lanes combine through `u128::checked_mul`, and the signed
//!   `i128` total uses `checked_add`; any trip reports `None` from
//!   the `try_` variants instead of silently wrapping.
//!
//! The fast lane additionally walks only *half* the subset lattice:
//! Nijenhuis–Wilf fold the last column into doubled row factors
//! `y_i(S) = 2·a_{i,n-1} - r_i + 2·|row_i ∩ S|` so that
//! `perm(A) = (-1)^(n-1) / 2^(n-1) · Σ_{S ⊆ [n-1]} (-1)^{|S|} Π y_i(S)`
//! — `2^(n-1)` subsets instead of `2^n - 1`, and `|y_i| ≤ n` keeps
//! every fast-lane overflow bound above intact. The checked lane keeps
//! the plain Ryser walk (the doubled factors would be signed, which
//! the provably-in-range `u64` lane products rely on excluding).
//!
//! Two execution strategies share the kernel:
//!
//! * **Serial** — a single Gray-code walk over the subset range
//!   (`2^(n-1)` half-space subsets in the fast lane, `2^n - 1`
//!   non-empty subsets in the checked lane), processed in poll-free
//!   blocks of `CHUNK_SUBSETS`; the budget is polled only at block
//!   boundaries, never inside the branchless walk.
//! * **Chunked parallel** — the subset range is split into
//!   contiguous chunks ([`crate::par::chunk_ranges`]); each worker
//!   seeds its row sums directly from the popcounts of its chunk's
//!   starting Gray code and walks only its chunk. Chunk sums are
//!   integers, reduced in chunk order, so the result is bit-identical
//!   to the serial walk at any thread count.
//!
//! Inputs are hardened at the entry points: row masks are masked to
//! the low `n` bits once, so stray high bits (e.g. from a caller that
//! built minors by column deletion on an unmasked word) cannot leak
//! into the walk.

use crate::dense::DenseBigraph;
use crate::faults;
use crate::par;
use crate::par::{Budget, ExecError};

/// Hard cap on the domain size for exact permanents. `2^32` subset
/// iterations is the practical ceiling for the branchless kernel
/// (tens of seconds on one core — beyond it even the budgeted
/// ladder's exact rung cannot finish inside a realistic deadline).
/// Row masks stay single `u64` words far past this bound.
pub const MAX_PERMANENT_N: usize = 32;

/// Largest `n` the unchecked fast lane accepts. Two bounds must hold
/// and both are tight at `n = 22`:
///
/// * **lane products**: the eight multiply chains fold pairwise
///   through `i64`s; the widest intermediate holds at most
///   `ceil(n/2)` factors of magnitude at most `n`, and
///   `22^12 ≈ 1.2e16 < i64::MAX ≈ 9.2e18`;
/// * **total**: at most `2^n - 1` terms of magnitude at most `n^n`
///   accumulate into the `i128` total, and
///   `22^22 · 2^22 ≈ 1.5e36 < i128::MAX ≈ 1.7e38`
///   (`23^23 · 2^23 ≈ 1.8e38` already exceeds it).
///
/// Above this bound the overflow-checked lane runs instead.
const SAFE_UNCHECKED_N: usize = 22;

/// Largest magnitude the fast lane's block-local `i128` total can
/// reach: at most `2^(n-1)` half-space terms of magnitude at most
/// `n^n` each, maximized at `n = SAFE_UNCHECKED_N`, i.e.
/// `2^21 · 22^22`. The interval prover checks the running total stays
/// inside it (see the `andi::assume` in [`ryser_block_fixed`]).
const FIXED_TOTAL_BOUND: i128 = 716_026_155_870_127_773_233_492_469_657_632_768;

/// Largest magnitude of one fast-lane term: `|Π y_i| <= N^N` with
/// `N <= SAFE_UNCHECKED_N`, i.e. `22^22`.
const FIXED_TERM_BOUND: i128 = 341_427_877_364_219_557_396_646_723_584;

/// Largest checked-lane partial product *before* its next factor:
/// `p <= n^(lane_len - 1) < 2^(62 - bits(n)) <= 2^57` for
/// `n > SAFE_UNCHECKED_N` (so `bits(n) >= 5`), which keeps
/// `p · v <= 2^57 · MAX_PERMANENT_N < 2^62` inside `u64`.
const CHECKED_LANE_PARTIAL_MAX: u64 = (1 << 57) - 1;

/// Minimum domain size worth fanning out over threads; below this a
/// Gray-code walk is microseconds and spawn overhead dominates.
const PARALLEL_MIN_N: usize = 18;

/// Computes the permanent of the 0/1 adjacency matrix of `g` with
/// Ryser's formula, fanning out over the ambient
/// [`par::available_threads`] worker count for large `n`.
///
/// # Panics
///
/// Panics if `g.n() > MAX_PERMANENT_N` or if the overflow-checked
/// accumulator lane trips (dense graphs near the size cap overflow
/// the signed `i128` total even though the permanent itself may fit
/// `u128`); use [`try_permanent`] to observe overflow as a value.
/// # Examples
///
/// ```
/// use andi_graph::{permanent, DenseBigraph};
///
/// // perm(J_4) = 4! — the mapping space of an ignorant hacker.
/// assert_eq!(permanent(&DenseBigraph::complete(4)), 24);
/// ```
pub fn permanent(g: &DenseBigraph) -> u128 {
    // andi::allow(lib-unwrap) — documented panicking wrapper; overflow-safe callers use try_permanent
    try_permanent(g).expect(
        "Ryser signed i128 accumulator overflowed; domain too dense for the exact kernel \
         (the permanent is returned as u128, but the alternating partial sums run in i128)",
    )
}

/// [`permanent`] reporting accumulator overflow as `None` instead of
/// panicking.
///
/// # Panics
///
/// Panics if `g.n() > MAX_PERMANENT_N`.
pub fn try_permanent(g: &DenseBigraph) -> Option<u128> {
    let n = g.n();
    assert!(
        n <= MAX_PERMANENT_N,
        "permanent limited to n <= {MAX_PERMANENT_N}, got {n}"
    );
    if n == 0 {
        return Some(1);
    }
    // Rows as plain u64 masks (n <= MAX_PERMANENT_N fits one word).
    let rows: Vec<u64> = (0..n).map(|i| g.row_words(i)[0]).collect();
    try_permanent_of_rows_with_threads(&rows, n, par::available_threads())
}

/// Ryser's formula over explicit row bitmasks. `rows[i]` has bit `j`
/// set iff matrix entry `(i, j)` is 1. Bits at positions `>= n` are
/// ignored (masked off once at entry). Runs on the ambient thread
/// count.
///
/// # Panics
///
/// Panics on accumulator overflow — the signed `i128` total of the
/// overflow-checked lane wrapped (see [`try_permanent_of_rows`],
/// which reports the same condition as `None`).
pub fn permanent_of_rows(rows: &[u64], n: usize) -> u128 {
    try_permanent_of_rows(rows, n)
        // andi::allow(lib-unwrap) — documented panicking wrapper; overflow-safe callers use try_permanent_of_rows
        .expect(
            "Ryser signed i128 accumulator overflowed; domain too dense for the exact kernel \
             (the permanent is returned as u128, but the alternating partial sums run in i128)",
        )
}

/// Overflow-checked [`permanent_of_rows`]: `None` when the checked
/// accumulator lane trips — a `u128` lane-product combine or the
/// signed `i128` total would wrap (possible for dense graphs from
/// `n ≈ 23`, where per-subset terms approach `n^n`).
pub fn try_permanent_of_rows(rows: &[u64], n: usize) -> Option<u128> {
    try_permanent_of_rows_with_threads(rows, n, par::available_threads())
}

/// [`try_permanent_of_rows`] with an explicit worker count —
/// bit-identical across `threads` by the [`crate::par`] determinism
/// contract (chunk boundaries depend only on `n`).
pub fn try_permanent_of_rows_with_threads(rows: &[u64], n: usize, threads: usize) -> Option<u128> {
    assert!(n <= MAX_PERMANENT_N);
    assert_eq!(rows.len(), n);
    if n == 0 {
        return Some(1);
    }
    // Input hardening: drop stray bits >= n once, so the kernel only
    // ever sees in-range columns (callers that build minors by
    // column deletion can otherwise shift ghost bits into range).
    let rows: Vec<u64> = rows.iter().map(|&r| r & mask(n)).collect();
    // Quick zero: a row with no candidates kills every matching.
    if rows.contains(&0) {
        return Some(0);
    }

    let subsets = walk_subsets(n);
    let unlimited = Budget::unlimited();
    let total: Option<i128> = if threads > 1 && n >= PARALLEL_MIN_N {
        // Fixed chunk layout (thread-count-independent values; the
        // worker count only affects scheduling).
        let chunks = par::chunk_ranges(subsets, threads * 8);
        let partials = par::map_indexed(threads, chunks.len(), |c| {
            let (lo, hi) = chunks[c];
            ryser_range(&rows, n, lo, hi, &unlimited)
        });
        partials.into_iter().try_fold(0i128, |acc, p| match p {
            // An unlimited budget never trips, so Err is unreachable
            // here; folding it into the overflow path keeps the
            // legacy signature without an unwrap.
            Ok(Some(v)) => acc.checked_add(v),
            _ => None,
        })
    } else {
        // An unlimited budget never trips, so the Err arm is
        // unreachable; defaulting it to `None` folds it into the
        // overflow path and keeps the legacy signature.
        ryser_range(&rows, n, 0, subsets, &unlimited).unwrap_or_default()
    };
    finish_walk(n, total?)
}

/// Walk-coordinate count of the exact kernel for domains of size
/// `n >= 1`: the fast lane iterates the Nijenhuis–Wilf half space
/// (all `2^(n-1)` subsets of the first `n-1` columns, empty set
/// included), the checked lane the classic `2^n - 1` non-empty Ryser
/// subsets.
fn walk_subsets(n: usize) -> u64 {
    if n <= SAFE_UNCHECKED_N {
        1u64 << (n - 1)
    } else {
        (1u64 << n) - 1
    }
}

/// Maps the signed walk total back to the permanent. The fast lane's
/// Nijenhuis–Wilf total satisfies
/// `perm = (-1)^(n-1) * total / 2^(n-1)` with the division exact (the
/// walk accumulates doubled factors `y_i = 2a_{i,n-1} - r_i + 2s_i`);
/// the checked lane's total *is* the permanent. `None` is the
/// (checked-lane-only) overflow report.
fn finish_walk(n: usize, total: i128) -> Option<u128> {
    let signed = if n <= SAFE_UNCHECKED_N && n.is_multiple_of(2) {
        -total
    } else {
        total
    };
    debug_assert!(signed >= 0, "permanent of a 0/1 matrix is non-negative");
    let v = u128::try_from(signed).ok()?;
    if n <= SAFE_UNCHECKED_N {
        debug_assert!(
            v & ((1u128 << (n - 1)) - 1) == 0,
            "half-space total must divide by 2^(n-1) exactly"
        );
        Some(v >> (n - 1))
    } else {
        Some(v)
    }
}

/// Subset count per chunk of the budgeted walk — and the poll stride
/// of the serial walk: `2^12` keeps the chunk layout fixed
/// (thread-count-independent) while giving budget polls and fault
/// probes useful granularity even at moderate `n` (`n = 16` → 16
/// chunks). The branchless kernel burns a block of this size in tens
/// of microseconds, so polling only at block boundaries costs one
/// block of overshoot at worst.
const CHUNK_SUBSETS: u64 = 1 << 12;

/// Budgeted, fault-isolated [`try_permanent_of_rows_with_threads`]:
/// the Gray-code walk is split into a *fixed* chunk layout
/// (`CHUNK_SUBSETS = 2^12` subsets per chunk, independent of
/// `threads`),
/// each chunk runs as one [`par::try_map_indexed`] task carrying the
/// `permanent.chunk` fault probe, and `budget` is polled once per
/// chunk — the walk inside a chunk is a poll-free branchless block.
///
/// `Ok(None)` is accumulator overflow (same meaning as the legacy
/// `try_` family); `Ok(Some(v))` is exact at any thread count.
///
/// # Errors
///
/// [`ExecError`] when the budget trips, the token fires, or an
/// injected fault panics a chunk task.
///
/// # Panics
///
/// Panics if `n > MAX_PERMANENT_N` or `rows.len() != n`.
pub fn try_permanent_of_rows_budgeted(
    rows: &[u64],
    n: usize,
    threads: usize,
    budget: &Budget,
) -> Result<Option<u128>, ExecError> {
    assert!(n <= MAX_PERMANENT_N);
    assert_eq!(rows.len(), n);
    if n == 0 {
        return Ok(Some(1));
    }
    // Same input hardening as the unbudgeted entry point.
    let rows: Vec<u64> = rows.iter().map(|&r| r & mask(n)).collect();
    if rows.contains(&0) {
        return Ok(Some(0));
    }

    let subsets = walk_subsets(n);
    let n_chunks = subsets.div_ceil(CHUNK_SUBSETS).max(1) as usize;
    let chunks = par::chunk_ranges(subsets, n_chunks);
    let partials = par::try_map_indexed(threads, chunks.len(), budget, |c| {
        faults::probe("permanent.chunk", c);
        let (lo, hi) = chunks[c];
        ryser_range(&rows, n, lo, hi, budget)
    })?;
    let mut total: i128 = 0;
    for part in partials {
        let Some(v) = part? else { return Ok(None) };
        let Some(acc) = total.checked_add(v) else {
            return Ok(None);
        };
        total = acc;
    }
    Ok(finish_walk(n, total))
}

/// Signed contribution of the exact walk over the 0-based coordinate
/// range `[w_start, w_end) ⊆ [0, walk_subsets(n))`. In the fast lane
/// the coordinate `s` names the Nijenhuis–Wilf half-space subset
/// `S = gray(s)` of the first `n-1` columns (empty set included) and
/// the summand is `(-1)^|S| · Π_i y_i(S)`; in the checked lane it
/// names the classic non-empty Ryser subset `S = gray(s + 1)` with
/// summand `(-1)^(n-|S|) · Π_i |row_i ∩ S|`. Row sums seed from the
/// range start, so any contiguous range can begin mid-walk. The range
/// is processed in poll-free blocks of [`CHUNK_SUBSETS`]; `budget` is
/// polled once per block. `Ok(None)` is accumulator overflow.
fn ryser_range(
    rows: &[u64],
    n: usize,
    w_start: u64,
    w_end: u64,
    budget: &Budget,
) -> Result<Option<i128>, ExecError> {
    let mut total: i128 = 0;
    let mut lo = w_start;
    while lo < w_end {
        budget.check()?;
        let hi = w_end.min(lo.saturating_add(CHUNK_SUBSETS));
        let block = if n <= SAFE_UNCHECKED_N {
            Some(ryser_block_unchecked(rows, n, lo, hi))
        } else {
            ryser_block_checked(rows, n, lo + 1, hi + 1)
        };
        let Some(block) = block else { return Ok(None) };
        // Block partials are prefix-sum differences of the serial
        // walk; folding them with checked_add keeps overflow
        // detection thread-count-independent.
        let Some(next) = total.checked_add(block) else {
            return Ok(None);
        };
        total = next;
        lo = hi;
    }
    Ok(Some(total))
}

/// Branchless Gray-code walk state. The per-row intersection sums
/// live in a flat SoA array of `i32`s; the rows are pre-transposed
/// into a contiguous per-column delta table (`cols[j*n + i] =
/// (rows[i] >> j) & 1`) so the toggle loop is a pure streaming
/// load/xor/sub/add over `n` consecutive lanes — no shifts, no
/// multiplies, no branch per row, which lets the autovectorizer emit
/// wide integer SIMD even at the baseline target.
struct GrayWalk {
    n: usize,
    /// `cols[j*n + i]` is the column-`j` delta for row `i` (0 or 1).
    cols: Vec<i32>,
    sums: [i32; MAX_PERMANENT_N],
    prev_gray: u64,
}

impl GrayWalk {
    /// Seeds the row sums from `gray(s_first - 1)` so the walk can
    /// start at any mid-range `s_first`, and transposes the rows into
    /// the per-column delta table (`n^2` ints, amortized over a
    /// [`CHUNK_SUBSETS`]-sized block).
    fn seeded(rows: &[u64], s_first: u64) -> Self {
        let n = rows.len();
        let prev = s_first - 1;
        let prev_gray = prev ^ (prev >> 1);
        let mut cols = vec![0i32; n * n];
        for (j, chunk) in cols.chunks_exact_mut(n).enumerate() {
            for (c, &row) in chunk.iter_mut().zip(rows) {
                *c = ((row >> j) & 1) as i32;
            }
        }
        let mut sums = [0i32; MAX_PERMANENT_N];
        for (sum, &row) in sums.iter_mut().zip(rows) {
            *sum = (row & prev_gray).count_ones() as i32;
        }
        GrayWalk {
            n,
            cols,
            sums,
            prev_gray,
        }
    }

    /// Advances to the subset `gray`: exactly one column toggles, and
    /// every row sum moves by `delta_i = (rows[i] >> j) & 1` (read
    /// from the transposed table). The sign is applied with the mask
    /// identity `(c ^ m) - m` (`m = 0` keeps `c`, `m = -1` negates
    /// it), so the loop body is load/xor/sub/add — no branch and no
    /// multiply per row.
    #[inline(always)]
    fn advance(&mut self, gray: u64) {
        let changed = gray ^ self.prev_gray;
        let col = changed.trailing_zeros() as usize;
        // 0 when the toggled column joined the subset, -1 when it
        // left.
        let m = (((gray >> col) & 1) as i32).wrapping_sub(1);
        let deltas = &self.cols[col * self.n..col * self.n + self.n];
        for (sum, &c) in self.sums.iter_mut().zip(deltas) {
            *sum += (c ^ m) - m;
        }
        self.prev_gray = gray;
    }

    /// Overflow-checked magnitude of the row-sum product for the
    /// big-`n` lane: consecutive lanes of `lane_len` sums multiply
    /// inside provably in-range `u64`s, lanes combine through
    /// `u128::checked_mul`. `None` is overflow; a zero row sum makes
    /// the product an exact 0 without ever tripping the check.
    #[inline(always)]
    fn term_checked(&self, n: usize, lane_len: usize) -> Option<u128> {
        // andi::prove_no_overflow — the in-range u64 lane products are machine-checked
        let mut acc: u128 = 1;
        for q in self.sums[..n].chunks(lane_len) {
            let mut p: u64 = 1;
            for &v in q {
                debug_assert!(
                    v >= 0 && v <= MAX_PERMANENT_N as i32,
                    "row sums are set cardinalities bounded by n"
                );
                // andi::assume(v in [0, 32]) — |row_i ∩ S| <= n <= MAX_PERMANENT_N
                debug_assert!(
                    p <= CHECKED_LANE_PARTIAL_MAX,
                    "lane partial exceeds n^(lane_len - 1) < 2^57"
                );
                // andi::assume(p in [0, 144115188075855871]) — checked_lane_len keeps p < 2^(62 - bits(n)) <= 2^57 before each factor
                p *= v as u64;
            }
            acc = acc.checked_mul(u128::from(p))?;
        }
        Some(acc)
    }
}

/// Lane width for the checked product of domains of size `n`: the
/// largest `k` with `n^k < 2^62`, so a lane product of `k` factors
/// each `<= n` provably fits `u64`.
fn checked_lane_len(n: usize) -> usize {
    let bits = 64 - (n as u64).leading_zeros() as usize;
    (62 / bits).max(1)
}

/// One poll-free block of the fast lane over walk coordinates
/// `s ∈ [w_start, w_end) ⊆ [0, 2^(n-1))`, `n <= SAFE_UNCHECKED_N`:
/// the Nijenhuis–Wilf half-space sum `Σ (-1)^|S| Π_i y_i(S)` with
/// `S = gray(s)` over the first `n-1` columns and doubled factors
/// `y_i(S) = 2·a_{i,n-1} - r_i + 2·|row_i ∩ S|` (`|y_i| <= n`, so the
/// plain-Ryser overflow bounds carry over while the walk is half as
/// long). Dispatches to a `const N` monomorphization so both inner
/// loops fully unroll and the row sums live in registers.
fn ryser_block_unchecked(rows: &[u64], n: usize, w_start: u64, w_end: u64) -> i128 {
    // Callers dispatch here only for 1 <= n <= SAFE_UNCHECKED_N
    // (n == 0 returns before any walk), so the wildcard arm *is* the
    // `n = SAFE_UNCHECKED_N` monomorphization, not a fallback.
    debug_assert!((1..=SAFE_UNCHECKED_N).contains(&n));
    macro_rules! dispatch {
        ($($k:literal)+) => {
            match n {
                $($k => ryser_block_fixed::<$k>(rows, w_start, w_end),)+
                _ => ryser_block_fixed::<SAFE_UNCHECKED_N>(rows, w_start, w_end),
            }
        };
    }
    dispatch!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21)
}

/// The `const N` fast-lane walk: compile-time trip counts let the
/// whole per-subset body unroll flat. Coordinate 0 (the empty set) is
/// the freshly seeded state itself, so its term is taken before any
/// advance.
fn ryser_block_fixed<const N: usize>(rows: &[u64], w_start: u64, w_end: u64) -> i128 {
    // andi::prove_no_overflow — the fast lane's unchecked accumulation is machine-checked
    let first = w_start.max(1);
    let mut walk = FixedWalk::<N>::seeded(rows, first);
    let mut total: i128 = if w_start == 0 { walk.term() } else { 0 };
    for s in first..w_end {
        debug_assert!(
            (-FIXED_TOTAL_BOUND..=FIXED_TOTAL_BOUND).contains(&total),
            "fast-lane total exceeds the 2^(n-1) * n^n walk bound"
        );
        // andi::assume(total in [-716026155870127773233492469657632768, 716026155870127773233492469657632768]) — at most 2^(N-1) <= 2^21 terms of magnitude <= N^N <= 22^22 accumulate per walk
        total += step_fixed(&mut walk, s);
    }
    total
}

/// One subset of the fast lane: advance, multiply, and apply the
/// half-space sign `(-1)^|S|` branchlessly via
/// `popcount(gray(s)) ≡ s (mod 2)`.
#[inline(always)]
fn step_fixed<const N: usize>(walk: &mut FixedWalk<N>, s: u64) -> i128 {
    // andi::prove_no_overflow — the branchless sign flip is machine-checked
    let gray = s ^ (s >> 1);
    walk.advance(gray);
    let term = walk.term();
    debug_assert!(
        (-FIXED_TERM_BOUND..=FIXED_TERM_BOUND).contains(&term),
        "fast-lane term exceeds the n^n magnitude bound"
    );
    // andi::assume(term in [-341427877364219557396646723584, 341427877364219557396646723584]) — |Π y_i| <= N^N and N <= SAFE_UNCHECKED_N = 22
    // 0 for an even |S|, -1 for odd; `(x ^ m) - m` negates x exactly
    // when m is -1.
    let m = -(s as i128 & 1);
    (term ^ m) - m
}

/// Fast-lane walk state with compile-time `N`: the transposed
/// per-column delta table and the SoA factors are fixed-size arrays,
/// so the advance and product loops unroll completely. The factors
/// are the doubled Nijenhuis–Wilf values
/// `y_i(S) = 2·a_{i,N-1} - r_i + 2·|row_i ∩ S|`; only the first
/// `N-1` columns ever toggle.
struct FixedWalk<const N: usize> {
    /// `cols[j][i]` is the column-`j` delta for row `i` (0 or 2 — the
    /// `y` factors move in doubled steps).
    cols: [[i32; N]; N],
    sums: [i32; N],
    prev_gray: u64,
}

impl<const N: usize> FixedWalk<N> {
    /// Seeds the factors at the subset `gray(s_first - 1)`
    /// (`s_first >= 1`; the empty set is `s_first = 1`, whose *seed
    /// state* is the `s = 0` term) and transposes the rows into the
    /// delta table (`N^2` ints, amortized over a
    /// [`CHUNK_SUBSETS`]-sized block).
    fn seeded(rows: &[u64], s_first: u64) -> Self {
        // andi::prove_no_overflow — the seeding arithmetic is machine-checked
        debug_assert_eq!(rows.len(), N);
        debug_assert!(
            (1..=SAFE_UNCHECKED_N).contains(&N),
            "fast-lane monomorphizations stop at SAFE_UNCHECKED_N"
        );
        // andi::assume(N in [1, 22]) — ryser_block_unchecked dispatches only N in 1..=SAFE_UNCHECKED_N
        debug_assert!(s_first >= 1, "coordinate 0 is the seed state itself");
        // andi::assume(s_first in [1, 18446744073709551615]) — callers clamp with w_start.max(1)
        let prev = s_first - 1;
        let prev_gray = prev ^ (prev >> 1);
        let mut cols = [[0i32; N]; N];
        for (j, col) in cols.iter_mut().enumerate().take(N - 1) {
            for (c, &row) in col.iter_mut().zip(rows) {
                *c = 2 * ((row >> j) & 1) as i32;
            }
        }
        let mut sums = [0i32; N];
        for (sum, &row) in sums.iter_mut().zip(rows) {
            let last = 2 * ((row >> (N - 1)) & 1) as i32;
            let r = row.count_ones() as i32;
            *sum = last - r + 2 * (row & prev_gray).count_ones() as i32;
        }
        FixedWalk {
            cols,
            sums,
            prev_gray,
        }
    }

    /// Advances to the subset `gray`: every factor moves by the
    /// toggled column's doubled delta, sign-applied with the mask
    /// identity `(c ^ m) - m` — load/xor/sub/add per row, no branch,
    /// no multiply.
    #[inline(always)]
    fn advance(&mut self, gray: u64) {
        // andi::prove_no_overflow — the branchless toggle update is machine-checked
        debug_assert!(
            (1..=SAFE_UNCHECKED_N).contains(&N),
            "fast-lane monomorphizations stop at SAFE_UNCHECKED_N"
        );
        // andi::assume(N in [1, 22]) — ryser_block_unchecked dispatches only N in 1..=SAFE_UNCHECKED_N
        let changed = gray ^ self.prev_gray;
        let col = (changed.trailing_zeros() as usize).min(N - 1);
        // 0 when the toggled column joined the subset, -1 when it
        // left.
        let m = (((gray >> col) & 1) as i32).wrapping_sub(1);
        let deltas = &self.cols[col];
        for (sum, &c) in self.sums.iter_mut().zip(deltas) {
            debug_assert!(c == 0 || c == 2, "cols holds doubled 0/1 row bits");
            // andi::assume(c in [0, 2]) — the delta table stores `2 * ((row >> j) & 1)`
            debug_assert!(
                *sum >= -(N as i32) && *sum <= N as i32,
                "|y_i| <= N by the Nijenhuis-Wilf factor bound"
            );
            // andi::assume(sum in [-22, 22]) — |y_i| <= N <= SAFE_UNCHECKED_N before every toggle
            *sum += (c ^ m) - m;
        }
        self.prev_gray = gray;
    }

    /// Product of the factors via eight independent multiply chains
    /// (for instruction-level parallelism), folded pairwise so only
    /// the final fold widens to `i128`. Unchecked: safe for
    /// `N <= SAFE_UNCHECKED_N` by the lane bounds documented there
    /// (`|y_i| <= N`, same magnitude as the plain-Ryser row sums).
    #[inline(always)]
    fn term(&self) -> i128 {
        // andi::prove_no_overflow — the unchecked multiply chains are machine-checked
        let mut lanes = [1i64; 8];
        let mut it = self.sums.chunks_exact(8);
        for q in it.by_ref() {
            for (lane, &v) in lanes.iter_mut().zip(q) {
                debug_assert!(v >= -(N as i32) && v <= N as i32, "|y_i| <= N");
                // andi::assume(v in [-22, 22]) — |y_i| <= N <= SAFE_UNCHECKED_N
                debug_assert!(
                    *lane >= -484 && *lane <= 484,
                    "at most two prior factors of magnitude <= 22 per lane"
                );
                // andi::assume(lane in [-484, 484]) — a lane holds at most 22^2 before its next multiply
                *lane *= i64::from(v);
            }
        }
        for (lane, &v) in lanes.iter_mut().zip(it.remainder()) {
            debug_assert!(v >= -(N as i32) && v <= N as i32, "|y_i| <= N");
            // andi::assume(v in [-22, 22]) — |y_i| <= N <= SAFE_UNCHECKED_N
            debug_assert!(
                *lane >= -484 && *lane <= 484,
                "at most two prior factors of magnitude <= 22 per lane"
            );
            // andi::assume(lane in [-484, 484]) — a lane holds at most 22^2 before its next multiply
            *lane *= i64::from(v);
        }
        // Pairwise fold: each i64 intermediate holds at most
        // ceil(N/2) factors of magnitude <= N.
        debug_assert!(
            lanes.iter().all(|l| (-10648..=10648).contains(l)),
            "at most three factors of magnitude <= 22 per lane"
        );
        // andi::assume(lanes in [-10648, 10648]) — ceil(22/8) = 3 factors of magnitude <= 22 per lane
        let q01 = lanes[0] * lanes[1];
        let q23 = lanes[2] * lanes[3];
        let q45 = lanes[4] * lanes[5];
        let q67 = lanes[6] * lanes[7];
        i128::from(q01 * q23) * i128::from(q45 * q67)
    }
}

/// One poll-free block of the overflow-checked lane:
/// `s ∈ [s_start, s_end)`, `n > SAFE_UNCHECKED_N`. `None` is
/// overflow — of a lane combine, of the `u128 → i128` narrowing, or
/// of the signed total.
fn ryser_block_checked(rows: &[u64], n: usize, s_start: u64, s_end: u64) -> Option<i128> {
    let lane_len = checked_lane_len(n);
    let mut walk = GrayWalk::seeded(rows, s_start);
    let mut total: i128 = 0;
    for s in s_start..s_end {
        total = total.checked_add(step_checked(&mut walk, n, lane_len, s)?)?;
    }
    Some(total)
}

/// One subset of the checked lane: `None` when the term magnitude
/// cannot be represented as a (positive) `i128`.
#[inline(always)]
fn step_checked(walk: &mut GrayWalk, n: usize, lane_len: usize, s: u64) -> Option<i128> {
    let gray = s ^ (s >> 1);
    walk.advance(gray);
    let magnitude = walk.term_checked(n, lane_len)?;
    let term = i128::try_from(magnitude).ok()?;
    let m = -((n as u64 ^ s) as i128 & 1);
    Some((term ^ m) - m)
}

#[inline]
fn mask(n: usize) -> u64 {
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Brute-force permanent by recursive expansion; exponential and only
/// for cross-checking Ryser in tests.
pub fn permanent_naive(g: &DenseBigraph) -> u128 {
    let n = g.n();
    assert!(n <= 12, "naive permanent only for tiny graphs");
    let rows: Vec<u64> = (0..n)
        .map(|i| g.row_words(i).first().copied().unwrap_or(0))
        .collect();
    fn rec(rows: &[u64], i: usize, used: u64) -> u128 {
        if i == rows.len() {
            return 1;
        }
        let mut total = 0;
        let mut avail = rows[i] & !used;
        while avail != 0 {
            let j = avail.trailing_zeros() as u64;
            avail &= avail - 1;
            total += rec(rows, i + 1, used | (1 << j));
        }
        total
    }
    rec(&rows, 0, 0)
}

/// The pre-rework scalar Gray-code walk, kept verbatim (minus budget
/// polls) as the reference for the kernel-equivalence differential
/// tests: one branchy row-sum update and a sequential checked
/// product per subset.
#[cfg(test)]
fn ryser_range_reference(rows: &[u64], n: usize, s_start: u64, s_end: u64) -> Option<i128> {
    let mut prev_gray = (s_start - 1) ^ ((s_start - 1) >> 1);
    let mut row_sums: Vec<i64> = rows
        .iter()
        .map(|&r| i64::from((r & prev_gray).count_ones()))
        .collect();
    let checked = n > SAFE_UNCHECKED_N;
    let mut total: i128 = 0;
    for s in s_start..s_end {
        let gray = s ^ (s >> 1);
        let changed = gray ^ prev_gray;
        let col = changed.trailing_zeros() as usize;
        let added = gray & changed != 0;
        for (i, row) in rows.iter().enumerate() {
            if row & (1u64 << col) != 0 {
                row_sums[i] += if added { 1 } else { -1 };
            }
        }
        prev_gray = gray;

        let mut prod: i128 = 1;
        for &rs in &row_sums {
            if rs == 0 {
                prod = 0;
                break;
            }
            if checked {
                match prod.checked_mul(i128::from(rs)) {
                    Some(p) => prod = p,
                    None => return None,
                }
            } else {
                prod *= i128::from(rs);
            }
        }
        if prod != 0 {
            let popcnt = gray.count_ones() as usize;
            if checked {
                let next = if (n - popcnt).is_multiple_of(2) {
                    total.checked_add(prod)
                } else {
                    total.checked_sub(prod)
                };
                match next {
                    Some(t) => total = t,
                    None => return None,
                }
            } else if (n - popcnt).is_multiple_of(2) {
                total += prod;
            } else {
                total -= prod;
            }
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn complete_graph_permanent_is_factorial() {
        for n in 1..=8usize {
            let g = DenseBigraph::complete(n);
            let fact: u128 = (1..=n as u128).product();
            assert_eq!(permanent(&g), fact, "perm(J_{n}) = {n}!");
        }
    }

    #[test]
    fn empty_and_identity() {
        assert_eq!(permanent(&DenseBigraph::new(0)), 1);
        let g = DenseBigraph::new(3);
        assert_eq!(permanent(&g), 0, "no edges, no matchings");
        let mut id = DenseBigraph::new(3);
        for i in 0..3 {
            id.add_edge(i, i);
        }
        assert_eq!(permanent(&id), 1);
    }

    #[test]
    fn staircase_has_unique_matching() {
        // Figure 6(a): right j reachable from lefts 0..=j.
        let mut g = DenseBigraph::new(4);
        for j in 0..4 {
            for i in 0..=j {
                g.add_edge(i, j);
            }
        }
        assert_eq!(permanent(&g), 1);
    }

    #[test]
    fn block_diagonal_multiplies() {
        // Two disjoint complete blocks of sizes 2 and 3: 2! * 3! = 12.
        let mut g = DenseBigraph::new(5);
        for i in 0..2 {
            for j in 0..2 {
                g.add_edge(i, j);
            }
        }
        for i in 2..5 {
            for j in 2..5 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(permanent(&g), 12);
    }

    #[test]
    fn ryser_matches_naive_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..30 {
            let n = rng.gen_range(1..=7);
            let mut g = DenseBigraph::new(n);
            for i in 0..n {
                for j in 0..n {
                    if rng.gen_bool(0.55) {
                        g.add_edge(i, j);
                    }
                }
            }
            assert_eq!(
                permanent(&g),
                permanent_naive(&g),
                "trial {trial}, n={n}, graph={g:?}"
            );
        }
    }

    #[test]
    fn missing_row_gives_zero_fast() {
        let mut g = DenseBigraph::complete(6);
        g.clear_left(3);
        assert_eq!(permanent(&g), 0);
    }

    #[test]
    #[should_panic(expected = "permanent limited")]
    fn oversize_is_rejected() {
        let g = DenseBigraph::new(MAX_PERMANENT_N + 1);
        let _ = permanent(&g);
    }

    #[test]
    fn stray_high_bits_are_masked_at_entry() {
        // Regression (input hardening): bits >= n in a row mask must
        // not perturb the result. Before the entry-point masking,
        // every consumer had to guarantee clean words itself — a
        // caller building minors by column deletion on a poisoned
        // word shifts a ghost bit INTO the active range, which the
        // kernel then counts as a real candidate.
        let clean: Vec<u64> = vec![0b011, 0b110, 0b101];
        let poisoned: Vec<u64> = clean.iter().map(|&r| r | (1u64 << 40)).collect();
        assert_eq!(
            try_permanent_of_rows(&poisoned, 3),
            try_permanent_of_rows(&clean, 3),
            "stray bit 40 leaked into the walk"
        );
        let b = Budget::unlimited();
        assert_eq!(
            try_permanent_of_rows_budgeted(&poisoned, 3, 1, &b),
            try_permanent_of_rows_budgeted(&clean, 3, 1, &b),
        );
        // A row whose only bits are stray must read as empty (zero
        // permanent), not as a live candidate set.
        let ghost_only: Vec<u64> = vec![0b011, 1u64 << 63, 0b101];
        assert_eq!(try_permanent_of_rows(&ghost_only, 3), Some(0));
    }

    #[test]
    fn chunked_walk_matches_serial_across_thread_counts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        // n = 18 crosses PARALLEL_MIN_N, so the chunked path is
        // genuinely exercised.
        for n in [18usize, 19] {
            let rows: Vec<u64> = (0..n)
                .map(|i| {
                    let mut r = 1u64 << i; // keep feasible
                    for j in 0..n {
                        if rng.gen_bool(0.4) {
                            r |= 1 << j;
                        }
                    }
                    r
                })
                .collect();
            let serial = try_permanent_of_rows_with_threads(&rows, n, 1);
            for threads in 2..=8 {
                assert_eq!(
                    try_permanent_of_rows_with_threads(&rows, n, threads),
                    serial,
                    "n={n}, threads={threads}"
                );
            }
        }
    }

    #[test]
    fn mid_walk_seeding_is_consistent() {
        // Any split point of the walk must reproduce the full sum
        // (fast lane: 2^(n-1) = 8 half-space coordinates).
        let rows: Vec<u64> = vec![0b1011, 0b1110, 0b0111, 0b1101];
        let n = 4;
        let b0 = Budget::unlimited();
        let full = ryser_range(&rows, n, 0, 8, &b0).unwrap().unwrap();
        for split in 1..8 {
            let a = ryser_range(&rows, n, 0, split, &b0).unwrap().unwrap();
            let b = ryser_range(&rows, n, split, 8, &b0).unwrap().unwrap();
            assert_eq!(a + b, full, "split at {split}");
        }
        // And the finished value matches the brute-force count.
        let mut g = DenseBigraph::new(n);
        for (i, &row) in rows.iter().enumerate() {
            for j in 0..n {
                if row & (1 << j) != 0 {
                    g.add_edge(i, j);
                }
            }
        }
        assert_eq!(finish_walk(n, full), Some(permanent_naive(&g)));
    }

    #[test]
    fn budgeted_matches_legacy_across_thread_counts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for n in [12usize, 16, 18] {
            let rows: Vec<u64> = (0..n)
                .map(|i| {
                    let mut r = 1u64 << i;
                    for j in 0..n {
                        if rng.gen_bool(0.4) {
                            r |= 1 << j;
                        }
                    }
                    r
                })
                .collect();
            let legacy = try_permanent_of_rows_with_threads(&rows, n, 1);
            for threads in 1..=8 {
                let b = Budget::unlimited();
                assert_eq!(
                    try_permanent_of_rows_budgeted(&rows, n, threads, &b),
                    Ok(legacy),
                    "n={n}, threads={threads}"
                );
            }
        }
    }

    #[test]
    fn budgeted_zero_budget_trips_before_work() {
        let rows: Vec<u64> = (0..18).map(|i| (1u64 << i) | 1).collect();
        let b = Budget::with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            try_permanent_of_rows_budgeted(&rows, 18, 4, &b),
            Err(ExecError::BudgetExceeded { budget_ms: 0 })
        );
    }

    #[test]
    fn dense_overflow_near_the_cap_is_detected_not_wrapped() {
        // perm(J_27) = 27! fits u128 easily, but Ryser's signed
        // partial sums reach ~27^27 ≈ 4.4e38 > i128::MAX: the checked
        // path must report overflow instead of wrapping. The dense
        // overflow walk itself (~10^8 subsets, the expensive part)
        // now runs once in `exact::tests::
        // dense_overflow_is_a_structured_error_not_a_panic`, which
        // asserts the same `try_permanent` None through the audited
        // structured-error caller; here we keep the cheap half.

        // A sparse graph at the same size stays exact: identity plus
        // one extra diagonal has permanent 1 (staircase argument) —
        // actually identity + superdiagonal: count matchings = F(n+1)
        // style; just cross-check against a block-diagonal value we
        // can compute: 13 disjoint complete 2-blocks + 1 singleton
        // inside n = 27 gives 2^13.
        let mut g = DenseBigraph::new(27);
        for b in 0..13 {
            for i in 0..2 {
                for j in 0..2 {
                    g.add_edge(2 * b + i, 2 * b + j);
                }
            }
        }
        g.add_edge(26, 26);
        assert_eq!(permanent(&g), 1 << 13);
    }

    #[test]
    fn factorial_stays_exact_in_checked_range() {
        // perm(J_23): n = 23 is the first checked-arithmetic size;
        // 23! must come out exactly (no overflow for the running
        // partial sums of the complete graph at this n... if the
        // checked path reports overflow the assertion fails loudly
        // rather than silently wrapping).
        let n = 23;
        let rows = vec![mask(n); n];
        let fact: u128 = (1..=n as u128).product();
        match try_permanent_of_rows_with_threads(&rows, n, 2) {
            Some(v) => assert_eq!(v, fact),
            None => panic!("23! must not overflow i128"),
        }
    }

    #[test]
    fn raised_cap_is_exact_in_the_checked_lane() {
        // Block-diagonal structure inside the raised cap: 16 disjoint
        // complete 2-blocks at n = MAX_PERMANENT_N = 32 give exactly
        // 2^16 matchings — a full 2^32 walk would take tens of
        // seconds, so the oversize boundary is pinned structurally at
        // n = 24 instead (8 complete 3-blocks: 6^8).
        let n = 24;
        let mut rows = vec![0u64; n];
        for b in 0..8 {
            let block = 0b111u64 << (3 * b);
            for i in 0..3 {
                rows[3 * b + i] = block;
            }
        }
        assert_eq!(try_permanent_of_rows(&rows, n), Some(6u128.pow(8)));
    }

    #[test]
    fn checked_lane_width_is_safe() {
        for n in SAFE_UNCHECKED_N + 1..=MAX_PERMANENT_N {
            let k = checked_lane_len(n);
            // n^k must fit u64 comfortably (the documented 2^62
            // margin), and one extra factor must be the first that
            // could not.
            let lane_max = (n as u128).pow(k as u32);
            assert!(lane_max < (1u128 << 62), "n={n}, lane={k}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Kernel-equivalence differential: the branchless SoA walk
        /// must be bit-identical to the pre-rework scalar reference
        /// on random bitmask matrices for n <= 20, at thread counts
        /// 1 and 4 (the CI sweep values).
        #[test]
        fn differential_new_kernel_equals_reference(
            n in 2usize..=20,
            seed in 0u64..1_000_000,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let rows: Vec<u64> = (0..n)
                .map(|_| rng.gen_range(0..(1u64 << n)))
                .collect();
            let subsets = (1u64 << n) - 1;
            let reference = ryser_range_reference(&rows, n, 1, subsets + 1)
                .map(|t| u128::try_from(t).ok())
                .and_then(|v| v);
            for threads in [1usize, 4] {
                prop_assert_eq!(
                    try_permanent_of_rows_with_threads(&rows, n, threads),
                    reference,
                    "n={}, threads={}", n, threads
                );
            }
        }

        /// The checked lane agrees with the reference too (smaller n
        /// range: the reference walk is slow). Masks are forced
        /// feasible so the values are non-trivial.
        #[test]
        fn differential_checked_lane_equals_reference(
            seed in 0u64..1_000_000,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let n = 23usize; // first checked-arithmetic size
            let mut rng = StdRng::seed_from_u64(seed);
            // Sparse rows keep the reference walk fast (most terms 0).
            let rows: Vec<u64> = (0..n)
                .map(|i| {
                    let mut r = 1u64 << i;
                    for _ in 0..3 {
                        r |= 1u64 << rng.gen_range(0..n);
                    }
                    r
                })
                .collect();
            // Sample a band of the walk rather than all 2^23 subsets
            // (walk coordinate w maps to Ryser subset s = w + 1 in
            // the checked lane).
            let lo = 1u64 << 18;
            let hi = lo + (1u64 << 15);
            let b = Budget::unlimited();
            let new = ryser_range(&rows, n, lo, hi, &b).unwrap();
            let reference = ryser_range_reference(&rows, n, lo + 1, hi + 1);
            prop_assert_eq!(new, reference);
        }
    }
}

//! Permanent of the bipartite adjacency matrix.
//!
//! The size of the mapping space is the number of perfect matchings,
//! i.e. the permanent of the adjacency matrix (Section 4.1). The
//! permanent is #P-complete [Valiant 1979]; the paper dismisses even
//! the Jerrum–Sinclair–Vigoda approximation as impractical (O(n^22)).
//! For *small* domains, however, Ryser's inclusion–exclusion formula
//! with Gray-code subset enumeration computes it exactly in
//! `O(2^n · n)` — that is what our tests use as ground truth for the
//! O-estimate and the matching sampler.
//!
//! Two execution strategies share one inner loop:
//!
//! * **Serial** — a single Gray-code walk over all `2^n - 1`
//!   non-empty column subsets.
//! * **Chunked parallel** — the subset range is split into
//!   contiguous chunks ([`crate::par::chunk_ranges`]); each worker
//!   seeds its row sums directly from the popcounts of its chunk's
//!   starting Gray code and walks only its chunk. Chunk sums are
//!   integers, reduced in chunk order, so the result is bit-identical
//!   to the serial walk at any thread count.
//!
//! Arithmetic is overflow-checked wherever the signed `i128`
//! accumulator could wrap (dense graphs from `n ≈ 23` up, past the
//! internal `SAFE_UNCHECKED_N` bound): overflow reports `None` from
//! the `try_` variants instead of silently wrapping.

use crate::dense::DenseBigraph;
use crate::faults;
use crate::par;
use crate::par::{Budget, ExecError};

/// Hard cap on the domain size for exact permanents. `2^30` subset
/// iterations is the practical ceiling; beyond it the accumulator
/// could also overflow for dense graphs.
pub const MAX_PERMANENT_N: usize = 30;

/// Largest `n` whose Ryser accumulation provably cannot overflow
/// `i128`, letting the inner loop skip overflow checks: every term
/// is at most `n^n` in magnitude and at most `2^n - 1` terms are
/// accumulated, and `22^22 · 2^22 ≈ 1.5e36 < i128::MAX ≈ 1.7e38`
/// (`23^23 · 2^23` already exceeds it).
const SAFE_UNCHECKED_N: usize = 22;

/// Minimum domain size worth fanning out over threads; below this a
/// Gray-code walk is microseconds and spawn overhead dominates.
const PARALLEL_MIN_N: usize = 18;

/// Computes the permanent of the 0/1 adjacency matrix of `g` with
/// Ryser's formula, fanning out over the ambient
/// [`par::available_threads`] worker count for large `n`.
///
/// # Panics
///
/// Panics if `g.n() > MAX_PERMANENT_N` or if the accumulator would
/// overflow (dense graphs near the size cap); use [`try_permanent`]
/// to observe overflow as a value.
/// # Examples
///
/// ```
/// use andi_graph::{permanent, DenseBigraph};
///
/// // perm(J_4) = 4! — the mapping space of an ignorant hacker.
/// assert_eq!(permanent(&DenseBigraph::complete(4)), 24);
/// ```
pub fn permanent(g: &DenseBigraph) -> u128 {
    // andi::allow(lib-unwrap) — documented panicking wrapper; overflow-safe callers use try_permanent
    try_permanent(g).expect("permanent overflowed i128; domain too dense for exact Ryser")
}

/// [`permanent`] reporting accumulator overflow as `None` instead of
/// panicking.
///
/// # Panics
///
/// Panics if `g.n() > MAX_PERMANENT_N`.
pub fn try_permanent(g: &DenseBigraph) -> Option<u128> {
    let n = g.n();
    assert!(
        n <= MAX_PERMANENT_N,
        "permanent limited to n <= {MAX_PERMANENT_N}, got {n}"
    );
    if n == 0 {
        return Some(1);
    }
    // Rows as plain u64 masks (n <= 30 fits one word).
    let rows: Vec<u64> = (0..n).map(|i| g.row_words(i)[0]).collect();
    try_permanent_of_rows_with_threads(&rows, n, par::available_threads())
}

/// Ryser's formula over explicit row bitmasks. `rows[i]` has bit `j`
/// set iff matrix entry `(i, j)` is 1. Only the low `n` bits are
/// used. Runs on the ambient thread count.
///
/// # Panics
///
/// Panics on accumulator overflow (see [`try_permanent_of_rows`]).
pub fn permanent_of_rows(rows: &[u64], n: usize) -> u128 {
    try_permanent_of_rows(rows, n)
        // andi::allow(lib-unwrap) — documented panicking wrapper; overflow-safe callers use try_permanent_of_rows
        .expect("permanent overflowed i128; domain too dense for exact Ryser")
}

/// Overflow-checked [`permanent_of_rows`]: `None` when the signed
/// `i128` accumulation would wrap (possible for dense graphs from
/// `n ≈ 23`).
pub fn try_permanent_of_rows(rows: &[u64], n: usize) -> Option<u128> {
    try_permanent_of_rows_with_threads(rows, n, par::available_threads())
}

/// [`try_permanent_of_rows`] with an explicit worker count —
/// bit-identical across `threads` by the [`crate::par`] determinism
/// contract (chunk boundaries depend only on `n`).
pub fn try_permanent_of_rows_with_threads(rows: &[u64], n: usize, threads: usize) -> Option<u128> {
    assert!(n <= MAX_PERMANENT_N);
    assert_eq!(rows.len(), n);
    if n == 0 {
        return Some(1);
    }
    // Quick zero: a row with no candidates kills every matching.
    if rows.iter().any(|&r| r & mask(n) == 0) {
        return Some(0);
    }

    let subsets = (1u64 << n) - 1; // s ranges over [1, 2^n)
    let unlimited = Budget::unlimited();
    let total: Option<i128> = if threads > 1 && n >= PARALLEL_MIN_N {
        // Fixed chunk layout (thread-count-independent values; the
        // worker count only affects scheduling).
        let chunks = par::chunk_ranges(subsets, threads * 8);
        let partials = par::map_indexed(threads, chunks.len(), |c| {
            let (lo, hi) = chunks[c];
            ryser_range(rows, n, lo + 1, hi + 1, &unlimited)
        });
        partials.into_iter().try_fold(0i128, |acc, p| match p {
            // An unlimited budget never trips, so Err is unreachable
            // here; folding it into the overflow path keeps the
            // legacy signature without an unwrap.
            Ok(Some(v)) => acc.checked_add(v),
            _ => None,
        })
    } else {
        // An unlimited budget never trips, so the Err arm is
        // unreachable; defaulting it to `None` folds it into the
        // overflow path and keeps the legacy signature.
        ryser_range(rows, n, 1, subsets + 1, &unlimited).unwrap_or_default()
    };
    let total = total?;
    debug_assert!(total >= 0, "permanent of a 0/1 matrix is non-negative");
    u128::try_from(total).ok()
}

/// Subset count per chunk of the budgeted walk: `2^12` keeps the
/// chunk layout fixed (thread-count-independent) while giving budget
/// polls and fault probes useful granularity even at moderate `n`
/// (`n = 16` → 16 chunks).
const CHUNK_SUBSETS: u64 = 1 << 12;

/// Budgeted, fault-isolated [`try_permanent_of_rows_with_threads`]:
/// the Gray-code walk is split into a *fixed* chunk layout
/// (`CHUNK_SUBSETS = 2^12` subsets per chunk, independent of
/// `threads`),
/// each chunk runs as one [`par::try_map_indexed`] task carrying the
/// `permanent.chunk` fault probe, and the walk inside every chunk
/// polls `budget` each 8192 subsets.
///
/// `Ok(None)` is accumulator overflow (same meaning as the legacy
/// `try_` family); `Ok(Some(v))` is exact at any thread count.
///
/// # Errors
///
/// [`ExecError`] when the budget trips, the token fires, or an
/// injected fault panics a chunk task.
///
/// # Panics
///
/// Panics if `n > MAX_PERMANENT_N` or `rows.len() != n`.
pub fn try_permanent_of_rows_budgeted(
    rows: &[u64],
    n: usize,
    threads: usize,
    budget: &Budget,
) -> Result<Option<u128>, ExecError> {
    assert!(n <= MAX_PERMANENT_N);
    assert_eq!(rows.len(), n);
    if n == 0 {
        return Ok(Some(1));
    }
    if rows.iter().any(|&r| r & mask(n) == 0) {
        return Ok(Some(0));
    }

    let subsets = (1u64 << n) - 1;
    let n_chunks = subsets.div_ceil(CHUNK_SUBSETS).max(1) as usize;
    let chunks = par::chunk_ranges(subsets, n_chunks);
    let partials = par::try_map_indexed(threads, chunks.len(), budget, |c| {
        faults::probe("permanent.chunk", c);
        let (lo, hi) = chunks[c];
        ryser_range(rows, n, lo + 1, hi + 1, budget)
    })?;
    let mut total: i128 = 0;
    for part in partials {
        let Some(v) = part? else { return Ok(None) };
        let Some(acc) = total.checked_add(v) else {
            return Ok(None);
        };
        total = acc;
    }
    debug_assert!(total >= 0, "permanent of a 0/1 matrix is non-negative");
    Ok(u128::try_from(total).ok())
}

/// Signed Ryser contribution of the Gray-code walk over
/// `s ∈ [s_start, s_end)`, `s_start >= 1`: the sum over the visited
/// column subsets `S = gray(s)` of `(-1)^(n - |S|) · Π_i |row_i ∩ S|`.
/// Row sums are seeded from `gray(s_start - 1)` so any contiguous
/// range can start mid-walk. Polls `budget` every 8192 subsets;
/// `Ok(None)` is accumulator overflow.
fn ryser_range(
    rows: &[u64],
    n: usize,
    s_start: u64,
    s_end: u64,
    budget: &Budget,
) -> Result<Option<i128>, ExecError> {
    let mut prev_gray = (s_start - 1) ^ ((s_start - 1) >> 1);
    let mut row_sums: Vec<i64> = rows
        .iter()
        .map(|&r| (r & prev_gray).count_ones() as i64)
        .collect();
    let checked = n > SAFE_UNCHECKED_N;
    let mut total: i128 = 0;
    for s in s_start..s_end {
        if s & 8191 == 0 {
            budget.check()?;
        }
        let gray = s ^ (s >> 1);
        let changed = gray ^ prev_gray;
        let col = changed.trailing_zeros() as usize;
        let added = gray & changed != 0;
        for (i, row) in rows.iter().enumerate() {
            if row & (1u64 << col) != 0 {
                row_sums[i] += if added { 1 } else { -1 };
            }
        }
        prev_gray = gray;

        let mut prod: i128 = 1;
        for &rs in &row_sums {
            if rs == 0 {
                prod = 0;
                break;
            }
            if checked {
                match prod.checked_mul(rs as i128) {
                    Some(p) => prod = p,
                    None => return Ok(None),
                }
            } else {
                prod *= rs as i128;
            }
        }
        if prod != 0 {
            let popcnt = gray.count_ones() as usize;
            if checked {
                let next = if (n - popcnt).is_multiple_of(2) {
                    total.checked_add(prod)
                } else {
                    total.checked_sub(prod)
                };
                match next {
                    Some(t) => total = t,
                    None => return Ok(None),
                }
            } else if (n - popcnt).is_multiple_of(2) {
                total += prod;
            } else {
                total -= prod;
            }
        }
    }
    Ok(Some(total))
}

#[inline]
fn mask(n: usize) -> u64 {
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Brute-force permanent by recursive expansion; exponential and only
/// for cross-checking Ryser in tests.
pub fn permanent_naive(g: &DenseBigraph) -> u128 {
    let n = g.n();
    assert!(n <= 12, "naive permanent only for tiny graphs");
    let rows: Vec<u64> = (0..n)
        .map(|i| g.row_words(i).first().copied().unwrap_or(0))
        .collect();
    fn rec(rows: &[u64], i: usize, used: u64) -> u128 {
        if i == rows.len() {
            return 1;
        }
        let mut total = 0;
        let mut avail = rows[i] & !used;
        while avail != 0 {
            let j = avail.trailing_zeros() as u64;
            avail &= avail - 1;
            total += rec(rows, i + 1, used | (1 << j));
        }
        total
    }
    rec(&rows, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_permanent_is_factorial() {
        for n in 1..=8usize {
            let g = DenseBigraph::complete(n);
            let fact: u128 = (1..=n as u128).product();
            assert_eq!(permanent(&g), fact, "perm(J_{n}) = {n}!");
        }
    }

    #[test]
    fn empty_and_identity() {
        assert_eq!(permanent(&DenseBigraph::new(0)), 1);
        let g = DenseBigraph::new(3);
        assert_eq!(permanent(&g), 0, "no edges, no matchings");
        let mut id = DenseBigraph::new(3);
        for i in 0..3 {
            id.add_edge(i, i);
        }
        assert_eq!(permanent(&id), 1);
    }

    #[test]
    fn staircase_has_unique_matching() {
        // Figure 6(a): right j reachable from lefts 0..=j.
        let mut g = DenseBigraph::new(4);
        for j in 0..4 {
            for i in 0..=j {
                g.add_edge(i, j);
            }
        }
        assert_eq!(permanent(&g), 1);
    }

    #[test]
    fn block_diagonal_multiplies() {
        // Two disjoint complete blocks of sizes 2 and 3: 2! * 3! = 12.
        let mut g = DenseBigraph::new(5);
        for i in 0..2 {
            for j in 0..2 {
                g.add_edge(i, j);
            }
        }
        for i in 2..5 {
            for j in 2..5 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(permanent(&g), 12);
    }

    #[test]
    fn ryser_matches_naive_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..30 {
            let n = rng.gen_range(1..=7);
            let mut g = DenseBigraph::new(n);
            for i in 0..n {
                for j in 0..n {
                    if rng.gen_bool(0.55) {
                        g.add_edge(i, j);
                    }
                }
            }
            assert_eq!(
                permanent(&g),
                permanent_naive(&g),
                "trial {trial}, n={n}, graph={g:?}"
            );
        }
    }

    #[test]
    fn missing_row_gives_zero_fast() {
        let mut g = DenseBigraph::complete(6);
        g.clear_left(3);
        assert_eq!(permanent(&g), 0);
    }

    #[test]
    #[should_panic(expected = "permanent limited")]
    fn oversize_is_rejected() {
        let g = DenseBigraph::new(31);
        let _ = permanent(&g);
    }

    #[test]
    fn chunked_walk_matches_serial_across_thread_counts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        // n = 18 crosses PARALLEL_MIN_N, so the chunked path is
        // genuinely exercised.
        for n in [18usize, 19] {
            let rows: Vec<u64> = (0..n)
                .map(|i| {
                    let mut r = 1u64 << i; // keep feasible
                    for j in 0..n {
                        if rng.gen_bool(0.4) {
                            r |= 1 << j;
                        }
                    }
                    r
                })
                .collect();
            let serial = try_permanent_of_rows_with_threads(&rows, n, 1);
            for threads in 2..=8 {
                assert_eq!(
                    try_permanent_of_rows_with_threads(&rows, n, threads),
                    serial,
                    "n={n}, threads={threads}"
                );
            }
        }
    }

    #[test]
    fn mid_walk_seeding_is_consistent() {
        // Any split point of the walk must reproduce the full sum.
        let rows: Vec<u64> = vec![0b1011, 0b1110, 0b0111, 0b1101];
        let n = 4;
        let b0 = Budget::unlimited();
        let full = ryser_range(&rows, n, 1, 16, &b0).unwrap().unwrap();
        for split in 2..16 {
            let a = ryser_range(&rows, n, 1, split, &b0).unwrap().unwrap();
            let b = ryser_range(&rows, n, split, 16, &b0).unwrap().unwrap();
            assert_eq!(a + b, full, "split at {split}");
        }
    }

    #[test]
    fn budgeted_matches_legacy_across_thread_counts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for n in [12usize, 16, 18] {
            let rows: Vec<u64> = (0..n)
                .map(|i| {
                    let mut r = 1u64 << i;
                    for j in 0..n {
                        if rng.gen_bool(0.4) {
                            r |= 1 << j;
                        }
                    }
                    r
                })
                .collect();
            let legacy = try_permanent_of_rows_with_threads(&rows, n, 1);
            for threads in 1..=8 {
                let b = Budget::unlimited();
                assert_eq!(
                    try_permanent_of_rows_budgeted(&rows, n, threads, &b),
                    Ok(legacy),
                    "n={n}, threads={threads}"
                );
            }
        }
    }

    #[test]
    fn budgeted_zero_budget_trips_before_work() {
        let rows: Vec<u64> = (0..18).map(|i| (1u64 << i) | 1).collect();
        let b = Budget::with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            try_permanent_of_rows_budgeted(&rows, 18, 4, &b),
            Err(ExecError::BudgetExceeded { budget_ms: 0 })
        );
    }

    #[test]
    fn dense_overflow_near_the_cap_is_detected_not_wrapped() {
        // perm(J_27) = 27! fits u128 easily, but Ryser's signed
        // partial sums reach ~27^27 ≈ 4.4e38 > i128::MAX: the checked
        // path must report overflow instead of wrapping. The dense
        // overflow walk itself (~10^8 subsets, the expensive part)
        // now runs once in `exact::tests::
        // dense_overflow_is_a_structured_error_not_a_panic`, which
        // asserts the same `try_permanent` None through the audited
        // structured-error caller; here we keep the cheap half.

        // A sparse graph at the same size stays exact: identity plus
        // one extra diagonal has permanent 1 (staircase argument) —
        // actually identity + superdiagonal: count matchings = F(n+1)
        // style; just cross-check against a block-diagonal value we
        // can compute: 13 disjoint complete 2-blocks + 1 singleton
        // inside n = 27 gives 2^13.
        let mut g = DenseBigraph::new(27);
        for b in 0..13 {
            for i in 0..2 {
                for j in 0..2 {
                    g.add_edge(2 * b + i, 2 * b + j);
                }
            }
        }
        g.add_edge(26, 26);
        assert_eq!(permanent(&g), 1 << 13);
    }

    #[test]
    fn factorial_stays_exact_in_checked_range() {
        // perm(J_23): n = 23 is the first checked-arithmetic size;
        // 23! must come out exactly (no overflow for the running
        // partial sums of the complete graph at this n... if the
        // checked path reports overflow the assertion fails loudly
        // rather than silently wrapping).
        let n = 23;
        let rows = vec![mask(n); n];
        let fact: u128 = (1..=n as u128).product();
        match try_permanent_of_rows_with_threads(&rows, n, 2) {
            Some(v) => assert_eq!(v, fact),
            None => panic!("23! must not overflow i128"),
        }
    }
}

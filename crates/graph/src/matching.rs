//! Maximum bipartite matching (Hopcroft–Karp) on dense bigraphs.
//!
//! Used to (a) decide whether the mapping space admits a perfect
//! matching at all — the paper notes it may not (end of Section 2.3)
//! — and (b) seed the matching sampler when the identity matching is
//! inconsistent (α-compliant belief functions).

use crate::dense::DenseBigraph;
use crate::grouped::Matching;

const INF: u32 = u32::MAX;

/// Computes a maximum matching of `g` with Hopcroft–Karp
/// (`O(E sqrt(V))`).
/// # Examples
///
/// ```
/// use andi_graph::{hopcroft_karp, DenseBigraph};
///
/// let g = DenseBigraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 2)]);
/// let m = hopcroft_karp(&g);
/// assert!(m.is_perfect());
/// ```
pub fn hopcroft_karp(g: &DenseBigraph) -> Matching {
    let n = g.n();
    // pair_left[i] = matched right node + 1 (0 = free); likewise for
    // pair_right.
    let mut pair_left = vec![0usize; n];
    let mut pair_right = vec![0usize; n];
    let mut dist = vec![INF; n + 1];
    let mut queue = std::collections::VecDeque::new();

    loop {
        // BFS layering from free left vertices. Index 0 in `dist` is
        // the sentinel "nil" vertex; left vertex i maps to i + 1.
        queue.clear();
        for i in 0..n {
            if pair_left[i] == 0 {
                dist[i + 1] = 0;
                queue.push_back(i + 1);
            } else {
                dist[i + 1] = INF;
            }
        }
        dist[0] = INF;
        while let Some(u) = queue.pop_front() {
            if dist[u] < dist[0] {
                for y in g.neighbors(u - 1) {
                    let w = pair_right[y];
                    if dist[w] == INF {
                        dist[w] = dist[u] + 1;
                        if w != 0 {
                            queue.push_back(w);
                        }
                    }
                }
            }
        }
        if dist[0] == INF {
            break;
        }
        // DFS augmentation along the layering.
        for i in 0..n {
            if pair_left[i] == 0 {
                augment(g, i + 1, &mut pair_left, &mut pair_right, &mut dist);
            }
        }
    }

    Matching {
        left_partner: pair_left
            .iter()
            .map(|&p| if p == 0 { None } else { Some(p - 1) })
            .collect(),
        right_partner: pair_right
            .iter()
            .map(|&p| if p == 0 { None } else { Some(p - 1) })
            .collect(),
    }
}

fn augment(
    g: &DenseBigraph,
    u: usize,
    pair_left: &mut [usize],
    pair_right: &mut [usize],
    dist: &mut [u32],
) -> bool {
    if u == 0 {
        return true;
    }
    for y in g.neighbors(u - 1) {
        let w = pair_right[y];
        if dist[w] == dist[u].wrapping_add(1) && augment(g, w, pair_left, pair_right, dist) {
            pair_right[y] = u;
            pair_left[u - 1] = y + 1;
            return true;
        }
    }
    dist[u] = INF;
    false
}

/// Whether `g` admits a perfect matching.
pub fn has_perfect_matching(g: &DenseBigraph) -> bool {
    hopcroft_karp(g).is_perfect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_has_perfect_matching() {
        let g = DenseBigraph::complete(7);
        let m = hopcroft_karp(&g);
        assert!(m.is_perfect());
        // Every matched edge must exist.
        for (i, p) in m.left_partner.iter().enumerate() {
            assert!(g.has_edge(i, p.unwrap()));
        }
    }

    #[test]
    fn obstructed_graph_has_no_perfect_matching() {
        // Both 0' and 1' can only map to right 1 (the paper's
        // end-of-Section-2.3 example).
        let g = DenseBigraph::from_edges(2, &[(0, 1), (1, 1)]);
        assert!(!has_perfect_matching(&g));
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn staircase_has_unique_perfect_matching() {
        // Figure 6(a): i' -> {i, ..., 4}; unique perfect matching is
        // the identity.
        let mut edges = Vec::new();
        for i in 0..4usize {
            for y in 0..=i {
                edges.push((y, i)); // right i reachable from lefts 0..=i
            }
        }
        // Rebuild exactly per figure: 1'->1; 2'->{1,2}? The figure is
        // left 1'..4', right 1..4 with right j reachable from left
        // <= j. Identity forced.
        let g = DenseBigraph::from_edges(4, &edges);
        let m = hopcroft_karp(&g);
        assert!(m.is_perfect());
        assert_eq!(m.n_cracks(), 4, "the unique perfect matching cracks all");
    }

    #[test]
    fn matching_respects_edges() {
        let g = DenseBigraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 2)]);
        let m = hopcroft_karp(&g);
        assert!(m.is_perfect());
        for (i, p) in m.left_partner.iter().enumerate() {
            assert!(g.has_edge(i, p.unwrap()));
        }
        // right_partner is the inverse of left_partner.
        for (i, p) in m.left_partner.iter().enumerate() {
            assert_eq!(m.right_partner[p.unwrap()], Some(i));
        }
    }

    #[test]
    fn empty_graph_matches_nothing() {
        let g = DenseBigraph::new(4);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn large_word_boundary_graph() {
        let g = DenseBigraph::complete(130);
        assert!(has_perfect_matching(&g));
    }
}

//! Degree-1 propagation (Figure 7).
//!
//! When a node of the mapping-space graph has degree 1, its sole
//! incident edge appears in *every* perfect matching. The forced pair
//! can be removed from the graph, which lowers other nodes' degrees
//! and may cascade — in Figure 6(a), propagation collapses the whole
//! staircase to the identity matching. The paper prescribes running
//! this to fixpoint before computing O-estimates (after step 4(a) of
//! Figure 5) and bounds it by `O(v·e)`; this implementation keeps
//! incremental degree counters and a worklist, so the common case is
//! one degree sweep plus work proportional to the cascade.

use std::collections::VecDeque;

use crate::dense::DenseBigraph;

/// Result of running propagation to fixpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct Propagation {
    /// The reduced graph: forced nodes have empty rows/columns.
    pub graph: DenseBigraph,
    /// Forced pairs `(left, right)` in discovery order.
    pub forced: Vec<(usize, usize)>,
    /// Nodes discovered to have degree 0 (no perfect matching can
    /// exist): `(is_left_side, index)`.
    pub dead_nodes: Vec<(bool, usize)>,
    /// Number of propagation steps (forced pairs processed) plus one.
    pub rounds: usize,
}

impl Propagation {
    /// Forced pairs that are cracks, i.e. `(x, x)` edges: these items
    /// are identified with certainty by any consistent hacker.
    pub fn forced_cracks(&self) -> usize {
        self.forced.iter().filter(|&&(i, y)| i == y).count()
    }

    /// Whether propagation proves a perfect matching impossible.
    pub fn infeasible(&self) -> bool {
        !self.dead_nodes.is_empty()
    }
}

#[derive(Clone, Copy)]
enum Side {
    Left(usize),
    Right(usize),
}

/// Runs degree-1 propagation on (a copy of) `g` until fixpoint.
/// # Examples
///
/// ```
/// use andi_graph::{propagate, DenseBigraph};
///
/// // Figure 6(a): the staircase collapses to the identity.
/// let mut g = DenseBigraph::new(4);
/// for j in 0..4 {
///     for i in 0..=j {
///         g.add_edge(i, j);
///     }
/// }
/// let p = propagate(&g);
/// assert_eq!(p.forced_cracks(), 4);
/// ```
pub fn propagate(g: &DenseBigraph) -> Propagation {
    let mut graph = g.clone();
    propagate_in_place(&mut graph)
}

/// In-place variant of [`propagate`]; `graph` is left in its reduced
/// state and also cloned into the returned report.
pub fn propagate_in_place(graph: &mut DenseBigraph) -> Propagation {
    let n = graph.n();
    let mut left_deg = graph.left_degrees();
    let mut right_deg = graph.right_degrees();
    let mut left_settled = vec![false; n];
    let mut right_settled = vec![false; n];
    let mut forced = Vec::new();
    let mut dead = Vec::new();
    let mut queue: VecDeque<Side> = VecDeque::new();

    for i in 0..n {
        match left_deg[i] {
            0 => {
                dead.push((true, i));
                left_settled[i] = true;
            }
            1 => queue.push_back(Side::Left(i)),
            _ => {}
        }
    }
    for y in 0..n {
        match right_deg[y] {
            0 => {
                dead.push((false, y));
                right_settled[y] = true;
            }
            1 => queue.push_back(Side::Right(y)),
            _ => {}
        }
    }

    let mut steps = 0usize;
    while let Some(side) = queue.pop_front() {
        let (i, y) = match side {
            Side::Left(i) => {
                if left_settled[i] || left_deg[i] != 1 {
                    continue; // stale entry
                }
                let Some(y) = graph.unique_neighbor(i) else {
                    continue; // degree bookkeeping raced a removal
                };
                (i, y)
            }
            Side::Right(y) => {
                if right_settled[y] || right_deg[y] != 1 {
                    continue;
                }
                let Some(i) = (0..n).find(|&i| graph.has_edge(i, y)) else {
                    continue; // degree bookkeeping raced a removal
                };
                (i, y)
            }
        };
        steps += 1;
        forced.push((i, y));
        left_settled[i] = true;
        right_settled[y] = true;

        // Remove row i: decrement right degrees of its neighbors.
        let nbrs: Vec<usize> = graph.neighbors(i).collect();
        graph.clear_left(i);
        left_deg[i] = 0;
        for z in nbrs {
            if z == y || right_settled[z] {
                continue;
            }
            right_deg[z] -= 1;
            match right_deg[z] {
                0 => {
                    dead.push((false, z));
                    right_settled[z] = true;
                }
                1 => queue.push_back(Side::Right(z)),
                _ => {}
            }
        }
        // Remove column y: decrement left degrees of its users.
        for j in 0..n {
            if j == i || left_settled[j] || !graph.has_edge(j, y) {
                continue;
            }
            graph.remove_edge(j, y);
            left_deg[j] -= 1;
            match left_deg[j] {
                0 => {
                    dead.push((true, j));
                    left_settled[j] = true;
                }
                1 => queue.push_back(Side::Left(j)),
                _ => {}
            }
        }
        graph.clear_right(y);
        right_deg[y] = 0;
    }

    Propagation {
        graph: graph.clone(),
        forced,
        dead_nodes: dead,
        rounds: steps + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 6(a): right j reachable from lefts 0..=j; the cascade
    /// forces the identity.
    fn staircase() -> DenseBigraph {
        let mut g = DenseBigraph::new(4);
        for j in 0..4 {
            for i in 0..=j {
                g.add_edge(i, j);
            }
        }
        g
    }

    #[test]
    fn staircase_cascades_to_identity() {
        let p = propagate(&staircase());
        assert_eq!(p.forced.len(), 4);
        assert_eq!(p.forced_cracks(), 4, "all four items identified");
        assert!(!p.infeasible());
        assert_eq!(p.graph.n_edges(), 0);
    }

    #[test]
    fn complete_graph_is_a_fixpoint() {
        let g = DenseBigraph::complete(5);
        let p = propagate(&g);
        assert!(p.forced.is_empty());
        assert_eq!(p.rounds, 1);
        assert_eq!(p.graph.n_edges(), 25);
    }

    #[test]
    fn figure_6b_is_not_reduced_by_degree_1() {
        // Figure 6(b): 1'->{1,2}, 2'->{1,2,3}, 3'->{3,4}, 4'->{3,4}.
        // No degree-1 node exists, so Figure 7 leaves the irrelevant
        // edge (2', 3) in place — exactly the paper's point about the
        // O-estimate's residual inexactness.
        let g = DenseBigraph::from_edges(
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        );
        let p = propagate(&g);
        assert!(p.forced.is_empty());
        assert!(
            p.graph.has_edge(1, 2),
            "edge (2',3) survives degree-1 propagation"
        );
    }

    #[test]
    fn detects_dead_nodes() {
        // Right 0 unreachable.
        let g = DenseBigraph::from_edges(2, &[(0, 1), (1, 1)]);
        let p = propagate(&g);
        assert!(p.infeasible());
        assert!(p.dead_nodes.contains(&(false, 0)));
    }

    #[test]
    fn forced_noncrack_pairs_are_counted_separately() {
        // 0' can only map to 1, 1' can only map to 0: forced swaps,
        // zero cracks.
        let g = DenseBigraph::from_edges(2, &[(0, 1), (1, 0)]);
        let p = propagate(&g);
        assert_eq!(p.forced.len(), 2);
        assert_eq!(p.forced_cracks(), 0);
    }

    #[test]
    fn partial_cascade_leaves_a_core() {
        // Items 0..2 form a staircase; items 3..5 a complete block.
        let mut g = DenseBigraph::new(6);
        for j in 0..3 {
            for i in 0..=j {
                g.add_edge(i, j);
            }
        }
        for i in 3..6 {
            for j in 3..6 {
                g.add_edge(i, j);
            }
        }
        let p = propagate(&g);
        assert_eq!(p.forced_cracks(), 3);
        assert_eq!(p.graph.n_edges(), 9, "the complete block is untouched");
    }

    #[test]
    fn cascade_triggered_by_right_side() {
        // Left degrees all >= 2, but right 2 has a single incoming
        // edge: forcing it strands left 1 onto right 1, cascading.
        let g = DenseBigraph::from_edges(3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 1)]);
        let p = propagate(&g);
        // (1,2) forced, then left 1 gone; rights 0,1 shared by 0,2.
        assert!(p.forced.contains(&(1, 2)));
        assert!(!p.infeasible());
    }

    #[test]
    fn propagation_preserves_matching_count() {
        use crate::permanent::permanent;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Forced edges belong to every perfect matching, so restoring
        // them into the reduced graph must reproduce the original
        // permanent exactly.
        let mut rng = StdRng::seed_from_u64(51);
        for trial in 0..60 {
            let n = rng.gen_range(2..=7);
            let mut g = DenseBigraph::new(n);
            for i in 0..n {
                for j in 0..n {
                    if rng.gen_bool(0.4) {
                        g.add_edge(i, j);
                    }
                }
            }
            let before = permanent(&g);
            let p = propagate(&g);
            if p.infeasible() {
                assert_eq!(before, 0, "trial {trial}: dead node implies no matching");
                continue;
            }
            let mut restored = p.graph.clone();
            for &(i, y) in &p.forced {
                restored.add_edge(i, y);
            }
            assert_eq!(permanent(&restored), before, "trial {trial}");
        }
    }
}

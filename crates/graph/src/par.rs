//! Deterministic parallel execution layer.
//!
//! Every estimator in this workspace that fans out over independent
//! subproblems — recipe mask runs, Ryser subset chunks, sampler
//! shards — goes through [`map_indexed`]: a scoped pool over the
//! vendored `crossbeam::thread::scope` with a shared self-scheduling
//! task queue (work-stealing-style dynamic load balancing: idle
//! workers pull the next unclaimed index, so uneven task costs never
//! leave a core idle).
//!
//! # Determinism contract
//!
//! `map_indexed(threads, n, f)` returns exactly
//! `(0..n).map(f).collect()` — same values, same order — for *every*
//! `threads` value, provided `f(i)` depends only on `i`. Callers
//! then reduce the returned vector in index order, so floating-point
//! accumulation order is fixed and results are bit-identical at any
//! thread count (including the serial `threads == 1` fallback, which
//! never spawns).
//!
//! # Thread-count resolution
//!
//! [`available_threads`] resolves the ambient parallelism: the
//! `ANDI_THREADS` environment variable when set (values `0` and `1`
//! both mean serial), otherwise `std::thread::available_parallelism`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "ANDI_THREADS";

/// Resolves the ambient thread count: `ANDI_THREADS` when set (and
/// parseable), otherwise the machine's available parallelism. Always
/// at least 1.
pub fn available_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `0..n_tasks` on up to `threads` workers and returns
/// the results in index order (see the module docs for the
/// determinism contract). `threads <= 1` (or fewer than two tasks)
/// runs serially on the calling thread without spawning.
pub fn map_indexed<T, F>(threads: usize, n_tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n_tasks <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    let workers = threads.min(n_tasks);
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n_tasks);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move |_| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            return local;
                        }
                        local.push((i, f(i)));
                    }
                })
            })
            .collect();
        for h in handles {
            // andi::allow(lib-unwrap) — join fails only if the worker panicked; re-raising the panic is intended
            tagged.extend(h.join().expect("parallel worker panicked"));
        }
    })
    // andi::allow(lib-unwrap) — scope errs only if a worker panicked, and every join above already re-raised
    .expect("parallel scope panicked");
    debug_assert_eq!(tagged.len(), n_tasks);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

/// Splits the half-open range `[0, total)` into at most `max_chunks`
/// contiguous chunks of near-equal size (first chunks one longer when
/// `total` does not divide evenly). Chunk boundaries depend only on
/// `total` and `max_chunks`, never on the thread count.
pub fn chunk_ranges(total: u64, max_chunks: usize) -> Vec<(u64, u64)> {
    if total == 0 {
        return Vec::new();
    }
    let chunks = (max_chunks.max(1) as u64).min(total);
    let base = total / chunks;
    let extra = total % chunks;
    let mut out = Vec::with_capacity(chunks as usize);
    let mut start = 0u64;
    for c in 0..chunks {
        let len = base + u64::from(c < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_matches_serial_at_every_thread_count() {
        let serial: Vec<u64> = (0..37).map(|i| (i as u64) * 3 + 1).collect();
        for threads in 1..=8 {
            let par = map_indexed(threads, 37, |i| (i as u64) * 3 + 1);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single() {
        assert_eq!(map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn map_indexed_balances_uneven_tasks() {
        // Tasks with wildly different costs still produce ordered
        // results.
        let out = map_indexed(4, 16, |i| {
            let spins = if i % 4 == 0 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (k, &(i, _)) in out.iter().enumerate() {
            assert_eq!(k, i);
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for total in [0u64, 1, 7, 64, 1 << 20] {
            for chunks in [1usize, 2, 3, 8, 64] {
                let ranges = chunk_ranges(total, chunks);
                let mut expected = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, expected);
                    assert!(e > s);
                    expected = e;
                }
                assert_eq!(expected, total);
                assert!(ranges.len() <= chunks.max(1));
            }
        }
    }

    #[test]
    fn env_override_is_respected() {
        // Serial resolution path only: parsing, not the live env
        // (tests must not mutate process-global state).
        assert!(available_threads() >= 1);
    }
}

//! Deterministic parallel execution layer.
//!
//! Every estimator in this workspace that fans out over independent
//! subproblems — recipe mask runs, Ryser subset chunks, sampler
//! shards — goes through [`map_indexed`]: a scoped pool over the
//! vendored `crossbeam::thread::scope` with a shared self-scheduling
//! task queue (work-stealing-style dynamic load balancing: idle
//! workers pull the next unclaimed index, so uneven task costs never
//! leave a core idle).
//!
//! # Determinism contract
//!
//! `map_indexed(threads, n, f)` returns exactly
//! `(0..n).map(f).collect()` — same values, same order — for *every*
//! `threads` value, provided `f(i)` depends only on `i`. Callers
//! then reduce the returned vector in index order, so floating-point
//! accumulation order is fixed and results are bit-identical at any
//! thread count (including the serial `threads == 1` fallback, which
//! never spawns).
//!
//! # Thread-count resolution
//!
//! [`available_threads`] resolves the ambient parallelism: the
//! `ANDI_THREADS` environment variable when set (values `0` and `1`
//! both mean serial), otherwise `std::thread::available_parallelism`.
//! An unparseable override is rejected with a one-time warning, not
//! silently ignored.
//!
//! # Budgets, cancellation, and fault isolation
//!
//! [`Budget`] carries an optional wall-clock deadline plus an
//! optional [`CancelToken`]; [`Budget::check`] is the single poll
//! primitive every hot loop in the workspace calls (Gray-code strides
//! in `permanent`, swap strides and epoch boundaries in `sampler`,
//! per mask run in the recipe, and between tasks here). A trip
//! surfaces as a structured [`ExecError`] instead of a hang.
//!
//! [`try_map_indexed`] is the fault-isolated sibling of
//! [`map_indexed`]: each task runs under `catch_unwind`, the pool
//! drains cleanly, and a panicking task becomes
//! [`ExecError::WorkerPanic`] carrying the *lowest* panicking task
//! index — the same index a serial run would hit first — so the
//! reported error is bit-identical at every thread count whenever the
//! set of panicking tasks depends only on the task index (the
//! [`crate::faults`] injection discipline guarantees exactly that).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "ANDI_THREADS";

/// Resolves the ambient thread count: `ANDI_THREADS` when set (and
/// parseable), otherwise the machine's available parallelism. Always
/// at least 1. An unparseable `ANDI_THREADS` value falls back to
/// machine parallelism with a one-time `stderr` warning naming the
/// variable and the fallback (a silent fallback once masked typos
/// like `ANDI_THREADS=four` in CI matrices).
pub fn available_threads() -> usize {
    let ambient = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match std::env::var(THREADS_ENV) {
        Ok(v) => resolve_threads(Some(&v), ambient),
        Err(_) => ambient,
    }
}

/// Pure resolution of an `ANDI_THREADS` override against the ambient
/// machine parallelism (separated from the env read so the policy is
/// unit-testable without mutating process-global state). Garbage
/// values warn once and fall back to `ambient`.
fn resolve_threads(override_value: Option<&str>, ambient: usize) -> usize {
    match override_value {
        None => ambient,
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                warn_bad_threads(v, ambient);
                ambient
            }
        },
    }
}

/// One-time warning for an unparseable `ANDI_THREADS` value.
fn warn_bad_threads(value: &str, fallback: usize) {
    static WARNED: Once = Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "warning: {THREADS_ENV}={value:?} is not a valid thread count; \
             falling back to machine parallelism ({fallback})"
        );
    });
}

/// Cooperative cancellation flag, shared by cloning. Fire
/// [`CancelToken::cancel`] from any thread; every in-flight budgeted
/// computation polling a [`Budget`] built with this token stops at
/// its next poll point with [`ExecError::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; the flag latches.
    pub fn cancel(&self) {
        self.inner.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.load(Ordering::Relaxed)
    }
}

/// A wall-clock deadline plus an optional [`CancelToken`], polled
/// cooperatively via [`Budget::check`].
///
/// Both trips are *sticky*: once the deadline has passed or the token
/// has fired, every later poll reports the same structured error, so
/// early and late polls of the same budget can never disagree about
/// the outcome.
#[derive(Clone, Debug)]
pub struct Budget {
    start: Instant,
    deadline: Option<Instant>,
    limit_ms: Option<u64>,
    token: Option<CancelToken>,
}

impl Budget {
    /// A budget that never trips on its own (no deadline, no token).
    pub fn unlimited() -> Self {
        Budget {
            start: Instant::now(),
            deadline: None,
            limit_ms: None,
            token: None,
        }
    }

    /// A budget whose deadline is `limit` from now.
    pub fn with_deadline(limit: Duration) -> Self {
        let start = Instant::now();
        Budget {
            start,
            deadline: Some(start + limit),
            limit_ms: Some(limit.as_millis().min(u128::from(u64::MAX)) as u64),
            token: None,
        }
    }

    /// Attaches a cancellation token (builder style).
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// The same budget with the deadline dropped but the token kept:
    /// the recipe runs its cheap polynomial tail under this, so a
    /// degraded answer is still produced after the deadline killed
    /// the expensive estimator rungs, while cancellation keeps
    /// working everywhere.
    pub fn cancel_only(&self) -> Budget {
        Budget {
            start: self.start,
            deadline: None,
            limit_ms: None,
            token: self.token.clone(),
        }
    }

    /// The configured wall-clock limit in milliseconds, if any.
    pub fn limit_ms(&self) -> Option<u64> {
        self.limit_ms
    }

    /// Milliseconds left before the deadline, saturating at zero once
    /// the deadline has passed (including under clock skew past it —
    /// `Instant` arithmetic here never panics and never goes
    /// negative). `None` when the budget has no deadline.
    ///
    /// This is the admission-control primitive: `andi-serve` turns a
    /// queued request's remaining allowance into its shed decision
    /// and `Retry-After` hint without ever reading a clock itself.
    pub fn remaining_ms(&self) -> Option<u64> {
        let deadline = self.deadline?;
        // `saturating_duration_since` returns zero when `now` is at
        // or past the deadline, so expiry can never underflow.
        let left = deadline.saturating_duration_since(Instant::now());
        Some(left.as_millis().min(u128::from(u64::MAX)) as u64)
    }

    /// Wall-clock time elapsed since this budget was created.
    pub fn spent(&self) -> Duration {
        Instant::now().duration_since(self.start)
    }

    /// Polls the budget: cancellation first, then the deadline.
    ///
    /// # Errors
    ///
    /// [`ExecError::Cancelled`] if the token has fired,
    /// [`ExecError::BudgetExceeded`] if the deadline has passed.
    pub fn check(&self) -> Result<(), ExecError> {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Err(ExecError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(ExecError::BudgetExceeded {
                    budget_ms: self.limit_ms.unwrap_or(0),
                });
            }
        }
        Ok(())
    }
}

/// Structured failure of a budgeted parallel computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A [`CancelToken`] fired; the computation stopped at its next
    /// poll point.
    Cancelled,
    /// The wall-clock deadline passed before the computation
    /// finished.
    BudgetExceeded {
        /// The configured limit, for reporting (0 when unknown).
        budget_ms: u64,
    },
    /// A worker task panicked; the pool was drained cleanly and the
    /// panic converted into a value instead of aborting the process.
    WorkerPanic {
        /// The lowest panicking task index (equal to the index a
        /// serial run would hit first).
        task: usize,
        /// The panic payload, when it was a string.
        payload: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Cancelled => write!(f, "computation cancelled"),
            ExecError::BudgetExceeded { budget_ms } => {
                write!(f, "wall-clock budget of {budget_ms} ms exceeded")
            }
            ExecError::WorkerPanic { task, payload } => {
                write!(f, "worker task {task} panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Renders a caught panic payload.
fn payload_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-isolated, budgeted [`map_indexed`]: maps `f` over
/// `0..n_tasks`, polling `budget` between tasks and catching task
/// panics instead of aborting.
///
/// On success the result equals `(0..n_tasks).map(f).collect()`
/// exactly like [`map_indexed`]. On failure the error is structured
/// and *deterministic* under the same preconditions:
///
/// * budget/cancel trips are sticky, so whichever poll observes them
///   reports the same [`ExecError`] value at any thread count;
/// * a panic reports the lowest panicking task index (workers skip
///   indices above the current minimum and drain), which equals the
///   first index a serial run would panic at whenever panicking is a
///   function of the task index alone.
///
/// Error precedence when several conditions hold at drain time:
/// `Cancelled` over `BudgetExceeded` over `WorkerPanic`.
///
/// # Errors
///
/// See [`ExecError`].
pub fn try_map_indexed<T, F>(
    threads: usize,
    n_tasks: usize,
    budget: &Budget,
    f: F,
) -> Result<Vec<T>, ExecError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    budget.check()?;
    if threads <= 1 || n_tasks <= 1 {
        let mut out = Vec::with_capacity(n_tasks);
        let mut panicked: Option<(usize, String)> = None;
        for i in 0..n_tasks {
            budget.check()?;
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => out.push(v),
                Err(p) => {
                    panicked = Some((i, payload_text(p)));
                    break;
                }
            }
        }
        budget.check()?;
        if let Some((task, payload)) = panicked {
            return Err(ExecError::WorkerPanic { task, payload });
        }
        return Ok(out);
    }

    let workers = threads.min(n_tasks);
    let next = AtomicUsize::new(0);
    let min_panic = AtomicUsize::new(usize::MAX);
    let payloads: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n_tasks);
    let scope_ok = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let min_panic = &min_panic;
                let payloads = &payloads;
                let f = &f;
                scope.spawn(move |_| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        if budget.check().is_err() {
                            return local;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            return local;
                        }
                        // Indices above the lowest known panic cannot
                        // change the reported error; skip them so the
                        // pool drains fast. Indices below it must
                        // still run — one of them may panic with a
                        // smaller index, and the minimum over all
                        // executed tasks is what makes the report
                        // thread-count-independent.
                        if i >= min_panic.load(Ordering::Relaxed) {
                            continue;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(v) => local.push((i, v)),
                            Err(p) => {
                                min_panic.fetch_min(i, Ordering::Relaxed);
                                let mut sink = payloads.lock().unwrap_or_else(|e| e.into_inner());
                                sink.push((i, payload_text(p)));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            if let Ok(part) = h.join() {
                tagged.extend(part);
            } else {
                // Only reachable if a panic escapes catch_unwind
                // (e.g. a panicking payload Drop); report it rather
                // than unwinding through the caller.
                min_panic.fetch_min(0, Ordering::Relaxed);
            }
        }
    })
    .is_ok();

    budget.check()?;
    let mp = min_panic.load(Ordering::Relaxed);
    if mp != usize::MAX {
        let sink = payloads.lock().unwrap_or_else(|e| e.into_inner());
        let payload = sink
            .iter()
            .find(|(i, _)| *i == mp)
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| "worker pool failure".to_string());
        return Err(ExecError::WorkerPanic { task: mp, payload });
    }
    if !scope_ok {
        return Err(ExecError::WorkerPanic {
            task: 0,
            payload: "worker pool failure".to_string(),
        });
    }
    debug_assert_eq!(tagged.len(), n_tasks);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    Ok(tagged.into_iter().map(|(_, v)| v).collect())
}

/// Maps `f` over `0..n_tasks` on up to `threads` workers and returns
/// the results in index order (see the module docs for the
/// determinism contract). `threads <= 1` (or fewer than two tasks)
/// runs serially on the calling thread without spawning.
pub fn map_indexed<T, F>(threads: usize, n_tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n_tasks <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    let workers = threads.min(n_tasks);
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n_tasks);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move |_| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            return local;
                        }
                        local.push((i, f(i)));
                    }
                })
            })
            .collect();
        for h in handles {
            // andi::allow(lib-unwrap) — join fails only if the worker panicked; re-raising the panic is intended
            tagged.extend(h.join().expect("parallel worker panicked"));
        }
    })
    // andi::allow(lib-unwrap) — scope errs only if a worker panicked, and every join above already re-raised
    .expect("parallel scope panicked");
    debug_assert_eq!(tagged.len(), n_tasks);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

/// Spawns a named, long-lived service thread.
///
/// Estimator fan-out must go through [`map_indexed`] /
/// [`try_map_indexed`] — that is what makes results thread-count
/// invariant. Long-running *service* threads (a server's accept
/// loop, its request workers, a connection watcher) are a different
/// animal: they never touch result values, they only move requests
/// around, and they live until their subsystem shuts down. This is
/// the one sanctioned way to create them, so the
/// `thread-spawn-outside-par` invariant ("all threading goes through
/// `andi_graph::par`") keeps holding for the service layer too.
///
/// The thread name shows up in panic messages and debuggers.
///
/// # Errors
///
/// Propagates the OS spawn failure (thread limit, out of memory)
/// instead of panicking, so a service under resource pressure can
/// shed load structurally.
pub fn spawn_worker<T, F>(name: &str, f: F) -> std::io::Result<WorkerHandle<T>>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    std::thread::Builder::new().name(name.to_string()).spawn(f)
}

/// Join handle for a [`spawn_worker`] service thread, re-exported so
/// service crates can store handles without naming `std::thread`
/// themselves.
pub type WorkerHandle<T> = std::thread::JoinHandle<T>;

/// Parks the calling thread for `ms` milliseconds. Service loops
/// (the accept poll, the disconnect watcher) use this instead of
/// `std::thread::sleep` directly so all timing primitives outside
/// `crates/bench` live in this module.
pub fn sleep_ms(ms: u64) {
    std::thread::sleep(Duration::from_millis(ms));
}

/// Splits the half-open range `[0, total)` into at most `max_chunks`
/// contiguous chunks of near-equal size (first chunks one longer when
/// `total` does not divide evenly). Chunk boundaries depend only on
/// `total` and `max_chunks`, never on the thread count.
pub fn chunk_ranges(total: u64, max_chunks: usize) -> Vec<(u64, u64)> {
    if total == 0 {
        return Vec::new();
    }
    let chunks = (max_chunks.max(1) as u64).min(total);
    let base = total / chunks;
    let extra = total % chunks;
    let mut out = Vec::with_capacity(chunks as usize);
    let mut start = 0u64;
    for c in 0..chunks {
        let len = base + u64::from(c < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_matches_serial_at_every_thread_count() {
        let serial: Vec<u64> = (0..37).map(|i| (i as u64) * 3 + 1).collect();
        for threads in 1..=8 {
            let par = map_indexed(threads, 37, |i| (i as u64) * 3 + 1);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single() {
        assert_eq!(map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn map_indexed_balances_uneven_tasks() {
        // Tasks with wildly different costs still produce ordered
        // results.
        let out = map_indexed(4, 16, |i| {
            let spins = if i % 4 == 0 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (k, &(i, _)) in out.iter().enumerate() {
            assert_eq!(k, i);
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for total in [0u64, 1, 7, 64, 1 << 20] {
            for chunks in [1usize, 2, 3, 8, 64] {
                let ranges = chunk_ranges(total, chunks);
                let mut expected = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, expected);
                    assert!(e > s);
                    expected = e;
                }
                assert_eq!(expected, total);
                assert!(ranges.len() <= chunks.max(1));
            }
        }
    }

    #[test]
    fn remaining_ms_is_none_without_deadline() {
        assert_eq!(Budget::unlimited().remaining_ms(), None);
        let token = CancelToken::new();
        assert_eq!(Budget::unlimited().with_token(token).remaining_ms(), None);
    }

    #[test]
    fn remaining_ms_counts_down_and_saturates_at_expiry() {
        let b = Budget::with_deadline(Duration::from_millis(50));
        let first = b.remaining_ms().expect("deadline is set");
        assert!(first <= 50, "cannot exceed the configured limit");
        std::thread::sleep(Duration::from_millis(60));
        // Past the deadline: saturates at zero, never panics or
        // underflows, and stays pinned there on every later poll.
        assert_eq!(b.remaining_ms(), Some(0));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(b.remaining_ms(), Some(0));
        assert!(b.check().is_err(), "an expired budget trips its poll");
    }

    #[test]
    fn remaining_ms_at_the_deadline_boundary_is_consistent_with_check() {
        // A zero-length deadline is expired from the first poll on:
        // remaining_ms reads zero and check() trips, never disagreeing.
        let b = Budget::with_deadline(Duration::from_millis(0));
        assert_eq!(b.remaining_ms(), Some(0));
        assert!(matches!(
            b.check(),
            Err(ExecError::BudgetExceeded { budget_ms: 0 })
        ));
    }

    #[test]
    fn spawn_worker_runs_named_and_joins() {
        let h = spawn_worker("par-test-worker", || 41 + 1).expect("spawn");
        assert_eq!(h.join().expect("worker must not panic"), 42);
    }

    #[test]
    fn env_override_is_respected() {
        // Serial resolution path only: parsing, not the live env
        // (tests must not mutate process-global state).
        assert!(available_threads() >= 1);
    }
}

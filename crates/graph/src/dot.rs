//! Graphviz DOT export of mapping-space graphs.
//!
//! Small domains are best understood by looking at them — the
//! paper's Figure 3 is exactly such a drawing. [`to_dot`] renders
//! the bipartite graph with anonymized items on the left, original
//! items on the right, crack edges `(x', x)` highlighted, and
//! optional forced-pair emphasis from a propagation result.

use crate::dense::DenseBigraph;
use crate::propagate::Propagation;

/// Rendering options.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// A title rendered as a graph label.
    pub title: Option<String>,
    /// Highlight forced pairs from a propagation run.
    pub forced: Option<Vec<(usize, usize)>>,
}

impl DotOptions {
    /// Convenience: options highlighting a propagation's forced
    /// pairs.
    pub fn with_propagation(prop: &Propagation) -> Self {
        DotOptions {
            title: None,
            forced: Some(prop.forced.clone()),
        }
    }
}

/// Renders the bipartite graph in DOT format.
///
/// Left nodes are written `a<i>` (labelled `i'`), right nodes `o<y>`.
/// Crack edges are drawn bold; forced pairs (when given) red.
pub fn to_dot(graph: &DenseBigraph, options: &DotOptions) -> String {
    let n = graph.n();
    let mut out = String::from("graph mapping_space {\n  rankdir=LR;\n");
    if let Some(title) = &options.title {
        out.push_str(&format!("  label=\"{}\";\n", title.replace('"', "\\\"")));
    }
    out.push_str("  subgraph cluster_anon {\n    label=\"anonymized (J)\";\n");
    for i in 0..n {
        out.push_str(&format!("    a{i} [label=\"{i}'\", shape=box];\n"));
    }
    out.push_str("  }\n  subgraph cluster_orig {\n    label=\"original (I)\";\n");
    for y in 0..n {
        out.push_str(&format!("    o{y} [label=\"{y}\", shape=ellipse];\n"));
    }
    out.push_str("  }\n");

    let forced = options.forced.as_deref().unwrap_or(&[]);
    for i in 0..n {
        for y in graph.neighbors(i) {
            let mut attrs: Vec<&str> = Vec::new();
            if i == y {
                attrs.push("style=bold");
            }
            if forced.contains(&(i, y)) {
                attrs.push("color=red");
            }
            if attrs.is_empty() {
                out.push_str(&format!("  a{i} -- o{y};\n"));
            } else {
                out.push_str(&format!("  a{i} -- o{y} [{}];\n", attrs.join(", ")));
            }
        }
    }
    // Forced pairs whose edges were consumed by propagation still
    // deserve rendering.
    for &(i, y) in forced {
        if !graph.has_edge(i, y) {
            out.push_str(&format!("  a{i} -- o{y} [color=red, style=dashed];\n"));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::propagate;

    #[test]
    fn renders_nodes_and_edges() {
        let g = DenseBigraph::from_edges(3, &[(0, 0), (0, 1), (2, 2)]);
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("graph mapping_space {"));
        assert!(dot.contains("a0 [label=\"0'\""));
        assert!(dot.contains("o2 [label=\"2\""));
        assert!(dot.contains("a0 -- o1;"));
        // Crack edges are bold.
        assert!(dot.contains("a0 -- o0 [style=bold];"));
        assert!(dot.contains("a2 -- o2 [style=bold];"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn titles_are_escaped() {
        let g = DenseBigraph::new(1);
        let dot = to_dot(
            &g,
            &DotOptions {
                title: Some("say \"hi\"".into()),
                forced: None,
            },
        );
        assert!(dot.contains("label=\"say \\\"hi\\\"\""));
    }

    #[test]
    fn forced_pairs_are_red_even_after_removal() {
        // Staircase: propagation clears everything; forced pairs
        // render dashed red.
        let mut g = DenseBigraph::new(3);
        for j in 0..3 {
            for i in 0..=j {
                g.add_edge(i, j);
            }
        }
        let p = propagate(&g);
        let dot = to_dot(&p.graph, &DotOptions::with_propagation(&p));
        assert!(dot.contains("color=red"));
        assert!(dot.contains("style=dashed"));
    }
}

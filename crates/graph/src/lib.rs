//! # andi-graph — bipartite crack-mapping machinery
//!
//! The paper's second analysis level (Section 8.1): given *any*
//! bipartite graph `G = (J ∪ I, E)` of consistent crack mappings —
//! however it was constructed — estimate how many anonymized items a
//! hacker cracks with a uniformly random perfect matching. This crate
//! is belief-function-agnostic; `andi-core` builds the graphs.
//!
//! * [`DenseBigraph`] — bitset adjacency; O(1) edge tests, popcount
//!   degrees.
//! * [`GroupedBigraph`] — the interval-structured form: frequency
//!   groups plus one contiguous group range per item; outdegrees via
//!   prefix sums (the `O(|D| + n log n)` path of Figure 5).
//! * [`matching`] — Hopcroft–Karp maximum matching.
//! * [`mod@permanent`] / [`exact`] — Ryser permanents and the exact
//!   Section 4.1 expectation/distribution, for ground truth on small
//!   domains.
//! * [`mod@propagate`] — the Figure 7 degree-1 propagation.
//! * [`sampler`] — the Section 7.1 swap-walk MCMC over consistent
//!   matchings.
//! * [`par`] — the deterministic work-stealing execution layer the
//!   permanent, sampler and (via `andi-core`) recipe hot paths fan
//!   out on, plus the [`par::Budget`]/[`par::CancelToken`] layer that
//!   makes every budgeted entry point deadline-bounded, cancellable,
//!   and panic-isolated.
//! * [`faults`] — the deterministic seeded fault-injection harness
//!   behind the chaos suite (`ANDI_FAULTS` schedules, named probe
//!   points inside the budgeted hot paths).

#![forbid(unsafe_code)]

pub mod convex;
pub mod dense;
pub mod dot;
pub mod exact;
pub mod faults;
pub mod grouped;
pub mod matching;
pub mod par;
pub mod permanent;
pub mod propagate;
pub mod sampler;

pub use convex::{expected_cracks_convex, ConvexError, ConvexExact, DEFAULT_STATE_BUDGET};
pub use dense::DenseBigraph;
pub use dot::{to_dot, DotOptions};
pub use exact::{
    crack_distribution, crack_probabilities, crack_probabilities_budgeted, expected_cracks,
    try_expected_cracks, try_expected_cracks_with_threads, ExactError,
};
pub use faults::{FaultMode, FaultSchedule, FAULTS_ENV};
pub use grouped::{support_window, BeliefGroup, FrequencyScaffold, GroupedBigraph, Matching};
pub use matching::{has_perfect_matching, hopcroft_karp};
pub use par::{try_map_indexed, Budget, CancelToken, ExecError};
pub use permanent::{
    permanent, permanent_of_rows, try_permanent, try_permanent_of_rows,
    try_permanent_of_rows_budgeted, MAX_PERMANENT_N,
};
pub use propagate::{propagate, Propagation};
pub use sampler::{
    sample_crack_probabilities_budgeted, sample_cracks, sample_cracks_budgeted,
    sample_cracks_sharded, sample_cracks_with_threads, CrackSamples, EdgeOracle, SamplerConfig,
    SamplerError,
};

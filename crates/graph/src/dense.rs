//! Dense bitset bipartite graphs.
//!
//! The space of consistent crack mappings is a bipartite graph
//! `G = (J ∪ I, E)` (Section 2.3): left nodes are anonymized items,
//! right nodes are original items, and the edge `(x', y)` says the
//! hacker may map `x'` to `y`. We store adjacency as one bitset row
//! per left node, which makes edge tests O(1), degree computations
//! popcounts, and the Ryser permanent's column masks free.
//!
//! Indexing convention used throughout the crate: the graph is
//! *aligned*, i.e. left index `i` is the anonymized counterpart of
//! right index `i`. A crack is then simply a matching edge `(i, i)`.
//! The core crate aligns real anonymization permutations before
//! building graphs.

/// A dense bipartite graph with `n` left and `n` right nodes.
/// # Examples
///
/// ```
/// use andi_graph::DenseBigraph;
///
/// let mut g = DenseBigraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 1);
/// assert!(g.has_edge(0, 1));
/// assert_eq!(g.right_degree(1), 2); // the paper's O_x for item 1
/// assert_eq!(g.n_edges(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DenseBigraph {
    n: usize,
    words_per_row: usize,
    /// Row-major bitsets: bit `y` of row `i` is edge `(i, y)`.
    rows: Vec<u64>,
}

impl DenseBigraph {
    /// Creates an edgeless graph on `n + n` nodes.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        DenseBigraph {
            n,
            words_per_row,
            rows: vec![0; words_per_row * n],
        }
    }

    /// Creates the complete bipartite graph (the ignorant belief
    /// function's mapping space, Section 3.1).
    pub fn complete(n: usize) -> Self {
        let mut g = DenseBigraph::new(n);
        for i in 0..n {
            let row = g.row_mut(i);
            for (w, word) in row.iter_mut().enumerate() {
                let base = w * 64;
                let bits = n.saturating_sub(base).min(64);
                *word = if bits == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
            }
        }
        g
    }

    /// Builds a graph from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = DenseBigraph::new(n);
        for &(i, y) in edges {
            g.add_edge(i, y);
        }
        g
    }

    /// Number of nodes per side.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn row(&self, i: usize) -> &[u64] {
        &self.rows[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    #[inline]
    fn row_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.rows[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Adds edge `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, left: usize, right: usize) {
        assert!(
            left < self.n && right < self.n,
            "edge endpoint out of range"
        );
        self.row_mut(left)[right / 64] |= 1u64 << (right % 64);
    }

    /// Removes edge `(left, right)` if present.
    #[inline]
    pub fn remove_edge(&mut self, left: usize, right: usize) {
        assert!(
            left < self.n && right < self.n,
            "edge endpoint out of range"
        );
        self.row_mut(left)[right / 64] &= !(1u64 << (right % 64));
    }

    /// Whether edge `(left, right)` exists.
    #[inline]
    pub fn has_edge(&self, left: usize, right: usize) -> bool {
        self.row(left)[right / 64] & (1u64 << (right % 64)) != 0
    }

    /// Degree of a left node (number of right candidates of an
    /// anonymized item).
    pub fn left_degree(&self, left: usize) -> usize {
        self.row(left).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Degree of a right node: the paper's `O_x`, the number of
    /// anonymized items that can map to original item `x`.
    pub fn right_degree(&self, right: usize) -> usize {
        let word = right / 64;
        let bit = 1u64 << (right % 64);
        (0..self.n)
            .filter(|&i| self.rows[i * self.words_per_row + word] & bit != 0)
            .count()
    }

    /// All right degrees in one pass (column popcounts).
    pub fn right_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for i in 0..self.n {
            for (w, &word) in self.row(i).iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    deg[w * 64 + b] += 1;
                    bits &= bits - 1;
                }
            }
        }
        deg
    }

    /// All left degrees.
    pub fn left_degrees(&self) -> Vec<usize> {
        (0..self.n).map(|i| self.left_degree(i)).collect()
    }

    /// Total edge count.
    pub fn n_edges(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the right neighbors of a left node.
    pub fn neighbors(&self, left: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(left)
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| BitIter { word, base: w * 64 })
    }

    /// The sole neighbor of a left node, if its degree is exactly 1.
    pub fn unique_neighbor(&self, left: usize) -> Option<usize> {
        let mut found = None;
        for y in self.neighbors(left) {
            if found.is_some() {
                return None;
            }
            found = Some(y);
        }
        found
    }

    /// Clears an entire left row.
    pub fn clear_left(&mut self, left: usize) {
        self.row_mut(left).fill(0);
    }

    /// Clears an entire right column.
    pub fn clear_right(&mut self, right: usize) {
        let word = right / 64;
        let mask = !(1u64 << (right % 64));
        for i in 0..self.n {
            self.rows[i * self.words_per_row + word] &= mask;
        }
    }

    /// The adjacency row of `left` as a raw bitmask word slice
    /// (used by the permanent and matching algorithms).
    #[inline]
    pub fn row_words(&self, left: usize) -> &[u64] {
        self.row(left)
    }
}

impl std::fmt::Debug for DenseBigraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DenseBigraph(n={})", self.n)?;
        for i in 0..self.n {
            let nbrs: Vec<usize> = self.neighbors(i).collect();
            writeln!(f, "  {i}' -> {nbrs:?}")?;
        }
        Ok(())
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_has_all_edges() {
        let g = DenseBigraph::complete(70); // crosses a word boundary
        assert_eq!(g.n_edges(), 70 * 70);
        assert!(g.has_edge(0, 69));
        assert!(g.has_edge(69, 0));
        assert_eq!(g.left_degree(5), 70);
        assert_eq!(g.right_degree(65), 70);
    }

    #[test]
    fn add_remove_edges() {
        let mut g = DenseBigraph::new(5);
        assert!(!g.has_edge(1, 2));
        g.add_edge(1, 2);
        assert!(g.has_edge(1, 2));
        assert_eq!(g.n_edges(), 1);
        g.remove_edge(1, 2);
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = DenseBigraph::from_edges(4, &[(0, 0), (0, 1), (1, 1), (2, 1), (3, 3)]);
        assert_eq!(g.left_degrees(), vec![2, 1, 1, 1]);
        assert_eq!(g.right_degrees(), vec![1, 3, 0, 1]);
        assert_eq!(g.right_degree(1), 3);
        let nbrs: Vec<usize> = g.neighbors(0).collect();
        assert_eq!(nbrs, vec![0, 1]);
    }

    #[test]
    fn unique_neighbor_detection() {
        let g = DenseBigraph::from_edges(3, &[(0, 2), (1, 0), (1, 1)]);
        assert_eq!(g.unique_neighbor(0), Some(2));
        assert_eq!(g.unique_neighbor(1), None);
        assert_eq!(g.unique_neighbor(2), None); // degree 0
    }

    #[test]
    fn clear_operations() {
        let mut g = DenseBigraph::complete(3);
        g.clear_left(1);
        assert_eq!(g.left_degree(1), 0);
        assert_eq!(g.right_degree(0), 2);
        g.clear_right(0);
        assert_eq!(g.right_degree(0), 0);
        assert_eq!(g.left_degree(0), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_bounds_checked() {
        let mut g = DenseBigraph::new(3);
        g.add_edge(0, 3);
    }

    #[test]
    fn word_boundary_columns() {
        let mut g = DenseBigraph::new(130);
        g.add_edge(129, 63);
        g.add_edge(129, 64);
        g.add_edge(129, 128);
        assert_eq!(g.left_degree(129), 3);
        let nbrs: Vec<usize> = g.neighbors(129).collect();
        assert_eq!(nbrs, vec![63, 64, 128]);
        assert_eq!(g.right_degrees()[64], 1);
    }
}

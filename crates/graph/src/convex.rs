//! Exact matching counts and crack expectations for *convex*
//! (interval) mapping spaces.
//!
//! The paper treats exact computation as hopeless — the permanent is
//! #P-complete in general (Section 4.1) — and derives closed forms
//! only for chains (Lemma 6). But the mapping space of an interval
//! belief function is a *convex bipartite graph*: each original
//! item's candidates are a contiguous run of frequency groups, and
//! anonymized items within a group are interchangeable. That
//! structure admits an exact dynamic program:
//!
//! * process frequency groups in increasing order;
//! * a right item with candidate range `[a, b]` "arrives" at group
//!   `a` and must be matched by its "deadline" group `b`;
//! * the DP state is the profile of open (arrived, unmatched) rights
//!   bucketed by remaining deadline — at most `W - 1` counters for
//!   ranges spanning at most `W` groups;
//! * matching the `L_g` anonymized items of group `g` against the
//!   open profile contributes `L_g! · Π_d C(open_d, c_d)` ways.
//!
//! The permanent is the total weight of paths ending with an empty
//! profile, and crack marginals are permanent ratios of minors that
//! stay convex (drop one left slot from the item's own group, one
//! right from its range bucket). Chains are the `W = 2` special case
//! — Lemma 6 falls out — and `W = 1` reproduces Lemma 3. All
//! arithmetic is in log space, so group factorials of any size are
//! fine.
//!
//! Complexity: states are `(W-1)`-tuples of open counts, so this is
//! polynomial for fixed `W` but grows quickly with wide windows; the
//! `max_states` budget makes the trade-off explicit and callers fall
//! back to sampling beyond it.
//!
//! The DP table is stored in a blocked SoA layout: state tuples pack
//! into single `u64` keys (fixed-width fields, `state[0]` most
//! significant, so numeric order equals tuple lex order) held in a
//! sorted key vector parallel to a weight vector, and transitions
//! stream through a scratch block that is stably sorted and merged
//! per generation. The fold order of `log_add` into each target state
//! is exactly the entry-API order of the previous ordered-map
//! implementation (kept as the wide-window fallback), so the two
//! lanes are bit-identical.

use std::collections::BTreeMap;

use crate::grouped::GroupedBigraph;

/// Failure modes of the convex exact computation.
#[derive(Clone, Debug, PartialEq)]
pub enum ConvexError {
    /// Some item has no candidate anonymized items at all: the space
    /// has no perfect matching by construction.
    UnmatchableItem { item: usize },
    /// The DP state budget was exceeded (window too wide / groups
    /// too large) — fall back to sampling.
    BudgetExceeded { states: usize, budget: usize },
    /// The space admits no perfect matching (counting reached zero).
    NoPerfectMatching,
}

impl std::fmt::Display for ConvexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvexError::UnmatchableItem { item } => {
                write!(
                    f,
                    "item {item} has no candidates; no perfect matching exists"
                )
            }
            ConvexError::BudgetExceeded { states, budget } => {
                write!(f, "DP needed {states} states, budget is {budget}")
            }
            ConvexError::NoPerfectMatching => {
                write!(f, "the mapping space admits no perfect matching")
            }
        }
    }
}

impl std::error::Error for ConvexError {}

/// The convex structure extracted from a grouped graph.
#[derive(Clone, Debug)]
struct ConvexSpec {
    /// Anonymized items per frequency group.
    left_counts: Vec<usize>,
    /// `arrivals[g][d]` = original items with candidate range
    /// `[g, g + d]`.
    arrivals: Vec<Vec<usize>>,
    /// Candidate group range `[lo, hi]` per original item, validated
    /// non-empty at construction.
    ranges: Vec<(usize, usize)>,
    /// Maximum range width `W` (in groups).
    window: usize,
}

impl ConvexSpec {
    fn from_graph(graph: &GroupedBigraph) -> Result<Self, ConvexError> {
        let k = graph.n_groups();
        let mut window = 1usize;
        let mut ranges = Vec::with_capacity(graph.n());
        for x in 0..graph.n() {
            match graph.right_range_of(x) {
                Some((lo, hi)) => {
                    window = window.max(hi - lo + 1);
                    ranges.push((lo, hi));
                }
                None => return Err(ConvexError::UnmatchableItem { item: x }),
            }
        }
        let mut arrivals = vec![vec![0usize; window]; k];
        for &(lo, hi) in &ranges {
            arrivals[lo][hi - lo] += 1;
        }
        Ok(ConvexSpec {
            left_counts: graph.group_sizes().to_vec(),
            arrivals,
            ranges,
            window,
        })
    }
}

/// Natural-log factorial table.
struct LnFact(Vec<f64>);

impl LnFact {
    fn new(n: usize) -> Self {
        let mut t = Vec::with_capacity(n + 1);
        t.push(0.0);
        for i in 1..=n {
            t.push(t[i - 1] + (i as f64).ln());
        }
        LnFact(t)
    }

    #[inline]
    fn fact(&self, n: usize) -> f64 {
        self.0[n]
    }

    #[inline]
    fn choose(&self, n: usize, k: usize) -> f64 {
        debug_assert!(k <= n);
        self.0[n] - self.0[k] - self.0[n - k]
    }
}

#[inline]
fn log_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Log of the number of perfect matchings of the spec, or `None`
/// when zero.
///
/// `max_states` bounds both the live state count and (×16) the total
/// transition work, so pathological windows abort promptly instead
/// of hanging inside one group.
///
/// Runs the blocked SoA kernel whenever the `(w-1)`-tuple of open
/// counts packs into one `u64` key (every realistic window; a state
/// counter never exceeds the item count `n`, so the packed form
/// covers `(w-1) · ceil(log2(n+1)) <= 64`); wider windows fall back
/// to the ordered-map walk. Both paths produce bit-identical
/// weights: the packed keys order exactly like the state vectors
/// (fields are fixed-width with `state[0]` most significant), and
/// the scratch-block merge folds `log_add` per target state in
/// generation order, which is precisely the entry-API accumulation
/// order of the map.
fn log_permanent(
    spec: &ConvexSpec,
    ln: &LnFact,
    max_states: usize,
) -> Result<Option<f64>, ConvexError> {
    let w = spec.window;
    let n = spec.ranges.len();
    let bits = 64 - (n as u64).leading_zeros();
    if w > 1 && (w - 1) as u32 * bits > 64 {
        return log_permanent_wide(spec, ln, max_states);
    }
    log_permanent_packed(spec, ln, max_states, bits)
}

/// The blocked SoA lane of [`log_permanent`]: the live generation is
/// a pair of parallel vectors (packed keys ascending + log weights),
/// transitions stream into a scratch block that is stably sorted and
/// two-pointer-merged into the next generation, and the DP table is
/// never touched through a pointer-chasing map node.
fn log_permanent_packed(
    spec: &ConvexSpec,
    ln: &LnFact,
    max_states: usize,
    bits: u32,
) -> Result<Option<f64>, ConvexError> {
    let w = spec.window;
    let k = spec.left_counts.len();
    let mut keys: Vec<u64> = vec![0]; // the all-zero open profile
    let mut weights: Vec<f64> = vec![0.0];
    let mut sink = PackedSink {
        ln,
        w,
        bits,
        scratch: Vec::new(),
        acc_keys: Vec::new(),
        acc_weights: Vec::new(),
        block_limit: PACKED_BLOCK,
        work: 0,
        // Clamped so `work` (checked against the budget after every
        // increment) provably stays far from the `usize` edge.
        work_budget: max_states.saturating_mul(16).clamp(1_000, 1 << 62),
    };
    let mut avail = vec![0usize; w];
    let mut choice = vec![0usize; w];
    let field = (1u64 << bits) - 1;
    for g in 0..k {
        sink.acc_keys.clear();
        sink.acc_weights.clear();
        sink.block_limit = PACKED_BLOCK;
        for (&key, &lw) in keys.iter().zip(&weights) {
            // Offsets 0..w-1 available at this group: carried opens
            // (unpacked, shifted) plus fresh arrivals.
            for (d, a) in avail.iter_mut().enumerate() {
                let carried = if d < w - 1 {
                    ((key >> (bits as usize * (w - 2 - d))) & field) as usize
                } else {
                    0
                };
                *a = carried + spec.arrivals[g][d];
            }
            // Deadline-now rights are mandatory.
            let must = avail[0];
            let l_g = spec.left_counts[g];
            if must > l_g {
                continue; // more deadlines than slots: dead path
            }
            choice[0] = must;
            sink.distribute(&avail, &mut choice, 1, l_g - must, lw + ln.fact(l_g))?;
        }
        sink.flush();
        std::mem::swap(&mut keys, &mut sink.acc_keys);
        std::mem::swap(&mut weights, &mut sink.acc_weights);
        if keys.len() > max_states {
            return Err(ConvexError::BudgetExceeded {
                states: keys.len(),
                budget: max_states,
            });
        }
        if keys.is_empty() {
            return Ok(None);
        }
    }
    // The all-zero profile packs to key 0, the minimum — first if
    // present.
    match keys.first() {
        Some(0) => Ok(Some(weights[0])),
        _ => Ok(None),
    }
}

/// Scratch-block size of the packed lane: big enough to amortize the
/// sort+merge, small enough to stay cache-resident.
const PACKED_BLOCK: usize = 4096;

/// Transition sink of the packed lane: generated `(key, weight)`
/// pairs collect in generation order; [`PackedSink::flush`] folds
/// them into the sorted accumulator.
struct PackedSink<'a> {
    ln: &'a LnFact,
    w: usize,
    bits: u32,
    scratch: Vec<(u64, f64)>,
    acc_keys: Vec<u64>,
    acc_weights: Vec<f64>,
    block_limit: usize,
    work: usize,
    work_budget: usize,
}

impl PackedSink<'_> {
    /// Recursively distributes `rem` matches over offsets `d..w` —
    /// the same enumeration order (and the same per-call work
    /// accounting) as the ordered-map walk.
    fn distribute(
        &mut self,
        avail: &[usize],
        choice: &mut Vec<usize>,
        d: usize,
        rem: usize,
        lw: f64,
    ) -> Result<(), ConvexError> {
        // andi::prove_no_overflow — the packed-key field arithmetic is machine-checked
        debug_assert!(
            self.work <= self.work_budget,
            "budget check runs every call"
        );
        // andi::assume(work in [0, 4611686018427387904]) — work <= work_budget <= 2^62 on every live path
        debug_assert!(
            d <= self.w && self.w <= 65,
            "(w - 1) * bits <= 64 forces w <= 65"
        );
        // andi::assume(d in [0, 65]) — recursion stops at d == w and w <= 65 in the packed lane
        self.work += 1;
        if self.work > self.work_budget {
            return Err(ConvexError::BudgetExceeded {
                states: self.work,
                budget: self.work_budget,
            });
        }
        let w = self.w;
        if d == w {
            if rem != 0 {
                return Ok(());
            }
            // Weight: product of C(avail_d, choice_d); offset-0
            // choose is C(a, a) = 0 in log space.
            let mut weight = lw;
            for j in 1..w {
                weight += self.ln.choose(avail[j], choice[j]);
            }
            // New state: leftovers shifted down by one offset, packed
            // most-significant-first so key order is state lex order.
            let mut key = 0u64;
            for j in 1..w {
                debug_assert!(
                    self.bits < 64 && key <= u64::MAX >> self.bits,
                    "entry check caps the packed width at (w - 1) * bits <= 64"
                );
                // andi::assume(key << self.bits in [0, 18446744073709551615]) — at most (w - 2) fields of `bits` bits are packed before this shift
                debug_assert!(choice[j] <= avail[j], "choices never exceed availability");
                // andi::assume(avail[j] - choice[j] in [0, 18446744073709551615]) — every choice is capped at max_c, which never exceeds availability
                key = (key << self.bits) | (avail[j] - choice[j]) as u64;
            }
            self.scratch.push((key, weight));
            if self.scratch.len() >= self.block_limit {
                self.flush();
                // Keep merges amortized once the table outgrows the
                // block: each flush rewrites the accumulator once.
                self.block_limit = self.acc_keys.len().max(PACKED_BLOCK);
            }
            return Ok(());
        }
        // Bound the choice at this offset by what later offsets can
        // still absorb.
        let later_capacity: usize = avail[d + 1..w.min(avail.len())].iter().sum();
        let min_c = rem.saturating_sub(later_capacity);
        let max_c = rem.min(avail[d]);
        for c in min_c..=max_c {
            choice[d] = c;
            debug_assert!(c <= rem, "max_c = rem.min(avail[d]) caps the choice");
            // andi::assume(rem - c in [0, 18446744073709551615]) — c <= max_c <= rem
            self.distribute(avail, choice, d + 1, rem - c, lw)?;
        }
        Ok(())
    }

    /// Stable-sorts the scratch block by key and two-pointer-merges
    /// it into the sorted accumulator, folding `log_add` over each
    /// key's pairs in generation order — bit-identical to entry-API
    /// accumulation into an ordered map.
    fn flush(&mut self) {
        if self.scratch.is_empty() {
            return;
        }
        self.scratch.sort_by_key(|&(key, _)| key);
        let merged_cap = self.acc_keys.len() + self.scratch.len();
        let mut keys = Vec::with_capacity(merged_cap);
        let mut weights = Vec::with_capacity(merged_cap);
        let (mut i, mut j) = (0, 0);
        while i < self.acc_keys.len() || j < self.scratch.len() {
            let take_acc = j >= self.scratch.len()
                || (i < self.acc_keys.len() && self.acc_keys[i] <= self.scratch[j].0);
            let (key, mut value) = if take_acc {
                let pair = (self.acc_keys[i], self.acc_weights[i]);
                i += 1;
                pair
            } else {
                (self.scratch[j].0, f64::NEG_INFINITY)
            };
            while j < self.scratch.len() && self.scratch[j].0 == key {
                value = log_add(value, self.scratch[j].1);
                j += 1;
            }
            keys.push(key);
            weights.push(value);
        }
        self.acc_keys = keys;
        self.acc_weights = weights;
        self.scratch.clear();
    }
}

/// The ordered-map fallback for windows too wide to pack (and the
/// bit-identity reference for the packed lane).
fn log_permanent_wide(
    spec: &ConvexSpec,
    ln: &LnFact,
    max_states: usize,
) -> Result<Option<f64>, ConvexError> {
    let w = spec.window;
    let k = spec.left_counts.len();
    // State: open counts at offsets 1..w-1 (relative to the *next*
    // group), i.e. a vector of length w-1. Log-weighted. A BTreeMap
    // keeps the iteration order (and so the `log_add` accumulation
    // order feeding shared target states) deterministic — hash order
    // would perturb floating-point results run to run.
    let mut states: BTreeMap<Vec<usize>, f64> = BTreeMap::new();
    states.insert(vec![0usize; w - 1], 0.0);

    let mut dp = Dp {
        ln,
        next: BTreeMap::new(),
        work: 0,
        // Same clamp as the packed lane, so the two lanes' work
        // accounting trips identically.
        work_budget: max_states.saturating_mul(16).clamp(1_000, 1 << 62),
        w,
    };
    let mut avail = vec![0usize; w];
    let mut choice = vec![0usize; w];
    for g in 0..k {
        dp.next.clear();
        for (state, &lw) in &states {
            // Offsets 0..w-1 available at this group: carried opens
            // (shifted) plus fresh arrivals.
            for d in 0..w {
                let carried = if d < w - 1 { state[d] } else { 0 };
                avail[d] = carried + spec.arrivals[g][d];
            }
            // Deadline-now rights are mandatory.
            let must = avail[0];
            let l_g = spec.left_counts[g];
            if must > l_g {
                continue; // more deadlines than slots: dead path
            }
            choice[0] = must;
            dp.distribute(&avail, &mut choice, 1, l_g - must, lw + ln.fact(l_g))?;
        }
        std::mem::swap(&mut states, &mut dp.next);
        if states.len() > max_states {
            return Err(ConvexError::BudgetExceeded {
                states: states.len(),
                budget: max_states,
            });
        }
        if states.is_empty() {
            return Ok(None);
        }
    }
    Ok(states.get(vec![0usize; w - 1].as_slice()).copied())
}

/// DP scratch: target map plus the transition-work accounting.
struct Dp<'a> {
    ln: &'a LnFact,
    next: BTreeMap<Vec<usize>, f64>,
    work: usize,
    work_budget: usize,
    w: usize,
}

impl Dp<'_> {
    /// Recursively distributes `rem` matches over offsets `d..w`,
    /// accumulating resulting states.
    fn distribute(
        &mut self,
        avail: &[usize],
        choice: &mut Vec<usize>,
        d: usize,
        rem: usize,
        lw: f64,
    ) -> Result<(), ConvexError> {
        self.work += 1;
        if self.work > self.work_budget {
            return Err(ConvexError::BudgetExceeded {
                states: self.work,
                budget: self.work_budget,
            });
        }
        let w = self.w;
        if d == w {
            if rem != 0 {
                return Ok(());
            }
            // Weight: product of C(avail_d, choice_d); offset-0
            // choose is C(a, a) = 0 in log space.
            let mut weight = lw;
            for j in 1..w {
                weight += self.ln.choose(avail[j], choice[j]);
            }
            // New state: leftovers shifted down by one offset.
            let state: Vec<usize> = (1..w).map(|j| avail[j] - choice[j]).collect();
            let slot = self.next.entry(state).or_insert(f64::NEG_INFINITY);
            *slot = log_add(*slot, weight);
            return Ok(());
        }
        // Bound the choice at this offset by what later offsets can
        // still absorb.
        let later_capacity: usize = avail[d + 1..w.min(avail.len())].iter().sum();
        let min_c = rem.saturating_sub(later_capacity);
        let max_c = rem.min(avail[d]);
        for c in min_c..=max_c {
            choice[d] = c;
            self.distribute(avail, choice, d + 1, rem - c, lw)?;
        }
        Ok(())
    }
}

/// Result of the convex exact analysis.
#[derive(Clone, Debug)]
pub struct ConvexExact {
    /// Exact expected number of cracks.
    pub expected_cracks: f64,
    /// Natural log of the number of consistent perfect matchings.
    pub log_matchings: f64,
    /// The window width `W` the DP ran with.
    pub window: usize,
}

/// Default DP state budget.
pub const DEFAULT_STATE_BUDGET: usize = 2_000_000;

/// Computes the exact expected number of cracks of a (compliant)
/// grouped mapping space by convex dynamic programming.
///
/// Generalizes Lemma 3 (`W = 1`), Lemma 5/6 (`W = 2` chains) and
/// goes beyond, in time polynomial for fixed window width.
///
/// # Examples
///
/// Point-valued beliefs (window 1) recover Lemma 3 exactly:
///
/// ```
/// use andi_graph::convex::{expected_cracks_convex, DEFAULT_STATE_BUDGET};
/// use andi_graph::GroupedBigraph;
///
/// let supports = [5u64, 4, 5, 5, 3, 5]; // three frequency groups
/// let intervals: Vec<(f64, f64)> = supports
///     .iter()
///     .map(|&s| { let f = s as f64 / 10.0; (f, f) })
///     .collect();
/// let graph = GroupedBigraph::new(&supports, 10, &intervals);
/// let exact = expected_cracks_convex(&graph, DEFAULT_STATE_BUDGET).unwrap();
/// assert_eq!(exact.window, 1);
/// assert!((exact.expected_cracks - 3.0).abs() < 1e-12); // = g
/// ```
///
/// # Errors
///
/// See [`ConvexError`]. A non-compliant graph is fine as long as
/// every item keeps a non-empty candidate range (non-compliant items
/// simply have crack probability 0 and are skipped in the marginal
/// sum).
pub fn expected_cracks_convex(
    graph: &GroupedBigraph,
    max_states: usize,
) -> Result<ConvexExact, ConvexError> {
    let (probs, log_total, window) = crack_marginals(graph, max_states)?;
    Ok(ConvexExact {
        expected_cracks: probs.iter().sum(),
        log_matchings: log_total,
        window,
    })
}

/// Exact per-item crack probabilities of a grouped mapping space:
/// entry `x` is `P(x' maps to x)` under a uniformly random
/// consistent perfect matching. Non-compliant items get 0.
///
/// # Errors
///
/// See [`ConvexError`].
pub fn crack_probabilities_convex(
    graph: &GroupedBigraph,
    max_states: usize,
) -> Result<Vec<f64>, ConvexError> {
    crack_marginals(graph, max_states).map(|(p, _, _)| p)
}

/// Shared marginal computation: per-item probabilities, the log
/// matching count, and the window width.
fn crack_marginals(
    graph: &GroupedBigraph,
    max_states: usize,
) -> Result<(Vec<f64>, f64, usize), ConvexError> {
    let spec = ConvexSpec::from_graph(graph)?;
    let ln = LnFact::new(graph.n() + 1);
    let log_total = log_permanent(&spec, &ln, max_states)?.ok_or(ConvexError::NoPerfectMatching)?;

    // Group compliant items by (range, own group): identical minors.
    // BTreeMap so minor evaluation order (and any future
    // accumulation over it) is deterministic.
    let mut buckets: BTreeMap<(usize, usize, usize), Vec<usize>> = BTreeMap::new();
    for x in 0..graph.n() {
        let (lo, hi) = spec.ranges[x];
        let own = graph.left_group_of(x);
        if own < lo || own > hi {
            continue; // non-compliant: crack edge absent, P = 0
        }
        buckets.entry((lo, hi, own)).or_default().push(x);
    }

    let mut probs = vec![0.0f64; graph.n()];
    for (&(lo, hi, own), members) in &buckets {
        let mut minor = spec.clone();
        minor.left_counts[own] -= 1;
        minor.arrivals[lo][hi - lo] -= 1;
        let log_minor = match log_permanent(&minor, &ln, max_states)? {
            Some(v) => v,
            None => continue, // the crack edge is in no matching
        };
        let p = (log_minor - log_total).exp();
        for &x in members {
            probs[x] = p;
        }
    }
    Ok((probs, log_total, spec.window))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::expected_cracks;

    /// Grouped graph from supports + intervals (helper).
    fn graph(supports: &[u64], m: u64, intervals: &[(f64, f64)]) -> GroupedBigraph {
        GroupedBigraph::new(supports, m, intervals)
    }

    #[test]
    fn point_valued_recovers_lemma_3() {
        // BigMart point-valued: three complete blocks, E = 3.
        let supports = [5u64, 4, 5, 5, 3, 5];
        let intervals: Vec<(f64, f64)> = supports
            .iter()
            .map(|&s| {
                let f = s as f64 / 10.0;
                (f, f)
            })
            .collect();
        let g = graph(&supports, 10, &intervals);
        let r = expected_cracks_convex(&g, DEFAULT_STATE_BUDGET).unwrap();
        assert_eq!(r.window, 1);
        assert!((r.expected_cracks - 3.0).abs() < 1e-9);
        // log matchings = ln(4! * 1 * 1) = ln 24.
        assert!((r.log_matchings - 24.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn chain_recovers_lemma_5() {
        // The Section 4.2 chain: n=(5,3), e=(3,2), s=3 -> 74/45.
        // Realize at m = 90: freq groups at supports 30 and 60.
        let mut supports = Vec::new();
        let mut intervals = Vec::new();
        let f1 = 30.0 / 90.0;
        let f2 = 60.0 / 90.0;
        for _ in 0..3 {
            supports.push(30u64);
            intervals.push((f1, f1));
        }
        for _ in 0..2 {
            supports.push(30);
            intervals.push((f1, f2));
        }
        for _ in 0..2 {
            supports.push(60);
            intervals.push((f2, f2));
        }
        supports.push(60);
        intervals.push((f1, f2));
        let g = graph(&supports, 90, &intervals);
        let r = expected_cracks_convex(&g, DEFAULT_STATE_BUDGET).unwrap();
        assert_eq!(r.window, 2);
        assert!(
            (r.expected_cracks - 74.0 / 45.0).abs() < 1e-9,
            "got {}",
            r.expected_cracks
        );
    }

    #[test]
    fn marginals_match_ryser_probabilities() {
        use crate::exact::crack_probabilities;
        let supports = [5u64, 4, 5, 5, 3, 5];
        let intervals = vec![
            (0.0, 1.0),
            (0.4, 0.5),
            (0.5, 0.5),
            (0.4, 0.6),
            (0.1, 0.4),
            (0.5, 0.5),
        ];
        let g = graph(&supports, 10, &intervals);
        let convex = crack_probabilities_convex(&g, DEFAULT_STATE_BUDGET).unwrap();
        let ryser = crack_probabilities(&g.to_dense()).unwrap();
        for (x, (a, b)) in convex.iter().zip(ryser.iter()).enumerate() {
            assert!((a - b).abs() < 1e-9, "item {x}: convex {a} vs ryser {b}");
        }
    }

    #[test]
    fn agrees_with_ryser_on_random_interval_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31415);
        for trial in 0..40 {
            let n = rng.gen_range(3..=9);
            let supports: Vec<u64> = (0..n).map(|_| rng.gen_range(1..30)).collect();
            let intervals: Vec<(f64, f64)> = supports
                .iter()
                .map(|&s| {
                    let f = s as f64 / 30.0;
                    let a: f64 = rng.gen_range(0.0..0.3);
                    let b: f64 = rng.gen_range(0.0..0.3);
                    ((f - a).max(0.0), (f + b).min(1.0))
                })
                .collect();
            let g = graph(&supports, 30, &intervals);
            let dense = g.to_dense();
            let exact = expected_cracks(&dense).expect("compliant");
            let convex =
                expected_cracks_convex(&g, DEFAULT_STATE_BUDGET).expect("compliant and small");
            assert!(
                (convex.expected_cracks - exact).abs() < 1e-7,
                "trial {trial}: convex {} vs ryser {exact}",
                convex.expected_cracks
            );
        }
    }

    #[test]
    fn beyond_chains_window_3() {
        // A genuinely non-chain structure: an item spanning three
        // groups (the belief h's wide interval style). Cross-check
        // with Ryser.
        let supports = [2u64, 2, 5, 5, 8];
        let f = |s: u64| s as f64 / 10.0;
        let intervals = vec![
            (f(2), f(8)), // spans all three groups
            (f(2), f(5)),
            (f(2), f(5)),
            (f(5), f(8)),
            (f(5), f(8)),
        ];
        let g = graph(&supports, 10, &intervals);
        let r = expected_cracks_convex(&g, DEFAULT_STATE_BUDGET).unwrap();
        assert_eq!(r.window, 3);
        let exact = expected_cracks(&g.to_dense()).unwrap();
        assert!(
            (r.expected_cracks - exact).abs() < 1e-9,
            "convex {} vs ryser {exact}",
            r.expected_cracks
        );
    }

    #[test]
    fn scales_beyond_ryser_for_chains() {
        // A chain with 60 items per group: far beyond 2^n Ryser, easy
        // for the DP. Validate against Lemma 6 closed form computed
        // manually: n=(60,60), e=(30,30), s=60, u=v=30.
        let mut supports = Vec::new();
        let mut intervals = Vec::new();
        let f1 = 100.0 / 1000.0;
        let f2 = 200.0 / 1000.0;
        for _ in 0..30 {
            supports.push(100u64);
            intervals.push((f1, f1));
        }
        for _ in 0..30 {
            supports.push(100);
            intervals.push((f1, f2));
        }
        for _ in 0..30 {
            supports.push(200);
            intervals.push((f2, f2));
        }
        for _ in 0..30 {
            supports.push(200);
            intervals.push((f1, f2));
        }
        let g = graph(&supports, 1000, &intervals);
        let r = expected_cracks_convex(&g, DEFAULT_STATE_BUDGET).unwrap();
        // Lemma 5: e1/n1 + e2/n2 + u^2/(s n1) + v^2/(s n2)
        //        = .5 + .5 + 900/3600 + 900/3600 = 1.5.
        assert!(
            (r.expected_cracks - 1.5).abs() < 1e-9,
            "got {}",
            r.expected_cracks
        );
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        // Regression: the DP used to iterate a `HashMap` of states,
        // so the order of `log_add` accumulations into shared target
        // states followed hash order — per-instance seeded, i.e.
        // nondeterministic even within one process. With ordered
        // state maps, every run must produce the same bits.
        let supports = [2u64, 2, 5, 5, 8, 8, 8];
        let f = |s: u64| s as f64 / 10.0;
        let intervals = vec![
            (f(2), f(8)),
            (f(2), f(5)),
            (f(2), f(5)),
            (f(5), f(8)),
            (f(5), f(8)),
            (f(2), f(8)),
            (f(5), f(8)),
        ];
        let g = graph(&supports, 10, &intervals);
        let first = expected_cracks_convex(&g, DEFAULT_STATE_BUDGET).unwrap();
        let first_probs = crack_probabilities_convex(&g, DEFAULT_STATE_BUDGET).unwrap();
        for run in 0..20 {
            let r = expected_cracks_convex(&g, DEFAULT_STATE_BUDGET).unwrap();
            assert_eq!(
                r.expected_cracks.to_bits(),
                first.expected_cracks.to_bits(),
                "run {run}: expected_cracks drifted"
            );
            assert_eq!(
                r.log_matchings.to_bits(),
                first.log_matchings.to_bits(),
                "run {run}: log_matchings drifted"
            );
            let probs = crack_probabilities_convex(&g, DEFAULT_STATE_BUDGET).unwrap();
            for (x, (a, b)) in probs.iter().zip(first_probs.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "run {run}: item {x} drifted");
            }
        }
    }

    #[test]
    fn packed_and_wide_paths_are_bit_identical() {
        // The blocked SoA lane must reproduce the ordered-map walk
        // bit for bit: same state order, same log_add fold order.
        type Case = (Vec<u64>, u64, Vec<(f64, f64)>);
        let cases: Vec<Case> = vec![
            // window 2 chain
            (
                vec![30, 30, 30, 60, 60, 60],
                90,
                vec![
                    (1.0 / 3.0, 1.0 / 3.0),
                    (1.0 / 3.0, 2.0 / 3.0),
                    (1.0 / 3.0, 2.0 / 3.0),
                    (2.0 / 3.0, 2.0 / 3.0),
                    (2.0 / 3.0, 2.0 / 3.0),
                    (1.0 / 3.0, 2.0 / 3.0),
                ],
            ),
            // window 3 with shared target states from many sources
            (
                vec![2, 2, 5, 5, 8, 8, 8],
                10,
                vec![
                    (0.2, 0.8),
                    (0.2, 0.5),
                    (0.2, 0.5),
                    (0.5, 0.8),
                    (0.5, 0.8),
                    (0.2, 0.8),
                    (0.5, 0.8),
                ],
            ),
        ];
        for (supports, m, intervals) in cases {
            let g = graph(&supports, m, &intervals);
            let spec = ConvexSpec::from_graph(&g).unwrap();
            let ln = LnFact::new(g.n() + 1);
            let bits = 64 - (spec.ranges.len() as u64).leading_zeros();
            let packed = log_permanent_packed(&spec, &ln, DEFAULT_STATE_BUDGET, bits)
                .unwrap()
                .unwrap();
            let wide = log_permanent_wide(&spec, &ln, DEFAULT_STATE_BUDGET)
                .unwrap()
                .unwrap();
            assert_eq!(
                packed.to_bits(),
                wide.to_bits(),
                "packed {packed} vs wide {wide}"
            );
        }
    }

    #[test]
    fn packed_flush_blocks_preserve_fold_order() {
        // Force many flushes with a tiny block by shrinking the
        // scratch threshold indirectly: a larger instance whose
        // transition count far exceeds PACKED_BLOCK exercises
        // mid-group merges; the result must still match the wide
        // walk exactly.
        let mut supports = Vec::new();
        let mut intervals = Vec::new();
        let f1 = 100.0 / 1000.0;
        let f2 = 200.0 / 1000.0;
        for _ in 0..30 {
            supports.push(100u64);
            intervals.push((f1, f1));
        }
        for _ in 0..30 {
            supports.push(100);
            intervals.push((f1, f2));
        }
        for _ in 0..30 {
            supports.push(200);
            intervals.push((f2, f2));
        }
        for _ in 0..30 {
            supports.push(200);
            intervals.push((f1, f2));
        }
        let g = graph(&supports, 1000, &intervals);
        let spec = ConvexSpec::from_graph(&g).unwrap();
        let ln = LnFact::new(g.n() + 1);
        let bits = 64 - (spec.ranges.len() as u64).leading_zeros();
        let packed = log_permanent_packed(&spec, &ln, DEFAULT_STATE_BUDGET, bits)
            .unwrap()
            .unwrap();
        let wide = log_permanent_wide(&spec, &ln, DEFAULT_STATE_BUDGET)
            .unwrap()
            .unwrap();
        assert_eq!(packed.to_bits(), wide.to_bits());
    }

    #[test]
    fn unmatchable_item_is_reported() {
        let supports = [5u64, 4];
        let intervals = vec![(0.9, 1.0), (0.0, 1.0)];
        let g = graph(&supports, 10, &intervals);
        assert_eq!(
            expected_cracks_convex(&g, DEFAULT_STATE_BUDGET).unwrap_err(),
            ConvexError::UnmatchableItem { item: 0 }
        );
    }

    #[test]
    fn infeasible_space_is_reported() {
        // Two items both believing only the {support 4} group (one
        // anonymized item) — no perfect matching.
        let supports = [4u64, 8];
        let f4 = 0.4;
        let intervals = vec![(f4, f4), (f4, f4)];
        let g = graph(&supports, 10, &intervals);
        assert_eq!(
            expected_cracks_convex(&g, DEFAULT_STATE_BUDGET).unwrap_err(),
            ConvexError::NoPerfectMatching
        );
    }

    #[test]
    fn budget_exceeded_is_reported() {
        // Force a tiny budget.
        let supports = [2u64, 5, 8];
        let f = |s: u64| s as f64 / 10.0;
        let intervals = vec![(f(2), f(8)), (f(2), f(8)), (f(2), f(8))];
        let g = graph(&supports, 10, &intervals);
        match expected_cracks_convex(&g, 0) {
            Err(ConvexError::BudgetExceeded { budget: 0, .. }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn noncompliant_items_contribute_zero() {
        // Item 0 believes the wrong group; still matchable, never
        // cracked.
        let supports = [2u64, 8];
        let f = |s: u64| s as f64 / 10.0;
        let intervals = vec![(f(8), f(8)), (f(2), f(8))];
        let g = graph(&supports, 10, &intervals);
        let r = expected_cracks_convex(&g, DEFAULT_STATE_BUDGET).unwrap();
        // Unique matching: 0' (freq .2)... item 0 accepts only the
        // freq-.8 anonymized item (1'), item 1 accepts both; perfect
        // matching must give 1' to item 0 and 0' to item 1: zero
        // cracks... except item 1 gets 0' which is NOT its own (its
        // own is 1'): so E = 0.
        assert!((r.expected_cracks - 0.0).abs() < 1e-12);
        let exact = expected_cracks(&g.to_dense()).unwrap();
        assert!((exact - 0.0).abs() < 1e-12);
    }
}

//! Grouped (interval) bipartite graphs.
//!
//! For interval belief functions, the consistent-mapping graph has
//! special structure: anonymized items with equal observed frequency
//! are interchangeable (they form the *frequency groups* of
//! Section 3.2), and every original item's candidate set is a
//! *contiguous range* of frequency groups — the anonymized items
//! whose observed frequency falls inside the item's belief interval.
//!
//! [`GroupedBigraph`] exploits this: it stores the sorted frequency
//! groups once, plus one group range per original item. Outdegrees
//! (`O_x`) come from prefix sums in `O(log k)` each — this is the
//! `O(|D| + n log n)` implementation the paper sketches under
//! Figure 5 — and a maximum consistent matching comes from the
//! classical deadline-greedy in `O(n log n)`.

use crate::dense::DenseBigraph;

/// The belief-independent half of a [`GroupedBigraph`]: the
/// frequency-group precomputation over one database summary
/// `(supports, m)` — distinct supports sorted and deduplicated,
/// group sizes, prefix sums, and each item's group membership.
///
/// Building this is the `O(n log n)` part of graph construction and
/// it does not depend on the hacker's belief at all, so a service
/// answering many concurrent requests against the *same* database
/// computes it once and completes each request's graph with the
/// cheap per-interval [`FrequencyScaffold::into_graph`] pass. The
/// completion is definitionally equivalent to
/// [`GroupedBigraph::new`] — `new` itself is implemented as
/// `FrequencyScaffold::new(..).into_graph(..)`.
#[derive(Clone, Debug)]
pub struct FrequencyScaffold {
    group_supports: Vec<u64>,
    group_sizes: Vec<usize>,
    prefix: Vec<usize>,
    left_group: Vec<usize>,
    group_members: Vec<Vec<usize>>,
    n_transactions: u64,
}

impl FrequencyScaffold {
    /// Precomputes the frequency groups of a support profile.
    ///
    /// # Panics
    ///
    /// Panics if `n_transactions == 0` or any support exceeds it
    /// (the same structural contract as [`GroupedBigraph::new`]).
    pub fn new(supports: &[u64], n_transactions: u64) -> Self {
        assert!(n_transactions > 0, "need at least one transaction");
        let n = supports.len();

        // Distinct supports ascending + membership.
        let mut distinct: Vec<u64> = supports.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let k = distinct.len();
        let mut group_sizes = vec![0usize; k];
        let mut left_group = vec![0usize; n];
        let mut group_members = vec![Vec::new(); k];
        for (i, &s) in supports.iter().enumerate() {
            assert!(s <= n_transactions, "item {i} support {s} exceeds m");
            // `distinct` was built from these same supports, so the
            // partition point lands exactly on `s`.
            let g = distinct.partition_point(|&d| d < s);
            group_sizes[g] += 1;
            left_group[i] = g;
            group_members[g].push(i);
        }
        let mut prefix = vec![0usize; k + 1];
        for g in 0..k {
            prefix[g + 1] = prefix[g] + group_sizes[g];
        }

        FrequencyScaffold {
            group_supports: distinct,
            group_sizes,
            prefix,
            left_group,
            group_members,
            n_transactions,
        }
    }

    /// Domain size the scaffold was built over.
    pub fn n(&self) -> usize {
        self.left_group.len()
    }

    /// Transaction count the supports are relative to.
    pub fn n_transactions(&self) -> u64 {
        self.n_transactions
    }

    /// Completes the graph for one belief: computes each item's
    /// candidate group range from its interval. Borrowing variant of
    /// [`FrequencyScaffold::into_graph`] for shared (cached)
    /// scaffolds.
    ///
    /// # Panics
    ///
    /// Panics if `intervals.len() != self.n()` or an interval is
    /// inverted.
    pub fn graph_for(&self, intervals: &[(f64, f64)]) -> GroupedBigraph {
        self.clone().into_graph(intervals)
    }

    /// Consuming variant of [`FrequencyScaffold::graph_for`].
    ///
    /// # Panics
    ///
    /// Panics if `intervals.len() != self.n()` or an interval is
    /// inverted.
    pub fn into_graph(self, intervals: &[(f64, f64)]) -> GroupedBigraph {
        assert_eq!(
            self.left_group.len(),
            intervals.len(),
            "supports and intervals must cover the same domain"
        );
        let m = self.n_transactions as f64;
        let freqs: Vec<f64> = self.group_supports.iter().map(|&s| s as f64 / m).collect();
        let right_range = intervals
            .iter()
            .enumerate()
            .map(|(y, &(l, r))| {
                assert!(l <= r, "item {y} has inverted interval [{l}, {r}]");
                // First group with frequency >= l.
                let lo = freqs.partition_point(|&f| f < l);
                // First group with frequency > r.
                let hi = freqs.partition_point(|&f| f <= r);
                if lo < hi {
                    Some((lo, hi - 1))
                } else {
                    None
                }
            })
            .collect();

        GroupedBigraph {
            group_supports: self.group_supports,
            group_sizes: self.group_sizes,
            prefix: self.prefix,
            left_group: self.left_group,
            right_range,
            n_transactions: self.n_transactions,
            group_members: self.group_members,
        }
    }
}

/// A bipartite mapping-space graph in grouped interval form.
///
/// Indexing is *aligned*: left (anonymized) index `i` corresponds to
/// original (right) index `i`; a crack is a matching edge `(i, i)`.
///
/// # Examples
///
/// The BigMart mapping space under the belief function `h` of
/// Figure 2 — `O_x` counts how many anonymized items could be `x`:
///
/// ```
/// use andi_graph::GroupedBigraph;
///
/// let supports = [5u64, 4, 5, 5, 3, 5];
/// let intervals = vec![
///     (0.0, 1.0), (0.4, 0.5), (0.5, 0.5),
///     (0.4, 0.6), (0.1, 0.4), (0.5, 0.5),
/// ];
/// let g = GroupedBigraph::new(&supports, 10, &intervals);
/// assert_eq!(g.n_groups(), 3);
/// assert_eq!(g.outdegrees(), vec![6, 5, 4, 5, 2, 4]);
/// assert!(g.has_edge(0, 1)); // 1' (freq .5) could be item 2
/// assert!(!g.has_edge(0, 4)); // ...but not item 5 ([0.1, 0.4])
/// ```
#[derive(Clone, Debug)]
pub struct GroupedBigraph {
    /// Distinct support counts, strictly increasing.
    group_supports: Vec<u64>,
    /// Number of (anonymized) items in each frequency group.
    group_sizes: Vec<usize>,
    /// Prefix sums of `group_sizes`; `prefix[k]` = items in groups
    /// `0..k`.
    prefix: Vec<usize>,
    /// Left item -> its frequency-group index.
    left_group: Vec<usize>,
    /// Right item -> inclusive candidate group range, or `None` when
    /// the belief interval contains no observed frequency.
    right_range: Vec<Option<(usize, usize)>>,
    /// Transaction count the supports are relative to.
    n_transactions: u64,
    /// Members of each group (left item indices, increasing).
    group_members: Vec<Vec<usize>>,
}

impl GroupedBigraph {
    /// Builds the graph for observed supports (aligned indexing) and
    /// per-item belief intervals `[l, r]` over frequencies.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, `m == 0`, any support exceeds `m`,
    /// or an interval is inverted.
    pub fn new(supports: &[u64], n_transactions: u64, intervals: &[(f64, f64)]) -> Self {
        FrequencyScaffold::new(supports, n_transactions).into_graph(intervals)
    }

    /// Domain size per side.
    #[inline]
    pub fn n(&self) -> usize {
        self.left_group.len()
    }

    /// Number of frequency groups `k`.
    #[inline]
    pub fn n_groups(&self) -> usize {
        self.group_supports.len()
    }

    /// Sizes of the frequency groups, ascending frequency order.
    #[inline]
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    /// Distinct support counts, ascending.
    #[inline]
    pub fn group_supports(&self) -> &[u64] {
        &self.group_supports
    }

    /// Transaction count.
    #[inline]
    pub fn n_transactions(&self) -> u64 {
        self.n_transactions
    }

    /// Frequency of group `g`.
    #[inline]
    pub fn group_frequency(&self, g: usize) -> f64 {
        self.group_supports[g] as f64 / self.n_transactions as f64
    }

    /// The frequency-group index of (anonymized) item `i`.
    #[inline]
    pub fn left_group_of(&self, i: usize) -> usize {
        self.left_group[i]
    }

    /// Left item indices belonging to group `g`.
    #[inline]
    pub fn group_members(&self, g: usize) -> &[usize] {
        &self.group_members[g]
    }

    /// The candidate group range of original item `y`.
    #[inline]
    pub fn right_range_of(&self, y: usize) -> Option<(usize, usize)> {
        self.right_range[y]
    }

    /// Whether edge `(left, right)` exists: left's observed frequency
    /// group lies inside right's candidate range. O(1).
    #[inline]
    pub fn has_edge(&self, left: usize, right: usize) -> bool {
        match self.right_range[right] {
            Some((lo, hi)) => {
                let g = self.left_group[left];
                lo <= g && g <= hi
            }
            None => false,
        }
    }

    /// The paper's `O_x`: the number of anonymized items that can map
    /// to original item `x`. Prefix-sum lookup, O(1).
    #[inline]
    pub fn outdegree(&self, x: usize) -> usize {
        match self.right_range[x] {
            Some((lo, hi)) => self.prefix[hi + 1] - self.prefix[lo],
            None => 0,
        }
    }

    /// All outdegrees.
    pub fn outdegrees(&self) -> Vec<usize> {
        (0..self.n()).map(|x| self.outdegree(x)).collect()
    }

    /// Whether item `x` is *compliant* in graph terms: its own
    /// anonymized counterpart is among its candidates, i.e. the crack
    /// edge `(x', x)` exists.
    #[inline]
    pub fn crack_edge_exists(&self, x: usize) -> bool {
        self.has_edge(x, x)
    }

    /// Total number of edges.
    pub fn n_edges(&self) -> usize {
        (0..self.n()).map(|x| self.outdegree(x)).sum()
    }

    /// Materializes the dense bitset form (for permanents,
    /// propagation and exactness tests). Quadratic; intended for
    /// modest domains.
    pub fn to_dense(&self) -> DenseBigraph {
        let n = self.n();
        let mut g = DenseBigraph::new(n);
        for y in 0..n {
            if let Some((lo, hi)) = self.right_range[y] {
                for grp in lo..=hi {
                    for &i in &self.group_members[grp] {
                        g.add_edge(i, y);
                    }
                }
            }
        }
        g
    }

    /// Partitions the original items into *belief groups* — the
    /// paper's Figure 3(b) view: items belong to the same belief
    /// group iff the same set of anonymized items can map to them
    /// (for interval graphs, iff their candidate group ranges are
    /// equal). Groups are returned ordered by range.
    pub fn belief_groups(&self) -> Vec<BeliefGroup> {
        let mut by_range: std::collections::BTreeMap<Option<(usize, usize)>, Vec<usize>> =
            std::collections::BTreeMap::new();
        for y in 0..self.n() {
            by_range.entry(self.right_range[y]).or_default().push(y);
        }
        by_range
            .into_iter()
            .map(|(range, members)| BeliefGroup { range, members })
            .collect()
    }

    /// Maximum consistent matching via the deadline greedy: original
    /// items are processed by increasing range upper end and matched
    /// to the lowest-frequency anonymized item still available in
    /// their range. For interval bigraphs this yields a maximum
    /// matching; if it is perfect, every anonymized item is assigned.
    ///
    /// Returns `partner[left] = Some(right)` for matched left items.
    pub fn greedy_matching(&self) -> Matching {
        let n = self.n();
        // Order right items by (hi, lo), carrying each range along so
        // no later lookup has to re-prove the filter.
        let mut order: Vec<(usize, (usize, usize))> = (0..n)
            .filter_map(|y| self.right_range[y].map(|r| (y, r)))
            .collect();
        order.sort_unstable_by_key(|&(_, (lo, hi))| (hi, lo));

        // Per-group stack of still-unassigned left items; a BTreeSet
        // of groups with remaining capacity supports "smallest group
        // >= lo" queries.
        let mut remaining: Vec<Vec<usize>> = self.group_members.clone();
        let mut nonempty: std::collections::BTreeSet<usize> = (0..self.n_groups())
            .filter(|&g| !remaining[g].is_empty())
            .collect();

        let mut left_partner: Vec<Option<usize>> = vec![None; n];
        let mut right_partner: Vec<Option<usize>> = vec![None; n];
        for (y, (lo, hi)) in order {
            if let Some(&g) = nonempty.range(lo..=hi).next() {
                let Some(i) = remaining[g].pop() else {
                    nonempty.remove(&g);
                    continue;
                };
                if remaining[g].is_empty() {
                    nonempty.remove(&g);
                }
                left_partner[i] = Some(y);
                right_partner[y] = Some(i);
            }
        }
        Matching {
            left_partner,
            right_partner,
        }
    }
}

/// A belief group (Figure 3(b)): original items sharing a candidate
/// set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BeliefGroup {
    /// Inclusive frequency-group range the members can map from
    /// (`None` when no observed frequency fits their interval).
    pub range: Option<(usize, usize)>,
    /// Member original items, increasing.
    pub members: Vec<usize>,
}

impl BeliefGroup {
    /// Whether the group maps to exactly one frequency group
    /// (*exclusive* in the chain terminology of Section 4.2).
    pub fn is_exclusive(&self) -> bool {
        matches!(self.range, Some((lo, hi)) if lo == hi)
    }

    /// Whether the group maps to exactly two successive frequency
    /// groups (*shared*).
    pub fn is_shared(&self) -> bool {
        matches!(self.range, Some((lo, hi)) if hi == lo + 1)
    }
}

/// A (partial) matching between the two sides.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// `left_partner[i]` = right item matched to left `i`.
    pub left_partner: Vec<Option<usize>>,
    /// `right_partner[y]` = left item matched to right `y`.
    pub right_partner: Vec<Option<usize>>,
}

impl Matching {
    /// The identity matching on `n` items (every item cracked).
    pub fn identity(n: usize) -> Self {
        Matching {
            left_partner: (0..n).map(Some).collect(),
            right_partner: (0..n).map(Some).collect(),
        }
    }

    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.left_partner.iter().filter(|p| p.is_some()).count()
    }

    /// Whether every node is matched.
    pub fn is_perfect(&self) -> bool {
        self.left_partner.iter().all(|p| p.is_some())
    }

    /// Number of cracks: matched pairs `(i, i)`.
    pub fn n_cracks(&self) -> usize {
        self.left_partner
            .iter()
            .enumerate()
            .filter(|&(i, p)| *p == Some(i))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The BigMart supports: 5,4,5,5,3,5 over 10 transactions.
    fn bigmart_supports() -> Vec<u64> {
        vec![5, 4, 5, 5, 3, 5]
    }

    /// The belief function `h` of Figure 2 (0-based items).
    fn belief_h() -> Vec<(f64, f64)> {
        vec![
            (0.0, 1.0),
            (0.4, 0.5),
            (0.5, 0.5),
            (0.4, 0.6),
            (0.1, 0.4),
            (0.5, 0.5),
        ]
    }

    #[test]
    fn groups_match_figure_3b() {
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        assert_eq!(g.n_groups(), 3);
        assert_eq!(g.group_sizes(), &[1, 1, 4]);
        assert_eq!(g.group_supports(), &[3, 4, 5]);
        assert_eq!(g.left_group_of(4), 0); // item 5 (0-based 4), freq .3
        assert_eq!(g.left_group_of(1), 1); // freq .4
        assert_eq!(g.left_group_of(0), 2); // freq .5
    }

    #[test]
    fn outdegrees_match_paper_discussion() {
        // For h: 1' can map to items 1,2,3,4,6 (0-based 0,1,2,3,5);
        // dually O_x counts anonymized candidates per original item.
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        // Item 0 (paper 1) has interval [0,1] -> all 6 anonymized.
        assert_eq!(g.outdegree(0), 6);
        // Item 1 (paper 2) has [0.4, 0.5]: groups .4 (1) + .5 (4) = 5.
        assert_eq!(g.outdegree(1), 5);
        // Item 2 (paper 3) point 0.5 -> 4.
        assert_eq!(g.outdegree(2), 4);
        // Item 3 (paper 4) [0.4,0.6] -> 5.
        assert_eq!(g.outdegree(3), 5);
        // Item 4 (paper 5) [0.1,0.4]: groups .3 and .4 -> 2.
        assert_eq!(g.outdegree(4), 2);
        // Item 5 (paper 6) point 0.5 -> 4.
        assert_eq!(g.outdegree(5), 4);
    }

    #[test]
    fn edges_match_consistency_rule() {
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        // 1' (freq .5) maps to 1,2,3,4,6 but not 5 (0-based: not 4).
        for y in [0usize, 1, 2, 3, 5] {
            assert!(g.has_edge(0, y), "edge (1', {})", y + 1);
        }
        assert!(!g.has_edge(0, 4));
        // 2' (freq .4) maps to 1,2,4,5 (0-based 0,1,3,4).
        for y in [0usize, 1, 3, 4] {
            assert!(g.has_edge(1, y));
        }
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(1, 5));
    }

    #[test]
    fn compliant_beliefs_have_crack_edges() {
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        for x in 0..6 {
            assert!(g.crack_edge_exists(x), "h is compliant on item {x}");
        }
    }

    #[test]
    fn empty_interval_yields_no_candidates() {
        let supports = vec![5, 4];
        let intervals = vec![(0.0, 0.1), (0.0, 1.0)];
        let g = GroupedBigraph::new(&supports, 10, &intervals);
        assert_eq!(g.outdegree(0), 0);
        assert_eq!(g.right_range_of(0), None);
        assert!(!g.crack_edge_exists(0));
        assert_eq!(g.outdegree(1), 2);
    }

    #[test]
    fn to_dense_agrees_on_edges_and_degrees() {
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        let d = g.to_dense();
        for i in 0..6 {
            for y in 0..6 {
                assert_eq!(g.has_edge(i, y), d.has_edge(i, y), "edge ({i},{y})");
            }
        }
        let od = d.right_degrees();
        assert_eq!(od, g.outdegrees());
        assert_eq!(d.n_edges(), g.n_edges());
    }

    #[test]
    fn greedy_matching_is_perfect_under_compliance() {
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        let m = g.greedy_matching();
        assert!(m.is_perfect());
        // Verify consistency of every matched edge.
        for (i, p) in m.left_partner.iter().enumerate() {
            assert!(g.has_edge(i, p.expect("perfect")));
        }
    }

    #[test]
    fn greedy_matching_handles_infeasible_items() {
        // Item 0's interval misses every observed frequency.
        let supports = vec![5, 4, 3];
        let intervals = vec![(0.9, 1.0), (0.0, 1.0), (0.0, 1.0)];
        let g = GroupedBigraph::new(&supports, 10, &intervals);
        let m = g.greedy_matching();
        assert_eq!(m.size(), 2);
        assert!(m.right_partner[0].is_none());
    }

    #[test]
    fn matching_crack_count() {
        let m = Matching::identity(4);
        assert_eq!(m.n_cracks(), 4);
        assert!(m.is_perfect());
        let m2 = Matching {
            left_partner: vec![Some(1), Some(0), Some(2), None],
            right_partner: vec![Some(1), Some(0), Some(2), None],
        };
        assert_eq!(m2.n_cracks(), 1);
        assert_eq!(m2.size(), 3);
        assert!(!m2.is_perfect());
    }

    #[test]
    fn belief_groups_match_figure_3b() {
        // Under h, items 2 and 4 (0-based 1 and 3) share the range
        // {.4, .5} even though their intervals differ — the paper's
        // point about the group view.
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        let groups = g.belief_groups();
        let find = |y: usize| {
            groups
                .iter()
                .find(|grp| grp.members.contains(&y))
                .expect("every item is in a group")
        };
        assert_eq!(find(1).members, vec![1, 3], "items 2 and 4 share a group");
        assert!(find(1).is_shared());
        // Point-believers 3 and 6 (0-based 2 and 5) share the .5-only
        // group.
        assert_eq!(find(2).members, vec![2, 5]);
        assert!(find(2).is_exclusive());
        // Item 1 (0-based 0) spans all three groups: neither.
        assert!(!find(0).is_exclusive() && !find(0).is_shared());
        // Partition check.
        let total: usize = groups.iter().map(|grp| grp.members.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn point_valued_belief_isolates_groups() {
        // Compliant point-valued belief f of Figure 2.
        let supports = bigmart_supports();
        let intervals: Vec<(f64, f64)> = supports
            .iter()
            .map(|&s| {
                let f = s as f64 / 10.0;
                (f, f)
            })
            .collect();
        let g = GroupedBigraph::new(&supports, 10, &intervals);
        // Outdegree of each item equals its group size.
        assert_eq!(g.outdegrees(), vec![4, 1, 4, 4, 1, 4]);
    }

    #[test]
    fn scaffold_completion_is_equivalent_to_direct_construction() {
        // Every structural observable must agree between the one-shot
        // constructor and the scaffold-then-complete path, for a
        // spread of belief shapes over the same database summary —
        // this is the contract that lets a server share one
        // frequency-group precomputation across concurrent requests.
        let supports = bigmart_supports();
        let scaffold = FrequencyScaffold::new(&supports, 10);
        assert_eq!(scaffold.n(), 6);
        assert_eq!(scaffold.n_transactions(), 10);
        let beliefs: Vec<Vec<(f64, f64)>> = vec![
            belief_h(),
            vec![(0.0, 1.0); 6],
            supports
                .iter()
                .map(|&s| {
                    let f = s as f64 / 10.0;
                    (f, f)
                })
                .collect(),
            vec![(0.9, 1.0); 6], // no candidate group at all
        ];
        for intervals in &beliefs {
            let direct = GroupedBigraph::new(&supports, 10, intervals);
            let shared = scaffold.graph_for(intervals);
            assert_eq!(shared.n(), direct.n());
            assert_eq!(shared.n_groups(), direct.n_groups());
            assert_eq!(shared.group_supports(), direct.group_supports());
            assert_eq!(shared.group_sizes(), direct.group_sizes());
            assert_eq!(shared.outdegrees(), direct.outdegrees());
            for y in 0..direct.n() {
                assert_eq!(shared.right_range_of(y), direct.right_range_of(y));
                assert_eq!(shared.left_group_of(y), direct.left_group_of(y));
            }
            for x in 0..direct.n() {
                for y in 0..direct.n() {
                    assert_eq!(shared.has_edge(x, y), direct.has_edge(x, y));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cover the same domain")]
    fn scaffold_rejects_mismatched_interval_count() {
        FrequencyScaffold::new(&bigmart_supports(), 10).graph_for(&[(0.0, 1.0)]);
    }
}

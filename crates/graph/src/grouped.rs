//! Grouped (interval) bipartite graphs.
//!
//! For interval belief functions, the consistent-mapping graph has
//! special structure: anonymized items with equal observed frequency
//! are interchangeable (they form the *frequency groups* of
//! Section 3.2), and every original item's candidate set is a
//! *contiguous range* of frequency groups — the anonymized items
//! whose observed frequency falls inside the item's belief interval.
//!
//! [`GroupedBigraph`] exploits this: it stores the sorted frequency
//! groups once, plus one group range per original item. Outdegrees
//! (`O_x`) come from prefix sums in `O(log k)` each — this is the
//! `O(|D| + n log n)` implementation the paper sketches under
//! Figure 5 — and a maximum consistent matching comes from the
//! classical deadline-greedy in `O(n log n)`.

use crate::dense::DenseBigraph;

/// The belief-independent half of a [`GroupedBigraph`]: the
/// frequency-group precomputation over one database summary
/// `(supports, m)` — distinct supports sorted and deduplicated,
/// group sizes, prefix sums, and each item's group membership.
///
/// Building this is the `O(n log n)` part of graph construction and
/// it does not depend on the hacker's belief at all, so a service
/// answering many concurrent requests against the *same* database
/// computes it once and completes each request's graph with the
/// cheap per-interval [`FrequencyScaffold::into_graph`] pass. The
/// completion is definitionally equivalent to
/// [`GroupedBigraph::new`] — `new` itself is implemented as
/// `FrequencyScaffold::new(..).into_graph(..)`.
#[derive(Clone, Debug)]
pub struct FrequencyScaffold {
    group_supports: Vec<u64>,
    group_sizes: Vec<usize>,
    prefix: Vec<usize>,
    left_group: Vec<usize>,
    group_members: Vec<Vec<usize>>,
    n_transactions: u64,
}

impl FrequencyScaffold {
    /// Precomputes the frequency groups of a support profile.
    ///
    /// # Panics
    ///
    /// Panics if `n_transactions == 0` or any support exceeds it
    /// (the same structural contract as [`GroupedBigraph::new`]).
    pub fn new(supports: &[u64], n_transactions: u64) -> Self {
        assert!(n_transactions > 0, "need at least one transaction");
        let n = supports.len();

        // Distinct supports ascending + membership.
        let mut distinct: Vec<u64> = supports.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let k = distinct.len();
        let mut group_sizes = vec![0usize; k];
        let mut left_group = vec![0usize; n];
        let mut group_members = vec![Vec::new(); k];
        for (i, &s) in supports.iter().enumerate() {
            assert!(s <= n_transactions, "item {i} support {s} exceeds m");
            // `distinct` was built from these same supports, so the
            // partition point lands exactly on `s`.
            let g = distinct.partition_point(|&d| d < s);
            group_sizes[g] += 1;
            left_group[i] = g;
            group_members[g].push(i);
        }
        let mut prefix = vec![0usize; k + 1];
        for g in 0..k {
            prefix[g + 1] = prefix[g] + group_sizes[g];
        }

        FrequencyScaffold {
            group_supports: distinct,
            group_sizes,
            prefix,
            left_group,
            group_members,
            n_transactions,
        }
    }

    /// Domain size the scaffold was built over.
    pub fn n(&self) -> usize {
        self.left_group.len()
    }

    /// Transaction count the supports are relative to.
    pub fn n_transactions(&self) -> u64 {
        self.n_transactions
    }

    /// Number of frequency groups `k`.
    pub fn n_groups(&self) -> usize {
        self.group_supports.len()
    }

    /// Distinct support counts, strictly increasing.
    pub fn group_supports(&self) -> &[u64] {
        &self.group_supports
    }

    /// Sizes of the frequency groups, ascending support order.
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    /// Members (item indices, increasing) of group `g`.
    pub fn group_members(&self, g: usize) -> &[usize] {
        &self.group_members[g]
    }

    /// The frequency-group index of item `i`.
    pub fn left_group_of(&self, i: usize) -> usize {
        self.left_group[i]
    }

    /// The support of item `i`, recovered from its group.
    pub fn support_of(&self, i: usize) -> u64 {
        self.group_supports[self.left_group[i]]
    }

    /// Number of items whose support lies in `[lo, hi]` (inclusive):
    /// two binary searches plus one prefix-sum lookup, `O(log k)`.
    /// This is exactly the quantity `GroupedBigraph::outdegree`
    /// computes through its per-item group range, so an integer
    /// support window (see [`support_window`]) reproduces outdegrees
    /// without rebuilding the graph.
    pub fn count_supports_in(&self, lo: u64, hi: u64) -> usize {
        if lo > hi {
            return 0;
        }
        let a = self.group_supports.partition_point(|&s| s < lo);
        let b = self.group_supports.partition_point(|&s| s <= hi);
        self.prefix[b] - self.prefix[a]
    }

    /// Structural fingerprint: FNV-1a over the transaction count and
    /// the full group structure. Two scaffolds share a fingerprint
    /// iff they were built over the same `(supports, m)` summary
    /// modulo hash collisions; the incremental engine and the serve
    /// caches key dirty-tracking and invalidation on it.
    pub fn fingerprint(&self) -> u64 {
        let mut h = scaffold_fnv(FNV_OFFSET, self.n_transactions);
        h = scaffold_fnv(h, self.left_group.len() as u64);
        for (&s, &size) in self.group_supports.iter().zip(&self.group_sizes) {
            h = scaffold_fnv(h, s);
            h = scaffold_fnv(h, size as u64);
        }
        for &g in &self.left_group {
            h = scaffold_fnv(h, g as u64);
        }
        h
    }

    /// Applies a batch of support changes in place, moving each item
    /// to its new frequency group and re-deriving sizes, membership,
    /// and prefix sums — the `O(c · (k + n))` update that replaces an
    /// `O(n log n)` rebuild when only `c` items change. The result is
    /// structurally identical to `FrequencyScaffold::new` over the
    /// edited support profile (the equivalence test below pins this).
    ///
    /// `changes` holds `(item, new_support)` pairs; an item may
    /// appear at most once.
    ///
    /// # Panics
    ///
    /// Panics if `new_m == 0`, an item index is out of range, or any
    /// support (changed or kept) would exceed `new_m` — the same
    /// structural contract as [`FrequencyScaffold::new`].
    pub fn apply_support_changes(&mut self, changes: &[(usize, u64)], new_m: u64) {
        assert!(new_m > 0, "need at least one transaction");
        for &(item, new_s) in changes {
            assert!(item < self.left_group.len(), "item {item} out of range");
            assert!(new_s <= new_m, "item {item} support {new_s} exceeds m");
            let g_old = self.left_group[item];
            if self.group_supports[g_old] == new_s {
                continue;
            }
            // Detach from the old group; drop the group if it empties.
            if let Ok(pos) = self.group_members[g_old].binary_search(&item) {
                self.group_members[g_old].remove(pos);
            }
            self.group_sizes[g_old] -= 1;
            if self.group_sizes[g_old] == 0 {
                self.group_supports.remove(g_old);
                self.group_sizes.remove(g_old);
                self.group_members.remove(g_old);
                for lg in self.left_group.iter_mut() {
                    if *lg > g_old {
                        *lg -= 1;
                    }
                }
            }
            // Attach to the new group, creating it if absent.
            let g_new = self.group_supports.partition_point(|&s| s < new_s);
            if self.group_supports.get(g_new) != Some(&new_s) {
                self.group_supports.insert(g_new, new_s);
                self.group_sizes.insert(g_new, 0);
                self.group_members.insert(g_new, Vec::new());
                for lg in self.left_group.iter_mut() {
                    if *lg >= g_new {
                        *lg += 1;
                    }
                }
            }
            if let Err(pos) = self.group_members[g_new].binary_search(&item) {
                self.group_members[g_new].insert(pos, item);
            }
            self.group_sizes[g_new] += 1;
            self.left_group[item] = g_new;
        }
        // Shrinking m must not strand an unchanged support above it.
        if let Some(&top) = self.group_supports.last() {
            assert!(top <= new_m, "support {top} exceeds new m {new_m}");
        }
        self.n_transactions = new_m;
        self.prefix.clear();
        self.prefix.push(0);
        let mut acc = 0usize;
        for &size in &self.group_sizes {
            acc += size;
            self.prefix.push(acc);
        }
    }

    /// Completes the graph for one belief: computes each item's
    /// candidate group range from its interval. Borrowing variant of
    /// [`FrequencyScaffold::into_graph`] for shared (cached)
    /// scaffolds.
    ///
    /// # Panics
    ///
    /// Panics if `intervals.len() != self.n()` or an interval is
    /// inverted.
    pub fn graph_for(&self, intervals: &[(f64, f64)]) -> GroupedBigraph {
        self.clone().into_graph(intervals)
    }

    /// Consuming variant of [`FrequencyScaffold::graph_for`].
    ///
    /// # Panics
    ///
    /// Panics if `intervals.len() != self.n()` or an interval is
    /// inverted.
    pub fn into_graph(self, intervals: &[(f64, f64)]) -> GroupedBigraph {
        assert_eq!(
            self.left_group.len(),
            intervals.len(),
            "supports and intervals must cover the same domain"
        );
        let m = self.n_transactions as f64;
        let freqs: Vec<f64> = self.group_supports.iter().map(|&s| s as f64 / m).collect();
        let right_range = intervals
            .iter()
            .enumerate()
            .map(|(y, &(l, r))| {
                assert!(l <= r, "item {y} has inverted interval [{l}, {r}]");
                // First group with frequency >= l.
                let lo = freqs.partition_point(|&f| f < l);
                // First group with frequency > r.
                let hi = freqs.partition_point(|&f| f <= r);
                if lo < hi {
                    Some((lo, hi - 1))
                } else {
                    None
                }
            })
            .collect();

        GroupedBigraph {
            group_supports: self.group_supports,
            group_sizes: self.group_sizes,
            prefix: self.prefix,
            left_group: self.left_group,
            right_range,
            n_transactions: self.n_transactions,
            group_members: self.group_members,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn scaffold_fnv(mut h: u64, v: u64) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The integer support window of a belief interval: the inclusive
/// range of support counts `s ∈ [0, m]` whose observed frequency
/// `s as f64 / m as f64` — computed exactly as
/// [`FrequencyScaffold::into_graph`] computes group frequencies —
/// lies inside `[l, r]`. Returns `None` when no integer support
/// qualifies.
///
/// Because IEEE division is correctly rounded, `s ↦ s/m` is monotone
/// non-decreasing in `s`, so the qualifying supports form a
/// contiguous range and binary search over the *integers* reproduces
/// the float `partition_point` outcome of graph completion
/// bit-for-bit: a distinct support `s` satisfies `l <= s/m <= r` iff
/// `lo <= s <= hi`. Combined with
/// [`FrequencyScaffold::count_supports_in`] this yields the same
/// outdegree — hence the same `1/O` crack probability down to the
/// last bit — without building a graph. The incremental engine's
/// bit-identity guarantee rests on this equivalence.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn support_window(m: u64, l: f64, r: f64) -> Option<(u64, u64)> {
    assert!(m > 0, "need at least one transaction");
    let mf = m as f64;
    // Both boundaries sit within an ulp of the real products `l·m`
    // and `r·m`, so a search seeded there touches a handful of
    // supports instead of the log₂ m a cold binary search pays — the
    // incremental engine rebuilds every window whenever m changes,
    // making this the hot loop of a single-transaction append.
    let s_lo = least_satisfying(m + 1, (l * mf) as u64, |s| s as f64 / mf >= l);
    // Smallest s in [0, m] with s/m > r; the window ends just below.
    let s_end = least_satisfying(m + 1, ((r * mf) as u64).saturating_add(1), |s| {
        s as f64 / mf > r
    });
    if s_lo >= s_end {
        None
    } else {
        Some((s_lo, s_end - 1))
    }
}

/// Least `s` in `[0, limit)` satisfying the monotone predicate
/// `pred` (false below the boundary, true at and above it), or
/// `limit` when none does. Gallops outward from `guess` to bracket
/// the boundary, then binary-searches the bracket — the boundary is
/// decided only by `pred` evaluations, so the result is identical to
/// a full binary search over `[0, limit)` for any in-range guess.
fn least_satisfying<P: Fn(u64) -> bool>(limit: u64, guess: u64, pred: P) -> u64 {
    if limit == 0 {
        return 0;
    }
    // Bracket [a, b]: pred is false everywhere below a, true at b.
    let g = guess.min(limit - 1);
    let (mut a, mut b);
    if pred(g) {
        // The boundary is at or below the guess: gallop down.
        b = g;
        let mut step = 1u64;
        loop {
            if b == 0 {
                return 0;
            }
            let probe = b.saturating_sub(step);
            if pred(probe) {
                b = probe;
                step = step.saturating_mul(2);
            } else {
                a = probe + 1;
                break;
            }
        }
    } else {
        // The boundary is above the guess: gallop up.
        a = g + 1;
        let mut step = 1u64;
        loop {
            if a >= limit {
                return limit;
            }
            let probe = a.saturating_add(step).min(limit - 1);
            if pred(probe) {
                b = probe;
                break;
            }
            if probe == limit - 1 {
                return limit;
            }
            a = probe + 1;
            step = step.saturating_mul(2);
        }
    }
    while a < b {
        let mid = a + (b - a) / 2;
        if pred(mid) {
            b = mid;
        } else {
            a = mid + 1;
        }
    }
    a
}

/// A bipartite mapping-space graph in grouped interval form.
///
/// Indexing is *aligned*: left (anonymized) index `i` corresponds to
/// original (right) index `i`; a crack is a matching edge `(i, i)`.
///
/// # Examples
///
/// The BigMart mapping space under the belief function `h` of
/// Figure 2 — `O_x` counts how many anonymized items could be `x`:
///
/// ```
/// use andi_graph::GroupedBigraph;
///
/// let supports = [5u64, 4, 5, 5, 3, 5];
/// let intervals = vec![
///     (0.0, 1.0), (0.4, 0.5), (0.5, 0.5),
///     (0.4, 0.6), (0.1, 0.4), (0.5, 0.5),
/// ];
/// let g = GroupedBigraph::new(&supports, 10, &intervals);
/// assert_eq!(g.n_groups(), 3);
/// assert_eq!(g.outdegrees(), vec![6, 5, 4, 5, 2, 4]);
/// assert!(g.has_edge(0, 1)); // 1' (freq .5) could be item 2
/// assert!(!g.has_edge(0, 4)); // ...but not item 5 ([0.1, 0.4])
/// ```
#[derive(Clone, Debug)]
pub struct GroupedBigraph {
    /// Distinct support counts, strictly increasing.
    group_supports: Vec<u64>,
    /// Number of (anonymized) items in each frequency group.
    group_sizes: Vec<usize>,
    /// Prefix sums of `group_sizes`; `prefix[k]` = items in groups
    /// `0..k`.
    prefix: Vec<usize>,
    /// Left item -> its frequency-group index.
    left_group: Vec<usize>,
    /// Right item -> inclusive candidate group range, or `None` when
    /// the belief interval contains no observed frequency.
    right_range: Vec<Option<(usize, usize)>>,
    /// Transaction count the supports are relative to.
    n_transactions: u64,
    /// Members of each group (left item indices, increasing).
    group_members: Vec<Vec<usize>>,
}

impl GroupedBigraph {
    /// Builds the graph for observed supports (aligned indexing) and
    /// per-item belief intervals `[l, r]` over frequencies.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, `m == 0`, any support exceeds `m`,
    /// or an interval is inverted.
    pub fn new(supports: &[u64], n_transactions: u64, intervals: &[(f64, f64)]) -> Self {
        FrequencyScaffold::new(supports, n_transactions).into_graph(intervals)
    }

    /// Domain size per side.
    #[inline]
    pub fn n(&self) -> usize {
        self.left_group.len()
    }

    /// Number of frequency groups `k`.
    #[inline]
    pub fn n_groups(&self) -> usize {
        self.group_supports.len()
    }

    /// Sizes of the frequency groups, ascending frequency order.
    #[inline]
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    /// Distinct support counts, ascending.
    #[inline]
    pub fn group_supports(&self) -> &[u64] {
        &self.group_supports
    }

    /// Transaction count.
    #[inline]
    pub fn n_transactions(&self) -> u64 {
        self.n_transactions
    }

    /// Frequency of group `g`.
    #[inline]
    pub fn group_frequency(&self, g: usize) -> f64 {
        self.group_supports[g] as f64 / self.n_transactions as f64
    }

    /// The frequency-group index of (anonymized) item `i`.
    #[inline]
    pub fn left_group_of(&self, i: usize) -> usize {
        self.left_group[i]
    }

    /// Left item indices belonging to group `g`.
    #[inline]
    pub fn group_members(&self, g: usize) -> &[usize] {
        &self.group_members[g]
    }

    /// The candidate group range of original item `y`.
    #[inline]
    pub fn right_range_of(&self, y: usize) -> Option<(usize, usize)> {
        self.right_range[y]
    }

    /// Whether edge `(left, right)` exists: left's observed frequency
    /// group lies inside right's candidate range. O(1).
    #[inline]
    pub fn has_edge(&self, left: usize, right: usize) -> bool {
        match self.right_range[right] {
            Some((lo, hi)) => {
                let g = self.left_group[left];
                lo <= g && g <= hi
            }
            None => false,
        }
    }

    /// The paper's `O_x`: the number of anonymized items that can map
    /// to original item `x`. Prefix-sum lookup, O(1).
    #[inline]
    pub fn outdegree(&self, x: usize) -> usize {
        match self.right_range[x] {
            Some((lo, hi)) => self.prefix[hi + 1] - self.prefix[lo],
            None => 0,
        }
    }

    /// All outdegrees.
    pub fn outdegrees(&self) -> Vec<usize> {
        (0..self.n()).map(|x| self.outdegree(x)).collect()
    }

    /// Whether item `x` is *compliant* in graph terms: its own
    /// anonymized counterpart is among its candidates, i.e. the crack
    /// edge `(x', x)` exists.
    #[inline]
    pub fn crack_edge_exists(&self, x: usize) -> bool {
        self.has_edge(x, x)
    }

    /// Total number of edges.
    pub fn n_edges(&self) -> usize {
        (0..self.n()).map(|x| self.outdegree(x)).sum()
    }

    /// Materializes the dense bitset form (for permanents,
    /// propagation and exactness tests). Quadratic; intended for
    /// modest domains.
    pub fn to_dense(&self) -> DenseBigraph {
        let n = self.n();
        let mut g = DenseBigraph::new(n);
        for y in 0..n {
            if let Some((lo, hi)) = self.right_range[y] {
                for grp in lo..=hi {
                    for &i in &self.group_members[grp] {
                        g.add_edge(i, y);
                    }
                }
            }
        }
        g
    }

    /// Partitions the original items into *belief groups* — the
    /// paper's Figure 3(b) view: items belong to the same belief
    /// group iff the same set of anonymized items can map to them
    /// (for interval graphs, iff their candidate group ranges are
    /// equal). Groups are returned ordered by range.
    pub fn belief_groups(&self) -> Vec<BeliefGroup> {
        let mut by_range: std::collections::BTreeMap<Option<(usize, usize)>, Vec<usize>> =
            std::collections::BTreeMap::new();
        for y in 0..self.n() {
            by_range.entry(self.right_range[y]).or_default().push(y);
        }
        by_range
            .into_iter()
            .map(|(range, members)| BeliefGroup { range, members })
            .collect()
    }

    /// Maximum consistent matching via the deadline greedy: original
    /// items are processed by increasing range upper end and matched
    /// to the lowest-frequency anonymized item still available in
    /// their range. For interval bigraphs this yields a maximum
    /// matching; if it is perfect, every anonymized item is assigned.
    ///
    /// Returns `partner[left] = Some(right)` for matched left items.
    pub fn greedy_matching(&self) -> Matching {
        let n = self.n();
        // Order right items by (hi, lo), carrying each range along so
        // no later lookup has to re-prove the filter.
        let mut order: Vec<(usize, (usize, usize))> = (0..n)
            .filter_map(|y| self.right_range[y].map(|r| (y, r)))
            .collect();
        order.sort_unstable_by_key(|&(_, (lo, hi))| (hi, lo));

        // Per-group stack of still-unassigned left items; a BTreeSet
        // of groups with remaining capacity supports "smallest group
        // >= lo" queries.
        let mut remaining: Vec<Vec<usize>> = self.group_members.clone();
        let mut nonempty: std::collections::BTreeSet<usize> = (0..self.n_groups())
            .filter(|&g| !remaining[g].is_empty())
            .collect();

        let mut left_partner: Vec<Option<usize>> = vec![None; n];
        let mut right_partner: Vec<Option<usize>> = vec![None; n];
        for (y, (lo, hi)) in order {
            if let Some(&g) = nonempty.range(lo..=hi).next() {
                let Some(i) = remaining[g].pop() else {
                    nonempty.remove(&g);
                    continue;
                };
                if remaining[g].is_empty() {
                    nonempty.remove(&g);
                }
                left_partner[i] = Some(y);
                right_partner[y] = Some(i);
            }
        }
        Matching {
            left_partner,
            right_partner,
        }
    }
}

/// A belief group (Figure 3(b)): original items sharing a candidate
/// set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BeliefGroup {
    /// Inclusive frequency-group range the members can map from
    /// (`None` when no observed frequency fits their interval).
    pub range: Option<(usize, usize)>,
    /// Member original items, increasing.
    pub members: Vec<usize>,
}

impl BeliefGroup {
    /// Whether the group maps to exactly one frequency group
    /// (*exclusive* in the chain terminology of Section 4.2).
    pub fn is_exclusive(&self) -> bool {
        matches!(self.range, Some((lo, hi)) if lo == hi)
    }

    /// Whether the group maps to exactly two successive frequency
    /// groups (*shared*).
    pub fn is_shared(&self) -> bool {
        matches!(self.range, Some((lo, hi)) if hi == lo + 1)
    }
}

/// A (partial) matching between the two sides.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// `left_partner[i]` = right item matched to left `i`.
    pub left_partner: Vec<Option<usize>>,
    /// `right_partner[y]` = left item matched to right `y`.
    pub right_partner: Vec<Option<usize>>,
}

impl Matching {
    /// The identity matching on `n` items (every item cracked).
    pub fn identity(n: usize) -> Self {
        Matching {
            left_partner: (0..n).map(Some).collect(),
            right_partner: (0..n).map(Some).collect(),
        }
    }

    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.left_partner.iter().filter(|p| p.is_some()).count()
    }

    /// Whether every node is matched.
    pub fn is_perfect(&self) -> bool {
        self.left_partner.iter().all(|p| p.is_some())
    }

    /// Number of cracks: matched pairs `(i, i)`.
    pub fn n_cracks(&self) -> usize {
        self.left_partner
            .iter()
            .enumerate()
            .filter(|&(i, p)| *p == Some(i))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The BigMart supports: 5,4,5,5,3,5 over 10 transactions.
    fn bigmart_supports() -> Vec<u64> {
        vec![5, 4, 5, 5, 3, 5]
    }

    /// The belief function `h` of Figure 2 (0-based items).
    fn belief_h() -> Vec<(f64, f64)> {
        vec![
            (0.0, 1.0),
            (0.4, 0.5),
            (0.5, 0.5),
            (0.4, 0.6),
            (0.1, 0.4),
            (0.5, 0.5),
        ]
    }

    #[test]
    fn groups_match_figure_3b() {
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        assert_eq!(g.n_groups(), 3);
        assert_eq!(g.group_sizes(), &[1, 1, 4]);
        assert_eq!(g.group_supports(), &[3, 4, 5]);
        assert_eq!(g.left_group_of(4), 0); // item 5 (0-based 4), freq .3
        assert_eq!(g.left_group_of(1), 1); // freq .4
        assert_eq!(g.left_group_of(0), 2); // freq .5
    }

    #[test]
    fn outdegrees_match_paper_discussion() {
        // For h: 1' can map to items 1,2,3,4,6 (0-based 0,1,2,3,5);
        // dually O_x counts anonymized candidates per original item.
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        // Item 0 (paper 1) has interval [0,1] -> all 6 anonymized.
        assert_eq!(g.outdegree(0), 6);
        // Item 1 (paper 2) has [0.4, 0.5]: groups .4 (1) + .5 (4) = 5.
        assert_eq!(g.outdegree(1), 5);
        // Item 2 (paper 3) point 0.5 -> 4.
        assert_eq!(g.outdegree(2), 4);
        // Item 3 (paper 4) [0.4,0.6] -> 5.
        assert_eq!(g.outdegree(3), 5);
        // Item 4 (paper 5) [0.1,0.4]: groups .3 and .4 -> 2.
        assert_eq!(g.outdegree(4), 2);
        // Item 5 (paper 6) point 0.5 -> 4.
        assert_eq!(g.outdegree(5), 4);
    }

    #[test]
    fn edges_match_consistency_rule() {
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        // 1' (freq .5) maps to 1,2,3,4,6 but not 5 (0-based: not 4).
        for y in [0usize, 1, 2, 3, 5] {
            assert!(g.has_edge(0, y), "edge (1', {})", y + 1);
        }
        assert!(!g.has_edge(0, 4));
        // 2' (freq .4) maps to 1,2,4,5 (0-based 0,1,3,4).
        for y in [0usize, 1, 3, 4] {
            assert!(g.has_edge(1, y));
        }
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(1, 5));
    }

    #[test]
    fn compliant_beliefs_have_crack_edges() {
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        for x in 0..6 {
            assert!(g.crack_edge_exists(x), "h is compliant on item {x}");
        }
    }

    #[test]
    fn empty_interval_yields_no_candidates() {
        let supports = vec![5, 4];
        let intervals = vec![(0.0, 0.1), (0.0, 1.0)];
        let g = GroupedBigraph::new(&supports, 10, &intervals);
        assert_eq!(g.outdegree(0), 0);
        assert_eq!(g.right_range_of(0), None);
        assert!(!g.crack_edge_exists(0));
        assert_eq!(g.outdegree(1), 2);
    }

    #[test]
    fn to_dense_agrees_on_edges_and_degrees() {
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        let d = g.to_dense();
        for i in 0..6 {
            for y in 0..6 {
                assert_eq!(g.has_edge(i, y), d.has_edge(i, y), "edge ({i},{y})");
            }
        }
        let od = d.right_degrees();
        assert_eq!(od, g.outdegrees());
        assert_eq!(d.n_edges(), g.n_edges());
    }

    #[test]
    fn greedy_matching_is_perfect_under_compliance() {
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        let m = g.greedy_matching();
        assert!(m.is_perfect());
        // Verify consistency of every matched edge.
        for (i, p) in m.left_partner.iter().enumerate() {
            assert!(g.has_edge(i, p.expect("perfect")));
        }
    }

    #[test]
    fn greedy_matching_handles_infeasible_items() {
        // Item 0's interval misses every observed frequency.
        let supports = vec![5, 4, 3];
        let intervals = vec![(0.9, 1.0), (0.0, 1.0), (0.0, 1.0)];
        let g = GroupedBigraph::new(&supports, 10, &intervals);
        let m = g.greedy_matching();
        assert_eq!(m.size(), 2);
        assert!(m.right_partner[0].is_none());
    }

    #[test]
    fn matching_crack_count() {
        let m = Matching::identity(4);
        assert_eq!(m.n_cracks(), 4);
        assert!(m.is_perfect());
        let m2 = Matching {
            left_partner: vec![Some(1), Some(0), Some(2), None],
            right_partner: vec![Some(1), Some(0), Some(2), None],
        };
        assert_eq!(m2.n_cracks(), 1);
        assert_eq!(m2.size(), 3);
        assert!(!m2.is_perfect());
    }

    #[test]
    fn belief_groups_match_figure_3b() {
        // Under h, items 2 and 4 (0-based 1 and 3) share the range
        // {.4, .5} even though their intervals differ — the paper's
        // point about the group view.
        let g = GroupedBigraph::new(&bigmart_supports(), 10, &belief_h());
        let groups = g.belief_groups();
        let find = |y: usize| {
            groups
                .iter()
                .find(|grp| grp.members.contains(&y))
                .expect("every item is in a group")
        };
        assert_eq!(find(1).members, vec![1, 3], "items 2 and 4 share a group");
        assert!(find(1).is_shared());
        // Point-believers 3 and 6 (0-based 2 and 5) share the .5-only
        // group.
        assert_eq!(find(2).members, vec![2, 5]);
        assert!(find(2).is_exclusive());
        // Item 1 (0-based 0) spans all three groups: neither.
        assert!(!find(0).is_exclusive() && !find(0).is_shared());
        // Partition check.
        let total: usize = groups.iter().map(|grp| grp.members.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn point_valued_belief_isolates_groups() {
        // Compliant point-valued belief f of Figure 2.
        let supports = bigmart_supports();
        let intervals: Vec<(f64, f64)> = supports
            .iter()
            .map(|&s| {
                let f = s as f64 / 10.0;
                (f, f)
            })
            .collect();
        let g = GroupedBigraph::new(&supports, 10, &intervals);
        // Outdegree of each item equals its group size.
        assert_eq!(g.outdegrees(), vec![4, 1, 4, 4, 1, 4]);
    }

    #[test]
    fn scaffold_completion_is_equivalent_to_direct_construction() {
        // Every structural observable must agree between the one-shot
        // constructor and the scaffold-then-complete path, for a
        // spread of belief shapes over the same database summary —
        // this is the contract that lets a server share one
        // frequency-group precomputation across concurrent requests.
        let supports = bigmart_supports();
        let scaffold = FrequencyScaffold::new(&supports, 10);
        assert_eq!(scaffold.n(), 6);
        assert_eq!(scaffold.n_transactions(), 10);
        let beliefs: Vec<Vec<(f64, f64)>> = vec![
            belief_h(),
            vec![(0.0, 1.0); 6],
            supports
                .iter()
                .map(|&s| {
                    let f = s as f64 / 10.0;
                    (f, f)
                })
                .collect(),
            vec![(0.9, 1.0); 6], // no candidate group at all
        ];
        for intervals in &beliefs {
            let direct = GroupedBigraph::new(&supports, 10, intervals);
            let shared = scaffold.graph_for(intervals);
            assert_eq!(shared.n(), direct.n());
            assert_eq!(shared.n_groups(), direct.n_groups());
            assert_eq!(shared.group_supports(), direct.group_supports());
            assert_eq!(shared.group_sizes(), direct.group_sizes());
            assert_eq!(shared.outdegrees(), direct.outdegrees());
            for y in 0..direct.n() {
                assert_eq!(shared.right_range_of(y), direct.right_range_of(y));
                assert_eq!(shared.left_group_of(y), direct.left_group_of(y));
            }
            for x in 0..direct.n() {
                for y in 0..direct.n() {
                    assert_eq!(shared.has_edge(x, y), direct.has_edge(x, y));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cover the same domain")]
    fn scaffold_rejects_mismatched_interval_count() {
        FrequencyScaffold::new(&bigmart_supports(), 10).graph_for(&[(0.0, 1.0)]);
    }

    fn assert_scaffold_eq(got: &FrequencyScaffold, want: &FrequencyScaffold) {
        assert_eq!(got.group_supports, want.group_supports);
        assert_eq!(got.group_sizes, want.group_sizes);
        assert_eq!(got.prefix, want.prefix);
        assert_eq!(got.left_group, want.left_group);
        assert_eq!(got.group_members, want.group_members);
        assert_eq!(got.n_transactions, want.n_transactions);
        assert_eq!(got.fingerprint(), want.fingerprint());
    }

    #[test]
    fn apply_support_changes_matches_rebuild() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD31A);
        for trial in 0..200 {
            let n = rng.gen_range(1..=12usize);
            let mut m = rng.gen_range(2..=40u64);
            let mut supports: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=m)).collect();
            let mut scaffold = FrequencyScaffold::new(&supports, m);
            for step in 0..6 {
                let new_m = (m as i64 + rng.gen_range(-1..=1i64)).max(1) as u64;
                let n_changes = rng.gen_range(0..=n);
                let mut changes: Vec<(usize, u64)> = Vec::new();
                let mut touched = vec![false; n];
                for _ in 0..n_changes {
                    let item = rng.gen_range(0..n);
                    if touched[item] {
                        continue;
                    }
                    touched[item] = true;
                    changes.push((item, rng.gen_range(0..=new_m)));
                }
                if new_m < m {
                    // Keep unchanged supports realizable under the
                    // smaller m, as the engine's validation would.
                    for (j, s) in supports.iter().enumerate() {
                        if *s > new_m && !touched[j] {
                            touched[j] = true;
                            changes.push((j, new_m));
                        }
                    }
                }
                for &(item, s) in &changes {
                    supports[item] = s;
                }
                scaffold.apply_support_changes(&changes, new_m);
                m = new_m;
                let rebuilt = FrequencyScaffold::new(&supports, m);
                assert_scaffold_eq(&scaffold, &rebuilt);
                let _ = (trial, step);
            }
        }
    }

    #[test]
    fn support_window_counts_match_outdegrees() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xF00D);
        for _ in 0..300 {
            let n = rng.gen_range(1..=10usize);
            let m = rng.gen_range(1..=60u64);
            let supports: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=m)).collect();
            let intervals: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    let a: f64 = rng.gen_range(0.0..=1.0);
                    let b: f64 = rng.gen_range(0.0..=1.0);
                    (a.min(b), a.max(b))
                })
                .collect();
            let scaffold = FrequencyScaffold::new(&supports, m);
            let graph = scaffold.graph_for(&intervals);
            for (y, &(l, r)) in intervals.iter().enumerate() {
                let by_window = match support_window(m, l, r) {
                    None => 0,
                    Some((lo, hi)) => scaffold.count_supports_in(lo, hi),
                };
                assert_eq!(
                    by_window,
                    graph.outdegree(y),
                    "m={m} interval=({l},{r}) supports={supports:?}"
                );
            }
        }
    }

    #[test]
    fn support_window_edge_cases() {
        // Degenerate interval hitting an exact frequency.
        assert_eq!(support_window(10, 0.5, 0.5), Some((5, 5)));
        // Full interval covers every support.
        assert_eq!(support_window(10, 0.0, 1.0), Some((0, 10)));
        // Interval between adjacent representable frequencies.
        assert_eq!(support_window(10, 0.51, 0.59), None);
        // Window below zero / above one collapses.
        assert_eq!(support_window(10, 1.1, 1.2), None);
    }

    #[test]
    fn count_supports_in_handles_inverted_and_outside_ranges() {
        let scaffold = FrequencyScaffold::new(&bigmart_supports(), 10);
        assert_eq!(scaffold.count_supports_in(5, 3), 0);
        assert_eq!(scaffold.count_supports_in(0, 2), 0);
        assert_eq!(scaffold.count_supports_in(3, 5), 6);
        assert_eq!(scaffold.count_supports_in(4, 4), 1);
        assert_eq!(scaffold.count_supports_in(6, 100), 0);
    }

    #[test]
    fn scaffold_fingerprint_tracks_summary_changes() {
        let a = FrequencyScaffold::new(&bigmart_supports(), 10);
        let b = FrequencyScaffold::new(&bigmart_supports(), 10);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = FrequencyScaffold::new(&bigmart_supports(), 11);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut supports = bigmart_supports();
        supports[0] -= 1;
        let d = FrequencyScaffold::new(&supports, 10);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}

//! The budget layer's contract, end to end: `try_map_indexed` is
//! bit-identical to `map_indexed` at every thread count, panics are
//! isolated into structured errors with a deterministic task index,
//! deadlines bound wall-clock time to budget + one chunk, and a
//! cancel token fired from another thread stops the permanent and the
//! sampler with `Cancelled` at every thread count.

use std::time::{Duration, Instant};

use andi_graph::dense::DenseBigraph;
use andi_graph::par::{map_indexed, try_map_indexed, Budget, CancelToken, ExecError};
use andi_graph::permanent::try_permanent_of_rows_budgeted;
use andi_graph::sampler::{sample_cracks_budgeted, SamplerConfig};
use andi_graph::Matching;
use proptest::prelude::*;

/// Generous allowance for "one chunk of work plus scheduling noise"
/// on a loaded CI box. The deadline contract is budget + one poll
/// interval, not an exact cut.
const SLACK: Duration = Duration::from_millis(2000);

fn complete_rows(n: usize) -> Vec<u64> {
    vec![(1u64 << n) - 1; n]
}

#[test]
fn try_map_indexed_matches_map_indexed_across_threads() {
    for n_tasks in [0usize, 1, 2, 7, 64, 257] {
        let expected = map_indexed(1, n_tasks, |i| i * i + 3);
        for threads in 1..=8 {
            let got = try_map_indexed(threads, n_tasks, &Budget::unlimited(), |i| i * i + 3)
                .expect("no budget, no panics");
            assert_eq!(got, expected, "threads={threads} n_tasks={n_tasks}");
        }
    }
}

#[test]
fn panicking_task_reports_the_first_panicking_index() {
    for threads in 1..=8 {
        let err = try_map_indexed(threads, 32, &Budget::unlimited(), |i| {
            if i == 7 || i == 13 {
                panic!("boom at {i}");
            }
            i
        })
        .expect_err("task 7 panics");
        assert_eq!(
            err,
            ExecError::WorkerPanic {
                task: 7,
                payload: "boom at 7".into()
            },
            "threads={threads}"
        );
    }
}

#[test]
fn zero_budget_trips_before_any_task_runs() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let ran = AtomicUsize::new(0);
    for threads in 1..=8 {
        let err = try_map_indexed(threads, 16, &Budget::with_deadline(Duration::ZERO), |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        })
        .expect_err("deadline already passed");
        assert_eq!(err, ExecError::BudgetExceeded { budget_ms: 0 });
    }
    assert_eq!(ran.load(std::sync::atomic::Ordering::Relaxed), 0);
}

#[test]
fn budgeted_permanent_returns_within_budget_plus_one_chunk() {
    // 2^26 Gray-code subsets would take far longer than the budget;
    // the walk must give up within budget + one chunk of wall clock.
    let rows = complete_rows(26);
    for threads in [1usize, 4] {
        let budget = Budget::with_deadline(Duration::from_millis(25));
        let start = Instant::now();
        let out = try_permanent_of_rows_budgeted(&rows, 26, threads, &budget);
        let elapsed = start.elapsed();
        assert_eq!(
            out,
            Err(ExecError::BudgetExceeded { budget_ms: 25 }),
            "threads={threads}"
        );
        assert!(
            elapsed <= Duration::from_millis(25) + SLACK,
            "threads={threads}: took {elapsed:?}"
        );
    }
}

#[test]
fn budgeted_sampler_returns_within_budget_plus_one_batch() {
    let g = DenseBigraph::complete(12);
    let config = SamplerConfig {
        n_samples: 200_000,
        ..SamplerConfig::quick()
    };
    for threads in [1usize, 4] {
        let budget = Budget::with_deadline(Duration::from_millis(25));
        let start = Instant::now();
        let out = sample_cracks_budgeted(&g, &Matching::identity(12), &config, 5, threads, &budget);
        let elapsed = start.elapsed();
        assert!(out.is_err(), "threads={threads}: 200k samples in 25ms");
        assert!(
            elapsed <= Duration::from_millis(25) + SLACK,
            "threads={threads}: took {elapsed:?}"
        );
    }
}

#[test]
fn cross_thread_cancel_stops_the_permanent() {
    let rows = complete_rows(24);
    for threads in 1..=8 {
        let token = CancelToken::new();
        let budget = Budget::unlimited().with_token(token.clone());
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                token.cancel();
            })
        };
        let out = try_permanent_of_rows_budgeted(&rows, 24, threads, &budget);
        canceller.join().unwrap();
        // Either the walk was cancelled mid-flight (the expected
        // outcome) or a very fast box finished 2^24 subsets in 20ms.
        match out {
            Err(ExecError::Cancelled) => {}
            Ok(Some(_)) => {}
            other => panic!("threads={threads}: unexpected outcome {other:?}"),
        }
    }
}

#[test]
fn cross_thread_cancel_stops_the_sampler() {
    let g = DenseBigraph::complete(12);
    let config = SamplerConfig {
        n_samples: 500_000,
        ..SamplerConfig::quick()
    };
    for threads in 1..=8 {
        let token = CancelToken::new();
        let budget = Budget::unlimited().with_token(token.clone());
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                token.cancel();
            })
        };
        let out = sample_cracks_budgeted(&g, &Matching::identity(12), &config, 5, threads, &budget);
        canceller.join().unwrap();
        match out {
            Err(andi_graph::SamplerError::Interrupted(ExecError::Cancelled)) => {}
            Ok(_) => {}
            other => panic!("threads={threads}: unexpected outcome {other:?}"),
        }
    }
}

#[test]
fn pre_cancelled_token_short_circuits_everything() {
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_token(token);
    for threads in 1..=8 {
        assert_eq!(
            try_permanent_of_rows_budgeted(&complete_rows(16), 16, threads, &budget),
            Err(ExecError::Cancelled)
        );
        let g = DenseBigraph::complete(8);
        let out = sample_cracks_budgeted(
            &g,
            &Matching::identity(8),
            &SamplerConfig::quick(),
            5,
            threads,
            &budget,
        );
        assert!(matches!(
            out,
            Err(andi_graph::SamplerError::Interrupted(ExecError::Cancelled))
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `try_map_indexed` with an unlimited budget is `map_indexed`
    /// for arbitrary task counts and thread counts.
    #[test]
    fn try_map_is_map(n_tasks in 0usize..100, threads in 1usize..9, salt in 0u64..1000) {
        let f = |i: usize| (i as u64).wrapping_mul(salt).rotate_left((i % 63) as u32);
        let expected: Vec<u64> = (0..n_tasks).map(f).collect();
        let got = try_map_indexed(threads, n_tasks, &Budget::unlimited(), f).unwrap();
        prop_assert_eq!(got, expected);
    }

    /// A panic at a data-dependent index is reported at the same
    /// (minimal) index regardless of thread count.
    #[test]
    fn panic_index_is_thread_count_invariant(
        n_tasks in 1usize..64,
        bad_bits in 1u64..u64::MAX,
    ) {
        let is_bad = move |i: usize| (bad_bits >> (i % 64)) & 1 == 1;
        let serial = try_map_indexed(1, n_tasks, &Budget::unlimited(), move |i| {
            if is_bad(i) { panic!("bad {i}"); }
            i
        });
        for threads in 2..=6 {
            let par = try_map_indexed(threads, n_tasks, &Budget::unlimited(), move |i| {
                if is_bad(i) { panic!("bad {i}"); }
                i
            });
            prop_assert_eq!(&par, &serial, "threads={}", threads);
        }
    }
}

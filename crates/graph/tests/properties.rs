//! Property tests for the bipartite machinery: the estimators and
//! the sampler are only trustworthy if the graph layer is exactly
//! right.

use andi_graph::dense::DenseBigraph;
use andi_graph::grouped::GroupedBigraph;
use andi_graph::matching::hopcroft_karp;
use andi_graph::permanent::{permanent, permanent_naive};
use andi_graph::propagate::propagate;
use andi_graph::sampler::{sample_cracks, SamplerConfig};
use andi_graph::Matching;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random bipartite graph given as an adjacency bit
/// matrix over `n <= 7` nodes per side.
fn small_graph() -> impl Strategy<Value = DenseBigraph> {
    (2usize..=7).prop_flat_map(|n| {
        prop::collection::vec(prop::bool::weighted(0.5), n * n).prop_map(move |bits| {
            let mut g = DenseBigraph::new(n);
            for (k, &b) in bits.iter().enumerate() {
                if b {
                    g.add_edge(k / n, k % n);
                }
            }
            g
        })
    })
}

/// Strategy: a random grouped interval graph (supports + compliant
/// random-width intervals).
fn small_grouped() -> impl Strategy<Value = GroupedBigraph> {
    (2usize..=8).prop_flat_map(|n| {
        (
            prop::collection::vec(1u64..50, n),
            prop::collection::vec((0.0f64..0.25, 0.0f64..0.25), n),
        )
            .prop_map(|(supports, slacks)| {
                let intervals: Vec<(f64, f64)> = supports
                    .iter()
                    .zip(slacks.iter())
                    .map(|(&s, &(a, b))| {
                        let f = s as f64 / 50.0;
                        ((f - a).max(0.0), (f + b).min(1.0))
                    })
                    .collect();
                GroupedBigraph::new(&supports, 50, &intervals)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hopcroft–Karp finds a perfect matching exactly when the
    /// permanent is positive.
    #[test]
    fn hk_agrees_with_permanent(g in small_graph()) {
        let perm = permanent(&g);
        let m = hopcroft_karp(&g);
        prop_assert_eq!(perm > 0, m.is_perfect());
    }

    /// Ryser's formula agrees with naive expansion.
    #[test]
    fn ryser_agrees_with_naive(g in small_graph()) {
        prop_assert_eq!(permanent(&g), permanent_naive(&g));
    }

    /// Propagation is sound (restoring forced edges preserves the
    /// permanent) and idempotent.
    #[test]
    fn propagation_sound_and_idempotent(g in small_graph()) {
        let p = propagate(&g);
        if p.infeasible() {
            prop_assert_eq!(permanent(&g), 0);
        } else {
            let mut restored = p.graph.clone();
            for &(i, y) in &p.forced {
                restored.add_edge(i, y);
            }
            prop_assert_eq!(permanent(&restored), permanent(&g));
            // Idempotent: a second pass finds nothing new.
            let p2 = propagate(&p.graph);
            let spurious: Vec<_> = p2
                .forced
                .iter()
                .filter(|f| !p.forced.contains(f))
                .collect();
            prop_assert!(spurious.is_empty(), "second pass forced {spurious:?}");
        }
    }

    /// The grouped greedy matching is maximum (same size as
    /// Hopcroft–Karp on the dense rendering).
    #[test]
    fn greedy_interval_matching_is_maximum(g in small_grouped()) {
        let greedy = g.greedy_matching();
        let hk = hopcroft_karp(&g.to_dense());
        prop_assert_eq!(greedy.size(), hk.size());
        // And every matched edge is consistent.
        for (i, p) in greedy.left_partner.iter().enumerate() {
            if let Some(y) = *p {
                prop_assert!(g.has_edge(i, y));
            }
        }
    }

    /// Grouped outdegrees equal dense right-degrees (the O-estimate's
    /// prefix-sum path is exact).
    #[test]
    fn grouped_outdegrees_are_exact(g in small_grouped()) {
        prop_assert_eq!(g.outdegrees(), g.to_dense().right_degrees());
    }
}

/// Enumerates all perfect matchings of a small dense graph as
/// partner vectors.
fn enumerate_matchings(g: &DenseBigraph) -> Vec<Vec<usize>> {
    let n = g.n();
    let mut out = Vec::new();
    let mut partner = vec![usize::MAX; n];
    fn rec(
        g: &DenseBigraph,
        i: usize,
        used: u64,
        partner: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        let n = g.n();
        if i == n {
            out.push(partner.clone());
            return;
        }
        for y in g.neighbors(i) {
            if used & (1 << y) == 0 {
                partner[i] = y;
                rec(g, i + 1, used | (1 << y), partner, out);
            }
        }
    }
    rec(g, 0, 0, &mut partner, &mut out);
    out
}

/// The swap walk's stationary distribution is uniform over the
/// matchings it can reach: on a well-connected small graph, a long
/// chain visits every perfect matching with near-equal frequency
/// (chi-square-style tolerance).
#[test]
fn sampler_is_uniform_over_matchings() {
    // A 4-node graph, dense enough for the transposition walk to be
    // irreducible: complete minus one edge.
    let mut g = DenseBigraph::complete(4);
    g.remove_edge(3, 0);
    let matchings = enumerate_matchings(&g);
    let k = matchings.len();
    assert!(k >= 10, "want a rich space, got {k}");

    // Track visit counts of each matching via its crack-pattern...
    // crack counts collide, so count full partner vectors: re-run the
    // sampler manually through CrackSamples is insufficient; instead
    // sample crack counts and compare against the exact distribution.
    let config = SamplerConfig {
        warmup_swaps: 5_000,
        swaps_between_samples: 50,
        samples_per_seed: 4_000,
        n_samples: 12_000,
        use_locality: true,
    };
    let mut rng = StdRng::seed_from_u64(2024);
    let samples = sample_cracks(&g, &Matching::identity(4), &config, &mut rng).unwrap();

    // Exact crack-count distribution over the enumerated matchings.
    let mut exact_counts = [0usize; 5];
    for m in &matchings {
        let cracks = m.iter().enumerate().filter(|&(i, &y)| i == y).count();
        exact_counts[cracks] += 1;
    }
    let exact: Vec<f64> = exact_counts.iter().map(|&c| c as f64 / k as f64).collect();
    let mut observed = [0usize; 5];
    for &c in &samples.counts {
        observed[c] += 1;
    }
    let total = samples.counts.len() as f64;
    for cracks in 0..=4 {
        let obs = observed[cracks] as f64 / total;
        assert!(
            (obs - exact[cracks]).abs() < 0.03,
            "cracks={cracks}: observed {obs:.3} vs exact {:.3}",
            exact[cracks]
        );
    }
}

/// The identity matching is reachable from any other matching (the
/// walk is reversible), so starting anywhere converges to the same
/// distribution: compare two very different starts.
#[test]
fn sampler_start_independence() {
    let mut g = DenseBigraph::complete(5);
    g.remove_edge(0, 4);
    let config = SamplerConfig {
        warmup_swaps: 10_000,
        swaps_between_samples: 100,
        samples_per_seed: 2_000,
        n_samples: 6_000,
        use_locality: true,
    };
    let id_start = Matching::identity(5);
    let hk = hopcroft_karp(&g); // some other perfect matching
    let mut rng1 = StdRng::seed_from_u64(7);
    let mut rng2 = StdRng::seed_from_u64(8);
    let a = sample_cracks(&g, &id_start, &config, &mut rng1)
        .unwrap()
        .mean();
    let b = sample_cracks(&g, &hk, &config, &mut rng2).unwrap().mean();
    assert!((a - b).abs() < 0.1, "start dependence: {a} vs {b}");
}

//! Golden tests: every rule has a fixture that must flag and a
//! near-miss that must not, plus pragma-hygiene and whole-tree
//! checks, and exit-code tests against the compiled binary.

use std::path::{Path, PathBuf};
use std::process::Command;

use andi_lint::{lint_file, lint_files, lint_source, Finding};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Lints a fixture file under a virtual workspace path.
fn lint_fixture(fixture: &str, virtual_path: &str) -> Vec<Finding> {
    lint_file(virtual_path, &fixture_dir().join(fixture)).expect("fixture exists")
}

/// Lints several fixture files together as one virtual workspace —
/// how the cross-file fixtures exercise the call graph.
fn lint_fixtures(pairs: &[(&str, &str)]) -> Vec<Finding> {
    let pairs: Vec<(String, PathBuf)> = pairs
        .iter()
        .map(|(fixture, virt)| (virt.to_string(), fixture_dir().join(fixture)))
        .collect();
    lint_files(&pairs).expect("fixtures exist")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn nondet_iteration_flags_and_near_miss() {
    let bad = lint_fixture("nondet_flag.rs", "crates/core/src/nondet_flag.rs");
    let rules = rules_of(&bad);
    assert!(
        rules.iter().filter(|r| **r == "nondet-iteration").count() >= 2,
        "for-loop and .keys() sites must both flag, got {bad:?}"
    );

    let ok = lint_fixture("nondet_near_miss.rs", "crates/core/src/nondet_near_miss.rs");
    assert!(ok.is_empty(), "near-miss must stay clean, got {ok:?}");

    // Out of scope: the same code in the binary crate root is not a
    // library determinism concern for this rule.
    let out_of_scope = lint_fixture("nondet_flag.rs", "src/nondet_flag.rs");
    assert!(rules_of(&out_of_scope)
        .iter()
        .all(|r| *r != "nondet-iteration"));
}

#[test]
fn lib_unwrap_flags_and_near_miss() {
    let bad = lint_fixture("unwrap_flag.rs", "crates/graph/src/unwrap_flag.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "lib-unwrap").count(),
        3,
        "unwrap, expect and unwrap_err must flag, got {bad:?}"
    );

    let ok = lint_fixture(
        "unwrap_near_miss.rs",
        "crates/graph/src/unwrap_near_miss.rs",
    );
    assert!(ok.is_empty(), "near-miss must stay clean, got {ok:?}");
}

#[test]
fn wallclock_flags_and_near_miss() {
    let bad = lint_fixture("wallclock_flag.rs", "crates/core/src/wallclock_flag.rs");
    assert!(rules_of(&bad).contains(&"wallclock-in-core"), "{bad:?}");

    // The identical file under crates/bench is allowed.
    let bench = lint_fixture("wallclock_flag.rs", "crates/bench/src/wallclock_flag.rs");
    assert!(bench.is_empty(), "bench may time, got {bench:?}");

    let ok = lint_fixture(
        "wallclock_near_miss.rs",
        "crates/core/src/wallclock_near_miss.rs",
    );
    assert!(ok.is_empty(), "near-miss must stay clean, got {ok:?}");
}

#[test]
fn unseeded_rng_flags_and_near_miss() {
    let bad = lint_fixture("rng_flag.rs", "crates/core/src/rng_flag.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "unseeded-rng").count(),
        2,
        "from_entropy and thread_rng must flag, got {bad:?}"
    );

    let ok = lint_fixture("rng_near_miss.rs", "crates/graph/src/rng_near_miss.rs");
    assert!(ok.is_empty(), "near-miss must stay clean, got {ok:?}");

    // The rule is scoped to core/graph: the data crate's generators
    // take RNGs from callers anyway, but the rule must not fire
    // there.
    let out_of_scope = lint_fixture("rng_flag.rs", "crates/data/src/rng_flag.rs");
    assert!(rules_of(&out_of_scope).iter().all(|r| *r != "unseeded-rng"));
}

#[test]
fn thread_spawn_flags_and_near_miss() {
    let bad = lint_fixture("thread_flag.rs", "crates/core/src/thread_flag.rs");
    let rules = rules_of(&bad);
    assert!(
        rules
            .iter()
            .filter(|r| **r == "thread-spawn-outside-par")
            .count()
            >= 2,
        "std::thread::spawn and crossbeam must both flag, got {bad:?}"
    );

    // The same file IS the parallel layer: allowed.
    let par = lint_fixture("thread_flag.rs", "crates/graph/src/par.rs");
    assert!(par.is_empty(), "par.rs may spawn, got {par:?}");

    let ok = lint_fixture("thread_near_miss.rs", "crates/core/src/thread_near_miss.rs");
    assert!(ok.is_empty(), "near-miss must stay clean, got {ok:?}");
}

#[test]
fn panic_reachability_flags_and_near_miss() {
    let bad = lint_fixture("panic_flag.rs", "crates/core/src/panic_flag.rs");
    let hits: Vec<&Finding> = bad
        .iter()
        .filter(|f| f.rule == "panic-reachability")
        .collect();
    assert_eq!(
        hits.len(),
        2,
        "the transitive panic! and the direct unreachable! must flag, got {bad:?}"
    );
    // The transitive site reports the shortest path from the root.
    assert!(
        hits.iter().any(|f| f.message.contains("lookup → locate")),
        "shortest path missing from report: {hits:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("`classify`")),
        "direct site must name its own root: {hits:?}"
    );

    let ok = lint_fixture("panic_near_miss.rs", "crates/core/src/panic_near_miss.rs");
    assert!(ok.is_empty(), "near-miss must stay clean, got {ok:?}");
}

#[test]
fn cross_file_panic_reachability() {
    // The leaf alone is clean: `pub(crate)` is not a public root.
    let alone = lint_fixture("xpanic_leaf.rs", "crates/graph/src/xpanic_leaf.rs");
    assert!(alone.is_empty(), "leaf alone must be clean, got {alone:?}");

    // Together with the public entry, the panic becomes reachable
    // across files — and the finding lands at the leaf site.
    let bad = lint_fixtures(&[
        ("xpanic_entry_flag.rs", "crates/graph/src/xpanic_entry.rs"),
        ("xpanic_leaf.rs", "crates/graph/src/xpanic_leaf.rs"),
    ]);
    let hits: Vec<&Finding> = bad
        .iter()
        .filter(|f| f.rule == "panic-reachability")
        .collect();
    assert_eq!(hits.len(), 1, "{bad:?}");
    assert_eq!(hits[0].file, "crates/graph/src/xpanic_leaf.rs");
    assert!(
        hits[0].message.contains("entry → leaf_pick"),
        "{}",
        hits[0].message
    );

    // A pragma on the call edge vouches for the subtree: clean, and
    // the pragma counts as used (no unused-pragma finding either).
    let ok = lint_fixtures(&[
        (
            "xpanic_entry_near_miss.rs",
            "crates/graph/src/xpanic_entry.rs",
        ),
        ("xpanic_leaf.rs", "crates/graph/src/xpanic_leaf.rs"),
    ]);
    assert!(ok.is_empty(), "pragma'd edge must stay clean, got {ok:?}");
}

#[test]
fn seed_provenance_flags_and_near_miss() {
    let bad = lint_fixture("seed_flag.rs", "crates/core/src/seed_flag.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "seed-provenance").count(),
        2,
        "direct sink and *_seed parameter must both flag, got {bad:?}"
    );

    let ok = lint_fixture("seed_near_miss.rs", "crates/core/src/seed_near_miss.rs");
    assert!(
        ok.is_empty(),
        "config-derived seeds must stay clean, got {ok:?}"
    );
}

#[test]
fn float_merge_order_flags_and_near_miss() {
    let bad = lint_fixture("float_flag.rs", "crates/core/src/float_flag.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "float-merge-order").count(),
        2,
        "thread-shaped sum and += accumulation must both flag, got {bad:?}"
    );

    let ok = lint_fixture("float_near_miss.rs", "crates/core/src/float_near_miss.rs");
    assert!(
        ok.is_empty(),
        "integer folds and fixed partitions must stay clean, got {ok:?}"
    );

    // Scope: the rule watches core/graph only.
    let out_of_scope = lint_fixture("float_flag.rs", "crates/mining/src/float_flag.rs");
    assert!(rules_of(&out_of_scope)
        .iter()
        .all(|r| *r != "float-merge-order"));
}

#[test]
fn result_discard_flags_and_near_miss() {
    let bad = lint_fixture("result_flag.rs", "crates/core/src/result_flag.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "result-discard").count(),
        2,
        "`let _ =` and the bare statement must both flag, got {bad:?}"
    );

    let ok = lint_fixture("result_near_miss.rs", "crates/core/src/result_near_miss.rs");
    assert!(ok.is_empty(), "handled Results must stay clean, got {ok:?}");
}

#[test]
fn poll_reachability_flags_and_near_miss() {
    // The budgeted entry points are the fns with a Budget/CancelToken
    // parameter — no path list: the rule follows the call graph.
    let bad = lint_fixture("poll_flag.rs", "crates/graph/src/poll_flag.rs");
    let rules = rules_of(&bad);
    assert_eq!(
        rules.iter().filter(|r| **r == "poll-reachability").count(),
        2,
        "the pollless for-walk and while-retry must both flag, got {bad:?}"
    );

    // A direct budget.check(), a poll through a two-level helper
    // chain, a constant trip count, or a short body all neutralize
    // the rule — with no suppressions.
    let ok = lint_fixture("poll_near_miss.rs", "crates/graph/src/poll_near_miss.rs");
    assert!(ok.is_empty(), "near-miss must stay clean, got {ok:?}");

    // Out of scope: the binary crate root holds no budgeted entry
    // points.
    let out_of_scope = lint_fixture("poll_flag.rs", "src/poll_flag.rs");
    assert!(rules_of(&out_of_scope)
        .iter()
        .all(|r| *r != "poll-reachability"));
}

#[test]
fn unchecked_width_flags_and_near_miss() {
    let bad = lint_fixture("width_flag.rs", "crates/graph/src/width_flag.rs");
    let hits: Vec<&Finding> = bad.iter().filter(|f| f.rule == "unchecked-width").collect();
    assert_eq!(
        hits.len(),
        2,
        "the unbounded accumulation and the unbounded shift must both flag, got {bad:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("unproven `+`")),
        "the accumulation must name its op: {hits:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("unproven `<<`")),
        "the shift must name its op: {hits:?}"
    );

    let ok = lint_fixture("width_near_miss.rs", "crates/graph/src/width_near_miss.rs");
    assert!(
        ok.is_empty(),
        "guarded + assumed shapes must prove clean, got {ok:?}"
    );
}

#[test]
fn assume_soundness_flags_and_near_miss() {
    let bad = lint_fixture("assume_flag.rs", "crates/graph/src/assume_flag.rs");
    let hits: Vec<&Finding> = bad
        .iter()
        .filter(|f| f.rule == "assume-soundness")
        .collect();
    assert_eq!(
        hits.len(),
        2,
        "the unguarded assume and the half-guarded pair must flag, got {bad:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("(n in [0, 1000])")),
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("(b in [0, 50])")),
        "the guarded `a` must pass while the unguarded `b` flags: {hits:?}"
    );

    let ok = lint_fixture(
        "assume_near_miss.rs",
        "crates/graph/src/assume_near_miss.rs",
    );
    assert!(
        ok.is_empty(),
        "assert- and match-guarded assumes must stay clean, got {ok:?}"
    );
}

/// Satellite regression: widening the fast-lane dispatch ceiling
/// without re-deriving the width proof must be caught by the prover.
/// At `SAFE_UNCHECKED_N = 24`, the walk bound 2^23 * 24^24 exceeds
/// `i128::MAX`, so no total-accumulator contract can exist — the best
/// available assume (i128::MAX itself) leaves the `total += …`
/// accumulation unprovable.
#[test]
fn injected_dispatch_widening_is_flagged() {
    let path = workspace_root().join("crates/graph/src/permanent.rs");
    let src = std::fs::read_to_string(&path).expect("kernel source exists");

    // Baseline: the shipped kernel proves clean even standalone.
    let clean = lint_source("crates/graph/src/permanent.rs", &src);
    assert!(
        clean.is_empty(),
        "shipped kernel must prove clean, got {clean:?}"
    );

    let mut bugged = src.clone();
    for (from, to) in [
        // The injected bug: widen the fast-lane ceiling to 24.
        (
            "SAFE_UNCHECKED_N: usize = 22",
            "SAFE_UNCHECKED_N: usize = 24",
        ),
        // Re-derive every small contract for N = 24 (24, 24^2, 24^3)…
        ("in [1, 22]", "in [1, 24]"),
        ("in [-22, 22]", "in [-24, 24]"),
        ("in [-484, 484]", "in [-576, 576]"),
        ("in [-10648, 10648]", "in [-13824, 13824]"),
        // …but no total bound exists: even claiming the full i128
        // range cannot make the accumulation provable.
        (
            "[-716026155870127773233492469657632768, 716026155870127773233492469657632768]",
            "[-170141183460469231731687303715884105727, 170141183460469231731687303715884105727]",
        ),
    ] {
        assert!(
            bugged.contains(from),
            "kernel drifted: `{from}` not found in permanent.rs"
        );
        bugged = bugged.replace(from, to);
    }

    let findings = lint_source("crates/graph/src/permanent.rs", &bugged);
    let width: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "unchecked-width")
        .collect();
    assert_eq!(
        width.len(),
        1,
        "exactly the widened accumulation must flag, got {findings:?}"
    );
    assert!(
        width[0].message.contains("unproven `+`"),
        "the finding must name the offending op: {}",
        width[0].message
    );
    assert!(
        width[0].message.contains("does not fit `i128`"),
        "the finding must show the overflowed type: {}",
        width[0].message
    );
    assert!(
        findings.iter().all(|f| f.rule == "unchecked-width"),
        "the re-derived contracts must not trip other rules: {findings:?}"
    );
}

#[test]
fn budget_layer_scope_exemptions() {
    // par.rs hosts the Budget deadline clock: Instant is sanctioned
    // there (and only there, outside crates/bench).
    let par = lint_fixture("wallclock_flag.rs", "crates/graph/src/par.rs");
    assert!(
        rules_of(&par).iter().all(|r| *r != "wallclock-in-core"),
        "par.rs may read the clock, got {par:?}"
    );

    // faults.rs injects delays via std::thread::sleep; the
    // thread-spawn rule must not fire there.
    let faults = lint_fixture("thread_flag.rs", "crates/graph/src/faults.rs");
    assert!(
        rules_of(&faults)
            .iter()
            .all(|r| *r != "thread-spawn-outside-par"),
        "faults.rs may sleep, got {faults:?}"
    );
}

/// Two runs over differently-ordered file lists must produce
/// byte-identical JSON: findings are sorted by
/// `(path, line, column, rule)`, not by walk order.
#[test]
fn shuffled_file_order_yields_identical_json() {
    let pairs = [
        ("unwrap_flag.rs", "crates/core/src/a_unwrap.rs"),
        ("result_flag.rs", "crates/core/src/b_result.rs"),
        ("float_flag.rs", "crates/core/src/c_float.rs"),
        ("xpanic_entry_flag.rs", "crates/graph/src/xpanic_entry.rs"),
        ("xpanic_leaf.rs", "crates/graph/src/xpanic_leaf.rs"),
        ("poll_flag.rs", "crates/graph/src/poll_flag.rs"),
        ("width_flag.rs", "crates/graph/src/width_flag.rs"),
        ("assume_flag.rs", "crates/graph/src/assume_flag.rs"),
    ];
    let forward = andi_lint::format_json(&lint_fixtures(&pairs));
    let mut reversed = pairs;
    reversed.reverse();
    let backward = andi_lint::format_json(&lint_fixtures(&reversed));
    // Interleave a third order to be thorough.
    let shuffled = [
        pairs[2], pairs[6], pairs[4], pairs[0], pairs[7], pairs[3], pairs[1], pairs[5],
    ];
    let scrambled = andi_lint::format_json(&lint_fixtures(&shuffled));
    assert_eq!(forward, backward, "file order leaked into the output");
    assert_eq!(forward, scrambled, "file order leaked into the output");
    assert!(!forward.trim().is_empty());
}

/// Pragma burn-down: the count of active suppressions in the walked
/// tree may only decrease. The scope-aware semantic engine retired a
/// batch of pragmas the token heuristics needed; new code must not
/// creep back up. Raise this ceiling only with a written argument in
/// the PR description.
#[test]
fn pragma_count_only_decreases() {
    let count = andi_lint::count_pragmas(&workspace_root()).expect("tree walk succeeds");
    const CEILING: usize = 9;
    assert!(
        count <= CEILING,
        "active andi::allow pragmas grew to {count} (ceiling {CEILING}); \
         justify each new suppression and lower the ceiling when you retire one"
    );
}

/// Golden SARIF: the `--format sarif` rendering of a pinned fixture
/// workspace must stay byte-identical. CI consumers ingest this
/// format; any drift is a deliberate schema change. Regenerate with
/// `ANDI_BLESS=1 cargo test -p andi-lint --test golden sarif`.
#[test]
fn sarif_output_is_byte_stable() {
    let findings = lint_fixtures(&[
        ("unwrap_flag.rs", "crates/core/src/a_unwrap.rs"),
        ("float_flag.rs", "crates/core/src/c_float.rs"),
    ]);
    assert!(!findings.is_empty(), "the golden set must have findings");
    let sarif = andi_lint::format_sarif(&findings);
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_check.sarif");
    if std::env::var_os("ANDI_BLESS").is_some() {
        std::fs::write(&golden_path, &sarif).expect("bless writes the golden");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden SARIF exists; regenerate with ANDI_BLESS=1");
    assert_eq!(
        sarif, golden,
        "SARIF output drifted from tests/golden_check.sarif; \
         bless deliberately with ANDI_BLESS=1"
    );
}

/// SARIF must be walk-order independent, exactly like the JSON
/// format: findings are sorted by `(path, line, column, rule)` and
/// the rules table by rule id.
#[test]
fn shuffled_file_order_yields_identical_sarif() {
    let pairs = [
        ("unwrap_flag.rs", "crates/core/src/a_unwrap.rs"),
        ("result_flag.rs", "crates/core/src/b_result.rs"),
        ("float_flag.rs", "crates/core/src/c_float.rs"),
        ("xpanic_entry_flag.rs", "crates/graph/src/xpanic_entry.rs"),
        ("xpanic_leaf.rs", "crates/graph/src/xpanic_leaf.rs"),
        ("poll_flag.rs", "crates/graph/src/poll_flag.rs"),
        ("width_flag.rs", "crates/graph/src/width_flag.rs"),
        ("assume_flag.rs", "crates/graph/src/assume_flag.rs"),
    ];
    let forward = andi_lint::format_sarif(&lint_fixtures(&pairs));
    let mut reversed = pairs;
    reversed.reverse();
    let backward = andi_lint::format_sarif(&lint_fixtures(&reversed));
    let shuffled = [
        pairs[5], pairs[1], pairs[7], pairs[3], pairs[0], pairs[6], pairs[2], pairs[4],
    ];
    let scrambled = andi_lint::format_sarif(&lint_fixtures(&shuffled));
    assert_eq!(forward, backward, "file order leaked into SARIF");
    assert_eq!(forward, scrambled, "file order leaked into SARIF");
    assert!(forward.contains("\"version\": \"2.1.0\""));
    assert!(forward.contains("json.schemastore.org/sarif-2.1.0.json"));
}

/// Runs the information-flow pass over fixture files mounted at
/// virtual workspace paths — the taint analogue of [`lint_fixtures`].
fn taint_fixtures(pairs: &[(&str, &str)]) -> andi_lint::TaintReport {
    let files: Vec<andi_lint::SourceFile> = pairs
        .iter()
        .map(|(fixture, virt)| {
            let src = std::fs::read_to_string(fixture_dir().join(fixture)).expect("fixture exists");
            andi_lint::SourceFile::new(virt, &src)
        })
        .collect();
    let graph = andi_lint::build(&files);
    andi_lint::analyze(&files, &graph)
}

#[test]
fn leak_to_log_flags_and_near_miss() {
    let bad = taint_fixtures(&[("leak_log_flag.rs", "crates/core/src/leak_log_flag.rs")]);
    assert_eq!(rules_of(&bad.findings), vec!["leak-to-log"], "{bad:?}");
    let m = &bad.findings[0].message;
    assert!(m.contains("Basket::items"), "source must be named: {m}");
    assert!(m.contains("`format!`"), "sink must be named: {m}");

    let ok = taint_fixtures(&[(
        "leak_log_near_miss.rs",
        "crates/core/src/leak_log_near_miss.rs",
    )]);
    assert!(ok.findings.is_empty(), "aggregates are clean: {ok:?}");
    assert!(ok.hygiene.is_empty(), "{ok:?}");
}

#[test]
fn leak_in_error_flags_and_near_miss() {
    let bad = taint_fixtures(&[("leak_error_flag.rs", "crates/core/src/leak_error_flag.rs")]);
    assert_eq!(rules_of(&bad.findings), vec!["leak-in-error"], "{bad:?}");
    let m = &bad.findings[0].message;
    assert!(m.contains("Basket::items"), "source must be named: {m}");

    let ok = taint_fixtures(&[(
        "leak_error_near_miss.rs",
        "crates/core/src/leak_error_near_miss.rs",
    )]);
    assert!(ok.findings.is_empty(), "counts in errors are clean: {ok:?}");
    assert!(ok.hygiene.is_empty(), "{ok:?}");
}

#[test]
fn sensitive_debug_flags_and_near_miss() {
    let bad = taint_fixtures(&[(
        "sensitive_debug_flag.rs",
        "crates/core/src/sensitive_debug_flag.rs",
    )]);
    assert_eq!(rules_of(&bad.findings), vec!["sensitive-debug"], "{bad:?}");

    let ok = taint_fixtures(&[(
        "sensitive_debug_near_miss.rs",
        "crates/core/src/sensitive_debug_near_miss.rs",
    )]);
    assert!(
        ok.findings.is_empty(),
        "declassified Debug is clean: {ok:?}"
    );
    assert!(ok.hygiene.is_empty(), "the pragma is used: {ok:?}");
    assert_eq!(
        ok.stats.declassifies.len(),
        1,
        "the boundary joins the inventory: {ok:?}"
    );
}

/// End-to-end injected-leak drill: mount the real workspace sources
/// plus one extra file that prints raw transactions, and assert the
/// analysis flags exactly that file with a chain naming the real
/// source projection and the sink. This proves the annotations seeded
/// in `crates/data` actually protect the tree — not just fixtures.
#[test]
fn injected_leak_is_caught_with_named_chain() {
    let root = workspace_root();
    let mut files: Vec<andi_lint::SourceFile> = Vec::new();
    for (virt, real) in andi_lint::tree_files(&root).expect("tree walk succeeds") {
        files.push(andi_lint::SourceFile::new(
            &virt,
            &std::fs::read_to_string(&real).expect("source readable"),
        ));
    }
    files.push(andi_lint::SourceFile::new(
        "crates/core/src/injected_leak.rs",
        "use andi_data::database::Database;\n\
         pub fn debug_dump(db: &Database) {\n\
             println!(\"{:?}\", db.transactions());\n\
         }\n",
    ));
    let graph = andi_lint::build(&files);
    let report = andi_lint::analyze(&files, &graph);
    let injected: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "crates/core/src/injected_leak.rs")
        .collect();
    assert_eq!(injected.len(), 1, "exactly the injected leak: {report:?}");
    assert_eq!(injected[0].rule, "leak-to-log");
    let m = &injected[0].message;
    assert!(
        m.contains("Database::transactions"),
        "chain must name the source: {m}"
    );
    assert!(m.contains("`println!`"), "chain must name the sink: {m}");
    // The rest of the tree stays leak-clean even with the extra file
    // in the graph.
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.file == "crates/core/src/injected_leak.rs"),
        "{report:?}"
    );
}

/// Declassification burn-down: like `andi::allow`, the set of
/// `andi::declassify` boundaries may only shrink without review.
/// Every boundary is a hole in the information-flow proof; each new
/// one needs a written argument in the PR description.
#[test]
fn declassify_count_only_decreases() {
    let count = andi_lint::count_declassifies(&workspace_root()).expect("tree walk succeeds");
    const CEILING: usize = 4;
    assert!(
        count <= CEILING,
        "active andi::declassify boundaries grew to {count} (ceiling {CEILING}); \
         justify each new disclosure boundary and lower the ceiling when you retire one"
    );
}

/// Golden declassify inventory: the tree is leak-clean and the exact
/// set of sanctioned disclosure boundaries is pinned. A new boundary
/// (or a moved one) must update this list deliberately.
#[test]
fn taint_tree_is_leak_clean_with_pinned_inventory() {
    let report = andi_lint::taint_tree(&workspace_root()).expect("tree walk succeeds");
    assert!(
        report.findings.is_empty(),
        "information-flow findings in the tree: {:?}",
        report.findings
    );
    assert!(
        report.hygiene.is_empty(),
        "taint pragma hygiene findings: {:?}",
        report.hygiene
    );
    let inventory: Vec<&str> = report
        .stats
        .declassifies
        .iter()
        .map(|d| d.file.as_str())
        .collect();
    assert_eq!(
        inventory,
        [
            "crates/core/src/belief.rs",
            "crates/data/src/database.rs",
            "crates/data/src/fimi.rs",
            "crates/data/src/transaction.rs",
        ],
        "declassify inventory drifted: {:?}",
        report.stats.declassifies
    );
    // Every boundary sanctions at least one concrete flow — an
    // unused declassify would already be a hygiene finding, but pin
    // the inventory's flows too so chains stay explainable.
    for d in &report.stats.declassifies {
        assert!(
            !d.flows.is_empty(),
            "boundary {}:{} sanctions no flow",
            d.file,
            d.line
        );
        assert!(!d.reason.is_empty());
    }
}

#[test]
fn pragma_hygiene_is_enforced() {
    let findings = lint_fixture("pragma_hygiene.rs", "crates/core/src/pragma_hygiene.rs");
    let rules = rules_of(&findings);
    assert_eq!(
        rules.iter().filter(|r| **r == "invalid-pragma").count(),
        3,
        "reasonless + unknown-rule + malformed, got {findings:?}"
    );
    assert_eq!(
        rules.iter().filter(|r| **r == "unused-pragma").count(),
        1,
        "{findings:?}"
    );
    assert!(
        rules.iter().all(|r| *r != "lib-unwrap"),
        "the reasonless pragma still suppresses the unwrap, got {findings:?}"
    );
}

#[test]
fn suppression_requires_matching_rule_and_line() {
    let src = "fn f(v: &[u32]) -> u32 {\n\
               // andi::allow(wallclock-in-core) — wrong rule name\n\
               *v.first().unwrap()\n\
               }\n";
    let findings = lint_source("crates/core/src/demo.rs", src);
    let rules = rules_of(&findings);
    assert!(rules.contains(&"lib-unwrap"), "{findings:?}");
    assert!(rules.contains(&"unused-pragma"), "{findings:?}");
}

#[test]
fn findings_are_sorted_and_carry_positions() {
    let bad = lint_fixture("unwrap_flag.rs", "crates/core/src/unwrap_flag.rs");
    assert!(bad.windows(2).all(|w| w[0].line <= w[1].line));
    for f in &bad {
        assert!(f.line >= 1 && f.col >= 1);
        assert_eq!(f.file, "crates/core/src/unwrap_flag.rs");
    }
}

/// The merged tree must be clean — the merge-gate property the CI
/// job relies on.
#[test]
fn workspace_tree_is_clean() {
    let findings = andi_lint::check_tree(&workspace_root()).expect("tree walk succeeds");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean:\n{}",
        andi_lint::format_human(&findings)
    );
}

/// Exit codes of the compiled binary: 0 on clean input, 1 on a
/// committed negative fixture, 2 on usage errors.
#[test]
fn binary_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_andi-lint");
    let fixture = fixture_dir().join("unwrap_flag.rs");

    let dirty = Command::new(bin)
        .args(["check", "--file"])
        .arg(&fixture)
        .args(["--as", "crates/core/src/unwrap_flag.rs", "--format", "json"])
        .output()
        .expect("binary runs");
    assert_eq!(dirty.status.code(), Some(1), "findings must exit 1");
    let json = String::from_utf8(dirty.stdout).expect("json output is utf-8");
    assert!(json.contains("\"rule\":\"lib-unwrap\""), "{json}");
    assert!(json.trim_start().starts_with('['), "{json}");

    let clean = Command::new(bin)
        .args(["check", "--file"])
        .arg(fixture_dir().join("unwrap_near_miss.rs"))
        .args(["--as", "crates/core/src/unwrap_near_miss.rs"])
        .output()
        .expect("binary runs");
    assert_eq!(clean.status.code(), Some(0), "clean input must exit 0");

    let usage = Command::new(bin)
        .args(["frobnicate"])
        .output()
        .expect("binary runs");
    assert_eq!(usage.status.code(), Some(2), "usage errors must exit 2");

    // Repeated --file/--as pairs lint as one virtual workspace, so
    // the cross-file rules see both sides.
    let cross = Command::new(bin)
        .args(["check", "--file"])
        .arg(fixture_dir().join("xpanic_entry_flag.rs"))
        .args(["--as", "crates/graph/src/xpanic_entry.rs", "--file"])
        .arg(fixture_dir().join("xpanic_leaf.rs"))
        .args([
            "--as",
            "crates/graph/src/xpanic_leaf.rs",
            "--format",
            "json",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(cross.status.code(), Some(1), "cross-file panic must exit 1");
    let json = String::from_utf8(cross.stdout).expect("utf-8");
    assert!(json.contains("\"rule\":\"panic-reachability\""), "{json}");

    let rules = Command::new(bin).args(["rules"]).output().expect("runs");
    assert_eq!(rules.status.code(), Some(0));
    let listing = String::from_utf8(rules.stdout).expect("utf-8");
    for rule in [
        "nondet-iteration",
        "lib-unwrap",
        "wallclock-in-core",
        "panic-reachability",
        "seed-provenance",
        "float-merge-order",
        "result-discard",
        "poll-reachability",
        "unchecked-width",
        "assume-soundness",
        "leak-to-log",
        "leak-in-error",
        "sensitive-debug",
    ] {
        assert!(listing.contains(rule), "missing {rule} in listing");
    }
    assert!(
        !listing.contains("cancel-blind-loop"),
        "cancel-blind-loop was subsumed by poll-reachability and must \
         no longer be advertised"
    );
}

/// Regression for the lexer's UTF-8 column accounting: a multi-byte
/// em-dash in a comment earlier on the line must not shift the
/// reported column of a finding after it (columns are characters,
/// not bytes).
#[test]
fn multibyte_comment_keeps_finding_columns() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n\
               /* — dash — */ *v.first().unwrap()\n\
               }\n";
    let findings = lint_source("crates/core/src/demo.rs", src);
    let unwraps: Vec<&Finding> = findings.iter().filter(|f| f.rule == "lib-unwrap").collect();
    assert_eq!(unwraps.len(), 1, "{findings:?}");
    // The `unwrap` ident sits at character column 27; counting the
    // two 3-byte em-dashes per byte would report 31 instead.
    assert_eq!(unwraps[0].line, 2);
    assert_eq!(
        unwraps[0].col, 27,
        "character column expected, not byte column: {:?}",
        unwraps[0]
    );
}

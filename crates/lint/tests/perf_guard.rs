//! Perf regression guard: the linter is a CI merge gate that runs on
//! every push, so whole-tree analysis must stay under a hard
//! wall-clock budget even with the interval prover in the pipeline.
//!
//! Two layers: the committed `BENCH_lint.json` baseline (produced by
//! `cargo bench -p andi-bench --bench lint_perf`) must record a
//! full-workspace median under the budget, and — in release builds —
//! a direct measurement re-checks the real tree so the guard cannot
//! go stale against a forgotten baseline.

use std::path::{Path, PathBuf};

/// Hard budget for one full-workspace lint (token rules + call graph
/// + interval prover + hygiene), in nanoseconds.
const BUDGET_NS: f64 = 100_000_000.0;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

/// Minimal extraction of `"median": <f64>` from the named group's
/// record in the baseline JSON — the file is written by our vendored
/// criterion shim with a fixed shape, so no JSON parser is needed.
fn baseline_median_ns(json: &str, group: &str) -> f64 {
    let needle = format!("\"group\": \"{group}\"");
    let rec_start = json
        .find(&needle)
        .unwrap_or_else(|| panic!("group {group} missing from BENCH_lint.json"));
    let rest = &json[rec_start..];
    let med = rest
        .find("\"median\": ")
        .map(|i| &rest[i + "\"median\": ".len()..])
        .expect("median field present");
    let end = med.find([',', '}']).expect("median value terminated");
    med[..end]
        .trim()
        .parse::<f64>()
        .expect("median parses as a number")
}

#[test]
fn committed_baseline_is_under_budget() {
    let path = workspace_root().join("BENCH_lint.json");
    let json = std::fs::read_to_string(&path).expect("BENCH_lint.json is committed");
    let median = baseline_median_ns(&json, "lint_workspace");
    assert!(
        median < BUDGET_NS,
        "BENCH_lint.json records a full-tree lint median of {:.1} ms; \
         the merge gate budget is {:.0} ms — make the new analysis \
         cheaper or split it out of the per-push path",
        median / 1e6,
        BUDGET_NS / 1e6,
    );
    // The phase records must stay consistent with the total: each
    // phase alone cannot exceed the whole pipeline's budget.
    for phase in ["lint_scan_parse", "lint_call_graph"] {
        let m = baseline_median_ns(&json, phase);
        assert!(
            m < BUDGET_NS,
            "phase {phase} median {:.1} ms exceeds the whole-pipeline budget",
            m / 1e6
        );
    }
}

/// Release-build re-measurement over the real tree, so the guard
/// holds even if the committed baseline goes stale. Debug builds are
/// several times slower for reasons the gate does not care about, so
/// the wall-clock check compiles out there.
#[cfg(not(debug_assertions))]
#[test]
fn full_tree_lint_stays_under_budget() {
    use std::time::Instant;

    let root = workspace_root();
    let sources: Vec<(String, String)> = andi_lint::tree_files(&root)
        .expect("walk workspace tree")
        .into_iter()
        .map(|(rel, abs)| {
            let text = std::fs::read_to_string(&abs).expect("workspace file reads");
            (rel, text)
        })
        .collect();

    // Warm-up, then the median of five runs — a single cold run is
    // too noisy for a hard gate.
    let _ = andi_lint::lint_workspace(&sources);
    let mut runs: Vec<u128> = (0..5)
        .map(|_| {
            let t = Instant::now();
            let findings = andi_lint::lint_workspace(&sources);
            assert!(findings.is_empty(), "tree must stay clean: {findings:?}");
            t.elapsed().as_nanos()
        })
        .collect();
    runs.sort_unstable();
    let median = runs[runs.len() / 2] as f64;
    assert!(
        median < BUDGET_NS,
        "full-tree lint measured at {:.1} ms (budget {:.0} ms); \
         re-run `cargo bench -p andi-bench --bench lint_perf` and \
         shrink the regression before merging",
        median / 1e6,
        BUDGET_NS / 1e6,
    );
}

//! Property tests for the token scanner: on arbitrary printable
//! input, token spans must round-trip — in bounds, non-overlapping,
//! in source order, and slicing the source at a span must reproduce
//! the token text. Scanning is also a pure function of the input.

use andi_lint::lint_source;
use andi_lint::scan;
use proptest::prelude::*;

fn assert_spans_round_trip(src: &str) {
    let scanned = scan(src);
    let mut prev_end = 0usize;
    for t in &scanned.tokens {
        let end = t.start + t.len;
        assert!(end <= src.len(), "span out of bounds: {t:?} in {src:?}");
        assert!(
            t.start >= prev_end,
            "overlapping/unordered spans at {t:?} in {src:?}"
        );
        assert!(t.len > 0, "empty token {t:?} in {src:?}");
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(end),
            "span splits a char: {t:?} in {src:?}"
        );
        assert_eq!(
            &src[t.start..end],
            t.text,
            "text does not round-trip for {t:?} in {src:?}"
        );
        assert!(t.line >= 1 && t.col >= 1, "{t:?}");
        prev_end = end;
    }
}

proptest! {
    /// Arbitrary printable-ASCII soup: the scanner must never panic
    /// and every token span must round-trip.
    #[test]
    fn ascii_soup_round_trips(src in "[ -~\n]{0,160}") {
        assert_spans_round_trip(&src);
    }

    /// Rust-ish fragments built from the constructs the lexer special
    /// cases: comments, strings, raw strings, chars, lifetimes,
    /// numbers, ranges.
    #[test]
    fn rusty_fragments_round_trip(
        picks in prop::collection::vec((0usize..9, "[a-z]{1,8}"), 0..12)
    ) {
        let src = picks
            .iter()
            .map(|(i, w)| match i {
                0 => "let x = m.iter();".to_string(),
                1 => "// andi::allow(lib-unwrap) — ok".to_string(),
                2 => "/* block /* nested */ comment */".to_string(),
                3 => "let s = \"a \\\" b\";".to_string(),
                4 => "let r = r#\"raw \" text\"#;".to_string(),
                5 => "let c = 'x'; let nl = '\\n';".to_string(),
                6 => "fn f<'a>(v: &'a str) {}".to_string(),
                7 => "for i in 0..10 { let _ = 1.5e3; }".to_string(),
                _ => format!("let {w} = {w};"),
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert_spans_round_trip(&src);
    }

    /// Scanning twice yields identical output, and linting is
    /// deterministic over arbitrary input (never panics, same
    /// findings on re-run).
    #[test]
    fn scan_and_lint_are_deterministic(src in "[ -~\n]{0,160}") {
        let a = scan(&src);
        let b = scan(&src);
        prop_assert_eq!(a.tokens.len(), b.tokens.len());
        for (x, y) in a.tokens.iter().zip(&b.tokens) {
            prop_assert_eq!(x, y);
        }
        let f1 = lint_source("crates/core/src/fuzz.rs", &src);
        let f2 = lint_source("crates/core/src/fuzz.rs", &src);
        prop_assert_eq!(f1, f2);
    }
}

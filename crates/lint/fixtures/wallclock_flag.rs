// Negative fixture: MUST produce `wallclock-in-core` findings
// anywhere outside crates/bench.
use std::time::Instant;

pub fn timed<F: FnOnce()>(f: F) -> u128 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos()
}

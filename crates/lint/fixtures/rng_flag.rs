// Negative fixture: MUST produce `unseeded-rng` findings when linted
// under a core/graph virtual path.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn ambient() -> StdRng {
    StdRng::from_entropy()
}

pub fn ambient_thread() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

// Negative fixture: MUST produce `result-discard` findings — the
// Result of a fallible workspace fn dropped via `let _ =` and via a
// bare statement.

pub fn apply_all(xs: &mut [u32]) {
    let _ = rescale(xs, 2);
    rescale(xs, 3);
}

fn rescale(xs: &mut [u32], k: u32) -> Result<u32, String> {
    if k == 0 {
        return Err("zero scale".to_string());
    }
    for x in xs.iter_mut() {
        *x *= k;
    }
    Ok(k)
}

//! Taint near-miss: the same sensitive struct, but the log line
//! carries only a counting aggregate — the sanctioned shape for
//! operational logging. No rule may fire.

pub struct Basket {
    // andi::sensitive — the owner's raw purchase row
    items: Vec<u64>,
}

impl Basket {
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }
}

/// Clean: lengths and counts are aggregates, not contents.
pub fn audit_log(b: &Basket) -> String {
    let distinct = b.items().len();
    format!("basket of {} items ({distinct} distinct)", b.len())
}

// Near-miss fixture: MUST stay clean under a core/graph virtual
// path. Caller-supplied seeds keep results reproducible; the words
// "thread_rng" in a string or comment are not code; tests may use
// what they like.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub fn warning() -> &'static str {
    // We tell users never to call thread_rng() in estimators.
    "thread_rng() and from_entropy() are banned in core"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        // Even in tests we seed, but OsRng here would be allowed.
        let _ = seeded(7);
    }
}

// Near-miss fixture: MUST stay clean. Propagating with `?`, binding
// the Result, or discarding only the Ok value of an
// already-propagated call are all sanctioned.

pub fn apply_all(xs: &mut [u32]) -> Result<u32, String> {
    let scale = rescale(xs, 2)?;
    let _ = rescale(xs, 3)?;
    let kept = rescale(xs, scale);
    kept
}

fn rescale(xs: &mut [u32], k: u32) -> Result<u32, String> {
    if k == 0 {
        return Err("zero scale".to_string());
    }
    for x in xs.iter_mut() {
        *x *= k;
    }
    Ok(k)
}

// Negative fixture: MUST produce `nondet-iteration` findings when
// linted under a library-crate virtual path.
use std::collections::HashMap;

pub fn accumulate(weights: &HashMap<Vec<usize>, f64>) -> f64 {
    let mut total = 0.0;
    for (_state, w) in weights {
        total += w; // accumulation order follows hash order
    }
    total
}

pub fn keys_in_hash_order() -> Vec<String> {
    let m: HashMap<String, u32> = HashMap::new();
    m.keys().cloned().collect()
}

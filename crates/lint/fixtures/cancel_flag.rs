//! Negative fixture for `cancel-blind-loop`: long hot-path loops
//! that never poll the budget or cancel token.

/// A Gray-code-style walk with a big body and no poll anywhere: the
/// budget layer can never interrupt it.
pub fn blind_walk(rows: &[u64], n: u32, s_start: u64, s_end: u64) -> i128 {
    let mut total: i128 = 0;
    let mut row_sums = vec![0i128; rows.len()];
    let mut subset: u64 = 0;
    for s in s_start..s_end {
        let gray = s ^ (s >> 1);
        let flipped = (gray ^ subset).trailing_zeros();
        subset = gray;
        let sign = if subset.count_ones() % 2 == 0 { 1 } else { -1 };
        let mut product: i128 = 1;
        for (i, &row) in rows.iter().enumerate() {
            let bit = (row >> flipped) & 1;
            row_sums[i] += bit as i128;
            if row_sums[i] == 0 {
                product = 0;
            } else {
                product = product.saturating_mul(row_sums[i]);
            }
        }
        let weight = (n as i128) + (flipped as i128);
        total = total.saturating_add(sign * product * weight);
        total = total.rotate_left(1).rotate_right(1);
    }
    total
}

/// A `while` retry loop that can spin for a long time unpolled.
pub fn blind_retry(mut state: u64, target: u64) -> u64 {
    let mut steps = 0u64;
    while state != target {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state = state.wrapping_mul(0x2545F4914F6CDD1D);
        let bucket = (state % 1024) as usize;
        let weight = bucket.saturating_mul(3) + 7;
        let folded = (state >> 32) ^ (state & 0xFFFF_FFFF);
        state = state.wrapping_add(folded.wrapping_mul(weight as u64));
        state = state.rotate_left((bucket % 63) as u32 + 1);
        state ^= state >> 11;
        state = state.wrapping_sub(weight as u64);
        state ^= folded.rotate_right(9);
        steps = steps.wrapping_add(1);
        if steps > 1_000_000_000 {
            state = target;
        }
    }
    state
}

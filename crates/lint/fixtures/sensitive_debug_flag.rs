//! Taint fixture: `#[derive(Debug)]` on a directly annotated type
//! without a declassification boundary. The derived formatter renders
//! every field, so `sensitive-debug` must fire on the derive.

#[derive(Clone, Debug)]
pub struct Basket {
    // andi::sensitive — the owner's raw purchase row
    items: Vec<u64>,
}

impl Basket {
    pub fn items(&self) -> &[u64] {
        &self.items
    }
}

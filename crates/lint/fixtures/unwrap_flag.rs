// Negative fixture: MUST produce `lib-unwrap` findings when linted
// under a library-crate virtual path.

pub fn first_item(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn parsed(s: &str) -> u32 {
    s.parse().expect("caller passed a number")
}

pub fn inverted(r: Result<(), String>) -> String {
    r.unwrap_err()
}

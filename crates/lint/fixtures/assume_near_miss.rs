//! Near-miss fixture for `assume-soundness`: every assume is backed
//! by a dominating runtime guard that mentions its free identifiers.

/// An assert-family guard on the same variable.
pub fn guarded(n: u64) -> u64 {
    // andi::prove_no_overflow — the doubling is machine-checked
    debug_assert!(n <= 1000, "dispatchers cap n");
    // andi::assume(n in [0, 1000]) — enforced by the guard above
    n * 2
}

/// A `match` on the variable filters the range before the assume.
pub fn match_guarded(k: u32) -> u32 {
    // andi::prove_no_overflow — the bump is machine-checked
    match k {
        0..=100 => {}
        _ => return 0,
    }
    // andi::assume(k in [0, 100]) — the match filters the range
    k + 5
}

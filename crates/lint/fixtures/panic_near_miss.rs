// Near-miss fixture: MUST stay clean. A call-edge pragma vouches for
// the panic behind it, and test code may panic freely.

pub fn checked(table: &[u32], key: usize) -> u32 {
    debug_assert!(key < table.len());
    // andi::allow(panic-reachability) — key is bound-checked by every caller via `checked`'s contract
    fetch(table, key)
}

fn fetch(table: &[u32], key: usize) -> u32 {
    match table.get(key) {
        Some(v) => *v,
        None => unreachable!("callers validate the key"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_are_fine_in_tests() {
        let _ = checked(&[1, 2, 3], 0);
        panic!("test code may panic");
    }
}

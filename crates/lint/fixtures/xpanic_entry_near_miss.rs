// Cross-file fixture entry (near-miss): the same call, but the edge
// carries a justification pragma — the whole subtree behind it is
// vouched for. Linted together with xpanic_leaf.rs this MUST stay
// clean (and the pragma MUST count as used).

pub fn entry(values: &[u64]) -> u64 {
    // andi::allow(panic-reachability) — entry is only called with non-empty slices, so index 0 exists
    leaf_pick(values, 0)
}

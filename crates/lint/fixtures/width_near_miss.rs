//! Near-miss fixture for `unchecked-width`: the same shapes as the
//! negative fixture, bounded by runtime guards + assume contracts so
//! the interval prover discharges every op.

/// The accumulation, with both the term and the running sum clamped.
pub fn bounded_sum(xs: &[i32]) -> i64 {
    // andi::prove_no_overflow — the clamped accumulation is machine-checked
    let mut acc: i64 = 0;
    for i in 0..xs.len() {
        let x = i64::from(xs[i]);
        debug_assert!(x >= -100 && x <= 100, "callers clamp every term");
        // andi::assume(x in [-100, 100]) — callers clamp every term
        debug_assert!(
            acc >= -1_000_000 && acc <= 1_000_000,
            "run length keeps the sum small"
        );
        // andi::assume(acc in [-1000000, 1000000]) — at most 10_000 clamped terms accumulate
        acc += x;
    }
    acc
}

/// The shift, with the amount capped and the key's top byte clear.
pub fn bounded_shift(key: u64, bits: u32) -> u64 {
    // andi::prove_no_overflow — the capped shift is machine-checked
    debug_assert!(bits <= 8 && key <= (u64::MAX >> 8), "packers cap the field width");
    // andi::assume(key << bits in [0, 18446744073709551615]) — at most 2^56 shifted by at most 8 bits
    key << bits
}

// Negative fixture: MUST produce `seed-provenance` findings — an RNG
// seed fed from ambient machine state (the thread count) instead of
// the run config, both into a direct seeding sink and through a
// `*_seed` parameter of a workspace fn.

pub fn entropy_seeded() -> u64 {
    let lanes = available_parallelism();
    let noisy = lanes as u64;
    seed_from_u64(noisy)
}

pub fn indirect(cfg: u64) -> u64 {
    let jitter = available_parallelism() as u64;
    derive_rng(cfg, jitter)
}

fn derive_rng(base: u64, stream_seed: u64) -> u64 {
    base ^ stream_seed.rotate_left(17)
}

//! Taint near-miss: the same derive, but behind an audited
//! `andi::declassify` boundary. The pragma sanctions the Debug
//! rendering and joins the inventory; no finding and no hygiene
//! report may fire.

// andi::declassify(fixture Debug is exercised only by this crate's own golden tests)
#[derive(Clone, Debug)]
pub struct Basket {
    // andi::sensitive — the owner's raw purchase row
    items: Vec<u64>,
}

impl Basket {
    pub fn items(&self) -> &[u64] {
        &self.items
    }
}

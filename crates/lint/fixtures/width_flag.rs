//! Negative fixture for `unchecked-width`: proven regions whose
//! arithmetic the interval prover cannot bound.

/// Claims the fast-lane contract but accumulates unbounded terms:
/// `acc + xs[i]` spans twice the `i64` range.
pub fn runaway_sum(xs: &[i64]) -> i64 {
    // andi::prove_no_overflow — claimed safe, but nothing bounds the terms
    let mut acc: i64 = 0;
    for i in 0..xs.len() {
        acc += xs[i];
    }
    acc
}

/// A shift whose amount is unbounded: `bits` can reach 64 and beyond.
pub fn runaway_shift(key: u64, bits: u32) -> u64 {
    // andi::prove_no_overflow — claimed safe, but the shift amount is unbounded
    key << bits
}

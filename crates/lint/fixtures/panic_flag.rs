// Negative fixture: MUST produce `panic-reachability` findings when
// linted under a library-crate virtual path — one panic behind a
// private helper (transitive path), one directly in a public fn.

pub fn lookup(table: &[u32], key: usize) -> u32 {
    locate(table, key)
}

fn locate(table: &[u32], key: usize) -> u32 {
    match table.get(key) {
        Some(v) => *v,
        None => panic!("key {key} out of range"),
    }
}

pub fn classify(code: u8) -> &'static str {
    match code {
        0 => "free",
        1 => "crack",
        _ => unreachable!("status codes are two-valued"),
    }
}

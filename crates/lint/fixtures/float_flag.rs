// Negative fixture: MUST produce `float-merge-order` findings — a
// float reduction whose partition (and so whose rounding) changes
// with the thread count, via both `chunk_ranges` and a
// thread-derived `map_indexed` task count.

pub fn density(xs: &[f64], threads: usize) -> f64 {
    let ranges = chunk_ranges(xs.len(), threads * 8);
    let partials = partial_sums(xs, ranges);
    partials.iter().sum::<f64>()
}

pub fn online_mean(threads: usize, n: usize) -> f64 {
    let parts = map_indexed(threads, threads * 2);
    let mut total = 0.0;
    for p in parts {
        total += p;
    }
    total / n as f64
}

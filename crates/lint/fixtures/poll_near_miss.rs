//! Near-miss fixture for `poll-reachability`: budgeted fns whose
//! loops must NOT flag — a direct poll, a poll through a two-level
//! helper chain, a constant-trip loop, and a short fold.

pub struct Budget;

impl Budget {
    pub fn check(&self) -> Result<(), ()> {
        Ok(())
    }
}

/// One polling step: calling it transitively credits the caller.
fn drain_step(budget: &Budget, state: u64) -> Result<u64, ()> {
    budget.check()?;
    Ok(state.wrapping_mul(0x9E3779B97F4A7C15))
}

/// Two levels away from the poll: credit is a call-graph fixpoint.
fn drain_batch(budget: &Budget, state: u64) -> Result<u64, ()> {
    drain_step(budget, state ^ (state >> 3))
}

const WARMUP_STEPS: usize = 16;

/// Long body, but polls the budget directly every 8192 steps.
pub fn polled_walk(rows: &[u64], s_start: u64, s_end: u64, budget: &Budget) -> Result<i128, ()> {
    let mut total: i128 = 0;
    let mut subset: u64 = 0;
    for s in s_start..s_end {
        if s & 8191 == 0 {
            budget.check()?;
        }
        let gray = s ^ (s >> 1);
        let flipped = (gray ^ subset).trailing_zeros();
        subset = gray;
        let sign = if subset.count_ones() % 2 == 0 { 1 } else { -1 };
        let mut product: i128 = 1;
        for &row in rows {
            let bit = (row >> flipped) & 1;
            product = product.saturating_mul(1 + bit as i128);
        }
        total = total.saturating_add(sign * product);
        total = total.rotate_left(1).rotate_right(1);
    }
    Ok(total)
}

/// Long body that polls only through the two-level helper chain.
pub fn chained_retry(mut state: u64, target: u64, budget: &Budget) -> Result<u64, ()> {
    let mut steps = 0u64;
    while state != target {
        state = drain_batch(budget, state)?;
        let bucket = (state % 1024) as usize;
        let weight = bucket.saturating_mul(3) + 7;
        let folded = (state >> 32) ^ (state & 0xFFFF_FFFF);
        state = state.wrapping_add(folded.wrapping_mul(weight as u64));
        state = state.rotate_left((bucket % 63) as u32 + 1);
        state ^= state >> 11;
        state = state.wrapping_sub(weight as u64);
        state ^= folded.rotate_right(9);
        steps = steps.wrapping_add(1);
        if steps > 1_000_000_000 {
            state = target;
        }
    }
    Ok(state)
}

/// Long body, pollless — but the trip count is a compile-time
/// constant, so it is bounded and exempt.
pub fn warmup(mut state: u64, _budget: &Budget) -> u64 {
    for _ in 0..WARMUP_STEPS {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state = state.wrapping_mul(0x2545F4914F6CDD1D);
        let bucket = (state % 1024) as usize;
        let weight = bucket.saturating_mul(3) + 7;
        let folded = (state >> 32) ^ (state & 0xFFFF_FFFF);
        state = state.wrapping_add(folded.wrapping_mul(weight as u64));
        state = state.rotate_left((bucket % 63) as u32 + 1);
        state ^= state >> 11;
        state = state.wrapping_sub(weight as u64);
        state ^= folded.rotate_right(9);
    }
    state
}

/// Short fold: pollless, but well under the long-loop threshold.
pub fn short_fold(values: &[u64], _budget: &Budget) -> u64 {
    let mut acc = 0u64;
    for &v in values {
        acc = acc.wrapping_add(v ^ (v >> 3));
    }
    acc
}

//! Taint near-miss: the rejection path reports position and size
//! only — ids/counts/lengths are the sanctioned error vocabulary.
//! No rule may fire.

pub struct Basket {
    // andi::sensitive — the owner's raw purchase row
    items: Vec<u64>,
}

impl Basket {
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }
}

pub enum StoreError {
    Corrupt(String),
}

/// Clean: the error names how big the row was, never what was in it.
pub fn validate(b: &Basket) -> Result<(), StoreError> {
    if b.len() > 64 {
        return Err(StoreError::Corrupt(format!(
            "oversized row ({} items, limit 64)",
            b.len()
        )));
    }
    Ok(())
}

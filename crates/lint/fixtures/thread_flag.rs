// Negative fixture: MUST produce `thread-spawn-outside-par` findings
// anywhere except crates/graph/src/par.rs.

pub fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
}

pub fn scoped() {
    crossbeam::thread::scope(|_s| {}).ok();
}

// Cross-file fixture entry (negative): a public API fn in the same
// crate reaches the leaf's panic through the workspace call graph.
// Linted together with xpanic_leaf.rs this MUST flag
// `panic-reachability` at the leaf site.

pub fn entry(values: &[u64]) -> u64 {
    leaf_pick(values, 0)
}

// Near-miss fixture: MUST stay clean. Safe combinators, test code,
// strings/comments, and justified pragmas are all fine.

pub fn with_default(v: &[u32]) -> u32 {
    // unwrap_or is total; the docs may even say "unwrap() the value".
    v.first().copied().unwrap_or(0)
}

pub fn lazy_default(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or_else(|| 0)
}

pub fn message() -> &'static str {
    "call .unwrap() at your own risk; .expect(\"...\") too"
}

pub fn justified(v: &[u32]) -> u32 {
    // andi::allow(lib-unwrap) — callers are validated non-empty at construction
    *v.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}

// Near-miss fixture: MUST stay clean. Iteration is neutralized by a
// BTree conversion or a sort, appears only in test code, or the
// "HashMap" text sits in strings/comments.
use std::collections::{BTreeMap, HashMap};

pub fn converted(weights: &HashMap<Vec<usize>, f64>) -> f64 {
    // Ordering restored in the same statement: not a finding.
    let ordered: BTreeMap<&Vec<usize>, &f64> = weights.iter().collect();
    ordered.values().map(|w| **w).sum()
}

pub fn sorted(m: &HashMap<String, u32>) -> Vec<String> {
    let mut keys: Vec<String> = m.keys().cloned().collect::<Vec<_>>().sorted();
    keys.sort();
    keys
}

pub fn lookups_only(m: &HashMap<String, u32>) -> Option<u32> {
    // Point lookups don't depend on iteration order.
    m.get("x").copied()
}

pub fn mentions() -> &'static str {
    // A comment saying `for x in some HashMap.iter()` is not code.
    "for (k, v) in my_hash_map.iter() { HashMap }"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_iterate() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in m.iter() {
            assert!(k <= v);
        }
    }
}

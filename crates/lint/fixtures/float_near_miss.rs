// Near-miss fixture: MUST stay clean. Exact integer accumulation
// over a thread-shaped partition is order-independent; float
// reductions are fine when the partition is fixed or the task count
// is data-sized (the `par::map_indexed` contract: arg 0 is
// scheduling only).

pub fn permanent_style(subsets: usize, threads: usize) -> i128 {
    let ranges = chunk_ranges(subsets, threads * 8);
    let total = ranges.iter().try_fold(0i128, |acc, r| acc.checked_add(r));
    total.unwrap_or(0)
}

pub fn fixed_grid(xs: &[f64]) -> f64 {
    let ranges = chunk_ranges(xs.len(), 64);
    let partials = partial_sums(xs, ranges);
    partials.iter().sum::<f64>()
}

pub fn indexed_reduction(threads: usize, n: usize) -> f64 {
    let parts = map_indexed(threads, n);
    parts.iter().sum::<f64>()
}

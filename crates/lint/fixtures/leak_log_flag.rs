//! Taint fixture: raw sensitive data reaching a logging sink. The
//! `audit_log` body renders the owner's item list, so `leak-to-log`
//! must fire and name both the source projection and the sink.

pub struct Basket {
    // andi::sensitive — the owner's raw purchase row
    items: Vec<u64>,
}

impl Basket {
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }
}

/// Leaks: the raw item list flows into a format sink.
pub fn audit_log(b: &Basket) -> String {
    format!("basket = {:?}", b.items())
}

//! Near-miss fixture for `cancel-blind-loop`: loops that must NOT
//! flag — a long loop that polls the budget, a long loop sitting at a
//! fault probe, and a short pollless fold.

pub struct Budget;

impl Budget {
    pub fn check(&self) -> Result<(), ()> {
        Ok(())
    }
}

pub fn probe(_point: &str, _index: usize) {}

/// Long body, but polls the budget every 8192 steps: cancellable.
pub fn polled_walk(rows: &[u64], s_start: u64, s_end: u64, budget: &Budget) -> Result<i128, ()> {
    let mut total: i128 = 0;
    let mut row_sums = vec![0i128; rows.len()];
    let mut subset: u64 = 0;
    for s in s_start..s_end {
        if s & 8191 == 0 {
            budget.check()?;
        }
        let gray = s ^ (s >> 1);
        let flipped = (gray ^ subset).trailing_zeros();
        subset = gray;
        let sign = if subset.count_ones() % 2 == 0 { 1 } else { -1 };
        let mut product: i128 = 1;
        for (i, &row) in rows.iter().enumerate() {
            let bit = (row >> flipped) & 1;
            row_sums[i] += bit as i128;
            if row_sums[i] == 0 {
                product = 0;
            } else {
                product = product.saturating_mul(row_sums[i]);
            }
        }
        total = total.saturating_add(sign * product);
        total = total.rotate_left(1).rotate_right(1);
    }
    Ok(total)
}

/// Long body, but each iteration is a fault-probe point — it runs as
/// a budgeted task, so the pool polls between iterations.
pub fn probed_batches(batches: usize, rows: &[u64]) -> u64 {
    let mut acc = 0u64;
    for b in 0..batches {
        probe("fixture.batch", b);
        let mut local = 0u64;
        for &row in rows {
            let spread = row ^ (row >> 3) ^ (row << 2);
            let bucket = (spread % 64) as u32;
            local = local.wrapping_add(spread.rotate_left(bucket));
            local ^= local >> 7;
            local = local.wrapping_mul(0x9E3779B97F4A7C15);
        }
        acc = acc.wrapping_add(local.rotate_left((b % 63) as u32));
        acc ^= acc >> 11;
        acc = acc.wrapping_add(0xA076_1D64_78BD_642F);
    }
    acc
}

/// Short fold: pollless, but well under the long-loop threshold.
pub fn short_fold(values: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &v in values {
        acc += v * v;
    }
    acc
}

// Near-miss fixture: MUST stay clean everywhere. Mentions of wall
// clocks in comments/strings and test-only timing are fine.
// An Instant or SystemTime in prose is not a finding.

pub fn describe() -> &'static str {
    "benchmarks use Instant and SystemTime; library code must not"
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}

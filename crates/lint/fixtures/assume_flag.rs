//! Negative fixture for `assume-soundness`: assume contracts with no
//! dominating runtime guard backing them up.

/// No guard at all before the assume.
pub fn unguarded(n: u64) -> u64 {
    // andi::prove_no_overflow — the doubling is claimed safe
    // andi::assume(n in [0, 1000]) — stated, never enforced
    n * 2
}

/// The guard covers `a` but says nothing about `b`.
pub fn half_guarded(a: u64, b: u64) -> u64 {
    // andi::prove_no_overflow — the sum is claimed safe
    debug_assert!(a <= 50, "a is capped by the dispatcher");
    // andi::assume(a in [0, 50]) — capped by the guard above
    // andi::assume(b in [0, 50]) — nothing guards b
    a + b
}

// Near-miss fixture: MUST stay clean. Seeds derived from the run
// config (`seed + index` style) are exactly the sanctioned pattern —
// a `seed` parameter is the caller's responsibility, not a taint
// source.

pub fn per_worker(seed: u64, index: u64) -> u64 {
    let derived = seed.wrapping_add(index);
    seed_from_u64(derived)
}

pub fn forwarded(cfg: u64) -> u64 {
    derive_rng(cfg, cfg.rotate_left(17))
}

fn derive_rng(base: u64, stream_seed: u64) -> u64 {
    base ^ stream_seed
}

//! Taint fixture: raw sensitive data smuggled into an error payload.
//! Error channels surface in logs and bug reports, so `leak-in-error`
//! must fire on the constructor argument.

pub struct Basket {
    // andi::sensitive — the owner's raw purchase row
    items: Vec<u64>,
}

impl Basket {
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }
}

pub enum StoreError {
    Corrupt(String),
}

/// Leaks: the error message echoes the raw row it rejected.
pub fn validate(b: &Basket) -> Result<(), StoreError> {
    if b.len() > 64 {
        return Err(StoreError::Corrupt(format!("oversized row {:?}", b.items())));
    }
    Ok(())
}

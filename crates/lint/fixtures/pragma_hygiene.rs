// Negative fixture: pragma hygiene. MUST produce one
// `invalid-pragma` (no reason), one `invalid-pragma` (unknown rule),
// one `invalid-pragma` (malformed), and one `unused-pragma` — and no
// `lib-unwrap`: the reasonless pragma still suppresses, but the gate
// fails on the missing justification.

pub fn no_reason(v: &[u32]) -> u32 {
    // andi::allow(lib-unwrap)
    *v.first().unwrap()
}

// andi::allow(made-up-rule) — this rule does not exist
pub fn unknown_rule() {}

// andi::allow — forgot the parentheses entirely
pub fn malformed() {}

// andi::allow(wallclock-in-core) — nothing here touches a clock
pub fn unused() {}

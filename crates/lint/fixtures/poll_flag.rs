//! Negative fixture for `poll-reachability`: budgeted entry points
//! whose long loops never reach a poll — not directly, and not
//! through any callee.

pub struct Budget;
pub struct CancelToken;

/// Pollless helper: delegating the inner work to it earns the
/// caller's loop no credit.
fn fold_row(rows: &[u64], flipped: u32) -> i128 {
    let mut product: i128 = 1;
    for &row in rows {
        let bit = (row >> flipped) & 1;
        product = product.saturating_mul(1 + bit as i128);
    }
    product
}

/// A Gray-code-style walk with the budget in scope that never
/// consults it: the budget layer can never interrupt the walk.
pub fn blind_walk(rows: &[u64], s_start: u64, s_end: u64, _budget: &Budget) -> i128 {
    let mut total: i128 = 0;
    let mut subset: u64 = 0;
    for s in s_start..s_end {
        let gray = s ^ (s >> 1);
        let flipped = (gray ^ subset).trailing_zeros();
        subset = gray;
        let sign = if subset.count_ones() % 2 == 0 { 1 } else { -1 };
        let product = fold_row(rows, flipped);
        let weight = (flipped as i128) + 3;
        total = total.saturating_add(sign * product * weight);
        total = total.rotate_left(1).rotate_right(1);
        total ^= total >> 5;
    }
    total
}

/// A retry loop holding a cancel token it never reads.
pub fn blind_retry(mut state: u64, target: u64, _cancel: &CancelToken) -> u64 {
    let mut steps = 0u64;
    while state != target {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state = state.wrapping_mul(0x2545F4914F6CDD1D);
        let bucket = (state % 1024) as usize;
        let weight = bucket.saturating_mul(3) + 7;
        let folded = (state >> 32) ^ (state & 0xFFFF_FFFF);
        state = state.wrapping_add(folded.wrapping_mul(weight as u64));
        state = state.rotate_left((bucket % 63) as u32 + 1);
        state ^= state >> 11;
        state = state.wrapping_sub(weight as u64);
        state ^= folded.rotate_right(9);
        steps = steps.wrapping_add(1);
        if steps > 1_000_000_000 {
            state = target;
        }
    }
    state
}

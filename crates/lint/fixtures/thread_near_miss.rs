// Near-miss fixture: MUST stay clean. Going through the
// deterministic layer, naming a variable `thread_count`, or talking
// about std::thread in comments/strings is all fine.
use andi_graph::par;

pub fn fan_out(n: usize) -> Vec<usize> {
    let thread_count = par::available_threads();
    par::map_indexed(thread_count, n, |i| i * 2)
}

pub fn docs() -> &'static str {
    "raw std::thread::spawn and crossbeam are banned outside par"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        let h = std::thread::spawn(|| 2 + 2);
        assert_eq!(h.join().unwrap(), 4);
    }
}

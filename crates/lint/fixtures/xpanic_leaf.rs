// Cross-file fixture leaf: a crate-private fn with a panic site.
// Clean on its own (`pub(crate)` is not a public root); the verdict
// depends on which entry file it is linted together with.

pub(crate) fn leaf_pick(values: &[u64], i: usize) -> u64 {
    match values.get(i) {
        Some(v) => *v,
        None => panic!("index {i} out of range"),
    }
}

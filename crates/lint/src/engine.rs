//! Ties the layers together: the deterministic file walk, the
//! parser-derived test masks, the call-graph construction, pragma
//! suppression and hygiene, and the output formats.
//!
//! Linting is a *workspace* operation now: all files are scanned and
//! parsed first, the call graph is built over the whole set, the
//! token rules run per file and the semantic rules run globally, and
//! the combined findings are sorted by `(path, line, column, rule)` —
//! so the output is byte-identical regardless of the order files were
//! discovered or supplied in.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::graph::{build, SourceFile};
use crate::rules::{is_known_rule, run_rules, run_semantic_rules, Finding};

/// Lints a set of `(virtual path, source)` files as one workspace:
/// per-file token rules, cross-file semantic rules, pragma
/// suppression and hygiene. Findings come back sorted by
/// `(path, line, col, rule)` independent of the input order.
pub fn lint_workspace(inputs: &[(String, String)]) -> Vec<Finding> {
    // Deterministic file order regardless of how the caller
    // enumerated them.
    let mut inputs: Vec<&(String, String)> = inputs.iter().collect();
    inputs.sort_by(|a, b| a.0.cmp(&b.0));
    inputs.dedup_by(|a, b| a.0 == b.0);

    let files: Vec<SourceFile> = inputs
        .iter()
        .map(|(path, source)| SourceFile::new(path, source))
        .collect();

    // Per-file token rules, with the parser's real test mask.
    let mut findings = Vec::new();
    for sf in &files {
        findings.extend(run_rules(&sf.path, &sf.scan.tokens, &sf.mask));
    }

    // Workspace semantic rules.
    let graph = build(&files);
    let (semantic, cut_pragmas) = run_semantic_rules(&files, &graph);
    findings.extend(semantic);

    // Contract-driven interval proofs. The `unchecked-width` and
    // `assume-soundness` findings are suppressible like any other
    // rule; contract *hygiene* (malformed, misplaced, or dead
    // contracts) is appended after the suppression pass below — a
    // broken contract can never be `andi::allow`'d away.
    let proved = crate::interval::prove(&files, &graph);
    findings.extend(proved.findings);

    // Information-flow layer: leak findings are suppressible (though
    // the idiomatic sanction is `andi::declassify`, which the pass
    // applies internally); its pragma hygiene joins the contract
    // hygiene after the suppression pass.
    let taint = crate::taint::analyze(&files, &graph);
    findings.extend(taint.findings);

    // Pragma suppression + hygiene, per file.
    for (fi, sf) in files.iter().enumerate() {
        let mut used = vec![false; sf.scan.pragmas.len()];
        // Mid-path pragmas that cut a reachability edge count as used
        // even though no finding reaches their line.
        for (pi, p) in sf.scan.pragmas.iter().enumerate() {
            if cut_pragmas.iter().any(|&(f, l)| f == fi && l == p.line) {
                used[pi] = true;
            }
        }
        // A pragma on the finding's line, or on the line directly
        // above it, suppresses that rule there.
        findings.retain(|f| {
            if f.file != sf.path {
                return true;
            }
            let mut suppressed = false;
            for (pi, p) in sf.scan.pragmas.iter().enumerate() {
                if p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line) {
                    used[pi] = true;
                    suppressed = true;
                }
            }
            !suppressed
        });

        // Hygiene: a pragma must name a known rule and carry a
        // written reason; a well-formed pragma must suppress
        // something.
        for (pi, p) in sf.scan.pragmas.iter().enumerate() {
            if p.rule.is_empty() || !is_known_rule(&p.rule) {
                findings.push(Finding {
                    file: sf.path.clone(),
                    line: p.line,
                    col: 1,
                    rule: "invalid-pragma",
                    message: if p.rule.is_empty() {
                        "malformed pragma; expected `// andi::allow(<rule>) — <reason>`".to_string()
                    } else {
                        format!("pragma names unknown rule `{}`", p.rule)
                    },
                });
            } else if p.reason.is_empty() {
                findings.push(Finding {
                    file: sf.path.clone(),
                    line: p.line,
                    col: 1,
                    rule: "invalid-pragma",
                    message: format!(
                        "pragma for `{}` has no written justification; add `— <reason>`",
                        p.rule
                    ),
                });
            } else if !used[pi] {
                findings.push(Finding {
                    file: sf.path.clone(),
                    line: p.line,
                    col: 1,
                    rule: "unused-pragma",
                    message: format!("pragma for `{}` suppresses nothing; remove it", p.rule),
                });
            }
        }
    }

    // Contract and annotation hygiene land after suppression on
    // purpose: they are not suppressible.
    findings.extend(proved.hygiene);
    findings.extend(taint.hygiene);

    // Global deterministic order; name-collision over-approximation
    // in the call graph can produce identical duplicates — drop them.
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.file, b.line, b.col, b.rule, &b.message))
    });
    findings.dedup();
    findings
}

/// Lints one file's source under its workspace-relative `path` (a
/// one-file workspace: cross-file resolution sees nothing else).
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    lint_workspace(&[(path.to_string(), source.to_string())])
}

/// Lints files on disk under explicit virtual paths, as one
/// workspace.
pub fn lint_files(pairs: &[(String, PathBuf)]) -> io::Result<Vec<Finding>> {
    let mut inputs = Vec::with_capacity(pairs.len());
    for (virt, real) in pairs {
        inputs.push((virt.clone(), fs::read_to_string(real)?));
    }
    Ok(lint_workspace(&inputs))
}

/// Lints a file on disk under an explicit virtual path.
pub fn lint_file(virtual_path: &str, real_path: &Path) -> io::Result<Vec<Finding>> {
    lint_files(&[(virtual_path.to_string(), real_path.to_path_buf())])
}

/// The workspace-relative in-scope `.rs` files under `root`: `src/`
/// of the root package and of each `crates/*` member, skipping
/// `vendor/`, `target/`, and per-crate `fixtures/`, `tests/`,
/// `benches/`, `examples/`. Sorted lexicographically.
pub fn tree_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files: BTreeSet<PathBuf> = BTreeSet::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let member = entry?.path();
            if member.is_dir() {
                collect_rs(&member.join("src"), &mut files)?;
            }
        }
    }
    Ok(files
        .into_iter()
        .map(|file| {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            (rel, file)
        })
        .collect())
}

/// Walks the workspace at `root` and lints every in-scope `.rs` file
/// as one workspace. Finding order is `(path, line, col, rule)`,
/// independent of filesystem order.
pub fn check_tree(root: &Path) -> io::Result<Vec<Finding>> {
    lint_files(&tree_files(root)?)
}

/// Runs only the interval prover over the tree at `root`: scans and
/// parses every in-scope file, builds the call graph, and
/// machine-checks the `andi::prove_no_overflow` regions. This is the
/// kernel-equivalence entry point — CI runs it next to the
/// differential tests so a kernel edit that breaks a width proof
/// fails the same job that exercises the kernel.
pub fn prove_tree(root: &Path) -> io::Result<crate::interval::Proved> {
    let mut files = Vec::new();
    for (virt, real) in tree_files(root)? {
        files.push(SourceFile::new(&virt, &fs::read_to_string(&real)?));
    }
    let graph = build(&files);
    Ok(crate::interval::prove(&files, &graph))
}

/// Runs only the information-flow layer over the tree at `root`:
/// scans and parses every in-scope file, builds the call graph, and
/// traces `andi::sensitive` sources to disclosure sinks. This is the
/// `andi-lint taint` entry point — CI gates on zero findings and
/// archives the flow stats as a reviewable artifact.
pub fn taint_tree(root: &Path) -> io::Result<crate::taint::TaintReport> {
    let mut files = Vec::new();
    for (virt, real) in tree_files(root)? {
        files.push(SourceFile::new(&virt, &fs::read_to_string(&real)?));
    }
    let graph = build(&files);
    Ok(crate::taint::analyze(&files, &graph))
}

/// Counts the active `andi::declassify` boundaries in the tree at
/// `root`. The burn-down test pins this as a decreasing ceiling —
/// the declassification inventory can only shrink without review.
pub fn count_declassifies(root: &Path) -> io::Result<usize> {
    let mut n = 0;
    for (_, real) in tree_files(root)? {
        let source = fs::read_to_string(&real)?;
        n += crate::lexer::scan(&source).declassifies.len();
    }
    Ok(n)
}

/// Counts the active suppression pragmas in the tree at `root` —
/// every `// andi::allow(…)` the lexer collects from walked files
/// (fixtures, vendored code, and docs that merely mention the
/// grammar are out of scope by construction). The burn-down test
/// pins this as a decreasing ceiling.
pub fn count_pragmas(root: &Path) -> io::Result<usize> {
    let mut n = 0;
    for (_, real) in tree_files(root)? {
        let source = fs::read_to_string(&real)?;
        n += crate::lexer::scan(&source).pragmas.len();
    }
    Ok(n)
}

/// Recursively collects `.rs` files under `dir` (if it exists).
fn collect_rs(dir: &Path, out: &mut BTreeSet<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.insert(path);
        }
    }
    Ok(())
}

/// Renders findings as human-readable lines.
pub fn format_human(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.file, f.line, f.col, f.rule, f.message
        ));
    }
    s.push_str(&format!(
        "andi-lint: {} finding{}\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    ));
    s
}

/// Renders findings as a JSON array (stable field order; no escapes
/// beyond the JSON-mandatory set).
pub fn format_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// Renders findings as a minimal SARIF 2.1.0 log (one run, one
/// driver). Field order is fixed and findings arrive pre-sorted from
/// [`lint_workspace`], so the output is byte-stable for a given
/// finding set regardless of input order. The rule catalogue embeds
/// only the rules that actually fired, keeping the log small and the
/// bytes independent of unrelated catalogue growth.
pub fn format_sarif(findings: &[Finding]) -> String {
    let mut fired: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    fired.sort_unstable();
    fired.dedup();
    let mut s = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"andi-lint\",\n          \"rules\": [",
    );
    for (i, name) in fired.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let summary = crate::rules::RULES
            .iter()
            .find(|r| r.name == *name)
            .map(|r| r.summary)
            .unwrap_or("");
        s.push_str(&format!(
            "\n            {{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            json_str(name),
            json_str(summary)
        ));
    }
    if !fired.is_empty() {
        s.push_str("\n          ");
    }
    s.push_str("]\n        }\n      },\n      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n        {{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            json_str(f.rule),
            json_str(&f.message),
            json_str(&f.file),
            f.line,
            f.col
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

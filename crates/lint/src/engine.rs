//! Ties the lexer and the rules together: test-span masking, pragma
//! suppression, pragma hygiene, and the deterministic file walk.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{scan, Token};
use crate::rules::{is_known_rule, run_rules, Finding};

/// Lints one file's source under its workspace-relative `path`.
/// Returns the unsuppressed findings, sorted by (line, col, rule).
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let scanned = scan(source);
    let is_test = test_mask(&scanned.tokens);
    let mut findings = run_rules(path, &scanned.tokens, &is_test);

    // Pragma suppression: a pragma on the finding's line, or on the
    // line directly above it, suppresses that rule there.
    let mut used = vec![false; scanned.pragmas.len()];
    findings.retain(|f| {
        let mut suppressed = false;
        for (pi, p) in scanned.pragmas.iter().enumerate() {
            if p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line) {
                used[pi] = true;
                suppressed = true;
            }
        }
        !suppressed
    });

    // Pragma hygiene. A pragma must name a known rule and carry a
    // written reason; a well-formed pragma must suppress something.
    for (pi, p) in scanned.pragmas.iter().enumerate() {
        if p.rule.is_empty() || !is_known_rule(&p.rule) {
            findings.push(Finding {
                file: path.to_string(),
                line: p.line,
                col: 1,
                rule: "invalid-pragma",
                message: if p.rule.is_empty() {
                    "malformed pragma; expected `// andi::allow(<rule>) — <reason>`".to_string()
                } else {
                    format!("pragma names unknown rule `{}`", p.rule)
                },
            });
        } else if p.reason.is_empty() {
            findings.push(Finding {
                file: path.to_string(),
                line: p.line,
                col: 1,
                rule: "invalid-pragma",
                message: format!(
                    "pragma for `{}` has no written justification; add `— <reason>`",
                    p.rule
                ),
            });
        } else if !used[pi] {
            findings.push(Finding {
                file: path.to_string(),
                line: p.line,
                col: 1,
                rule: "unused-pragma",
                message: format!("pragma for `{}` suppresses nothing; remove it", p.rule),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` items. The mask is
/// parallel to `tokens`.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = matching_bracket(tokens, i + 1, '[', ']');
            if is_test_attr(&tokens[i + 2..attr_end]) {
                let item_end = item_end(tokens, attr_end + 1);
                for m in mask.iter_mut().take(item_end).skip(i) {
                    *m = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Whether an attribute body (tokens between `#[` and `]`) marks test
/// code: `test`, `cfg(test)`, or any `cfg(...)` mentioning `test`.
fn is_test_attr(body: &[Token]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("test") && body.len() == 1 => true,
        Some(t) if t.is_ident("cfg") => body[1..].iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Index of the token closing the bracket opened at `open` (which
/// must hold `lo`). Falls back to the last token on imbalance.
fn matching_bracket(tokens: &[Token], open: usize, lo: char, hi: char) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(lo) {
            depth += 1;
        } else if t.is_punct(hi) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// End (exclusive) of the item starting at `start`: the token after
/// its first top-level `{…}` block, or after a `;` at depth 0
/// (whichever comes first). Nested attributes are skipped.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Skip stacked attributes on the same item.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        i = matching_bracket(tokens, i + 1, '[', ']') + 1;
    }
    let mut k = i;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct(';') {
            return k + 1;
        }
        if t.is_punct('{') {
            return matching_bracket(tokens, k, '{', '}') + 1;
        }
        k += 1;
    }
    tokens.len()
}

/// Lints a file on disk under an explicit virtual path.
pub fn lint_file(virtual_path: &str, real_path: &Path) -> io::Result<Vec<Finding>> {
    let source = fs::read_to_string(real_path)?;
    Ok(lint_source(virtual_path, &source))
}

/// Walks the workspace at `root` and lints every in-scope `.rs` file:
/// `src/` of the root package and of each `crates/*` member, skipping
/// `vendor/`, `target/`, and per-crate `fixtures/`, `tests/`,
/// `benches/`, `examples/`. The walk order (and so the finding
/// order) is lexicographic, independent of filesystem order.
pub fn check_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files: BTreeSet<PathBuf> = BTreeSet::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let member = entry?.path();
            if member.is_dir() {
                collect_rs(&member.join("src"), &mut files)?;
            }
        }
    }

    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_file(&rel, file)?);
    }
    Ok(findings)
}

/// Recursively collects `.rs` files under `dir` (if it exists).
fn collect_rs(dir: &Path, out: &mut BTreeSet<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.insert(path);
        }
    }
    Ok(())
}

/// Renders findings as human-readable lines.
pub fn format_human(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.file, f.line, f.col, f.rule, f.message
        ));
    }
    s.push_str(&format!(
        "andi-lint: {} finding{}\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    ));
    s
}

/// Renders findings as a JSON array (stable field order; no escapes
/// beyond the JSON-mandatory set).
pub fn format_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

//! Integer-interval abstract interpretation over fn bodies: the
//! engine behind `unchecked-width` and `assume-soundness`.
//!
//! The domain is `[lo, hi]` over `i128` with explicit infinities
//! ([`Bound`]), clamped through Rust's integer types ([`Ty`]). The
//! prover walks each fn body top to bottom, tracking an abstract
//! environment of variable → [`Val`] (interval + type), seeded by
//! parameter types, const generics, workspace `const`s, and
//! `// andi::assume(…)` contracts ([`crate::contracts`]).
//!
//! Inside a fn marked `// andi::prove_no_overflow`, every `+ - * <<`
//! and unary `-` (including `+= -= *= <<=`) must have a computed
//! interval that provably fits its type, or `unchecked-width` fires
//! with the computed interval and the offending op. Every `assume`
//! anywhere must be dominated by a runtime guard (`assert!` family or
//! a `match`) mentioning each free identifier of its target, or
//! `assume-soundness` fires — that is what keeps contracts from
//! drifting away from the code they describe.
//!
//! Soundness posture: the walker is conservative. Unknown constructs
//! evaluate to ⊤, written variables are widened to their type range
//! across loop iterations (assumes re-narrow them), closures and
//! `match` arms are opaque (their writes widen, their ops are not
//! checked), and only unambiguous call-graph edges propagate return
//! intervals. The checked-op list is exactly the set of ops that can
//! overflow in release builds without a guard: `+ - * <<` and `neg`;
//! `& | ^ >> / %` and the `wrapping_/checked_/saturating_` method
//! families cannot, and are used as *sources* of bounds instead.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::contracts::{self, Assume, Contract};
use crate::graph::{self, CallGraph, SourceFile};
use crate::lexer::{Token, TokenKind};
use crate::rules::Finding;

// ---------------------------------------------------------------
// Bounds and intervals
// ---------------------------------------------------------------

/// One end of an interval: finite `i128` or an infinity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// −∞.
    NegInf,
    /// A finite value.
    Fin(i128),
    /// +∞.
    PosInf,
}

use Bound::{Fin, NegInf, PosInf};

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bound {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Equal,
            (NegInf, _) | (_, PosInf) => Less,
            (_, NegInf) | (PosInf, _) => Greater,
            (Fin(a), Fin(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegInf => write!(f, "-inf"),
            PosInf => write!(f, "+inf"),
            Fin(v) => write!(f, "{v}"),
        }
    }
}

/// A closed integer interval `[lo, hi]`; `lo ≤ hi` always holds for
/// values built through the constructors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound (never `PosInf`).
    pub lo: Bound,
    /// Inclusive upper bound (never `NegInf`).
    pub hi: Bound,
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// The whole line: `[-inf, +inf]`.
pub const TOP: Interval = Interval {
    lo: NegInf,
    hi: PosInf,
};

// The abstract transfer functions deliberately mirror the operator
// names they model (`add`, `shl`, …); implementing the std operator
// traits instead would hide the interval semantics behind sugar.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// `[v, v]`.
    pub fn exact(v: i128) -> Interval {
        Interval {
            lo: Fin(v),
            hi: Fin(v),
        }
    }

    /// `[lo, hi]` from finite bounds.
    pub fn fin(lo: i128, hi: i128) -> Interval {
        debug_assert!(lo <= hi);
        Interval {
            lo: Fin(lo),
            hi: Fin(hi),
        }
    }

    /// Smallest interval containing both.
    pub fn union(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Intersection, `None` when empty.
    pub fn meet(self, o: Interval) -> Option<Interval> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Whether every point of `self` lies inside `o`.
    pub fn within(self, o: Interval) -> bool {
        o.lo <= self.lo && self.hi <= o.hi
    }

    fn nonneg(self) -> bool {
        Fin(0) <= self.lo
    }

    /// Sum; any i128 overflow widens that side to its infinity.
    pub fn add(self, o: Interval) -> Interval {
        Interval {
            lo: badd(self.lo, o.lo, NegInf),
            hi: badd(self.hi, o.hi, PosInf),
        }
    }

    /// Difference.
    pub fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: badd(self.lo, bneg(o.hi), NegInf),
            hi: badd(self.hi, bneg(o.lo), PosInf),
        }
    }

    /// Product: min/max over the four corners, `0 × ∞ = 0`.
    pub fn mul(self, o: Interval) -> Interval {
        let cs = [
            bmul(self.lo, o.lo),
            bmul(self.lo, o.hi),
            bmul(self.hi, o.lo),
            bmul(self.hi, o.hi),
        ];
        Interval {
            lo: cs.iter().copied().min().unwrap_or(NegInf),
            hi: cs.iter().copied().max().unwrap_or(PosInf),
        }
    }

    /// Negation.
    pub fn neg(self) -> Interval {
        Interval {
            lo: bneg(self.hi),
            hi: bneg(self.lo),
        }
    }

    /// `|x|`.
    pub fn abs_(self) -> Interval {
        if self.nonneg() {
            return self;
        }
        let n = self.neg();
        if Fin(0) <= n.lo {
            return n;
        }
        Interval {
            lo: Fin(0),
            hi: self.hi.max(n.hi),
        }
    }

    /// Left shift `self << s` (shift clamped to `[0, 127]`).
    pub fn shl(self, s: Interval) -> Interval {
        let (slo, shi) = clamp_shift(s);
        let cs = [
            bshl(self.lo, slo),
            bshl(self.lo, shi),
            bshl(self.hi, slo),
            bshl(self.hi, shi),
        ];
        Interval {
            lo: cs.iter().copied().min().unwrap_or(NegInf),
            hi: cs.iter().copied().max().unwrap_or(PosInf),
        }
    }

    /// Right shift, non-negative operand only (else ⊤-ish widening).
    pub fn shr(self, s: Interval) -> Interval {
        let (slo, _shi) = clamp_shift(s);
        if !self.nonneg() {
            return TOP;
        }
        let hi = match self.hi {
            Fin(h) => Fin(h >> slo.min(127)),
            b => b,
        };
        Interval { lo: Fin(0), hi }
    }

    /// `x & m`: when either side is known non-negative with a finite
    /// upper bound `M`, the result is `[0, M]` regardless of the
    /// other operand (two's complement AND cannot exceed a
    /// non-negative operand).
    pub fn and_mask(self, o: Interval) -> Interval {
        let cap = |iv: Interval| -> Option<i128> {
            match (iv.nonneg(), iv.hi) {
                (true, Fin(h)) => Some(h),
                _ => None,
            }
        };
        match (cap(self), cap(o)) {
            (Some(a), Some(b)) => Interval::fin(0, a.min(b)),
            (Some(a), None) => Interval::fin(0, a),
            (None, Some(b)) => Interval::fin(0, b),
            (None, None) => TOP,
        }
    }

    /// `x | m` / `x ^ m` for non-negative finite operands: bounded by
    /// the next power of two above either maximum.
    pub fn or_like(self, o: Interval) -> Interval {
        match (self.nonneg(), self.hi, o.nonneg(), o.hi) {
            (true, Fin(a), true, Fin(b)) => {
                let m = a.max(b).max(0) as u128;
                let cap = m
                    .checked_next_power_of_two()
                    .and_then(|p| p.checked_mul(2))
                    .map_or(PosInf, |p| Fin((p - 1).min(i128::MAX as u128) as i128));
                Interval {
                    lo: Fin(0),
                    hi: cap,
                }
            }
            _ => TOP,
        }
    }

    /// `x % m` with `m ≥ 1`: `[0, m.hi − 1]` for non-negative `x`,
    /// `[−(m.hi − 1), m.hi − 1]` otherwise.
    pub fn rem(self, m: Interval) -> Interval {
        let Fin(mh) = m.hi else { return TOP };
        if m.lo < Fin(1) || mh < 1 {
            return TOP;
        }
        if self.nonneg() {
            // A remainder never exceeds the dividend either.
            let hi = match self.hi {
                Fin(h) => h.min(mh - 1),
                _ => mh - 1,
            };
            Interval::fin(0, hi)
        } else {
            Interval::fin(-(mh - 1), mh - 1)
        }
    }

    /// Pointwise `min`.
    pub fn min_(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    /// Pointwise `max`.
    pub fn max_(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.max(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
}

/// Bound addition; on i128 overflow (or mixed infinities) falls to
/// `widen` — callers pass the sound direction for the side they are
/// computing.
fn badd(a: Bound, b: Bound, widen: Bound) -> Bound {
    match (a, b) {
        (Fin(x), Fin(y)) => x.checked_add(y).map(Fin).unwrap_or(widen),
        (NegInf, PosInf) | (PosInf, NegInf) => widen,
        (NegInf, _) | (_, NegInf) => NegInf,
        (PosInf, _) | (_, PosInf) => PosInf,
    }
}

fn bneg(a: Bound) -> Bound {
    match a {
        NegInf => PosInf,
        PosInf => NegInf,
        Fin(v) => v.checked_neg().map(Fin).unwrap_or(PosInf),
    }
}

fn bmul(a: Bound, b: Bound) -> Bound {
    let sign = |b: Bound| match b {
        NegInf => -1,
        PosInf => 1,
        Fin(v) => v.signum() as i32,
    };
    match (a, b) {
        (Fin(0), _) | (_, Fin(0)) => Fin(0),
        (Fin(x), Fin(y)) => x.checked_mul(y).map(Fin).unwrap_or_else(|| {
            if (x < 0) ^ (y < 0) {
                NegInf
            } else {
                PosInf
            }
        }),
        _ => {
            if sign(a) * sign(b) < 0 {
                NegInf
            } else {
                PosInf
            }
        }
    }
}

fn bshl(a: Bound, s: u32) -> Bound {
    match a {
        Fin(x) => match x.checked_shl(s) {
            Some(r) if (r >> s) == x => Fin(r),
            _ => {
                if x < 0 {
                    NegInf
                } else {
                    PosInf
                }
            }
        },
        b => b,
    }
}

/// Shift amounts clamped into `[0, 127]` (a shift ≥ width is already
/// caught by the fit check on the operand type).
fn clamp_shift(s: Interval) -> (u32, u32) {
    let c = |b: Bound, dflt: u32| match b {
        Fin(v) => v.clamp(0, 127) as u32,
        _ => dflt,
    };
    (c(s.lo, 0), c(s.hi, 127))
}

// ---------------------------------------------------------------
// Types
// ---------------------------------------------------------------

/// A Rust integer type the prover clamps through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Ty {
    I8,
    I16,
    I32,
    I64,
    I128,
    Isize,
    U8,
    U16,
    U32,
    U64,
    U128,
    Usize,
}

impl Ty {
    /// Parses a scalar type name.
    pub fn parse(s: &str) -> Option<Ty> {
        Some(match s {
            "i8" => Ty::I8,
            "i16" => Ty::I16,
            "i32" => Ty::I32,
            "i64" => Ty::I64,
            "i128" => Ty::I128,
            "isize" => Ty::Isize,
            "u8" => Ty::U8,
            "u16" => Ty::U16,
            "u32" => Ty::U32,
            "u64" => Ty::U64,
            "u128" => Ty::U128,
            "usize" => Ty::Usize,
            _ => return None,
        })
    }

    /// Bit width; `usize`/`isize` assume the 64-bit targets this
    /// workspace ships on (CI runs x86-64/aarch64).
    pub fn bits(self) -> u32 {
        match self {
            Ty::I8 | Ty::U8 => 8,
            Ty::I16 | Ty::U16 => 16,
            Ty::I32 | Ty::U32 => 32,
            Ty::I64 | Ty::U64 | Ty::Isize | Ty::Usize => 64,
            Ty::I128 | Ty::U128 => 128,
        }
    }

    /// Whether the type is signed.
    pub fn signed(self) -> bool {
        matches!(
            self,
            Ty::I8 | Ty::I16 | Ty::I32 | Ty::I64 | Ty::I128 | Ty::Isize
        )
    }

    /// The type's value range as an interval (`u128::MAX` exceeds
    /// `i128`, so `U128`'s upper bound is `+inf` — a `u128` value can
    /// therefore never be *proved* to fit by this domain, which is
    /// the conservative direction).
    pub fn range(self) -> Interval {
        if self.signed() {
            let b = self.bits();
            if b == 128 {
                return Interval::fin(i128::MIN, i128::MAX);
            }
            let h = (1i128 << (b - 1)) - 1;
            Interval::fin(-(h + 1), h)
        } else {
            let b = self.bits();
            if b == 128 {
                return Interval {
                    lo: Fin(0),
                    hi: PosInf,
                };
            }
            Interval::fin(0, (1i128 << b) - 1)
        }
    }

    fn name(self) -> &'static str {
        match self {
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::I128 => "i128",
            Ty::Isize => "isize",
            Ty::U8 => "u8",
            Ty::U16 => "u16",
            Ty::U32 => "u32",
            Ty::U64 => "u64",
            Ty::U128 => "u128",
            Ty::Usize => "usize",
        }
    }
}

/// What the prover knows about a value's type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TyInfo {
    /// A known integer type.
    Int(Ty),
    /// Floating point — ops on floats are never width-checked.
    Float,
    /// A sequence (slice, array, `Vec`) of elements.
    Seq(Box<TyInfo>),
    /// No information.
    Unknown,
}

impl TyInfo {
    /// One indexing/iteration step: unwraps a `Seq` level.
    pub fn elem(&self) -> TyInfo {
        match self {
            TyInfo::Seq(inner) => (**inner).clone(),
            _ => TyInfo::Unknown,
        }
    }
}

/// Parses normalized type text (`& 'a [ u64 ]`, `Vec < i32 >`,
/// `usize`) into a [`TyInfo`].
pub fn parse_ty_str(s: &str) -> TyInfo {
    let toks = crate::lexer::scan(s).tokens;
    parse_ty_toks(&toks, 0).0
}

fn parse_ty_toks(toks: &[Token], mut k: usize) -> (TyInfo, usize) {
    // Strip references, lifetimes, and `mut`.
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('&') || t.kind == TokenKind::Lifetime || t.is_ident("mut") {
            k += 1;
        } else {
            break;
        }
    }
    let Some(t) = toks.get(k) else {
        return (TyInfo::Unknown, k);
    };
    if t.is_punct('[') {
        let (inner, _) = parse_ty_toks(toks, k + 1);
        return (TyInfo::Seq(Box::new(inner)), toks.len());
    }
    if t.kind == TokenKind::Ident {
        if let Some(ty) = Ty::parse(&t.text) {
            return (TyInfo::Int(ty), k + 1);
        }
        if t.text == "f32" || t.text == "f64" {
            return (TyInfo::Float, k + 1);
        }
        if t.text == "Vec" && toks.get(k + 1).is_some_and(|n| n.is_punct('<')) {
            let (inner, _) = parse_ty_toks(toks, k + 2);
            return (TyInfo::Seq(Box::new(inner)), toks.len());
        }
    }
    (TyInfo::Unknown, k + 1)
}

// ---------------------------------------------------------------
// Abstract values and environments
// ---------------------------------------------------------------

/// An abstract value: interval + type knowledge. For `Seq` values the
/// interval describes the *scalar leaves* (indexing and iteration
/// unwrap the type but keep the interval).
#[derive(Clone, Debug)]
pub struct Val {
    /// Interval of the value (scalar leaves for sequences).
    pub iv: Interval,
    /// Type knowledge.
    pub ty: TyInfo,
    /// `(file, line)` of the assume this value's narrowing came from;
    /// looking the value up marks that assume used.
    pub src: Option<(usize, u32)>,
}

impl Val {
    fn top() -> Val {
        Val {
            iv: TOP,
            ty: TyInfo::Unknown,
            src: None,
        }
    }

    fn of(iv: Interval, ty: TyInfo) -> Val {
        Val { iv, ty, src: None }
    }

    fn int(iv: Interval, ty: Ty) -> Val {
        Val::of(iv, TyInfo::Int(ty))
    }

    /// One indexing/iteration step.
    fn elem(&self) -> Val {
        Val {
            iv: self.iv,
            ty: self.ty.elem(),
            src: self.src,
        }
    }

    /// The widest value consistent with the type alone (the interval
    /// of a sequence describes its scalar leaves).
    fn ty_range(ty: &TyInfo) -> Val {
        fn leaf(ty: &TyInfo) -> Interval {
            match ty {
                TyInfo::Int(t) => t.range(),
                TyInfo::Seq(inner) => leaf(inner),
                _ => TOP,
            }
        }
        Val::of(leaf(ty), ty.clone())
    }
}

type Env = BTreeMap<String, Val>;

/// An assume attached to the fn currently being walked.
#[derive(Clone, Debug)]
struct ActiveAssume {
    a: Assume,
    /// `(file, line)` key for usage marking.
    key: (usize, u32),
    /// Whether the target is a pure path (`total`, `self . bits`) —
    /// applied through the environment — or an expression, matched
    /// against normalized spans during evaluation.
    is_path: bool,
    /// Whether the walker has passed the assume's line yet.
    active: bool,
}

/// Per-fn walk context.
struct Ctx {
    file: usize,
    fnid: usize,
    /// Whether this fn is a `prove_no_overflow` region (checks on).
    region: bool,
    /// Suppression depth: > 0 while re-evaluating for type inference
    /// or walking callees for return intervals — no findings then.
    suppress: u32,
    /// Interprocedural depth (caps return-interval chains).
    depth: u32,
    env: Env,
    assumes: Vec<ActiveAssume>,
    /// Values of `return expr;` statements seen so far.
    returns: Vec<Val>,
}

/// Prover statistics, surfaced by `andi-lint prove`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProofStats {
    /// Fns marked `prove_no_overflow`.
    pub regions: usize,
    /// Width-checked arithmetic ops inside regions.
    pub checked_ops: usize,
    /// Well-formed `assume` contracts.
    pub assumes: usize,
    /// Fns the walker analyzed (regions + fns carrying assumes).
    pub fns_analyzed: usize,
}

/// Everything the prover concluded about one workspace.
#[derive(Debug, Default)]
pub struct Proved {
    /// `unchecked-width` / `assume-soundness` findings
    /// (suppressible like any other rule).
    pub findings: Vec<Finding>,
    /// Contract-hygiene findings (`invalid-pragma`/`unused-pragma`
    /// rules; NOT suppressible, mirroring `andi::allow` hygiene).
    pub hygiene: Vec<Finding>,
    /// Statistics for reporting.
    pub stats: ProofStats,
}

/// The workspace-level prover.
struct Prover<'a> {
    files: &'a [SourceFile],
    g: &'a CallGraph,
    /// Workspace `const NAME: Ty = …;` values by name; `None` marks
    /// a cross-file name conflict (treated as unknown).
    consts: BTreeMap<String, Option<Val>>,
    /// Struct-field types keyed by struct name then field name;
    /// `None` marks a same-name duplicate-definition conflict.
    fields: BTreeMap<String, BTreeMap<String, Option<TyInfo>>>,
    /// Parsed contracts grouped per fn: `(assumes, is_region)`.
    fn_contracts: BTreeMap<usize, (Vec<Assume>, bool)>,
    /// Memoized return values per fn; `None` = in progress.
    ret_memo: BTreeMap<usize, Option<Val>>,
    /// `(file, line)` of every contract that did some work.
    used: BTreeSet<(usize, u32)>,
    findings: Vec<Finding>,
    hygiene: Vec<Finding>,
    stats: ProofStats,
}

/// Runs the interval prover over the whole workspace.
pub fn prove(files: &[SourceFile], g: &CallGraph) -> Proved {
    let mut p = Prover {
        files,
        g,
        consts: BTreeMap::new(),
        fields: BTreeMap::new(),
        fn_contracts: BTreeMap::new(),
        ret_memo: BTreeMap::new(),
        used: BTreeSet::new(),
        findings: Vec::new(),
        hygiene: Vec::new(),
        stats: ProofStats::default(),
    };
    p.scan_fields();
    p.scan_consts();
    p.map_contracts();
    p.run();
    let mut out = Proved {
        findings: p.findings,
        hygiene: p.hygiene,
        stats: p.stats,
    };
    out.findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out.hygiene
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

impl<'a> Prover<'a> {
    /// Collects `struct N { f: T, … }` field types workspace-wide,
    /// keyed by struct name (so two structs can share a field name
    /// with different types); duplicate same-name struct definitions
    /// with disagreeing types degrade to unknown.
    fn scan_fields(&mut self) {
        for sf in self.files {
            let toks = &sf.scan.tokens;
            for k in 0..toks.len() {
                if !toks[k].is_ident("struct")
                    || toks.get(k + 1).is_none_or(|n| n.kind != TokenKind::Ident)
                {
                    continue;
                }
                let sname = toks[k + 1].text.clone();
                // `struct Name … {` — find the body brace at depth 0
                // (skipping the generics header), then `ident : ty`
                // pairs at depth 1.
                let mut j = k + 1;
                let mut open = None;
                let mut depth = 0i64;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('<') || t.is_punct('(') {
                        depth += 1;
                    } else if t.is_punct('>') || t.is_punct(')') {
                        depth -= 1;
                    } else if t.is_punct(';') && depth <= 0 {
                        break; // tuple/unit struct
                    } else if t.is_punct('{') && depth <= 0 {
                        open = Some(j);
                        break;
                    }
                    j += 1;
                }
                let Some(open) = open else { continue };
                let close = matching_brace(toks, open);
                let mut m = open + 1;
                while m + 1 < close {
                    let t = &toks[m];
                    if t.kind == TokenKind::Ident && toks[m + 1].is_punct(':') {
                        // Type text runs to the next depth-0 `,`.
                        let mut d = 0i64;
                        let mut e = m + 2;
                        while e < close {
                            let u = &toks[e];
                            if u.is_punct('<') || u.is_punct('(') || u.is_punct('[') {
                                d += 1;
                            } else if u.is_punct('>') || u.is_punct(')') || u.is_punct(']') {
                                d -= 1;
                            } else if u.is_punct(',') && d <= 0 {
                                break;
                            }
                            e += 1;
                        }
                        let ty = parse_ty_toks(&toks[m + 2..e], 0).0;
                        self.fields
                            .entry(sname.clone())
                            .or_default()
                            .entry(toks[m].text.clone())
                            .and_modify(|v| {
                                if v.as_ref() != Some(&ty) {
                                    *v = None;
                                }
                            })
                            .or_insert(Some(ty));
                        m = e + 1;
                    } else {
                        m += 1;
                    }
                }
            }
        }
    }

    /// Looks up a field's type: the enclosing impl's struct first
    /// (`self_of`), then — for free `x.field` accesses with no
    /// receiver type — the unanimous type across every struct that
    /// declares the field, degrading to unknown on any disagreement.
    fn field_ty(&self, self_of: Option<&str>, fname: &str) -> TyInfo {
        if let Some(sname) = self_of {
            if let Some(per) = self.fields.get(sname) {
                if let Some(o) = per.get(fname) {
                    return o.clone().unwrap_or(TyInfo::Unknown);
                }
            }
        }
        let mut agreed: Option<TyInfo> = None;
        for per in self.fields.values() {
            let Some(o) = per.get(fname) else { continue };
            let Some(ty) = o else {
                return TyInfo::Unknown;
            };
            match &agreed {
                None => agreed = Some(ty.clone()),
                Some(a) if a == ty => {}
                Some(_) => return TyInfo::Unknown,
            }
        }
        agreed.unwrap_or(TyInfo::Unknown)
    }

    /// Collects `const NAME: Ty = <expr>;` values. Two passes: plain
    /// literals first, then a check-free evaluation so consts built
    /// from other consts (`1u64 << 62`, `A * B`) resolve too.
    fn scan_consts(&mut self) {
        let mut sites: Vec<(usize, usize, usize, String, TyInfo)> = Vec::new();
        for (fi, sf) in self.files.iter().enumerate() {
            let toks = &sf.scan.tokens;
            for k in 0..toks.len() {
                if !toks[k].is_ident("const") {
                    continue;
                }
                let Some(name) = toks.get(k + 1).filter(|t| t.kind == TokenKind::Ident) else {
                    continue;
                };
                if !toks.get(k + 2).is_some_and(|t| t.is_punct(':')) {
                    continue;
                }
                // `const fn` and associated-const-in-trait headers
                // never match `ident :` here, so this is a value.
                let mut eq = k + 3;
                let mut d = 0i64;
                while eq < toks.len() {
                    let t = &toks[eq];
                    if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                        d += 1;
                    } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                        d -= 1;
                    } else if (t.is_punct('=') || t.is_punct(';')) && d <= 0 {
                        break;
                    }
                    eq += 1;
                }
                if !toks.get(eq).is_some_and(|t| t.is_punct('=')) {
                    continue;
                }
                let ty = parse_ty_toks(&toks[k + 3..eq], 0).0;
                let mut end = eq + 1;
                let mut d2 = 0i64;
                while end < toks.len() {
                    let t = &toks[end];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        d2 += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        d2 -= 1;
                    } else if t.is_punct(';') && d2 <= 0 {
                        break;
                    }
                    end += 1;
                }
                sites.push((fi, eq + 1, end, name.text.clone(), ty));
            }
        }
        // Pass 1: literal initializers.
        for (fi, lo, hi, name, ty) in &sites {
            let toks = &self.files[*fi].scan.tokens;
            if hi - lo == 1 && toks[*lo].kind == TokenKind::Number {
                if let Some((v, suffix)) = parse_int_lit(&toks[*lo].text) {
                    let t = suffix.or(match ty {
                        TyInfo::Int(t) => Some(*t),
                        _ => None,
                    });
                    let val = match t {
                        Some(t) => Val::int(Interval::exact(v), t),
                        None => Val::of(Interval::exact(v), ty.clone()),
                    };
                    self.insert_const(name, val);
                }
            }
        }
        // Pass 2: evaluate the rest with checks off.
        for (fi, lo, hi, name, ty) in &sites {
            if self.consts.contains_key(name) {
                continue;
            }
            let mut cx = self.fresh_ctx(*fi);
            let v = self.eval(&mut cx, *lo, *hi);
            let v = match (&v.ty, ty) {
                (TyInfo::Unknown, TyInfo::Int(t)) => {
                    let iv = v.iv.meet(t.range()).unwrap_or(t.range());
                    Val::int(iv, *t)
                }
                _ => v,
            };
            self.insert_const(name, v);
        }
    }

    fn insert_const(&mut self, name: &str, val: Val) {
        match self.consts.get_mut(name) {
            None => {
                self.consts.insert(name.to_string(), Some(val));
            }
            Some(slot) => {
                // Same-name consts in different files: keep only if
                // the intervals agree, else poison.
                let agree = slot
                    .as_ref()
                    .is_some_and(|v| v.iv == val.iv && v.ty == val.ty);
                if !agree {
                    *slot = None;
                }
            }
        }
    }

    /// A suppressed, empty context for const/ret evaluation.
    fn fresh_ctx(&self, file: usize) -> Ctx {
        Ctx {
            file,
            fnid: usize::MAX,
            region: false,
            suppress: 1,
            depth: 0,
            env: Env::new(),
            assumes: Vec::new(),
            returns: Vec::new(),
        }
    }

    /// Parses every file's contract comments and maps each to the
    /// innermost fn whose body covers its line. Invalid contracts and
    /// contracts with no enclosing fn become hygiene findings.
    fn map_contracts(&mut self) {
        for (fi, sf) in self.files.iter().enumerate() {
            let fc = contracts::parse(&sf.scan.contracts);
            for (line, msg) in &fc.invalid {
                self.hygiene.push(Finding {
                    file: sf.path.clone(),
                    line: *line,
                    col: 1,
                    rule: "invalid-pragma",
                    message: msg.clone(),
                });
            }
            for c in fc.contracts {
                let line = match &c {
                    Contract::ProveRegion { line } => *line,
                    Contract::Assume(a) => a.line,
                };
                let Some(fnid) = self.enclosing_fn(fi, line) else {
                    self.hygiene.push(Finding {
                        file: sf.path.clone(),
                        line,
                        col: 1,
                        rule: "invalid-pragma",
                        message: "contract has no enclosing fn body; move it inside the fn it \
                                  describes"
                            .to_string(),
                    });
                    continue;
                };
                let entry = self.fn_contracts.entry(fnid).or_default();
                match c {
                    Contract::ProveRegion { .. } => {
                        entry.1 = true;
                        self.used.insert((fi, line));
                    }
                    Contract::Assume(a) => {
                        self.stats.assumes += 1;
                        entry.0.push(a);
                    }
                }
            }
        }
    }

    /// Innermost fn whose body token range covers `line` in file
    /// `fi` (smallest covering span wins).
    fn enclosing_fn(&self, fi: usize, line: u32) -> Option<usize> {
        let toks = &self.files[fi].scan.tokens;
        let mut best: Option<(usize, usize)> = None;
        for (i, f) in self.g.fns.iter().enumerate() {
            if f.file != fi {
                continue;
            }
            let Some((lo, hi)) = f.body else { continue };
            // `body` is strictly inside the braces; widen to the `{`
            // at `lo - 1` and the `}` at `hi` so contracts on the
            // first body line (before any token) are still covered.
            let (Some(a), Some(b)) = (toks.get(lo.saturating_sub(1)), toks.get(hi)) else {
                continue;
            };
            if a.line <= line && line <= b.line {
                let span = hi - lo;
                if best.is_none_or(|(_, s)| span < s) {
                    best = Some((i, span));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Walks every fn that is a region or carries assumes, then
    /// reports assumes that never narrowed anything.
    fn run(&mut self) {
        let ids: Vec<usize> = self.fn_contracts.keys().copied().collect();
        for fnid in ids {
            let f = &self.g.fns[fnid];
            if f.in_test {
                continue;
            }
            let (assumes, region) = self.fn_contracts.get(&fnid).cloned().unwrap_or_default();
            if region {
                self.stats.regions += 1;
            }
            self.stats.fns_analyzed += 1;
            self.check_assume_guards(fnid, &assumes);
            self.walk_fn(fnid, region, 0);
        }
        // Unused assumes.
        let mut unused: Vec<(usize, u32, String)> = Vec::new();
        for (fnid, (assumes, _)) in &self.fn_contracts {
            let f = &self.g.fns[*fnid];
            if f.in_test {
                continue;
            }
            for a in assumes {
                if !self.used.contains(&(f.file, a.line)) {
                    unused.push((
                        f.file,
                        a.line,
                        format!(
                            "contract `andi::assume({})` narrows nothing; remove it or fix \
                             the target",
                            a.target
                        ),
                    ));
                }
            }
        }
        for (fi, line, message) in unused {
            self.hygiene.push(Finding {
                file: self.files[fi].path.clone(),
                line,
                col: 1,
                rule: "unused-pragma",
                message,
            });
        }
    }

    /// `assume-soundness`: each assume must have, at or above its
    /// line inside the same fn body, an `assert!`-family macro whose
    /// argument list mentions every free identifier of the target, or
    /// a `match` whose span does.
    fn check_assume_guards(&mut self, fnid: usize, assumes: &[Assume]) {
        let f = &self.g.fns[fnid];
        let sf = &self.files[f.file];
        let toks = &sf.scan.tokens;
        let Some((lo, hi)) = f.body else { return };
        let hi = hi.min(toks.len());
        for a in assumes {
            if a.idents.is_empty() {
                continue; // constant target; nothing to guard
            }
            let mut guarded = false;
            for k in lo..hi {
                let t = &toks[k];
                if t.line > a.line {
                    break;
                }
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let is_assert = matches!(
                    t.text.as_str(),
                    "assert"
                        | "assert_eq"
                        | "assert_ne"
                        | "debug_assert"
                        | "debug_assert_eq"
                        | "debug_assert_ne"
                        | "matches"
                ) && toks.get(k + 1).is_some_and(|n| n.is_punct('!'));
                let is_match = t.is_ident("match");
                if !is_assert && !is_match {
                    continue;
                }
                let (glo, ghi) = if is_assert {
                    let Some(open) = toks.get(k + 2).filter(|n| n.is_punct('(')) else {
                        continue;
                    };
                    let _ = open;
                    let close = graph::matching_paren(toks, k + 2, hi);
                    (k + 3, close)
                } else {
                    // `match scrutinee { arms }` — the whole construct.
                    let Some(open) = brace_after(toks, k + 1, hi) else {
                        continue;
                    };
                    (k + 1, matching_brace(toks, open))
                };
                let mentions_all = a.idents.iter().all(|id| {
                    toks[glo..ghi.min(hi)]
                        .iter()
                        .any(|t| t.kind == TokenKind::Ident && &t.text == id)
                });
                if mentions_all {
                    guarded = true;
                    break;
                }
            }
            if !guarded {
                self.findings.push(Finding {
                    file: sf.path.clone(),
                    line: a.line,
                    col: 1,
                    rule: "assume-soundness",
                    message: format!(
                        "`andi::assume({} in [{}, {}])` has no dominating runtime guard \
                         mentioning {}; add an assert!/debug_assert! (or match) above it \
                         so the contract cannot drift from the code",
                        a.target,
                        a.lo,
                        a.hi,
                        a.idents
                            .iter()
                            .map(|i| format!("`{i}`"))
                            .collect::<Vec<_>>()
                            .join(", "),
                    ),
                });
            }
        }
    }

    /// Return interval of fn `fnid`, memoized; `depth` caps the
    /// interprocedural chain.
    fn ret_val(&mut self, fnid: usize, depth: u32) -> Val {
        let fallback = {
            let f = &self.g.fns[fnid];
            Val::ty_range(&parse_ty_str(&f.ret))
        };
        if depth > 3 {
            return fallback;
        }
        match self.ret_memo.get(&fnid) {
            Some(Some(v)) => return v.clone(),
            Some(None) => return fallback, // recursion
            None => {}
        }
        self.ret_memo.insert(fnid, None);
        let v = self.walk_fn(fnid, false, depth + 1).unwrap_or(fallback);
        self.ret_memo.insert(fnid, Some(v.clone()));
        v
    }
}

// ---------------------------------------------------------------
// Statement walker
// ---------------------------------------------------------------

impl<'a> Prover<'a> {
    /// Walks one fn body; returns the union of `return` values and
    /// the tail expression when known.
    fn walk_fn(&mut self, fnid: usize, region: bool, depth: u32) -> Option<Val> {
        let g = self.g;
        let f = &g.fns[fnid];
        let (lo, hi) = f.body?;
        let files = self.files;
        let toks = &files[f.file].scan.tokens;
        let hi = hi.min(toks.len());
        if lo >= hi {
            return None;
        }
        let mut cx = Ctx {
            file: f.file,
            fnid,
            region,
            suppress: u32::from(depth > 0),
            depth,
            env: Env::new(),
            assumes: Vec::new(),
            returns: Vec::new(),
        };
        for p in f.consts.iter().chain(f.params.iter()) {
            cx.env
                .insert(p.name.clone(), Val::ty_range(&parse_ty_str(&p.ty)));
        }
        if let Some((assumes, _)) = self.fn_contracts.get(&fnid) {
            for a in assumes.clone() {
                let is_path = a
                    .target
                    .split(' ')
                    .all(|w| w == "." || w == "self" || is_ident_word(w));
                cx.assumes.push(ActiveAssume {
                    key: (f.file, a.line),
                    a,
                    is_path,
                    active: false,
                });
            }
        }
        // `body` is strictly inside the braces: `lo - 1` is the `{`
        // and `hi` is the matching `}`.
        let open = lo.saturating_sub(1);
        let close = hi;
        let tail = self.walk_block(&mut cx, open, close);
        let mut out = tail;
        for r in cx.returns.clone() {
            out = Some(match out {
                Some(v) => Val::of(
                    v.iv.union(r.iv),
                    if v.ty == r.ty { v.ty } else { TyInfo::Unknown },
                ),
                None => r,
            });
        }
        out
    }

    /// Walks the statements between brace indices `open`/`close`
    /// (exclusive); returns the tail expression value if the block
    /// ends in one.
    fn walk_block(&mut self, cx: &mut Ctx, open: usize, close: usize) -> Option<Val> {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        let close = close.min(toks.len());
        let mut k = open + 1;
        let mut tail: Option<Val> = None;
        while k < close {
            let t = &toks[k];
            self.activate(cx, t.line);
            // Attributes on statements.
            if t.is_punct('#') {
                if toks.get(k + 1).is_some_and(|n| n.is_punct('[')) {
                    k = matching_bracket(toks, k + 1).min(close) + 1;
                } else {
                    k += 1;
                }
                continue;
            }
            if t.is_punct(';') || t.is_punct('}') {
                k += 1;
                continue;
            }
            match t.text.as_str() {
                "let" => k = self.stmt_let(cx, k, close),
                "for" => k = self.stmt_for(cx, k, close),
                "while" | "loop" => k = self.stmt_while_loop(cx, k, close),
                "if" => {
                    let (v, next) = self.eval_if(cx, k, close);
                    if next >= close {
                        tail = v;
                    }
                    k = next;
                }
                "match" => k = self.stmt_match(cx, k, close),
                "return" => {
                    let end = stmt_end(toks, k + 1, close);
                    if k + 1 < end {
                        let v = self.eval(cx, k + 1, end);
                        cx.returns.push(v);
                    }
                    k = end + 1;
                }
                "break" | "continue" => k = stmt_end(toks, k + 1, close) + 1,
                "unsafe" if toks.get(k + 1).is_some_and(|n| n.is_punct('{')) => {
                    let c = matching_brace(toks, k + 1).min(close);
                    let v = self.walk_block(cx, k + 1, c);
                    if c + 1 >= close {
                        tail = v;
                    }
                    k = c + 1;
                }
                _ if t.is_punct('{') => {
                    let c = matching_brace(toks, k).min(close);
                    let v = self.walk_block(cx, k, c);
                    if c + 1 >= close {
                        tail = v;
                    }
                    k = c + 1;
                }
                _ => {
                    // Assignment or expression statement.
                    let end = stmt_end(toks, k, close);
                    if let Some(next) = self.stmt_assign(cx, k, end) {
                        k = next;
                    } else {
                        let v = self.eval(cx, k, end);
                        if end >= close {
                            tail = Some(v);
                        }
                        k = end + 1;
                    }
                }
            }
        }
        tail
    }

    /// Activates every assume whose line the walker has reached;
    /// path-assumes narrow (or create) their environment entries.
    fn activate(&mut self, cx: &mut Ctx, line: u32) {
        for i in 0..cx.assumes.len() {
            if cx.assumes[i].active || cx.assumes[i].a.line > line {
                continue;
            }
            cx.assumes[i].active = true;
            if !cx.assumes[i].is_path {
                continue;
            }
            let (target, lo, hi, key) = {
                let aa = &cx.assumes[i];
                (aa.a.target.clone(), aa.a.lo, aa.a.hi, aa.key)
            };
            let range = Interval::fin(lo, hi);
            let mut keys = vec![target.clone()];
            if !target.contains(' ') {
                keys.push(format!("self . {target}"));
            }
            let self_of = self.g.fns[cx.fnid].self_of.clone();
            for kname in keys {
                let field = kname.rsplit(' ').next().unwrap_or(&kname).to_string();
                let fallback_ty = self.field_ty(self_of.as_deref(), &field);
                let entry = cx.env.entry(kname).or_insert_with(|| Val {
                    iv: TOP,
                    ty: fallback_ty,
                    src: None,
                });
                entry.iv = entry.iv.meet(range).unwrap_or(range);
                entry.src = Some(key);
            }
        }
    }

    /// Re-applies active path-assumes to `name` after a (re)binding.
    fn reapply_assumes(&mut self, cx: &mut Ctx, name: &str) {
        for i in 0..cx.assumes.len() {
            let aa = &cx.assumes[i];
            if !aa.active || !aa.is_path || aa.a.target != name {
                continue;
            }
            let range = Interval::fin(aa.a.lo, aa.a.hi);
            let key = aa.key;
            if let Some(v) = cx.env.get_mut(name) {
                v.iv = v.iv.meet(range).unwrap_or(range);
                v.src = Some(key);
            }
        }
    }

    /// `let [mut] <pat> [: ty] = <rhs>;`
    fn stmt_let(&mut self, cx: &mut Ctx, k: usize, close: usize) -> usize {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        let end = stmt_end(toks, k, close);
        // Split `pat [: ty] = rhs` at depth-0 `:` / assignment `=`.
        let mut eq = None;
        let mut colon = None;
        let mut d = 0i64;
        for j in k + 1..end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') || t.is_punct('{') {
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') || t.is_punct('}') {
                d -= 1;
            } else if d <= 0 && t.is_punct(':') && !toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            {
                if colon.is_none() {
                    colon = Some(j);
                }
            } else if d <= 0 && is_plain_assign(toks, j, end) {
                eq = Some(j);
                break;
            }
        }
        let Some(eq) = eq else { return end + 1 };
        let pat_hi = colon.unwrap_or(eq);
        let names = pattern_names(toks, k + 1, pat_hi);
        // `let … = rhs else { … };` — evaluate only up to `else`.
        let mut rhs_hi = end;
        let mut d2 = 0i64;
        #[allow(clippy::needless_range_loop)] // depth-tracking token scan
        for j in eq + 1..end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                d2 += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                d2 -= 1;
            } else if d2 <= 0 && t.is_ident("else") {
                rhs_hi = j;
                break;
            }
        }
        let mut val = self.eval(cx, eq + 1, rhs_hi);
        if let Some(c) = colon {
            let asc = parse_ty_toks(&toks[c + 1..eq], 0).0;
            match asc {
                TyInfo::Int(t) => {
                    val.iv = val.iv.meet(t.range()).unwrap_or(t.range());
                    val.ty = TyInfo::Int(t);
                }
                TyInfo::Unknown => {}
                other => val.ty = other,
            }
        }
        if names.len() == 1 {
            cx.env.insert(names[0].clone(), val);
            let n = names[0].clone();
            self.reapply_assumes(cx, &n);
        } else {
            for n in names {
                cx.env.insert(n.clone(), Val::top());
                self.reapply_assumes(cx, &n);
            }
        }
        end + 1
    }

    /// `for <pat> in <iter> { … }`
    fn stmt_for(&mut self, cx: &mut Ctx, k: usize, close: usize) -> usize {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        // Find depth-0 `in`, then the body `{`.
        let mut in_at = None;
        let mut d = 0i64;
        #[allow(clippy::needless_range_loop)] // depth-tracking token scan
        for j in k + 1..close {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                d -= 1;
            } else if d <= 0 && t.is_ident("in") {
                in_at = Some(j);
                break;
            }
        }
        let Some(in_at) = in_at else { return close };
        let Some(open) = brace_after(toks, in_at + 1, close) else {
            return close;
        };
        let body_close = matching_brace(toks, open).min(close);
        let shape = self.analyze_iter(cx, in_at + 1, open);
        let written = prescan_writes(toks, open + 1, body_close);
        self.widen_written(cx, &written, true);
        // Bind the loop pattern.
        let names = pattern_names(toks, k + 1, in_at);
        match (&names[..], shape) {
            ([a], ElemShape::Single(v)) => {
                cx.env.insert(a.clone(), v);
            }
            ([a, b], ElemShape::Pair(x, y)) => {
                cx.env.insert(a.clone(), *x);
                cx.env.insert(b.clone(), *y);
            }
            (ns, _) => {
                for n in ns {
                    cx.env.insert(n.clone(), Val::top());
                }
            }
        }
        for n in pattern_names(toks, k + 1, in_at) {
            self.reapply_assumes(cx, &n);
        }
        self.walk_block(cx, open, body_close);
        self.widen_written(cx, &written, false);
        body_close + 1
    }

    /// `while <cond> { … }` / `loop { … }`
    fn stmt_while_loop(&mut self, cx: &mut Ctx, k: usize, close: usize) -> usize {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        let Some(open) = brace_after(toks, k + 1, close) else {
            return close;
        };
        if toks[k].is_ident("while") && k + 1 < open {
            self.eval(cx, k + 1, open);
        }
        let body_close = matching_brace(toks, open).min(close);
        let written = prescan_writes(toks, open + 1, body_close);
        self.widen_written(cx, &written, true);
        self.walk_block(cx, open, body_close);
        self.widen_written(cx, &written, false);
        body_close + 1
    }

    /// `match <scrutinee> { … }` — the scrutinee is evaluated (and
    /// checked); the arms are opaque: their writes widen, their ops
    /// are not checked.
    fn stmt_match(&mut self, cx: &mut Ctx, k: usize, close: usize) -> usize {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        let Some(open) = brace_after(toks, k + 1, close) else {
            return close;
        };
        if k + 1 < open {
            self.eval(cx, k + 1, open);
        }
        let body_close = matching_brace(toks, open).min(close);
        let written = prescan_writes(toks, open + 1, body_close);
        self.widen_written(cx, &written, false);
        body_close + 1
    }

    /// `if c { … } else if c2 { … } else { … }` as statement or
    /// expression; returns `(tail value, index past the chain)`.
    fn eval_if(&mut self, cx: &mut Ctx, k: usize, close: usize) -> (Option<Val>, usize) {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        let base = cx.env.clone();
        let mut branch_envs: Vec<Env> = Vec::new();
        let mut vals: Vec<Option<Val>> = Vec::new();
        let mut has_else = false;
        let mut j = k;
        loop {
            // `j` sits on `if`.
            let Some(open) = brace_after(toks, j + 1, close) else {
                return (None, close);
            };
            if j + 1 < open {
                self.eval(cx, j + 1, open);
            }
            let body_close = matching_brace(toks, open).min(close);
            cx.env = base.clone();
            vals.push(self.walk_block(cx, open, body_close));
            branch_envs.push(std::mem::take(&mut cx.env));
            j = body_close + 1;
            if !toks.get(j).is_some_and(|t| t.is_ident("else")) {
                break;
            }
            if toks.get(j + 1).is_some_and(|t| t.is_ident("if")) {
                j += 1;
                continue;
            }
            let Some(open2) = toks.get(j + 1).filter(|t| t.is_punct('{')).map(|_| j + 1) else {
                break;
            };
            let bc = matching_brace(toks, open2).min(close);
            cx.env = base.clone();
            vals.push(self.walk_block(cx, open2, bc));
            branch_envs.push(std::mem::take(&mut cx.env));
            has_else = true;
            j = bc + 1;
            break;
        }
        // Merge: every key of the pre-state takes the union across
        // branches (an if without else keeps the pre-state as one
        // branch).
        let mut merged = base.clone();
        for (name, pre) in &base {
            let mut iv = if has_else { None } else { Some(pre.iv) };
            let mut ty_ok = true;
            for be in &branch_envs {
                let bv = be.get(name).unwrap_or(pre);
                iv = Some(match iv {
                    Some(cur) => cur.union(bv.iv),
                    None => bv.iv,
                });
                if bv.ty != pre.ty {
                    ty_ok = false;
                }
            }
            let m = merged.get_mut(name).expect("key from base");
            m.iv = iv.unwrap_or(pre.iv);
            if !ty_ok {
                m.ty = TyInfo::Unknown;
            }
            m.src = None;
        }
        cx.env = merged;
        let tail = if has_else && vals.iter().all(Option::is_some) {
            let mut it = vals.into_iter().flatten();
            let first = it.next();
            first.map(|f| {
                it.fold(f, |acc, v| {
                    Val::of(
                        acc.iv.union(v.iv),
                        if acc.ty == v.ty {
                            acc.ty
                        } else {
                            TyInfo::Unknown
                        },
                    )
                })
            })
        } else {
            None
        };
        (tail, j)
    }

    /// Handles `<target> = rhs;` / `<target> op= rhs;` statements;
    /// `None` when the statement is not an assignment.
    fn stmt_assign(&mut self, cx: &mut Ctx, k: usize, end: usize) -> Option<usize> {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        // Find a depth-0 assignment `=` within the statement.
        let mut d = 0i64;
        let mut eq = None;
        for j in k..end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                d -= 1;
            } else if d <= 0 && t.is_punct('=') && is_assign_eq(toks, j) {
                eq = Some(j);
                break;
            }
        }
        let eq = eq?;
        // Classify a compound op directly before the `=`.
        let (op, target_hi): (Option<&'static str>, usize) = {
            let p = eq.checked_sub(1).map(|i| &toks[i]);
            match p {
                Some(t) if adjacent(t, &toks[eq]) && t.is_punct('+') => (Some("+"), eq - 1),
                Some(t) if adjacent(t, &toks[eq]) && t.is_punct('-') => (Some("-"), eq - 1),
                Some(t) if adjacent(t, &toks[eq]) && t.is_punct('*') => (Some("*"), eq - 1),
                Some(t) if adjacent(t, &toks[eq]) && t.is_punct('/') => (Some("/"), eq - 1),
                Some(t) if adjacent(t, &toks[eq]) && t.is_punct('%') => (Some("%"), eq - 1),
                Some(t) if adjacent(t, &toks[eq]) && t.is_punct('&') => (Some("&"), eq - 1),
                Some(t) if adjacent(t, &toks[eq]) && t.is_punct('|') => (Some("|"), eq - 1),
                Some(t) if adjacent(t, &toks[eq]) && t.is_punct('^') => (Some("^"), eq - 1),
                Some(t)
                    if adjacent(t, &toks[eq])
                        && t.is_punct('<')
                        && eq >= 2
                        && toks[eq - 2].is_punct('<')
                        && adjacent(&toks[eq - 2], t) =>
                {
                    (Some("<<"), eq - 2)
                }
                Some(t)
                    if adjacent(t, &toks[eq])
                        && t.is_punct('>')
                        && eq >= 2
                        && toks[eq - 2].is_punct('>')
                        && adjacent(&toks[eq - 2], t) =>
                {
                    (Some(">>"), eq - 2)
                }
                _ => (None, eq),
            }
        };
        let key = assign_target_key(toks, k, target_hi)?;
        let rhs = self.eval(cx, eq + 1, end);
        let op_tok = &toks[target_hi];
        let (op_line, op_col) = (op_tok.line, op_tok.col);
        let cur = self.lookup(cx, &key.name).unwrap_or_else(Val::top);
        let new = match op {
            None => {
                // Plain store: the value keeps the slot's type.
                let ty = if cur.ty == TyInfo::Unknown {
                    rhs.ty.clone()
                } else {
                    cur.ty.clone()
                };
                let iv = match &ty {
                    TyInfo::Int(t) => rhs.iv.meet(t.range()).unwrap_or(t.range()),
                    _ => rhs.iv,
                };
                Val::of(iv, ty)
            }
            Some(o) => self.binary_op(cx, o, &cur, &rhs, op_line, op_col),
        };
        if key.element {
            // One element of a sequence changed: union into the leaves.
            if let Some(slot) = cx.env.get_mut(&key.name) {
                slot.iv = slot.iv.union(new.iv);
                slot.src = None;
            }
        } else {
            let ty = cur.ty.clone();
            let merged = Val::of(
                match &ty {
                    TyInfo::Int(t) => new.iv.meet(t.range()).unwrap_or(t.range()),
                    _ => new.iv,
                },
                if ty == TyInfo::Unknown { new.ty } else { ty },
            );
            cx.env.insert(key.name, merged);
        }
        Some(end + 1)
    }

    /// Widens every written name (and its `self .` twin) to its type
    /// range. On loop *entry* (`reapply`) the active assumes narrow
    /// again — they are declared invariants; on loop *exit* they do
    /// not, because the final iteration's writes are unconstrained.
    fn widen_written(&mut self, cx: &mut Ctx, written: &BTreeSet<String>, reapply: bool) {
        for name in written {
            for kname in [name.clone(), format!("self . {name}")] {
                if let Some(v) = cx.env.get_mut(&kname) {
                    v.iv = Val::ty_range(&v.ty).iv;
                    v.src = None;
                    if reapply {
                        self.reapply_assumes(cx, &kname);
                    }
                }
            }
        }
    }

    /// Environment lookup that credits the assume a narrowed entry
    /// came from.
    fn lookup(&mut self, cx: &Ctx, name: &str) -> Option<Val> {
        let v = cx.env.get(name)?.clone();
        if let Some(key) = v.src {
            self.used.insert(key);
        }
        Some(v)
    }
}

/// The left-hand side of an assignment, reduced to an environment
/// key.
struct AssignKey {
    name: String,
    /// Whether the write hits one element (`x[i] = …`) rather than
    /// the whole slot.
    element: bool,
}

/// Classifies `x`, `*x`, `x[i]`, `x.f`, `self.f` assignment targets.
fn assign_target_key(toks: &[Token], lo: usize, hi: usize) -> Option<AssignKey> {
    if lo >= hi {
        return None;
    }
    let mut lo = lo;
    if toks[lo].is_punct('*') {
        lo += 1;
    }
    if lo >= hi {
        return None;
    }
    if toks[lo].kind != TokenKind::Ident {
        return None;
    }
    let first = &toks[lo].text;
    if lo + 1 == hi {
        return Some(AssignKey {
            name: first.clone(),
            element: false,
        });
    }
    // `x [ … ]` element write.
    if toks[lo + 1].is_punct('[') {
        return Some(AssignKey {
            name: first.clone(),
            element: true,
        });
    }
    // `self . f` / `x . f` (optionally followed by an index).
    if toks[lo + 1].is_punct('.') && lo + 2 < hi && toks[lo + 2].kind == TokenKind::Ident {
        let fname = &toks[lo + 2].text;
        let element = toks.get(lo + 3).is_some_and(|t| t.is_punct('['));
        if first == "self" {
            return Some(AssignKey {
                name: format!("self . {fname}"),
                element,
            });
        }
        return Some(AssignKey {
            name: fname.clone(),
            element,
        });
    }
    None
}

/// Binding-pattern identifiers (`mut`, `ref`, `_`, and
/// constructor-ish uppercase paths excluded).
fn pattern_names(toks: &[Token], lo: usize, hi: usize) -> Vec<String> {
    let mut out = Vec::new();
    for j in lo..hi.min(toks.len()) {
        let t = &toks[j];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "mut" | "ref" | "_" | "self") {
            continue;
        }
        if t.text.chars().next().is_some_and(char::is_uppercase) {
            continue; // Some / Ok / enum variants
        }
        // Skip path heads (`x::y`).
        if toks.get(j + 1).is_some_and(|n| n.is_punct(':')) {
            continue;
        }
        out.push(t.text.clone());
    }
    out
}

/// Names a loop body may write: assignment targets, `&mut` args,
/// receivers of mutating std methods, and `let` re-bindings.
fn prescan_writes(toks: &[Token], lo: usize, hi: usize) -> BTreeSet<String> {
    const MUTATORS: &[&str] = &[
        "push",
        "pop",
        "insert",
        "remove",
        "clear",
        "extend",
        "fill",
        "swap",
        "truncate",
        "resize",
        "sort",
        "sort_unstable",
        "sort_by",
        "sort_unstable_by",
        "iter_mut",
        "chunks_mut",
        "chunks_exact_mut",
        "get_mut",
        "split_at_mut",
        "drain",
    ];
    let mut out = BTreeSet::new();
    let hi = hi.min(toks.len());
    for j in lo..hi {
        let t = &toks[j];
        if t.is_punct('=') && is_assign_eq(toks, j) {
            // Walk back over a compound-op punct to the target.
            let mut e = j;
            while e > lo
                && toks[e - 1].kind == TokenKind::Punct
                && adjacent(&toks[e - 1], &toks[e])
                && !toks[e - 1].is_punct(')')
                && !toks[e - 1].is_punct(']')
            {
                e -= 1;
            }
            // Target name: scan back over `ident . ident`, `ident [ … ]`,
            // `* ident` shapes to the leading identifier.
            let mut b = e;
            let mut depth = 0i64;
            while b > lo {
                let p = &toks[b - 1];
                if p.is_punct(']') {
                    depth += 1;
                } else if p.is_punct('[') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0
                    && !(p.kind == TokenKind::Ident
                        || p.is_punct('.')
                        || p.kind == TokenKind::Number)
                {
                    break;
                }
                b -= 1;
            }
            for u in &toks[b..e] {
                if u.kind == TokenKind::Ident && u.text != "self" {
                    out.insert(u.text.clone());
                }
            }
            // `* x = …` deref writes.
            if b > lo
                && toks[b - 1].is_punct('*')
                && toks.get(b).is_some_and(|u| u.kind == TokenKind::Ident)
            {
                out.insert(toks[b].text.clone());
            }
        } else if t.is_punct('&') && toks.get(j + 1).is_some_and(|n| n.is_ident("mut")) {
            if let Some(n) = toks.get(j + 2).filter(|n| n.kind == TokenKind::Ident) {
                if n.text != "self" {
                    out.insert(n.text.clone());
                }
            }
        } else if t.kind == TokenKind::Ident
            && MUTATORS.contains(&t.text.as_str())
            && j >= 2
            && toks[j - 1].is_punct('.')
            && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
        {
            // Receiver: `name.method(` or `self.f.method(` / `x.f.method(`.
            let mut b = j - 1;
            while b > lo && (toks[b - 1].kind == TokenKind::Ident || toks[b - 1].is_punct('.')) {
                b -= 1;
            }
            for u in &toks[b..j - 1] {
                if u.kind == TokenKind::Ident && u.text != "self" {
                    out.insert(u.text.clone());
                }
            }
        } else if t.is_ident("let") {
            if let Some(n) = toks
                .get(j + 1)
                .filter(|n| n.kind == TokenKind::Ident && n.text != "mut")
                .or_else(|| toks.get(j + 2).filter(|n| n.kind == TokenKind::Ident))
            {
                out.insert(n.text.clone());
            }
        }
    }
    out
}

// ---------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------

fn adjacent(a: &Token, b: &Token) -> bool {
    a.start + a.len == b.start
}

fn is_ident_word(w: &str) -> bool {
    let mut cs = w.chars();
    cs.next().is_some_and(|c| c.is_alphabetic() || c == '_')
        && cs.all(|c| c.is_alphanumeric() || c == '_')
}

/// Whether the `=` at `j` is an assignment (not `==`, `<=`, `>=`,
/// `!=`, `=>`, `..=`, or part of a compound `op=` — compound forms
/// are still assignments, so only comparison/arrow shapes reject).
fn is_assign_eq(toks: &[Token], j: usize) -> bool {
    let t = &toks[j];
    if !t.is_punct('=') {
        return false;
    }
    if let Some(n) = toks.get(j + 1) {
        if adjacent(t, n) && (n.is_punct('=') || n.is_punct('>')) {
            return false; // `==` or `=>`
        }
    }
    if j > 0 {
        let p = &toks[j - 1];
        if adjacent(p, t) {
            if p.is_punct('=') || p.is_punct('!') {
                return false; // `==` tail or `!=`
            }
            if p.is_punct('.') {
                return false; // `..=`
            }
            if p.is_punct('<') || p.is_punct('>') {
                // `<=`/`>=` unless it is `<<=`/`>>=`.
                let double = j >= 2 && adjacent(&toks[j - 2], p) && toks[j - 2].text == p.text;
                return double;
            }
        }
    }
    true
}

/// Whether the `=` at `j` is a *plain* assignment (no compound op).
fn is_plain_assign(toks: &[Token], j: usize, _end: usize) -> bool {
    if !is_assign_eq(toks, j) {
        return false;
    }
    if j == 0 {
        return true;
    }
    let p = &toks[j - 1];
    !(adjacent(p, &toks[j])
        && (p.is_punct('+')
            || p.is_punct('-')
            || p.is_punct('*')
            || p.is_punct('/')
            || p.is_punct('%')
            || p.is_punct('&')
            || p.is_punct('|')
            || p.is_punct('^')
            || p.is_punct('<')
            || p.is_punct('>')))
}

/// Index just past the statement: the depth-0 `;`, else `close`.
fn stmt_end(toks: &[Token], from: usize, close: usize) -> usize {
    let mut d = 0i64;
    #[allow(clippy::needless_range_loop)] // depth-tracking token scan
    for j in from..close.min(toks.len()) {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            d += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            d -= 1;
            if d < 0 {
                return j;
            }
        } else if d == 0 && t.is_punct(';') {
            return j;
        }
    }
    close
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// First depth-0 `{` at or after `from` (depth counted over
/// parens/brackets so closure bodies and index expressions skip).
fn brace_after(toks: &[Token], from: usize, hi: usize) -> Option<usize> {
    let mut d = 0i64;
    #[allow(clippy::needless_range_loop)] // depth-tracking token scan
    for j in from..hi.min(toks.len()) {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            d += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            d -= 1;
        } else if d <= 0 && t.is_punct('{') {
            return Some(j);
        }
    }
    None
}

/// Parses an integer literal (`0x…`, `0b…`, `0o…`, `_` separators,
/// optional type suffix). Floats return `None`.
fn parse_int_lit(text: &str) -> Option<(i128, Option<Ty>)> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, suffix) = split_suffix(&t);
    let ty = if suffix.is_empty() {
        None
    } else {
        Some(Ty::parse(suffix)?)
    };
    let v = if let Some(h) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        i128::from_str_radix(h, 16).ok().or_else(|| {
            // u128-range hex (e.g. u64::MAX) clamps through u128.
            u128::from_str_radix(h, 16)
                .ok()
                .map(|u| u.min(i128::MAX as u128) as i128)
        })?
    } else if let Some(b) = digits
        .strip_prefix("0b")
        .or_else(|| digits.strip_prefix("0B"))
    {
        i128::from_str_radix(b, 2).ok()?
    } else if let Some(o) = digits
        .strip_prefix("0o")
        .or_else(|| digits.strip_prefix("0O"))
    {
        i128::from_str_radix(o, 8).ok()?
    } else {
        if digits.contains(['.', 'e', 'E']) {
            return None; // float
        }
        digits.parse::<i128>().ok().or_else(|| {
            digits
                .parse::<u128>()
                .ok()
                .map(|u| u.min(i128::MAX as u128) as i128)
        })?
    };
    Some((v, ty))
}

fn split_suffix(t: &str) -> (&str, &str) {
    for s in [
        "i128", "u128", "isize", "usize", "i64", "u64", "i32", "u32", "i16", "u16", "i8", "u8",
        "f64", "f32",
    ] {
        if let Some(d) = t.strip_suffix(s) {
            // Hex digits can end in letters; require the char before
            // the suffix to be a digit or the base marker.
            if !d.is_empty() {
                return (d, s);
            }
        }
    }
    (t, "")
}

// ---------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------

/// What one iteration of a `for` loop binds.
enum ElemShape {
    /// A single bound value.
    Single(Val),
    /// A `(a, b)` pair (zip/enumerate).
    Pair(Box<Val>, Box<Val>),
}

impl<'a> Prover<'a> {
    /// The element shape produced by iterating `toks[lo..hi]`.
    fn analyze_iter(&mut self, cx: &mut Ctx, lo: usize, hi: usize) -> ElemShape {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        let hi = hi.min(toks.len());
        if lo >= hi {
            return ElemShape::Single(Val::top());
        }
        // A fully parenthesized iterable: `(0..n).rev()` recursion
        // lands here with `(0..n)`.
        if toks[lo].is_punct('(') && graph::matching_paren(toks, lo, hi) == hi - 1 {
            return self.analyze_iter(cx, lo + 1, hi - 1);
        }
        // Trailing iterator adaptor? `recv . name ( … )` ending at hi.
        if toks[hi - 1].is_punct(')') {
            if let Some((dot, name, paren)) = trailing_method(toks, lo, hi) {
                let args = graph::split_args(toks, paren + 1, hi - 1);
                match name {
                    "iter" | "iter_mut" | "into_iter" | "by_ref" | "rev" | "copied" | "cloned" => {
                        return self.analyze_iter(cx, lo, dot);
                    }
                    "take" | "skip" | "step_by" => {
                        for (alo, ahi) in &args {
                            self.eval(cx, *alo, *ahi);
                        }
                        return self.analyze_iter(cx, lo, dot);
                    }
                    "zip" => {
                        let a = match self.analyze_iter(cx, lo, dot) {
                            ElemShape::Single(v) => v,
                            ElemShape::Pair(..) => Val::top(),
                        };
                        let b = match args.first() {
                            Some(&(alo, ahi)) => match self.analyze_iter(cx, alo, ahi) {
                                ElemShape::Single(v) => v,
                                ElemShape::Pair(..) => Val::top(),
                            },
                            None => Val::top(),
                        };
                        return ElemShape::Pair(Box::new(a), Box::new(b));
                    }
                    "enumerate" => {
                        let idx = Val::int(
                            Interval {
                                lo: Fin(0),
                                hi: Ty::Usize.range().hi,
                            },
                            Ty::Usize,
                        );
                        let e = match self.analyze_iter(cx, lo, dot) {
                            ElemShape::Single(v) => v,
                            ElemShape::Pair(..) => Val::top(),
                        };
                        return ElemShape::Pair(Box::new(idx), Box::new(e));
                    }
                    "chunks" | "chunks_exact" | "chunks_mut" | "chunks_exact_mut" | "windows" => {
                        for (alo, ahi) in &args {
                            self.eval(cx, *alo, *ahi);
                        }
                        // Each chunk is the sequence itself.
                        return ElemShape::Single(self.eval(cx, lo, dot));
                    }
                    _ => {}
                }
            }
        }
        // A top-level range `a .. b` / `a ..= b`.
        if let Some((dots, inclusive)) = top_level_range(toks, lo, hi) {
            let a = if lo < dots {
                Some(self.eval(cx, lo, dots))
            } else {
                None
            };
            let blo = dots + if inclusive { 3 } else { 2 };
            let b = if blo < hi {
                Some(self.eval(cx, blo, hi))
            } else {
                None
            };
            let lo_b = a.as_ref().map_or(NegInf, |v| v.iv.lo);
            let hi_b = match (&b, inclusive) {
                (Some(v), true) => v.iv.hi,
                (Some(v), false) => badd(v.iv.hi, Fin(-1), NegInf),
                (None, _) => PosInf,
            };
            let ty = match (&a, &b) {
                (Some(v), _) if matches!(v.ty, TyInfo::Int(_)) => v.ty.clone(),
                (_, Some(v)) if matches!(v.ty, TyInfo::Int(_)) => v.ty.clone(),
                _ => TyInfo::Unknown,
            };
            let iv = if lo_b <= hi_b {
                Interval { lo: lo_b, hi: hi_b }
            } else {
                // Empty or unknown range: iterate zero times; the
                // binding still needs *a* value.
                Interval { lo: lo_b, hi: lo_b }
            };
            return ElemShape::Single(Val::of(iv, ty));
        }
        // Anything else: evaluate and take one element.
        let v = self.eval(cx, lo, hi);
        ElemShape::Single(v.elem())
    }

    /// Evaluates `toks[lo..hi]` with expression-assume matching.
    fn eval(&mut self, cx: &mut Ctx, lo: usize, hi: usize) -> Val {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        let hi = hi.min(toks.len());
        if lo >= hi {
            return Val::top();
        }
        if hi - lo <= 24 {
            let text = join_toks(toks, lo, hi);
            let hit = cx
                .assumes
                .iter()
                .enumerate()
                .find(|(_, aa)| aa.active && !aa.is_path && aa.a.target == text)
                .map(|(i, _)| i);
            if let Some(i) = hit {
                let (key, range) = {
                    let aa = &cx.assumes[i];
                    (aa.key, Interval::fin(aa.a.lo, aa.a.hi))
                };
                self.used.insert(key);
                // Type comes from a suppressed structural pass; the
                // assume preempts the checks inside its span.
                cx.suppress += 1;
                let shadow = self.eval_expr(cx, lo, hi);
                cx.suppress -= 1;
                return Val {
                    iv: range,
                    ty: shadow.ty,
                    src: Some(key),
                };
            }
        }
        self.eval_expr(cx, lo, hi)
    }

    /// Structural evaluation (precedence climbing over the tokens).
    fn eval_expr(&mut self, cx: &mut Ctx, lo: usize, hi: usize) -> Val {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        let hi = hi.min(toks.len());
        if lo >= hi {
            return Val::top();
        }
        let t0 = &toks[lo];
        // Control-flow expressions.
        if t0.is_ident("if") {
            let (v, _) = self.eval_if(cx, lo, hi);
            return v.unwrap_or_else(Val::top);
        }
        if t0.is_ident("match") {
            self.stmt_match(cx, lo, hi);
            return Val::top();
        }
        if t0.is_punct('{') {
            let c = matching_brace(toks, lo).min(hi);
            return self.walk_block(cx, lo, c).unwrap_or_else(Val::top);
        }
        if t0.is_punct('|') || t0.is_ident("move") {
            return Val::top(); // closures are opaque
        }
        // Range expression in value position: evaluate the endpoints
        // (their ops still need checking) but the range itself has no
        // scalar value.
        if let Some((dots, inclusive)) = top_level_range(toks, lo, hi) {
            if lo < dots {
                self.eval(cx, lo, dots);
            }
            let blo = dots + if inclusive { 3 } else { 2 };
            if blo < hi {
                self.eval(cx, blo, hi);
            }
            return Val::top();
        }
        // Lowest-precedence split first: `||`/`&&`, comparisons,
        // then `| ^ &`, shifts, `+ -`, `* / %`.
        if let Some(j) = find_bool_op(toks, lo, hi) {
            self.eval(cx, lo, j);
            self.eval(cx, j + 2, hi);
            return Val::top();
        }
        if let Some((j, w)) = find_cmp_op(toks, lo, hi) {
            self.eval(cx, lo, j);
            self.eval(cx, j + w, hi);
            return Val::top();
        }
        for ops in [&['|'][..], &['^'][..], &['&'][..]] {
            if let Some(j) = find_bit_op(toks, lo, hi, ops) {
                let op = if toks[j].is_punct('|') {
                    "|"
                } else if toks[j].is_punct('^') {
                    "^"
                } else {
                    "&"
                };
                let l = self.eval(cx, lo, j);
                let r = self.eval(cx, j + 1, hi);
                return self.binary_op(cx, op, &l, &r, toks[j].line, toks[j].col);
            }
        }
        if let Some((j, op)) = find_shift_op(toks, lo, hi) {
            let l = self.eval(cx, lo, j);
            let r = self.eval(cx, j + 2, hi);
            return self.binary_op(cx, op, &l, &r, toks[j].line, toks[j].col);
        }
        if let Some((j, op)) = find_addsub_op(toks, lo, hi) {
            // Conditional-negate idiom: `(x ^ m) - m` evaluates to
            // `±x`, so its result is `[-M, M]` for `M = max |x|`; the
            // inner `^` is exempt, the outer `-` is still fit-checked.
            if op == "-" {
                if let Some(v) = self.cond_negate(cx, lo, j, hi) {
                    return v;
                }
            }
            let l = self.eval(cx, lo, j);
            let r = self.eval(cx, j + 1, hi);
            return self.binary_op(cx, op, &l, &r, toks[j].line, toks[j].col);
        }
        if let Some((j, op)) = find_muldiv_op(toks, lo, hi) {
            let l = self.eval(cx, lo, j);
            let r = self.eval(cx, j + 1, hi);
            return self.binary_op(cx, op, &l, &r, toks[j].line, toks[j].col);
        }
        // `expr as Ty`.
        if let Some(j) = find_as(toks, lo, hi) {
            let v = self.eval(cx, lo, j);
            let ty = parse_ty_toks(&toks[j + 1..hi], 0).0;
            return match ty {
                TyInfo::Int(t) => {
                    let iv = if v.iv.within(t.range()) {
                        v.iv
                    } else {
                        t.range()
                    };
                    Val::int(iv, t)
                }
                TyInfo::Float => Val::of(TOP, TyInfo::Float),
                _ => Val::top(),
            };
        }
        // Unary prefix.
        if t0.is_punct('-') {
            let v = self.eval(cx, lo + 1, hi);
            if v.ty == TyInfo::Float {
                return v;
            }
            let iv = v.iv.neg();
            let iv = self.check_fit(cx, "neg", iv, &v.ty, t0.line, t0.col);
            return Val::of(iv, v.ty);
        }
        if t0.is_punct('!') {
            let v = self.eval(cx, lo + 1, hi);
            return match v.ty {
                TyInfo::Int(t) => Val::int(t.range(), t),
                _ => Val::top(),
            };
        }
        if t0.is_punct('*') {
            return self.eval(cx, lo + 1, hi);
        }
        if t0.is_punct('&') {
            let s = lo + 1 + usize::from(toks.get(lo + 1).is_some_and(|t| t.is_ident("mut")));
            return self.eval(cx, s, hi);
        }
        self.eval_postfix(cx, lo, hi)
    }

    /// `(x ^ m) - m` with matching `m ⊆ [-1, 0]`.
    fn cond_negate(&mut self, cx: &mut Ctx, lo: usize, minus: usize, hi: usize) -> Option<Val> {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        if !toks[lo].is_punct('(') {
            return None;
        }
        let close = graph::matching_paren(toks, lo, minus);
        if close + 1 != minus {
            return None;
        }
        // Top-level `^` inside the parens.
        let caret = find_bit_op(toks, lo + 1, close, &['^'])?;
        let m1 = join_toks(toks, caret + 1, close);
        let m2 = join_toks(toks, minus + 1, hi);
        if m1 != m2 {
            return None;
        }
        let m = self.eval(cx, minus + 1, hi);
        if !m.iv.within(Interval::fin(-1, 0)) {
            return None;
        }
        let x = self.eval(cx, lo + 1, caret);
        let mag = x.iv.abs_();
        let iv = Interval {
            lo: bneg(mag.hi),
            hi: mag.hi,
        };
        let ty = match (&x.ty, &m.ty) {
            (TyInfo::Int(a), _) => TyInfo::Int(*a),
            (_, TyInfo::Int(b)) => TyInfo::Int(*b),
            _ => TyInfo::Unknown,
        };
        let t = &toks[minus];
        let iv = self.check_fit(cx, "-", iv, &ty, t.line, t.col);
        Some(Val::of(iv, ty))
    }

    /// Applies a binary operator with width checking for `+ - * <<`.
    fn binary_op(
        &mut self,
        cx: &mut Ctx,
        op: &'static str,
        l: &Val,
        r: &Val,
        line: u32,
        col: u32,
    ) -> Val {
        if l.ty == TyInfo::Float || r.ty == TyInfo::Float {
            return Val::of(TOP, TyInfo::Float);
        }
        // Shifts take their type from the left operand alone.
        let ty = if op == "<<" || op == ">>" {
            l.ty.clone()
        } else {
            merge_int_ty(&l.ty, &r.ty)
        };
        let iv = match op {
            "+" => l.iv.add(r.iv),
            "-" => l.iv.sub(r.iv),
            "*" => l.iv.mul(r.iv),
            "<<" => l.iv.shl(r.iv),
            ">>" => l.iv.shr(r.iv),
            "&" => l.iv.and_mask(r.iv),
            "|" | "^" => l.iv.or_like(r.iv),
            "%" => l.iv.rem(r.iv),
            "/" => div_iv(l.iv, r.iv),
            _ => TOP,
        };
        let iv = if matches!(op, "+" | "-" | "*" | "<<") {
            self.check_fit(cx, op, iv, &ty, line, col)
        } else {
            match &ty {
                TyInfo::Int(t) => iv.meet(t.range()).unwrap_or(t.range()),
                _ => iv,
            }
        };
        Val::of(iv, ty)
    }

    /// The width check: inside a region, a checked op whose interval
    /// is not provably within its type is an `unchecked-width`
    /// finding. Returns the interval clamped for onward evaluation.
    fn check_fit(
        &mut self,
        cx: &mut Ctx,
        op: &str,
        iv: Interval,
        ty: &TyInfo,
        line: u32,
        col: u32,
    ) -> Interval {
        if !cx.region || cx.suppress > 0 {
            return match ty {
                TyInfo::Int(t) => iv.meet(t.range()).unwrap_or(t.range()),
                _ => iv,
            };
        }
        self.stats.checked_ops += 1;
        match ty {
            TyInfo::Int(t) => {
                let range = t.range();
                if iv.within(range) {
                    iv
                } else {
                    self.findings.push(Finding {
                        file: self.files[cx.file].path.clone(),
                        line,
                        col,
                        rule: "unchecked-width",
                        message: format!(
                            "unproven `{op}`: computed interval {iv} does not fit `{}` \
                             [{}, {}]; tighten the operands with a guard + andi::assume \
                             or use checked/widened arithmetic",
                            t.name(),
                            range.lo,
                            range.hi,
                        ),
                    });
                    iv.meet(range).unwrap_or(range)
                }
            }
            _ => {
                self.findings.push(Finding {
                    file: self.files[cx.file].path.clone(),
                    line,
                    col,
                    rule: "unchecked-width",
                    message: format!(
                        "unproven `{op}`: operand type unknown (computed interval {iv}); \
                         add a typed binding, a cast, or an andi::assume naming the value",
                    ),
                });
                iv
            }
        }
    }

    /// Primary + postfix chain: literals, paths, calls, indexing,
    /// fields, methods.
    fn eval_postfix(&mut self, cx: &mut Ctx, lo: usize, hi: usize) -> Val {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        let t0 = &toks[lo];
        let (mut val, mut j) = match t0.kind {
            TokenKind::Number => {
                let v = parse_int_lit(&t0.text).map_or_else(
                    || Val::of(TOP, TyInfo::Float),
                    |(v, suffix)| match suffix {
                        Some(t) => Val::int(Interval::exact(v), t),
                        None => Val::of(Interval::exact(v), TyInfo::Unknown),
                    },
                );
                (v, lo + 1)
            }
            TokenKind::Str | TokenKind::Char | TokenKind::Lifetime => (Val::top(), lo + 1),
            TokenKind::Punct if t0.is_punct('(') => {
                let c = graph::matching_paren(toks, lo, hi);
                let parts = graph::split_args(toks, lo + 1, c);
                let v = if parts.len() == 1 {
                    self.eval(cx, parts[0].0, parts[0].1)
                } else {
                    for (alo, ahi) in &parts {
                        self.eval(cx, *alo, *ahi);
                    }
                    Val::top()
                };
                (v, c + 1)
            }
            TokenKind::Punct if t0.is_punct('[') => {
                let c = matching_bracket(toks, lo).min(hi);
                // `[elem; N]` or `[a, b, …]`.
                let mut semi = None;
                let mut d = 0i64;
                #[allow(clippy::needless_range_loop)] // depth-tracking token scan
                for m in lo + 1..c {
                    let t = &toks[m];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        d += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        d -= 1;
                    } else if d == 0 && t.is_punct(';') {
                        semi = Some(m);
                        break;
                    }
                }
                let v = if let Some(s) = semi {
                    let e = self.eval(cx, lo + 1, s);
                    self.eval(cx, s + 1, c);
                    Val::of(e.iv, TyInfo::Seq(Box::new(e.ty)))
                } else {
                    let parts = graph::split_args(toks, lo + 1, c);
                    let mut iv: Option<Interval> = None;
                    let mut ty: Option<TyInfo> = None;
                    for (alo, ahi) in parts {
                        let e = self.eval(cx, alo, ahi);
                        iv = Some(iv.map_or(e.iv, |c| c.union(e.iv)));
                        ty = Some(match ty {
                            None => e.ty,
                            Some(t) if t == e.ty => t,
                            Some(_) => TyInfo::Unknown,
                        });
                    }
                    Val::of(
                        iv.unwrap_or(TOP),
                        TyInfo::Seq(Box::new(ty.unwrap_or(TyInfo::Unknown))),
                    )
                };
                (v, c + 1)
            }
            TokenKind::Ident => self.eval_path(cx, lo, hi),
            _ => (Val::top(), lo + 1),
        };
        // Postfix chain.
        while j < hi {
            let t = &toks[j];
            if t.is_punct('?') {
                val = Val::top();
                j += 1;
            } else if t.is_punct('[') {
                let c = matching_bracket(toks, j).min(hi);
                self.eval(cx, j + 1, c);
                val = val.elem();
                j = c + 1;
            } else if t.is_punct('.') {
                let Some(n) = toks.get(j + 1) else { break };
                if n.kind == TokenKind::Number {
                    val = Val::top(); // tuple field
                    j += 2;
                } else if n.kind == TokenKind::Ident {
                    if toks.get(j + 2).is_some_and(|p| p.is_punct('(')) {
                        let close = graph::matching_paren(toks, j + 2, hi);
                        let args = graph::split_args(toks, j + 3, close);
                        let mut argv = Vec::new();
                        for (alo, ahi) in &args {
                            argv.push(self.eval(cx, *alo, *ahi));
                        }
                        val = self.method_val(cx, &val, &n.text, &argv, j + 1);
                        j = close + 1;
                    } else {
                        // Field access on an arbitrary receiver: no
                        // struct type in hand, so the type holds only
                        // if every declaring struct agrees.
                        let ty = self.field_ty(None, &n.text);
                        val = Val::ty_range(&ty);
                        j += 2;
                    }
                } else {
                    break;
                }
            } else if t.is_punct('(') {
                let c = graph::matching_paren(toks, j, hi);
                for (alo, ahi) in graph::split_args(toks, j + 1, c) {
                    self.eval(cx, alo, ahi);
                }
                val = Val::top();
                j = c + 1;
            } else {
                break;
            }
        }
        val
    }

    /// Identifier-rooted primaries: env vars, `self.field`, consts,
    /// `Ty::MAX`-style associated consts, paths, fn calls, macros,
    /// struct literals.
    fn eval_path(&mut self, cx: &mut Ctx, lo: usize, hi: usize) -> (Val, usize) {
        let files = self.files;
        let toks = &files[cx.file].scan.tokens;
        let t0 = &toks[lo];
        // Macro invocation: opaque, never checked.
        if toks.get(lo + 1).is_some_and(|n| n.is_punct('!')) {
            let j = lo + 2;
            let end = match toks.get(j) {
                Some(t) if t.is_punct('(') => graph::matching_paren(toks, j, hi) + 1,
                Some(t) if t.is_punct('[') => matching_bracket(toks, j) + 1,
                Some(t) if t.is_punct('{') => matching_brace(toks, j) + 1,
                _ => j,
            };
            return (Val::top(), end.min(hi));
        }
        // `self . field` root.
        if t0.is_ident("self")
            && toks.get(lo + 1).is_some_and(|n| n.is_punct('.'))
            && toks.get(lo + 2).is_some_and(|n| n.kind == TokenKind::Ident)
        {
            let fname = toks[lo + 2].text.clone();
            // `self.method(…)` is handled by the postfix loop.
            if toks.get(lo + 3).is_some_and(|p| p.is_punct('(')) {
                return (Val::top(), lo + 1);
            }
            let key = format!("self . {fname}");
            if let Some(v) = self.lookup(cx, &key) {
                return (v, lo + 3);
            }
            let ty = self.field_ty(self.g.fns[cx.fnid].self_of.as_deref(), &fname);
            return (Val::ty_range(&ty), lo + 3);
        }
        // Collect a `::`-path (skipping turbofish groups).
        let mut segs: Vec<(usize, String)> = vec![(lo, t0.text.clone())];
        let mut j = lo + 1;
        while j + 1 < hi
            && toks[j].is_punct(':')
            && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
        {
            let mut k = j + 2;
            if toks.get(k).is_some_and(|n| n.is_punct('<')) {
                // Turbofish: skip to the matching `>`.
                let mut d = 0i64;
                while k < hi {
                    if toks[k].is_punct('<') {
                        d += 1;
                    } else if toks[k].is_punct('>') {
                        d -= 1;
                        if d == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
                if !(toks[k].is_punct(':') && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))) {
                    break;
                }
                k += 2;
            }
            let Some(n) = toks.get(k).filter(|n| n.kind == TokenKind::Ident) else {
                break;
            };
            segs.push((k, n.text.clone()));
            j = k + 1;
        }
        let (last_at, last) = segs.last().cloned().expect("at least the root");
        let is_call = graph::call_paren(toks, last_at, hi).is_some();
        if is_call {
            let paren = graph::call_paren(toks, last_at, hi).expect("checked");
            let close = graph::matching_paren(toks, paren, hi);
            let args = graph::split_args(toks, paren + 1, close);
            let mut argv = Vec::new();
            for (alo, ahi) in &args {
                argv.push(self.eval(cx, *alo, *ahi));
            }
            // `u64::from(x)` / `i128::from(x)`: a widening cast.
            if segs.len() == 2 && last == "from" {
                if let Some(t) = Ty::parse(&segs[0].1) {
                    let iv = argv
                        .first()
                        .map_or(t.range(), |a| a.iv.meet(t.range()).unwrap_or(t.range()));
                    return (Val::int(iv, t), close + 1);
                }
            }
            let v = match self.g.resolve_unique(cx.fnid, last_at) {
                Some(callee) => self.ret_val(callee, cx.depth),
                None => Val::top(),
            };
            return (v, close + 1);
        }
        // `u64::MAX` / `u64::MIN` / `u64::BITS`.
        if segs.len() == 2 {
            if let Some(t) = Ty::parse(&segs[0].1) {
                let v = match last.as_str() {
                    "MAX" => Some(Val::int(
                        Interval {
                            lo: t.range().hi,
                            hi: t.range().hi,
                        },
                        t,
                    )),
                    "MIN" => Some(Val::int(
                        Interval {
                            lo: t.range().lo,
                            hi: t.range().lo,
                        },
                        t,
                    )),
                    "BITS" => Some(Val::int(Interval::exact(t.bits() as i128), Ty::U32)),
                    _ => None,
                };
                if let Some(v) = v {
                    return (v, segs[1].0 + 1);
                }
            }
        }
        let next = last_at + 1;
        // Struct literal `Name { … }`: opaque.
        if segs.len() == 1
            && t0.text.chars().next().is_some_and(char::is_uppercase)
            && toks.get(next).is_some_and(|n| n.is_punct('{'))
        {
            let c = matching_brace(toks, next).min(hi);
            return (Val::top(), c + 1);
        }
        if segs.len() == 1 {
            if let Some(v) = self.lookup(cx, &t0.text) {
                return (v, next);
            }
        }
        // A const by its final segment (`Self::LIMIT`, `quest::CAP`).
        if last
            .chars()
            .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
        {
            if let Some(Some(v)) = self.consts.get(&last) {
                return (v.clone(), next);
            }
        }
        (Val::top(), next)
    }

    /// Std-method semantics over intervals; unknown names fall back
    /// to unique call-graph edges.
    fn method_val(
        &mut self,
        cx: &mut Ctx,
        recv: &Val,
        name: &str,
        args: &[Val],
        name_at: usize,
    ) -> Val {
        let a0 = args.first();
        let rty = recv.ty.clone();
        let clamp = |iv: Interval| match &rty {
            TyInfo::Int(t) => iv.meet(t.range()).unwrap_or(t.range()),
            _ => iv,
        };
        match name {
            "min" => a0.map_or_else(Val::top, |a| Val::of(recv.iv.min_(a.iv), rty.clone())),
            "max" => a0.map_or_else(Val::top, |a| Val::of(recv.iv.max_(a.iv), rty.clone())),
            "clamp" => {
                if let [a, b] = args {
                    Val::of(recv.iv.max_(a.iv).min_(b.iv), rty.clone())
                } else {
                    Val::top()
                }
            }
            "abs" => Val::of(clamp(recv.iv.abs_()), rty.clone()),
            "signum" => Val::of(Interval::fin(-1, 1), rty.clone()),
            "rem_euclid" => {
                a0.map_or_else(Val::top, |a| Val::of(recv.iv.abs_().rem(a.iv), rty.clone()))
            }
            "count_ones" | "count_zeros" | "leading_zeros" | "trailing_zeros" | "leading_ones"
            | "trailing_ones" => {
                let bits = match &rty {
                    TyInfo::Int(t) => t.bits(),
                    _ => 128,
                };
                Val::int(Interval::fin(0, bits as i128), Ty::U32)
            }
            "wrapping_add" | "wrapping_sub" | "wrapping_mul" | "wrapping_shl" | "wrapping_neg" => {
                let iv = match (name, a0) {
                    ("wrapping_add", Some(a)) => recv.iv.add(a.iv),
                    ("wrapping_sub", Some(a)) => recv.iv.sub(a.iv),
                    ("wrapping_mul", Some(a)) => recv.iv.mul(a.iv),
                    ("wrapping_shl", Some(a)) => recv.iv.shl(a.iv),
                    ("wrapping_neg", _) => recv.iv.neg(),
                    _ => TOP,
                };
                match &rty {
                    TyInfo::Int(t) if iv.within(t.range()) => Val::of(iv, rty.clone()),
                    TyInfo::Int(t) => Val::int(t.range(), *t),
                    _ => Val::top(),
                }
            }
            "saturating_add" | "saturating_sub" | "saturating_mul" => {
                let iv = match (name, a0) {
                    ("saturating_add", Some(a)) => recv.iv.add(a.iv),
                    ("saturating_sub", Some(a)) => recv.iv.sub(a.iv),
                    ("saturating_mul", Some(a)) => recv.iv.mul(a.iv),
                    _ => TOP,
                };
                match &rty {
                    TyInfo::Int(t) => Val::int(clamp_into(iv, t.range()), *t),
                    _ => Val::of(iv, rty.clone()),
                }
            }
            "checked_add" | "checked_sub" | "checked_mul" | "checked_shl" | "checked_neg"
            | "checked_div" | "checked_rem" | "checked_pow" => Val::top(),
            "pow" => Val::ty_range(&rty),
            "rotate_left" | "rotate_right" | "swap_bytes" | "reverse_bits" | "to_le" | "to_be" => {
                Val::ty_range(&rty)
            }
            "len" => Val::int(
                Interval {
                    lo: Fin(0),
                    hi: Ty::Usize.range().hi,
                },
                Ty::Usize,
            ),
            "iter" | "iter_mut" | "into_iter" | "by_ref" | "rev" | "copied" | "cloned" | "take"
            | "skip" | "step_by" => recv.clone(),
            "chunks" | "chunks_exact" | "chunks_mut" | "chunks_exact_mut" | "windows" => {
                Val::of(recv.iv, TyInfo::Seq(Box::new(rty.clone())))
            }
            "remainder" => recv.elem(),
            "unsigned_abs" => match &rty {
                TyInfo::Int(t) => {
                    let u = match t {
                        Ty::I8 => Ty::U8,
                        Ty::I16 => Ty::U16,
                        Ty::I32 => Ty::U32,
                        Ty::I64 => Ty::I64,
                        Ty::Isize => Ty::Usize,
                        other => *other,
                    };
                    Val::int(clamp_into(recv.iv.abs_(), u.range()), u)
                }
                _ => Val::top(),
            },
            _ => match self.g.resolve_unique(cx.fnid, name_at) {
                Some(callee) => self.ret_val(callee, cx.depth),
                None => Val::top(),
            },
        }
    }
}

/// Integer division bound: for divisors ≥ 1 the magnitude can only
/// shrink.
fn div_iv(a: Interval, b: Interval) -> Interval {
    if b.lo < Fin(1) {
        return TOP;
    }
    if a.nonneg() {
        return Interval {
            lo: Fin(0),
            hi: a.hi,
        };
    }
    let m = a.abs_().hi;
    Interval { lo: bneg(m), hi: m }
}

fn clamp_into(iv: Interval, range: Interval) -> Interval {
    Interval {
        lo: iv.lo.clamp(range.lo, range.hi),
        hi: iv.hi.clamp(range.lo, range.hi),
    }
}

/// Op-type merge: equal ints keep, int beats unknown, sequences and
/// disagreements degrade to unknown.
fn merge_int_ty(a: &TyInfo, b: &TyInfo) -> TyInfo {
    match (a, b) {
        (TyInfo::Int(x), TyInfo::Int(y)) if x == y => TyInfo::Int(*x),
        (TyInfo::Int(_), TyInfo::Int(_)) => TyInfo::Unknown,
        (TyInfo::Int(x), TyInfo::Unknown) | (TyInfo::Unknown, TyInfo::Int(x)) => TyInfo::Int(*x),
        _ => TyInfo::Unknown,
    }
}

fn join_toks(toks: &[Token], lo: usize, hi: usize) -> String {
    contracts::join_glued(&toks[lo..hi.min(toks.len())])
}

// ---------------------------------------------------------------
// Operator scanning
// ---------------------------------------------------------------

/// Token positions at bracket depth 0 within `[lo, hi)`, with
/// turbofish `::<…>` groups skipped so their angles never read as
/// comparisons or shifts.
fn top_positions(toks: &[Token], lo: usize, hi: usize) -> Vec<usize> {
    let hi = hi.min(toks.len());
    let mut out = Vec::new();
    let mut d = 0i64;
    let mut j = lo;
    while j < hi {
        let t = &toks[j];
        if d == 0
            && t.is_punct(':')
            && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(j + 2).is_some_and(|n| n.is_punct('<'))
        {
            let mut a = 0i64;
            let mut k = j + 2;
            while k < hi {
                if toks[k].is_punct('<') {
                    a += 1;
                } else if toks[k].is_punct('>') {
                    a -= 1;
                    if a == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            if d == 0 {
                out.push(j);
            }
            d += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            d -= 1;
            if d == 0 {
                out.push(j);
            }
        } else if d == 0 {
            out.push(j);
        }
        j += 1;
    }
    out
}

/// Whether the token can end an operand (so a following `- * &` is
/// binary, not prefix).
fn is_operand_end(t: &Token) -> bool {
    match t.kind {
        TokenKind::Number | TokenKind::Str | TokenKind::Char => true,
        TokenKind::Ident => !matches!(
            t.text.as_str(),
            "return"
                | "break"
                | "continue"
                | "if"
                | "else"
                | "match"
                | "in"
                | "let"
                | "move"
                | "while"
                | "loop"
                | "as"
                | "mut"
                | "ref"
                | "unsafe"
        ),
        TokenKind::Punct => {
            t.is_punct(')') || t.is_punct(']') || t.is_punct('}') || t.is_punct('?')
        }
        TokenKind::Lifetime => false,
    }
}

fn prev_is_operand(toks: &[Token], lo: usize, j: usize) -> bool {
    j > lo && is_operand_end(&toks[j - 1])
}

/// Rightmost top-level `||` / `&&`.
fn find_bool_op(toks: &[Token], lo: usize, hi: usize) -> Option<usize> {
    let mut found = None;
    for j in top_positions(toks, lo, hi) {
        let t = &toks[j];
        if (t.is_punct('|') || t.is_punct('&'))
            && toks
                .get(j + 1)
                .is_some_and(|n| n.text == t.text && adjacent(t, n))
            && j + 2 < hi
            && prev_is_operand(toks, lo, j)
        {
            found = Some(j);
        }
    }
    found
}

/// Rightmost top-level comparison; returns `(position, width)`.
fn find_cmp_op(toks: &[Token], lo: usize, hi: usize) -> Option<(usize, usize)> {
    let mut found = None;
    let pos = top_positions(toks, lo, hi);
    for &j in &pos {
        let t = &toks[j];
        let next_adj = |c: char| {
            toks.get(j + 1)
                .is_some_and(|n| n.is_punct(c) && adjacent(t, n))
        };
        let prev_adj = |c: char| j > lo && toks[j - 1].is_punct(c) && adjacent(&toks[j - 1], t);
        if (t.is_punct('=')
            && next_adj('=')
            && !prev_adj('=')
            && !prev_adj('!')
            && !prev_adj('<')
            && !prev_adj('>'))
            || (t.is_punct('!') && next_adj('='))
        {
            found = Some((j, 2));
        } else if (t.is_punct('<') || t.is_punct('>'))
            && !next_adj(if t.is_punct('<') { '<' } else { '>' })
            && !prev_adj(if t.is_punct('<') { '<' } else { '>' })
            && prev_is_operand(toks, lo, j)
        {
            let w = if next_adj('=') { 2 } else { 1 };
            found = Some((j, w));
        }
    }
    found
}

/// Rightmost top-level single `| ^ &` from `ops`.
fn find_bit_op(toks: &[Token], lo: usize, hi: usize, ops: &[char]) -> Option<usize> {
    let mut found = None;
    for j in top_positions(toks, lo, hi) {
        let t = &toks[j];
        if !ops.iter().any(|&c| t.is_punct(c)) {
            continue;
        }
        // Not doubled (`||`, `&&`), not `op=`.
        let next = toks.get(j + 1);
        if next.is_some_and(|n| adjacent(t, n) && (n.text == t.text || n.is_punct('='))) {
            continue;
        }
        if j > lo && toks[j - 1].text == t.text && adjacent(&toks[j - 1], t) {
            continue;
        }
        if (t.is_punct('&') || t.is_punct('|')) && !prev_is_operand(toks, lo, j) {
            continue; // prefix `&` / closure head `|`
        }
        found = Some(j);
    }
    found
}

/// Rightmost top-level `<<` / `>>`.
fn find_shift_op(toks: &[Token], lo: usize, hi: usize) -> Option<(usize, &'static str)> {
    let mut found = None;
    for j in top_positions(toks, lo, hi) {
        let t = &toks[j];
        let c = if t.is_punct('<') {
            '<'
        } else if t.is_punct('>') {
            '>'
        } else {
            continue;
        };
        let Some(n) = toks.get(j + 1) else { continue };
        if !(n.is_punct(c) && adjacent(t, n)) {
            continue;
        }
        // Exclude `<<=` and a middle token of `<<<`.
        if toks
            .get(j + 2)
            .is_some_and(|m| m.is_punct('=') && adjacent(n, m))
        {
            continue;
        }
        if j > lo && toks[j - 1].is_punct(c) && adjacent(&toks[j - 1], t) {
            continue;
        }
        if !prev_is_operand(toks, lo, j) {
            continue;
        }
        found = Some((j, if c == '<' { "<<" } else { ">>" }));
    }
    found
}

/// Rightmost top-level binary `+` / `-`.
fn find_addsub_op(toks: &[Token], lo: usize, hi: usize) -> Option<(usize, &'static str)> {
    let mut found = None;
    for j in top_positions(toks, lo, hi) {
        let t = &toks[j];
        let op = if t.is_punct('+') {
            "+"
        } else if t.is_punct('-') {
            "-"
        } else {
            continue;
        };
        if toks
            .get(j + 1)
            .is_some_and(|n| (n.is_punct('=') || n.is_punct('>')) && adjacent(t, n))
        {
            continue; // `+=` / `->`
        }
        if !prev_is_operand(toks, lo, j) {
            continue;
        }
        found = Some((j, op));
    }
    found
}

/// Rightmost top-level binary `* / %`.
fn find_muldiv_op(toks: &[Token], lo: usize, hi: usize) -> Option<(usize, &'static str)> {
    let mut found = None;
    for j in top_positions(toks, lo, hi) {
        let t = &toks[j];
        let op = if t.is_punct('*') {
            "*"
        } else if t.is_punct('/') {
            "/"
        } else if t.is_punct('%') {
            "%"
        } else {
            continue;
        };
        if toks
            .get(j + 1)
            .is_some_and(|n| n.is_punct('=') && adjacent(t, n))
        {
            continue;
        }
        if !prev_is_operand(toks, lo, j) {
            continue;
        }
        found = Some((j, op));
    }
    found
}

/// Rightmost top-level `as`.
fn find_as(toks: &[Token], lo: usize, hi: usize) -> Option<usize> {
    let mut found = None;
    for j in top_positions(toks, lo, hi) {
        if toks[j].is_ident("as") {
            found = Some(j);
        }
    }
    found
}

/// First top-level `..` / `..=`; returns `(position, inclusive)`.
fn top_level_range(toks: &[Token], lo: usize, hi: usize) -> Option<(usize, bool)> {
    for j in top_positions(toks, lo, hi) {
        let t = &toks[j];
        if t.is_punct('.')
            && toks
                .get(j + 1)
                .is_some_and(|n| n.is_punct('.') && adjacent(t, n))
            && !(j > lo && toks[j - 1].is_punct('.') && adjacent(&toks[j - 1], t))
        {
            let inclusive = toks
                .get(j + 2)
                .is_some_and(|m| m.is_punct('=') && adjacent(&toks[j + 1], m));
            return Some((j, inclusive));
        }
    }
    None
}

/// The last top-level `. name ( … )` whose `)` closes the span;
/// returns `(dot, name, open paren)`.
fn trailing_method(toks: &[Token], lo: usize, hi: usize) -> Option<(usize, &str, usize)> {
    let mut found = None;
    for j in top_positions(toks, lo, hi) {
        let t = &toks[j];
        if t.is_punct('.')
            && toks.get(j + 1).is_some_and(|n| n.kind == TokenKind::Ident)
            && toks.get(j + 2).is_some_and(|n| n.is_punct('('))
            && graph::matching_paren(toks, j + 2, hi) == hi - 1
        {
            found = Some((j, toks[j + 1].text.as_str(), j + 2));
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prove_src(src: &str) -> Proved {
        let files = vec![SourceFile::new("crates/core/src/t.rs", src)];
        let g = graph::build(&files);
        prove(&files, &g)
    }

    #[test]
    fn interval_arithmetic_widens_on_overflow() {
        let big = Interval::exact(i128::MAX);
        assert_eq!(big.add(Interval::exact(1)).hi, PosInf);
        assert_eq!(big.mul(Interval::exact(2)).hi, PosInf);
        assert_eq!(
            Interval::exact(i128::MIN).sub(Interval::exact(1)).lo,
            NegInf
        );
        assert_eq!(
            Interval::fin(-3, 5).mul(Interval::fin(-2, 4)),
            Interval::fin(-12, 20)
        );
        assert_eq!(
            Interval::fin(-9, 100).and_mask(Interval::fin(0, 7)),
            Interval::fin(0, 7)
        );
        assert_eq!(
            Interval::fin(1, 3).shl(Interval::fin(0, 4)),
            Interval::fin(1, 48)
        );
        assert_eq!(Interval::fin(-7, 3).abs_(), Interval::fin(0, 7));
        assert!(Interval::fin(0, 255).within(Ty::U8.range()));
        assert!(!Interval::fin(0, 256).within(Ty::U8.range()));
    }

    #[test]
    fn bounded_loop_accumulation_proves() {
        let p = prove_src(
            "pub fn acc(xs: &[i32]) -> i64 {\n\
             // andi::prove_no_overflow\n\
             let mut total = 0i64;\n\
             for &v in xs {\n\
                 debug_assert!(v >= -100 && v <= 100);\n\
                 // andi::assume(v in [-100, 100]) — asserted above\n\
                 debug_assert!(total.abs() <= 1_000_000);\n\
                 // andi::assume(total in [-1000000, 1000000]) — loop invariant\n\
                 total += v as i64;\n\
             }\n\
             total\n\
             }\n",
        );
        assert_eq!(p.findings, Vec::new());
        assert_eq!(p.hygiene, Vec::new());
        assert_eq!(p.stats.regions, 1);
        assert!(p.stats.checked_ops >= 1);
    }

    #[test]
    fn unbounded_accumulation_is_flagged_with_interval() {
        let p = prove_src(
            "pub fn acc(xs: &[i64]) -> i64 {\n\
             // andi::prove_no_overflow\n\
             let mut total = 0i64;\n\
             for &v in xs {\n\
                 total += v;\n\
             }\n\
             total\n\
             }\n",
        );
        assert_eq!(p.findings.len(), 1, "{:?}", p.findings);
        let f = &p.findings[0];
        assert_eq!(f.rule, "unchecked-width");
        assert!(f.message.contains('+'), "{}", f.message);
        assert!(f.message.contains("i64"), "{}", f.message);
        assert!(f.message.contains("does not fit"), "{}", f.message);
        assert_eq!(f.line, 5);
    }

    #[test]
    fn unguarded_assume_is_unsound() {
        let p = prove_src(
            "pub fn f(n: u64) -> u64 {\n\
             // andi::assume(n in [0, 65535]) — caller guarantees\n\
             n & 0xFFFF\n\
             }\n",
        );
        let rules: Vec<&str> = p.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["assume-soundness"]);
        assert_eq!(p.findings[0].line, 2);
    }

    #[test]
    fn guarded_assume_is_sound() {
        let p = prove_src(
            "pub fn f(n: u64) -> u64 {\n\
             debug_assert!(n <= 0xFFFF);\n\
             // andi::assume(n in [0, 65535]) — asserted above\n\
             n & 0xFFFF\n\
             }\n",
        );
        assert_eq!(p.findings, Vec::new());
    }

    #[test]
    fn dead_assume_is_unused() {
        let p = prove_src(
            "pub fn f(q: u64) -> u64 {\n\
             debug_assert!(q > 0); // mentions no assume target\n\
             // andi::assume(zzz in [0, 10]) — typo, never matches\n\
             q\n\
             }\n",
        );
        assert!(
            p.hygiene
                .iter()
                .any(|f| f.rule == "unused-pragma" && f.message.contains("zzz")),
            "{:?}",
            p.hygiene
        );
    }

    #[test]
    fn malformed_contract_is_invalid() {
        let p = prove_src(
            "pub fn f() -> u64 {\n\
             // andi::assume(x in [1, 2])\n\
             1\n\
             }\n",
        );
        assert!(
            p.hygiene.iter().any(|f| f.rule == "invalid-pragma"),
            "{:?}",
            p.hygiene
        );
    }

    #[test]
    fn const_generic_bounds_flow_from_impl_header() {
        let p = prove_src(
            "pub struct W<const N: usize>;\n\
             impl<const N: usize> W<N> {\n\
             pub fn go(&self) -> i64 {\n\
             // andi::prove_no_overflow\n\
             debug_assert!(N <= 22);\n\
             // andi::assume(N in [1, 22]) — asserted above\n\
             let n = N as i64;\n\
             n * n * n\n\
             }\n\
             }\n",
        );
        assert_eq!(p.findings, Vec::new());
        assert_eq!(p.hygiene, Vec::new());
    }

    #[test]
    fn conditional_negate_idiom_is_understood() {
        let p = prove_src(
            "pub fn sel(x: i64, s: u64) -> i64 {\n\
             // andi::prove_no_overflow\n\
             debug_assert!(x >= -1000 && x <= 1000 && s <= 1);\n\
             // andi::assume(x in [-1000, 1000]) — asserted above\n\
             let m = -((s & 1) as i64);\n\
             (x ^ m) - m\n\
             }\n",
        );
        assert_eq!(p.findings, Vec::new(), "{:?}", p.findings);
    }

    #[test]
    fn expression_assume_narrows_a_span() {
        let p = prove_src(
            "pub fn pack(key: u64, bits: u32, w: u64) -> u64 {\n\
             // andi::prove_no_overflow\n\
             debug_assert!(bits < 64 && key <= u64::MAX >> bits);\n\
             // andi::assume(key << bits in [0, 18446744073709551615]) — guarded above\n\
             (key << bits) | w\n\
             }\n",
        );
        assert_eq!(p.findings, Vec::new(), "{:?}", p.findings);
        assert_eq!(p.hygiene, Vec::new(), "{:?}", p.hygiene);
    }

    #[test]
    fn interprocedural_return_interval_via_unique_edge() {
        let p = prove_src(
            "fn cap(x: u32) -> u32 { x.min(100) }\n\
             pub fn use_it(x: u32) -> u32 {\n\
             // andi::prove_no_overflow\n\
             cap(x) * 43_000_000\n\
             }\n",
        );
        // cap() returns [0, 100]; 100 * 43e6 = 4.3e9 which does NOT
        // fit u32 — the point is the interval came through the call.
        assert_eq!(p.findings.len(), 1, "{:?}", p.findings);
        assert!(
            p.findings[0].message.contains("4300000000"),
            "{}",
            p.findings[0].message
        );
    }

    #[test]
    fn saturating_and_wrapping_are_not_checked() {
        let p = prove_src(
            "pub fn f(a: i64, b: i64) -> i64 {\n\
             // andi::prove_no_overflow\n\
             a.saturating_mul(b).saturating_add(1)\n\
             }\n",
        );
        assert_eq!(p.findings, Vec::new(), "{:?}", p.findings);
    }
}

//! Field-sensitive, interprocedural information-flow (taint) layer:
//! machine-checked disclosure boundaries.
//!
//! The paper's whole question is *when sensitive data may cross a
//! disclosure boundary*; this pass enforces the static analog on our
//! own tree. `// andi::sensitive` annotations mark the sources — raw
//! transaction contents (`Transaction::items`), the database's
//! transaction list, belief-function intervals — and the lattice
//! tracks where those values flow. Sinks are everything that renders
//! or persists text: the `format!` family (including `panic!`
//! messages), error-constructor payloads and `Display`/`Debug`
//! bodies, and file/byte writes. A flow from source to sink is a
//! finding unless an `// andi::declassify(<reason>)` pragma marks
//! the boundary as audited.
//!
//! ## Lattice
//!
//! Three points per value, with per-field precision on the middle
//! one:
//!
//! * `Clean` — publishable. Aggregates (counts, supports, risk
//!   estimates) land here: any value produced by arithmetic over
//!   sensitive inputs is deliberately laundered, mirroring the
//!   paper's stance that *computed* disclosure-risk numbers are the
//!   output of the system, not a leak.
//! * `Carrier(types)` — a value of (or containing) a sensitive-
//!   bearing type. Projections out of a carrier are Clean by default
//!   (`db.n_items()` is publishable); only the annotated leaf fields
//!   and accessors (`Transaction::items`, `BeliefFunction::
//!   intervals`) project to `Raw`, and fields whose type mentions a
//!   bearing type project to `Carrier` again.
//! * `Raw` — extracted sensitive data. Propagates through bindings,
//!   element access, string conversion, and calls; only counting
//!   aggregates (`len`, `count`, …) and arithmetic launder it.
//!
//! ## Interprocedural summaries
//!
//! Per fn, a fixpoint over the workspace call graph computes:
//! `returns_raw` (the body can return Raw data), and per-parameter
//! `param_sink` / `param_ret` masks (a value passed in position *i*
//! reaches a local sink / the return value). Caller-side, a Raw
//! argument into a `param_sink` position is a finding anchored at the
//! call site, with the shortest fn chain to the sink — the same
//! shortest-path anchoring `panic-reachability` uses.
//!
//! Everything iterates in (file, token) order over `BTreeMap`s, so
//! findings, flows, and the declassify inventory are deterministic
//! regardless of input ordering.

use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::statements;
use crate::graph::{call_paren, split_args, CallGraph, SourceFile};
use crate::lexer::{Token, TokenKind};
use crate::parser::{Item, ItemKind};
use crate::rules::{matching_brace, Finding};

/// Formatting/logging macro names whose argument positions are
/// disclosure sinks. `assert!`/`debug_assert!` are deliberately
/// absent: their message position fires only on a violated invariant
/// in a debug build, and taint there would fight the contract layer.
const FORMAT_MACROS: &[&str] = &[
    "format",
    "format_args",
    "println",
    "print",
    "eprintln",
    "eprint",
    "write",
    "writeln",
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Writer methods that persist bytes: a tainted argument here is a
/// file-write leak.
const WRITE_METHODS: &[&str] = &["write_all", "write_fmt", "write_str"];

/// Projections that keep a `Carrier` a carrier: element access and
/// reference/ownership adapters do not cross the disclosure
/// boundary by themselves.
const ELEMENT_KEEP: &[&str] = &[
    "iter",
    "into_iter",
    "get",
    "first",
    "last",
    "clone",
    "to_vec",
    "to_owned",
    "as_slice",
    "as_ref",
    "borrow",
    "windows",
    "chunks",
    "split_at",
    "split_first",
    "split_last",
    "enumerate",
    "copied",
    "cloned",
    "take",
    "skip",
    "rev",
    "flatten",
    "by_ref",
];

/// Aggregating projections that launder `Raw` (and whole-annotated
/// carriers) to `Clean`: a count over sensitive data is publishable.
const CLEAN_AGGREGATES: &[&str] = &["len", "is_empty", "count", "capacity"];

/// Method calls whose *arguments* do not flow into the result
/// (membership tests and searches return booleans/positions).
const CLEAN_ARG_METHODS: &[&str] = &[
    "contains",
    "contains_all",
    "contains_key",
    "starts_with",
    "ends_with",
    "binary_search",
    "any",
    "all",
    "position",
];

/// One audited disclosure boundary: a valid `andi::declassify`
/// pragma plus every sanctioned flow that crosses it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeclassifySite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based pragma line.
    pub line: u32,
    /// The audit justification from inside the parentheses.
    pub reason: String,
    /// Human-readable `source → fn → sink` chains this boundary
    /// sanctions, sorted and deduplicated.
    pub flows: Vec<String>,
}

/// Aggregate statistics from one taint analysis, printed by the
/// `andi-lint taint` subcommand and pinned by the golden inventory
/// test.
#[derive(Clone, Debug, Default)]
pub struct TaintStats {
    /// Directly annotated type names (type-level or via a field).
    pub sensitive_types: Vec<String>,
    /// Number of annotated fields/accessors.
    pub sensitive_members: usize,
    /// Transitive closure: every type that can carry sensitive data.
    pub bearing_types: Vec<String>,
    /// Fns whose bodies were analyzed.
    pub fns_analyzed: usize,
    /// Fns whose summaries say they can return Raw data.
    pub raw_returning_fns: usize,
    /// Sink sites scanned (format macros, error ctors, writes).
    pub sink_sites: usize,
    /// Declassify inventory with sanctioned flows.
    pub declassifies: Vec<DeclassifySite>,
}

/// Result of the information-flow pass, mirroring
/// [`crate::interval::Proved`]: `findings` are suppressible leak
/// reports, `hygiene` are pragma-hygiene findings that must *not* be
/// suppressible (they are appended after the suppression pass).
#[derive(Clone, Debug, Default)]
pub struct TaintReport {
    /// `leak-to-log` / `leak-in-error` / `sensitive-debug` findings.
    pub findings: Vec<Finding>,
    /// `invalid-pragma` / `unused-pragma` findings for the new
    /// annotation grammar.
    pub hygiene: Vec<Finding>,
    /// Flow statistics + declassify inventory.
    pub stats: TaintStats,
}

/// What a projection out of a carrier yields.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Proj {
    /// Annotated leaf: the raw sensitive data itself.
    Leaf,
    /// A field/accessor whose type mentions bearing types: the
    /// projection is itself a carrier of those types.
    Into(BTreeSet<String>),
}

/// Taint lattice point. Ordered so `merge` can take the max kind.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Kind {
    Clean,
    Carrier(BTreeSet<String>),
    Raw,
}

/// One abstract value: lattice point, symbolic parameter origins
/// (for the caller-side summaries), and a human-readable source
/// label for messages.
#[derive(Clone, Debug)]
struct Taint {
    kind: Kind,
    origins: BTreeSet<usize>,
    src: String,
}

impl Taint {
    fn clean() -> Self {
        Taint {
            kind: Kind::Clean,
            origins: BTreeSet::new(),
            src: String::new(),
        }
    }

    fn is_clean(&self) -> bool {
        self.kind == Kind::Clean && self.origins.is_empty()
    }

    fn merge(&mut self, other: &Taint) {
        let was_clean = self.kind == Kind::Clean;
        self.kind = match (&self.kind, &other.kind) {
            (Kind::Raw, _) | (_, Kind::Raw) => Kind::Raw,
            (Kind::Carrier(a), Kind::Carrier(b)) => Kind::Carrier(a.union(b).cloned().collect()),
            (Kind::Carrier(a), _) => Kind::Carrier(a.clone()),
            (_, Kind::Carrier(b)) => Kind::Carrier(b.clone()),
            (Kind::Clean, Kind::Clean) => Kind::Clean,
        };
        self.origins.extend(other.origins.iter().copied());
        // Source labels follow actual taint, not symbolic origins: a
        // clean contributor must not name itself as the leak source,
        // and the contributor that first makes the value tainted
        // overrides whatever label a clean binding carried.
        if other.kind != Kind::Clean && !other.src.is_empty() && (self.src.is_empty() || was_clean)
        {
            self.src = other.src.clone();
        }
    }
}

/// Per-fn interprocedural summary.
#[derive(Clone, Debug, Default, PartialEq)]
struct Summary {
    /// The body can return Raw data.
    returns_raw: bool,
    /// Source label for the raw return (first discovered).
    ret_src: String,
    /// Parameter `i` reaches a local (or transitive) sink.
    param_sink: Vec<bool>,
    /// Parameter `i` flows into the return value.
    param_ret: Vec<bool>,
    /// Per-parameter shortest chain to the sink: fn displays plus a
    /// sink description.
    chains: Vec<Option<(Vec<String>, String)>>,
}

/// The annotation catalogue: what is sensitive, what bears it, and
/// how projections behave.
#[derive(Debug, Default)]
struct Catalog {
    /// Type-level `andi::sensitive` targets: every projection is raw
    /// unless it is a counting aggregate.
    whole: BTreeSet<String>,
    /// Directly annotated types (type-level or owning an annotated
    /// member) — the `sensitive-debug` domain.
    direct: BTreeSet<String>,
    /// `(type, member)` projection behavior.
    proj: BTreeMap<(String, String), Proj>,
    /// Transitive sensitive-bearing closure.
    bearing: BTreeSet<String>,
    /// Count of annotated members (fields + accessors).
    members: usize,
}

impl Catalog {
    /// Bearing types mentioned (word-level) in a type text.
    fn mentions(&self, ty: &str) -> BTreeSet<String> {
        words(ty)
            .into_iter()
            .filter(|w| self.bearing.contains(w))
            .collect()
    }
}

/// Whether a return type can only carry ids/counts/lengths/flags:
/// every identifier word is an integer primitive or `bool`, possibly
/// tupled or wrapped in `Option`/`Result`. Collections are NOT
/// countlike — a `&[u64]` of raw item ids is the market basket in
/// bulk. Floats are deliberately absent too: belief intervals are
/// `f64` pairs and stay sensitive.
fn countlike_ret(ty: &str) -> bool {
    if ty.contains('[') || ty.contains("Vec") || ty.contains("Box") || ty.contains("impl") {
        return false;
    }
    const COUNTLIKE: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        "bool", "char", "Option", "Result",
    ];
    let ws = words(ty);
    !ws.is_empty() && ws.iter().all(|w| COUNTLIKE.contains(&w.as_str()))
}

/// Splits a normalized type text into identifier words.
fn words(ty: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in ty.chars() {
        if c == '_' || c.is_alphanumeric() {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// One struct field scraped from the token stream: name, normalized
/// type text, and the line of the field name (for annotation
/// matching).
#[derive(Clone, Debug)]
struct FieldDef {
    name: String,
    ty: String,
    line: u32,
}

/// Collects `struct Name { field: Ty, … }` tables workspace-wide.
/// Token-level (the parser does not model fields), same skeleton as
/// the interval prover's field scan.
fn scan_fields(files: &[SourceFile]) -> BTreeMap<String, Vec<FieldDef>> {
    let mut out: BTreeMap<String, Vec<FieldDef>> = BTreeMap::new();
    for sf in files {
        let toks = &sf.scan.tokens;
        for k in 0..toks.len() {
            if !toks[k].is_ident("struct")
                || toks.get(k + 1).is_none_or(|n| n.kind != TokenKind::Ident)
            {
                continue;
            }
            let sname = toks[k + 1].text.clone();
            // Find the body brace at depth 0 (skipping generics).
            let mut j = k + 1;
            let mut open = None;
            let mut depth = 0i64;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('<') || t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct('>') || t.is_punct(')') {
                    depth -= 1;
                } else if t.is_punct(';') && depth <= 0 {
                    break; // tuple/unit struct: no named fields
                } else if t.is_punct('{') && depth <= 0 {
                    open = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(open) = open else { continue };
            let close = matching_brace(toks, open).unwrap_or(toks.len());
            let mut m = open + 1;
            while m + 1 < close {
                let t = &toks[m];
                if t.kind == TokenKind::Ident && toks[m + 1].is_punct(':') {
                    let mut d = 0i64;
                    let mut e = m + 2;
                    while e < close {
                        let u = &toks[e];
                        if u.is_punct('<') || u.is_punct('(') || u.is_punct('[') {
                            d += 1;
                        } else if u.is_punct('>') || u.is_punct(')') || u.is_punct(']') {
                            d -= 1;
                        } else if u.is_punct(',') && d <= 0 {
                            break;
                        }
                        e += 1;
                    }
                    let ty = toks[m + 2..e]
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect::<Vec<_>>()
                        .join(" ");
                    out.entry(sname.clone()).or_default().push(FieldDef {
                        name: t.text.clone(),
                        ty,
                        line: t.line,
                    });
                    m = e;
                } else {
                    m += 1;
                }
            }
        }
    }
    out
}

/// One precomputed disclosure-sink site inside a fn body. The token
/// structure never changes across fixpoint rounds, so the walk that
/// finds these runs once per fn; only the environment evaluation is
/// per-round work.
#[derive(Clone)]
struct SinkSite {
    /// Payload/argument token range to evaluate.
    lo: usize,
    /// End of that range (exclusive; may exceed the token count).
    hi: usize,
    /// Report anchor line.
    line: u32,
    /// Report anchor column.
    col: u32,
    /// Sink description for messages (`` `X::Y` payload ``, `` `format!` `` …).
    desc: String,
    /// Error-channel sink: a ctor payload, or any sink inside an
    /// `Error` type's `fmt`.
    is_err: bool,
    /// Inline-capture names of the site's format string (`"{x}"`).
    captures: Vec<String>,
}

/// The analysis driver.
struct Analysis<'a> {
    files: &'a [SourceFile],
    g: &'a CallGraph,
    cat: Catalog,
    fields: BTreeMap<String, Vec<FieldDef>>,
    /// Per-fn summaries, indexed like `g.fns`.
    sums: Vec<Summary>,
    /// `(file, tok)` → resolved callee, for unique call sites.
    site: BTreeMap<(usize, usize), usize>,
    /// `(file, tok)` → argument token ranges of that call site.
    site_args: BTreeMap<(usize, usize), Vec<(usize, usize)>>,
    /// Callee → callers, for the fixpoint worklist.
    callers: BTreeMap<usize, BTreeSet<usize>>,
    /// Per-file: (declassify index) → used flag + sanctioned flows.
    declassify_used: Vec<Vec<(bool, Vec<String>)>>,
    /// Enclosing impl type of the fn currently being analyzed, so
    /// `Self { … }` / `Self::new(…)` resolve to a bearing type.
    cur_self: Option<String>,
    /// Per-fn display labels, computed once — `display()` allocates
    /// and the hot paths would otherwise re-format it per call site.
    displays: Vec<String>,
    /// Per-fn bearing mentions of the return type with `-> Self`
    /// resolved, cached so `call_result` does no type-text parsing.
    ret_mentions: Vec<BTreeSet<String>>,
    /// Per-fn countlike-return bit (ids/counts/lengths only).
    ret_countlike: Vec<bool>,
    /// Per-fn statement segmentation of the body — bodies never
    /// change across fixpoint rounds, so parse once.
    stmts: Vec<Vec<(usize, usize)>>,
    /// Per-file dense call-resolution table indexed by name token:
    /// `u32::MAX` = no unique resolution, else index into `g.calls`.
    /// `eval` probes this for every ident token, so the `site`
    /// BTreeMap is too slow to sit on that path.
    site_by_tok: Vec<Vec<u32>>,
    /// Caller → its call indices, so per-fn scans skip the global
    /// call list.
    calls_of: Vec<Vec<usize>>,
    /// Per-fn precomputed sink sites (see [`SinkSite`]).
    sinks_of: Vec<Vec<SinkSite>>,
    findings: Vec<Finding>,
    hygiene: Vec<Finding>,
    sink_sites: usize,
}

/// Runs the information-flow analysis over a parsed workspace.
pub fn analyze(files: &[SourceFile], g: &CallGraph) -> TaintReport {
    let fields = scan_fields(files);
    let mut a = Analysis {
        files,
        g,
        cat: Catalog::default(),
        fields,
        sums: vec![Summary::default(); g.fns.len()],
        site: BTreeMap::new(),
        site_args: BTreeMap::new(),
        callers: BTreeMap::new(),
        declassify_used: files
            .iter()
            .map(|sf| {
                sf.scan
                    .declassifies
                    .iter()
                    .map(|_| (false, Vec::new()))
                    .collect()
            })
            .collect(),
        cur_self: None,
        displays: Vec::new(),
        ret_mentions: Vec::new(),
        ret_countlike: Vec::new(),
        stmts: Vec::new(),
        site_by_tok: Vec::new(),
        calls_of: Vec::new(),
        sinks_of: Vec::new(),
        findings: Vec::new(),
        hygiene: Vec::new(),
        sink_sites: 0,
    };
    a.build_catalog();
    if a.cat.bearing.is_empty() {
        // No annotations anywhere: only pragma hygiene can fire.
        a.declassify_hygiene();
        return a.finish();
    }
    a.displays = g.fns.iter().map(|f| f.display()).collect();
    a.ret_mentions = g
        .fns
        .iter()
        .map(|f| {
            let mut m = a.cat.mentions(&f.ret);
            if let Some(so) = f.self_of.as_ref().filter(|so| a.cat.bearing.contains(*so)) {
                if words(&f.ret).iter().any(|w| w == "Self") {
                    m.insert(so.clone());
                }
            }
            m
        })
        .collect();
    a.ret_countlike = g.fns.iter().map(|f| countlike_ret(&f.ret)).collect();
    a.stmts = g
        .fns
        .iter()
        .map(|f| match f.body {
            Some((lo, hi)) => statements(&files[f.file].scan.tokens, lo, hi),
            None => Vec::new(),
        })
        .collect();
    a.calls_of = vec![Vec::new(); g.fns.len()];
    a.sinks_of = (0..g.fns.len()).map(|u| a.find_sinks(u)).collect();
    // A `Type::name(…)` path call names its impl type, so same-name
    // fns on other types don't make the site ambiguous.
    let qualifier = |fi: usize, tok: usize| -> Option<String> {
        let toks = &files[fi].scan.tokens;
        if tok >= 3
            && toks[tok - 1].is_punct(':')
            && toks[tok - 2].is_punct(':')
            && toks[tok - 3].kind == TokenKind::Ident
        {
            Some(toks[tok - 3].text.clone())
        } else {
            None
        }
    };
    for (i, c) in g.calls.iter().enumerate() {
        let fi = g.fns[c.caller].file;
        // Only unique resolutions feed summaries (same trust rule as
        // the interval prover's return propagation).
        match a.site.entry((fi, c.tok)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(i);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let prev = *e.get();
                if prev != usize::MAX && g.calls[prev].callee == c.callee {
                    // same resolution, nothing to do
                } else if let Some(q) = qualifier(fi, c.tok) {
                    let matches = |call: usize| {
                        g.fns[g.calls[call].callee].self_of.as_deref() == Some(q.as_str())
                    };
                    match (prev != usize::MAX && matches(prev), matches(i)) {
                        (true, false) => {}
                        (false, true) => {
                            e.insert(i);
                        }
                        _ => {
                            e.insert(usize::MAX);
                        }
                    }
                } else {
                    e.insert(usize::MAX); // ambiguous
                }
            }
        }
        a.site_args.insert((fi, c.tok), c.args.clone());
        a.callers.entry(c.callee).or_default().insert(c.caller);
        a.calls_of[c.caller].push(i);
    }
    a.site_by_tok = files
        .iter()
        .map(|sf| vec![u32::MAX; sf.scan.tokens.len()])
        .collect();
    for (&(fi, tok), &i) in &a.site {
        if i != usize::MAX {
            a.site_by_tok[fi][tok] = i as u32;
        }
    }
    a.seed_summaries();
    a.fixpoint();
    a.emit();
    a.sensitive_debug();
    a.declassify_hygiene();
    a.finish()
}

impl<'a> Analysis<'a> {
    // ----- catalogue -----------------------------------------------

    fn build_catalog(&mut self) {
        // Resolve each `andi::sensitive` mark to a type, field, or
        // accessor on the same or next line.
        for (fi, sf) in self.files.iter().enumerate() {
            for mark in &sf.scan.sensitives {
                if !self.resolve_mark(fi, mark.line) {
                    self.hygiene.push(Finding {
                        file: sf.path.clone(),
                        line: mark.line,
                        col: 1,
                        rule: "invalid-pragma",
                        message: "andi::sensitive names no type, field, or fn on this \
                                  or the next line; move it directly above the item"
                            .to_string(),
                    });
                }
            }
        }
        // Transitive bearing closure over the field tables: a struct
        // with a field whose type mentions a bearing type bears it
        // too (enums are out of scope; DESIGN.md documents the
        // under-approximation).
        let mut bearing: BTreeSet<String> = self.cat.direct.clone();
        loop {
            let mut grew = false;
            for (sname, fs) in &self.fields {
                if bearing.contains(sname) {
                    continue;
                }
                if fs
                    .iter()
                    .any(|f| words(&f.ty).iter().any(|w| bearing.contains(w)))
                {
                    bearing.insert(sname.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        self.cat.bearing = bearing;
        // Every field whose type mentions a bearing type is an
        // `Into` projection (unless annotated as a leaf).
        let mut extra: Vec<((String, String), Proj)> = Vec::new();
        for (sname, fs) in &self.fields {
            for f in fs {
                let key = (sname.clone(), f.name.clone());
                if self.cat.proj.contains_key(&key) {
                    continue;
                }
                let m = self.cat.mentions(&f.ty);
                if !m.is_empty() {
                    extra.push((key, Proj::Into(m)));
                }
            }
        }
        self.cat.proj.extend(extra);
    }

    /// Attaches one mark to its target; false when nothing matches.
    fn resolve_mark(&mut self, fi: usize, line: u32) -> bool {
        // Item on this line (trailing mark) or the next (mark above).
        let mut target: Option<(ItemKind, String, Option<String>, String)> = None;
        self.files[fi].ast.visit(&mut |it: &Item| {
            if target.is_some() || (it.line != line && it.line != line + 1) {
                return;
            }
            match it.kind {
                ItemKind::TypeDef => {
                    target = Some((ItemKind::TypeDef, it.name.clone(), None, String::new()));
                }
                ItemKind::Fn => {
                    target = Some((
                        ItemKind::Fn,
                        it.name.clone(),
                        it.self_of.clone(),
                        it.ret.clone(),
                    ));
                }
                _ => {}
            }
        });
        if let Some((kind, name, self_of, ret)) = target {
            match kind {
                ItemKind::TypeDef => {
                    self.cat.whole.insert(name.clone());
                    self.cat.direct.insert(name);
                }
                ItemKind::Fn => {
                    let owner = match self_of {
                        Some(t) => t,
                        // A free fn cannot be a projection source;
                        // treat the mark as unresolved.
                        None => return false,
                    };
                    self.cat.direct.insert(owner.clone());
                    let m = self.mentions_before_closure(&ret);
                    let proj = if m.is_empty() {
                        Proj::Leaf
                    } else {
                        Proj::Into(m)
                    };
                    self.cat.proj.insert((owner, name), proj);
                    self.cat.members += 1;
                }
                _ => unreachable!(),
            }
            return true;
        }
        // Field inside a struct defined in this file.
        let path = &self.files[fi].path;
        let mut hit: Option<(String, String, String)> = None;
        for (sname, fs) in &self.fields {
            for f in fs {
                if (f.line == line || f.line == line + 1) && self.owns_struct(path, sname, f.line) {
                    hit = Some((sname.clone(), f.name.clone(), f.ty.clone()));
                    break;
                }
            }
            if hit.is_some() {
                break;
            }
        }
        if let Some((sname, fname, ty)) = hit {
            self.cat.direct.insert(sname.clone());
            let m = self.mentions_before_closure(&ty);
            let proj = if m.is_empty() {
                Proj::Leaf
            } else {
                Proj::Into(m)
            };
            self.cat.proj.insert((sname, fname), proj);
            self.cat.members += 1;
            return true;
        }
        false
    }

    /// Whether the named struct (with a field at `line`) is defined
    /// in `path` — guards against same-named fields in other files.
    fn owns_struct(&self, path: &str, sname: &str, line: u32) -> bool {
        self.files.iter().any(|sf| {
            sf.path == path
                && sf
                    .scan
                    .tokens
                    .windows(2)
                    .any(|w| w[0].is_ident("struct") && w[1].is_ident(sname))
                && sf.scan.tokens.iter().any(|t| t.line == line)
        })
    }

    /// Bearing-type mentions *before* the closure exists: direct
    /// annotations only. Used while the catalogue is still being
    /// built; the closure re-derives `Into` sets afterwards anyway.
    fn mentions_before_closure(&self, ty: &str) -> BTreeSet<String> {
        words(ty)
            .into_iter()
            .filter(|w| self.cat.direct.contains(w) || self.cat.whole.contains(w))
            .collect()
    }

    // ----- summaries -----------------------------------------------

    fn seed_summaries(&mut self) {
        for (u, f) in self.g.fns.iter().enumerate() {
            self.sums[u].param_sink = vec![false; f.params.len()];
            self.sums[u].param_ret = vec![false; f.params.len()];
            self.sums[u].chains = vec![None; f.params.len()];
        }
    }

    fn fixpoint(&mut self) {
        let mut work: BTreeSet<usize> = (0..self.g.fns.len()).collect();
        let mut rounds = 0usize;
        while let Some(&u) = work.iter().next() {
            work.remove(&u);
            rounds += 1;
            if rounds > self.g.fns.len() * 16 {
                break; // chain-shortening is bounded; belt and braces
            }
            let before = self.sums[u].clone();
            self.analyze_fn(u, false);
            if self.sums[u] != before {
                if let Some(cs) = self.callers.get(&u) {
                    work.extend(cs.iter().copied());
                }
            }
        }
    }

    fn emit(&mut self) {
        for u in 0..self.g.fns.len() {
            self.analyze_fn(u, true);
        }
    }

    // ----- per-fn analysis -----------------------------------------

    /// Analyzes one fn body: builds the local environment, updates
    /// the fn's summary, and (when `emit`) reports sink flows.
    fn analyze_fn(&mut self, u: usize, emit: bool) {
        let node = &self.g.fns[u];
        let Some((lo, hi)) = node.body else { return };
        if node.in_test {
            return;
        }
        let fi = node.file;
        let display = self.displays[u].clone();
        self.cur_self = node.self_of.clone();

        // Seed the environment from parameters.
        let mut env: BTreeMap<String, Taint> = BTreeMap::new();
        for (i, p) in node.params.iter().enumerate() {
            if p.name.is_empty() {
                continue;
            }
            let kind = if p.name == "self" {
                match &node.self_of {
                    Some(t) if self.cat.bearing.contains(t) => {
                        Kind::Carrier([t.clone()].into_iter().collect())
                    }
                    _ => Kind::Clean,
                }
            } else {
                let m = self.cat.mentions(&p.ty);
                if m.is_empty() {
                    Kind::Clean
                } else {
                    Kind::Carrier(m)
                }
            };
            env.insert(
                p.name.clone(),
                Taint {
                    kind,
                    origins: [i].into_iter().collect(),
                    src: format!("`{}` (param of `{display}`)", p.name),
                },
            );
        }

        // Pass 1: statement-order binding updates (monotone), over
        // the cached segmentation (bodies never change).
        let toks = &self.files[fi].scan.tokens;
        let stmts = self.stmts[u].clone();
        for (a, b) in stmts {
            let seg = &toks[a..b.min(toks.len())];
            if seg.is_empty() {
                continue;
            }
            if seg[0].is_ident("let") {
                let Some(eq) = top_level_eq(seg) else {
                    continue;
                };
                let mut t = self.eval(fi, a + eq + 1, b, &env);
                // `let x: Database = …` — a carrier-typed ascription
                // upgrades an unknown RHS to a carrier.
                let colon = top_level_colon(&seg[1..eq]).map(|c| c + 1);
                if t.kind == Kind::Clean {
                    if let Some(c) = colon {
                        let ty: String = seg[c + 1..eq]
                            .iter()
                            .map(|t| t.text.as_str())
                            .collect::<Vec<_>>()
                            .join(" ");
                        let m = self.cat.mentions(&ty);
                        if !m.is_empty() {
                            t.kind = Kind::Carrier(m);
                        }
                    }
                }
                if t.is_clean() {
                    continue;
                }
                let pat_end = colon.unwrap_or(eq);
                for tk in &seg[1..pat_end] {
                    if tk.kind == TokenKind::Ident && !tk.is_ident("mut") && !tk.is_ident("ref") {
                        env.entry(tk.text.clone())
                            .or_insert_with(Taint::clean)
                            .merge(&t);
                    }
                }
            } else if seg[0].is_ident("for") {
                let Some(pos) = seg.iter().position(|t| t.is_ident("in")) else {
                    continue;
                };
                let t = self.eval(fi, a + pos + 1, b, &env);
                if t.is_clean() {
                    continue;
                }
                // `for (i, x) in xs.iter().enumerate()`: the first
                // pattern ident is the counter — a count, not data.
                let enumerated = seg[pos..]
                    .windows(2)
                    .any(|w| w[0].is_punct('.') && w[1].is_ident("enumerate"))
                    && seg.get(1).is_some_and(|t| t.is_punct('('));
                let mut first = true;
                for tk in &seg[1..pos] {
                    if tk.kind == TokenKind::Ident && !tk.is_ident("mut") && !tk.is_ident("ref") {
                        if enumerated && std::mem::take(&mut first) {
                            continue;
                        }
                        env.entry(tk.text.clone())
                            .or_insert_with(Taint::clean)
                            .merge(&t);
                    }
                }
            } else if seg.len() >= 3 && seg[0].kind == TokenKind::Ident {
                // Plain `name = expr` propagates; compound assigns
                // (`+=` …) are arithmetic and launder.
                if seg[1].is_punct('=') && !seg[2].is_punct('=') {
                    let t = self.eval(fi, a + 2, b, &env);
                    if !t.is_clean() {
                        env.entry(seg[0].text.clone())
                            .or_insert_with(Taint::clean)
                            .merge(&t);
                    }
                } else if seg[1].is_punct('.')
                    && seg[2].kind == TokenKind::Ident
                    && MUTATORS.contains(&seg[2].text.as_str())
                    && seg.get(3).is_some_and(|t| t.is_punct('('))
                {
                    // `buf.push_str(raw)` taints `buf`.
                    let t = self.eval(fi, a + 4, b, &env);
                    if !t.is_clean() {
                        env.entry(seg[0].text.clone())
                            .or_insert_with(Taint::clean)
                            .merge(&t);
                    }
                }
            }
        }

        // Pass 2: summary updates + (when emitting) sink reports,
        // over the whole body with the final environment.
        self.scan_sinks(u, fi, &env, emit);
        self.scan_returns(u, fi, hi, &env);
        self.scan_call_args(u, fi, lo, hi, &env, emit);
    }

    /// Return-position taint → `returns_raw` / `param_ret`.
    fn scan_returns(&mut self, u: usize, fi: usize, hi: usize, env: &BTreeMap<String, Taint>) {
        if self.g.fns[u].ret.is_empty() {
            return; // `()` fns cannot leak through their return value
        }
        if self.ret_countlike[u] {
            // Integers and bools are ids/counts/lengths — exactly the
            // render the rules sanction. Structured sensitive data
            // cannot fit through such a return type. (Floats are NOT
            // exempt: belief intervals are `f64` pairs.)
            return;
        }
        let toks = &self.files[fi].scan.tokens;
        let segs = self.stmts[u].clone();
        for (i, (a, b)) in segs.iter().enumerate() {
            let seg = &toks[*a..(*b).min(toks.len())];
            if seg.is_empty() {
                continue;
            }
            let explicit = seg[0].is_ident("return");
            // Trailing-expression position: the segment ends at a
            // closing brace or the body end (over-approximates
            // if/match arm tails, which *are* values).
            let tail =
                *b >= hi || toks.get(*b).is_some_and(|t| t.is_punct('}')) || i + 1 == segs.len();
            if !explicit && !tail {
                continue;
            }
            let from = if explicit { *a + 1 } else { *a };
            let t = self.eval(fi, from, *b, env);
            if t.kind == Kind::Raw && !self.sums[u].returns_raw {
                if std::env::var_os("ANDI_TAINT_DEBUG").is_some() {
                    eprintln!(
                        "[taint] returns_raw {} at {}:{} src {}",
                        self.displays[u],
                        self.files[fi].path,
                        toks.get(from).map(|t| t.line).unwrap_or(0),
                        t.src
                    );
                }
                self.sums[u].returns_raw = true;
                self.sums[u].ret_src = t.src.clone();
            }
            for &o in &t.origins {
                if o < self.sums[u].param_ret.len() {
                    self.sums[u].param_ret[o] = true;
                }
            }
        }
    }

    /// Caller-side flow: a Raw argument into a `param_sink` position
    /// is a finding; symbolic origins extend this fn's own summary.
    fn scan_call_args(
        &mut self,
        u: usize,
        fi: usize,
        lo: usize,
        hi: usize,
        env: &BTreeMap<String, Taint>,
        emit: bool,
    ) {
        let sites: Vec<(usize, usize, u32, u32)> = self.calls_of[u]
            .iter()
            .map(|&i| &self.g.calls[i])
            .filter(|c| c.tok >= lo && c.tok < hi)
            .map(|c| (c.tok, c.callee, c.line, c.col))
            .collect();
        for (tok, callee, line, col) in sites {
            if self.site.get(&(fi, tok)) == Some(&usize::MAX) {
                continue; // ambiguous resolution: don't trust it
            }
            let args = match self.site_args.get(&(fi, tok)) {
                Some(a) => a.clone(),
                None => continue,
            };
            // Method-style calls bind the receiver to param 0; the
            // parenthesized args start at param 1.
            let toks = &self.files[fi].scan.tokens;
            let method_style = tok > 0 && toks[tok - 1].is_punct('.');
            let offset = if method_style
                && self.g.fns[callee]
                    .params
                    .first()
                    .is_some_and(|p| p.name == "self")
            {
                1
            } else {
                0
            };
            for (j, (alo, ahi)) in args.iter().enumerate() {
                let pi = j + offset;
                if pi >= self.sums[callee].param_sink.len() || !self.sums[callee].param_sink[pi] {
                    continue;
                }
                let t = self.eval(fi, *alo, *ahi, env);
                let (chain_fns, sink_desc) = match &self.sums[callee].chains[pi] {
                    Some((fns, d)) => (fns.clone(), d.clone()),
                    None => (vec![self.displays[callee].clone()], "a sink".to_string()),
                };
                if t.kind == Kind::Raw && emit {
                    let chain = chain_fns.join(" → ");
                    let flow = format!("{} → {chain} → {sink_desc}", t.src);
                    let msg = format!(
                        "sensitive data from {} reaches {sink_desc} via `{chain}`; \
                         pass ids/counts/lengths instead, or declassify the audited \
                         boundary with `// andi::declassify(<reason>)`",
                        t.src
                    );
                    self.report(fi, line, col, "leak-to-log", msg, u, flow);
                }
                // Symbolic extension: our params reaching this arg
                // flow to the same sink, one hop longer.
                for &o in &t.origins {
                    if o < self.sums[u].param_sink.len() {
                        self.sums[u].param_sink[o] = true;
                        let mut fns = vec![self.displays[u].clone()];
                        fns.extend(chain_fns.iter().cloned());
                        let cand = (fns, sink_desc.clone());
                        let better = match &self.sums[u].chains[o] {
                            None => true,
                            Some(old) => {
                                cand.0.len() < old.0.len()
                                    || (cand.0.len() == old.0.len() && cand < *old)
                            }
                        };
                        if better {
                            self.sums[u].chains[o] = Some(cand);
                        }
                    }
                }
            }
        }
    }

    /// Local sink scan: error constructors first (their argument
    /// regions swallow nested format macros), then format macros and
    /// writer calls outside those regions.
    fn scan_sinks(&mut self, u: usize, fi: usize, env: &BTreeMap<String, Taint>, emit: bool) {
        // Take the cached site list out of `self` for the duration so
        // the `&mut self` calls below don't fight the borrow.
        let sites = std::mem::take(&mut self.sinks_of[u]);
        for s in &sites {
            self.sink_sites += 1;
            let mut t = self.eval(fi, s.lo, s.hi, env);
            // Inline captures: `format!("{x}")` never mentions `x` as
            // a token.
            for name in &s.captures {
                if let Some(b) = env.get(name) {
                    t.merge(b);
                }
            }
            self.sink_hit(u, fi, s.line, s.col, &t, &s.desc, s.is_err, emit);
        }
        self.sinks_of[u] = sites;
    }

    /// Walks one fn body for its sink sites; runs once per fn at
    /// setup (the sites are positional, so fixpoint rounds share the
    /// result via `sinks_of`).
    fn find_sinks(&self, u: usize) -> Vec<SinkSite> {
        let node = &self.g.fns[u];
        let Some((lo, hi)) = node.body else {
            return Vec::new();
        };
        if node.in_test {
            return Vec::new();
        }
        let toks = &self.files[node.file].scan.tokens;
        let in_error_fmt =
            node.name == "fmt" && node.self_of.as_deref().is_some_and(|t| t.contains("Error"));
        let mut out = Vec::new();
        let mut ctor_regions: Vec<(usize, usize)> = Vec::new();

        // Error-constructor payloads.
        let mut k = lo;
        while k + 3 < hi.min(toks.len()) {
            let is_ctor = toks[k].kind == TokenKind::Ident
                && toks[k].text.contains("Error")
                && toks[k + 1].is_punct(':')
                && toks[k + 2].is_punct(':')
                && toks[k + 3].kind == TokenKind::Ident;
            if !is_ctor {
                k += 1;
                continue;
            }
            let open = k + 4;
            let (close, region) = if toks.get(open).is_some_and(|t| t.is_punct('(')) {
                let c = matching_delim(toks, open, '(', ')');
                (c, (open + 1, c))
            } else if toks.get(open).is_some_and(|t| t.is_punct('{')) {
                let c = matching_brace(toks, open).unwrap_or(toks.len());
                (c, (open + 1, c))
            } else {
                k += 1;
                continue;
            };
            ctor_regions.push((k, close));
            out.push(SinkSite {
                lo: region.0,
                hi: region.1,
                line: toks[k].line,
                col: toks[k].col,
                desc: format!("`{}::{}` payload", toks[k].text, toks[k + 3].text),
                is_err: true,
                captures: Vec::new(),
            });
            k = open; // nested ctors inside the payload count too
        }

        // Format-family macros + writer calls.
        let mut k = lo;
        while k + 1 < hi.min(toks.len()) {
            let t0 = &toks[k];
            // `name!(…)` / `name![…]`
            if t0.kind == TokenKind::Ident
                && FORMAT_MACROS.contains(&t0.text.as_str())
                && toks[k + 1].is_punct('!')
            {
                let open = k + 2;
                let (oc, cc) = match toks.get(open) {
                    Some(t) if t.is_punct('(') => ('(', ')'),
                    Some(t) if t.is_punct('[') => ('[', ']'),
                    _ => {
                        k += 1;
                        continue;
                    }
                };
                let close = matching_delim(toks, open, oc, cc);
                if ctor_regions.iter().any(|&(a, b)| k > a && k < b) {
                    k = close; // the enclosing ctor finding covers it
                    continue;
                }
                let captures = toks[open + 1..close.min(toks.len())]
                    .iter()
                    .find(|t| t.kind == TokenKind::Str)
                    .map(|s| inline_captures(&s.text))
                    .unwrap_or_default();
                out.push(SinkSite {
                    lo: open + 1,
                    hi: close,
                    line: t0.line,
                    col: t0.col,
                    desc: format!("`{}!`", t0.text),
                    is_err: in_error_fmt,
                    captures,
                });
                k = close;
                continue;
            }
            // `.write_all(…)` / `.write_fmt(…)` / `.write_str(…)` and
            // `fs::write(…)`.
            let is_write_method = t0.is_punct('.')
                && toks
                    .get(k + 1)
                    .is_some_and(|t| WRITE_METHODS.contains(&t.text.as_str()))
                && toks.get(k + 2).is_some_and(|t| t.is_punct('('));
            let is_fs_write = t0.is_ident("fs")
                && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(k + 3).is_some_and(|t| t.is_ident("write"))
                && toks.get(k + 4).is_some_and(|t| t.is_punct('('));
            if is_write_method || is_fs_write {
                let (open, name_tok) = if is_write_method {
                    (k + 2, k + 1)
                } else {
                    (k + 4, k + 3)
                };
                let close = matching_delim(toks, open, '(', ')');
                if ctor_regions.iter().any(|&(a, b)| k > a && k < b) {
                    k = close;
                    continue;
                }
                out.push(SinkSite {
                    lo: open + 1,
                    hi: close,
                    line: toks[name_tok].line,
                    col: toks[name_tok].col,
                    desc: if is_fs_write {
                        "`fs::write()`".to_string()
                    } else {
                        format!("`.{}()`", toks[name_tok].text)
                    },
                    is_err: in_error_fmt,
                    captures: Vec::new(),
                });
                k = close;
                continue;
            }
            k += 1;
        }
        out
    }

    /// Processes one evaluated sink: summary bits always; a finding
    /// or a declassified-flow record when emitting.
    #[allow(clippy::too_many_arguments)]
    fn sink_hit(
        &mut self,
        u: usize,
        fi: usize,
        line: u32,
        col: u32,
        t: &Taint,
        desc: &str,
        in_error: bool,
        emit: bool,
    ) {
        // Symbolic: params reaching this sink.
        for &o in &t.origins {
            if o < self.sums[u].param_sink.len() {
                self.sums[u].param_sink[o] = true;
                let cand = (vec![self.displays[u].clone()], desc.to_string());
                let better = match &self.sums[u].chains[o] {
                    None => true,
                    Some(old) => {
                        cand.0.len() < old.0.len() || (cand.0.len() == old.0.len() && cand < *old)
                    }
                };
                if better {
                    self.sums[u].chains[o] = Some(cand);
                }
            }
        }
        if !emit || t.kind == Kind::Clean {
            return;
        }
        let src = if t.src.is_empty() {
            "a sensitive value".to_string()
        } else {
            t.src.clone()
        };
        let flow = format!("{src} → {} → {desc}", self.displays[u]);
        let (rule, msg) = if in_error {
            (
                "leak-in-error",
                format!(
                    "sensitive data from {src} flows into {desc}; error payloads \
                     must carry ids/counts/lengths, never raw contents — or mark \
                     an audited boundary with `// andi::declassify(<reason>)`"
                ),
            )
        } else {
            (
                "leak-to-log",
                format!(
                    "sensitive data from {src} reaches {desc}; render \
                     ids/counts/lengths instead, or mark an audited boundary \
                     with `// andi::declassify(<reason>)`"
                ),
            )
        };
        self.report(fi, line, col, rule, msg, u, flow);
    }

    /// Emits a finding unless a declassify boundary covers the site
    /// (same line / line above) or the enclosing fn's signature.
    #[allow(clippy::too_many_arguments)]
    fn report(
        &mut self,
        fi: usize,
        line: u32,
        col: u32,
        rule: &'static str,
        msg: String,
        u: usize,
        flow: String,
    ) {
        if let Some(d) = self.covering_declassify(fi, line, Some(u)) {
            let slot = &mut self.declassify_used[fi][d];
            slot.0 = true;
            if !slot.1.contains(&flow) {
                slot.1.push(flow);
            }
            return;
        }
        self.findings.push(Finding {
            file: self.files[fi].path.clone(),
            line,
            col,
            rule,
            message: msg,
        });
    }

    /// Index of a valid declassify covering `line` directly, or the
    /// enclosing fn `u`'s signature/attribute lines.
    fn covering_declassify(&self, fi: usize, line: u32, u: Option<usize>) -> Option<usize> {
        let ds = &self.files[fi].scan.declassifies;
        let direct = ds
            .iter()
            .position(|d| !d.reason.is_empty() && (d.line == line || d.line + 1 == line));
        if direct.is_some() {
            return direct;
        }
        let u = u?;
        let node = &self.g.fns[u];
        if node.file != fi {
            return None;
        }
        // The fn's own line, or the line of its first attribute, or
        // the line just above either (pragma-above placement).
        let mut anchor_lines: BTreeSet<u32> = [node.line, node.line.saturating_sub(1)]
            .into_iter()
            .collect();
        let toks = &self.files[fi].scan.tokens;
        let mut item_attr_line: Option<u32> = None;
        self.files[fi].ast.visit(&mut |it: &Item| {
            if it.kind == ItemKind::Fn && it.line == node.line && it.name == node.name {
                item_attr_line = toks.get(it.attr_start).map(|t| t.line);
            }
        });
        if let Some(al) = item_attr_line {
            anchor_lines.insert(al);
            anchor_lines.insert(al.saturating_sub(1));
        }
        ds.iter()
            .position(|d| !d.reason.is_empty() && anchor_lines.contains(&d.line))
    }

    // ----- expression evaluation -----------------------------------

    /// Evaluates a token range to a taint value: environment lookups
    /// with postfix projection, constructor detection, call-summary
    /// application, and arithmetic laundering.
    fn eval(&self, fi: usize, a: usize, b: usize, env: &BTreeMap<String, Taint>) -> Taint {
        let toks = &self.files[fi].scan.tokens;
        let b = b.min(toks.len());
        let mut out = Taint::clean();
        let mut k = a;
        while k < b {
            let t = &toks[k];
            if t.kind != TokenKind::Ident {
                k += 1;
                continue;
            }
            // Field labels / ascriptions (`name:` but not `name::`)
            // are never value occurrences; projection names after `.`
            // are handled by their receiver's postfix walk (unless
            // the receiver was clean and the method resolves — see
            // the summary branch below).
            let next_colon = toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && !toks.get(k + 2).is_some_and(|n| n.is_punct(':'));
            let prev = k.checked_sub(1).map(|i| &toks[i]);
            let after_dot = prev.is_some_and(|p| p.is_punct('.'));
            let after_colon = prev.is_some_and(|p| p.is_punct(':'));
            if !next_colon && !after_dot && !after_colon {
                // Environment binding → postfix walk.
                if let Some(binding) = env.get(&t.text) {
                    let (val, end) = self.postfix(fi, k, b, binding.clone(), env);
                    self.merge_occurrence(&mut out, val, toks, k, end);
                    k = end;
                    continue;
                }
                // Bearing-type constructor: `B { … }`, `B(…)`,
                // `B::…(…)`. `Self` inside an impl of a bearing type
                // counts.
                let ctor_ty = if self.cat.bearing.contains(&t.text) {
                    Some(t.text.clone())
                } else if t.is_ident("Self") {
                    self.cur_self
                        .as_ref()
                        .filter(|s| self.cat.bearing.contains(*s))
                        .cloned()
                } else {
                    None
                };
                if let Some(bty) = ctor_ty {
                    let nxt = toks.get(k + 1);
                    let carrier = Taint {
                        kind: Kind::Carrier([bty.clone()].into_iter().collect()),
                        origins: BTreeSet::new(),
                        src: format!("`{bty}`"),
                    };
                    if nxt.is_some_and(|n| n.is_punct('{')) {
                        // Struct literal: the value is a carrier;
                        // field initializers are evaluated by the
                        // outer walk.
                        let close = matching_brace(toks, k + 1).unwrap_or(b);
                        let (val, end) = self.postfix_from(fi, close + 1, b, carrier, env);
                        self.merge_occurrence(&mut out, val, toks, k, end);
                        k += 2; // walk the initializers too
                        continue;
                    }
                    if nxt.is_some_and(|n| n.is_punct('(')) {
                        // Tuple-struct ctor `B(…)`.
                        let close = matching_delim(toks, k + 1, '(', ')');
                        let (val, end) = self.postfix_from(fi, close + 1, b, carrier, env);
                        self.merge_occurrence(&mut out, val, toks, k, end);
                        k += 2; // evaluate arguments too
                        continue;
                    }
                    if nxt.is_some_and(|n| n.is_punct(':'))
                        && toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
                        && toks.get(k + 3).is_some_and(|n| n.kind == TokenKind::Ident)
                    {
                        // `B::ctor(…)`: a resolved call summary takes
                        // precedence (it may return Raw); otherwise
                        // assume the result carries `B`.
                        let name_tok = k + 3;
                        if let Some(open) = call_paren(toks, name_tok, b) {
                            let close = matching_delim(toks, open, '(', ')');
                            let val = match self.resolved(fi, name_tok) {
                                Some(cu) => self.call_result(fi, cu, open, close, env, carrier),
                                None => carrier,
                            };
                            let (val, end) = self.postfix_from(fi, close + 1, b, val, env);
                            self.merge_occurrence(&mut out, val, toks, k, end);
                            k = open + 1; // evaluate arguments too
                            continue;
                        }
                        k += 3;
                        continue;
                    }
                    k += 1;
                    continue;
                }
            }
            // Resolved call at this name token — free fn, path tail
            // (`mod::f(…)`), or method on a clean/unbound receiver.
            // The callee summary replaces the argument walk: an
            // argument only flows out through `param_ret`.
            if !next_colon {
                if let Some(cu) = self.resolved(fi, k) {
                    if let Some(open) = call_paren(toks, k, b) {
                        let close = matching_delim(toks, open, '(', ')');
                        let val = self.call_result(fi, cu, open, close, env, Taint::clean());
                        let (val, end) = self.postfix_from(fi, close + 1, b, val, env);
                        self.merge_occurrence(&mut out, val, toks, k, end);
                        k = close + 1;
                        continue;
                    }
                }
            }
            k += 1;
        }
        out
    }

    /// Applies a resolved callee's summary at a call whose argument
    /// parens span `(open, close)`.
    fn call_result(
        &self,
        fi: usize,
        callee: usize,
        open: usize,
        close: usize,
        env: &BTreeMap<String, Taint>,
        base: Taint,
    ) -> Taint {
        let mut out = base;
        let s = &self.sums[callee];
        let node = &self.g.fns[callee];
        if s.returns_raw {
            out.merge(&Taint {
                kind: Kind::Raw,
                origins: BTreeSet::new(),
                src: if s.ret_src.is_empty() {
                    format!("`{}`", self.displays[callee])
                } else {
                    s.ret_src.clone()
                },
            });
        }
        // Cached bearing mentions of the return type (`-> Self` on a
        // bearing type's method already resolved at setup).
        let ret_m = &self.ret_mentions[callee];
        if !ret_m.is_empty() {
            out.merge(&Taint {
                kind: Kind::Carrier(ret_m.clone()),
                origins: BTreeSet::new(),
                src: format!("`{}`", self.displays[callee]),
            });
        }
        // Identity-ish params: a tainted argument in a `param_ret`
        // position flows into the result.
        if s.param_ret.iter().any(|&x| x) {
            let toks = &self.files[fi].scan.tokens;
            let method_style = open >= 2 && toks[open - 2].is_punct('.');
            let offset = if method_style && node.params.first().is_some_and(|p| p.name == "self") {
                1
            } else {
                0
            };
            for (j, (alo, ahi)) in split_args(toks, open + 1, close).iter().enumerate() {
                let pi = j + offset;
                if pi < s.param_ret.len() && s.param_ret[pi] {
                    let at = self.eval(fi, *alo, *ahi, env);
                    out.merge(&at);
                }
            }
        }
        out
    }

    /// Unique resolved callee for the call-name token at `tok`.
    fn resolved(&self, fi: usize, tok: usize) -> Option<usize> {
        match self.site_by_tok[fi].get(tok) {
            Some(&i) if i != u32::MAX => Some(self.g.calls[i as usize].callee),
            _ => None,
        }
    }

    /// Postfix walk starting from the token *after* an occurrence at
    /// `k` (an ident); returns the final value and the exclusive end.
    fn postfix(
        &self,
        fi: usize,
        k: usize,
        b: usize,
        start: Taint,
        env: &BTreeMap<String, Taint>,
    ) -> (Taint, usize) {
        self.postfix_from(fi, k + 1, b, start, env)
    }

    /// Postfix walk from position `j`: `.field`, `.method(args)`,
    /// `[index]`, and `?` transform the value per the projection
    /// rules.
    fn postfix_from(
        &self,
        fi: usize,
        mut j: usize,
        b: usize,
        mut val: Taint,
        env: &BTreeMap<String, Taint>,
    ) -> (Taint, usize) {
        let toks = &self.files[fi].scan.tokens;
        let b = b.min(toks.len());
        while j < b {
            let t = &toks[j];
            if t.is_punct('?') {
                j += 1;
                continue;
            }
            if t.is_punct('[') {
                // Element access keeps the value (an element of a
                // carrier collection is what the `Into` set names).
                let close = matching_delim(toks, j, '[', ']');
                j = close + 1;
                continue;
            }
            if t.is_punct('.') && j + 1 < b {
                let m = &toks[j + 1];
                let mname = m.text.clone();
                let is_call = toks.get(j + 2).is_some_and(|t| t.is_punct('('))
                    || (toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                        && call_paren(toks, j + 1, b).is_some());
                if m.kind == TokenKind::Number {
                    // Tuple projection: fields of tuple structs are
                    // not in the tables; whole-annotated types leak.
                    val = self.project(&val, &mname);
                    j += 2;
                    continue;
                }
                if m.kind != TokenKind::Ident {
                    break;
                }
                if !is_call {
                    val = self.project(&val, &mname);
                    j += 2;
                    continue;
                }
                let open = call_paren(toks, j + 1, b).unwrap_or(j + 2);
                let close = matching_delim(toks, open, '(', ')');
                // Resolved method summaries take precedence over the
                // token-level projection rules.
                if let Some(cu) = self.resolved(fi, j + 1) {
                    val = self.call_result(fi, cu, open, close, env, {
                        // The receiver still projects: `db.relabel()`
                        // on a carrier yields whatever the summary
                        // says, starting clean.
                        Taint::clean()
                    });
                } else {
                    val = self.project(&val, &mname);
                }
                // Arguments can flow into the result (`s.replace(raw,
                // "")`), except for membership/search methods and
                // closures — a `.map(|x| …)` body transforms elements
                // (the receiver chain models that flow) and its own
                // sinks are scanned by the enclosing fn's sink pass.
                if !CLEAN_ARG_METHODS.contains(&mname.as_str()) {
                    for (alo, ahi) in split_args(toks, open + 1, close) {
                        let is_closure = toks
                            .get(alo)
                            .is_some_and(|t| t.is_punct('|') || t.is_ident("move"));
                        if is_closure {
                            continue;
                        }
                        let at = self.eval(fi, alo, ahi, env);
                        if at.kind != Kind::Clean {
                            val.merge(&at);
                        }
                    }
                }
                j = close + 1;
                continue;
            }
            break;
        }
        (val, j)
    }

    /// Projection rules: what `val.name` / `val.name()` yields.
    fn project(&self, val: &Taint, name: &str) -> Taint {
        match &val.kind {
            Kind::Clean => {
                let mut v = val.clone();
                // On an untyped symbol only identity-like projections
                // still denote "the same data"; any other method is a
                // derivation, i.e. an aggregate — drop the symbolic
                // origins so `param_ret` stays meaningful.
                if !ELEMENT_KEEP.contains(&name) {
                    v.origins.clear();
                }
                v
            }
            Kind::Raw => {
                if CLEAN_AGGREGATES.contains(&name) {
                    Taint::clean()
                } else {
                    val.clone()
                }
            }
            Kind::Carrier(types) => {
                for ty in types {
                    match self.cat.proj.get(&(ty.clone(), name.to_string())) {
                        Some(Proj::Leaf) => {
                            return Taint {
                                kind: Kind::Raw,
                                origins: val.origins.clone(),
                                src: format!("`{ty}::{name}`"),
                            }
                        }
                        Some(Proj::Into(m)) => {
                            return Taint {
                                kind: Kind::Carrier(m.clone()),
                                origins: val.origins.clone(),
                                src: format!("`{ty}::{name}`"),
                            }
                        }
                        None => {}
                    }
                }
                if types.iter().any(|t| self.cat.whole.contains(t)) {
                    if CLEAN_AGGREGATES.contains(&name) {
                        return Taint::clean();
                    }
                    return Taint {
                        kind: Kind::Raw,
                        origins: val.origins.clone(),
                        src: val.src.clone(),
                    };
                }
                if ELEMENT_KEEP.contains(&name) {
                    return val.clone();
                }
                // Unknown member on a carrier: a derivation, i.e. an
                // aggregate over the carried data — clean, and the
                // symbolic origins do not survive either.
                Taint::clean()
            }
        }
    }

    /// Merges one occurrence into the running value, laundering
    /// through adjacent arithmetic/comparison operators: a number
    /// *computed from* sensitive data is an aggregate, not a leak.
    fn merge_occurrence(&self, out: &mut Taint, val: Taint, toks: &[Token], k: usize, end: usize) {
        if val.is_clean() {
            return;
        }
        let arith = |i: usize, prefix: bool| -> bool {
            let Some(t) = toks.get(i) else { return false };
            if t.kind != TokenKind::Punct {
                return false;
            }
            match t.text.chars().next() {
                Some('+') | Some('/') | Some('%') | Some('<') | Some('>') => true,
                Some(c @ ('-' | '*')) => {
                    if !prefix {
                        return true; // `x -`, `x *`: always infix
                    }
                    // `- x` / `* x`: infix only when something
                    // precedes the operator (else negation/deref).
                    let _ = c;
                    i.checked_sub(1).is_some_and(|p| {
                        let pt = &toks[p];
                        pt.kind == TokenKind::Ident
                            || pt.kind == TokenKind::Number
                            || pt.is_punct(')')
                            || pt.is_punct(']')
                    })
                }
                _ => false,
            }
        };
        if k.checked_sub(1).is_some_and(|p| arith(p, true)) || arith(end, false) {
            return; // laundered
        }
        if std::env::var_os("ANDI_TAINT_DEBUG").is_some() {
            eprintln!(
                "[taint] {}:{} tok `{}` -> {:?} origins {:?} src {}",
                self.files.first().map(|_| "").unwrap_or(""),
                toks[k].line,
                toks[k].text,
                val.kind,
                val.origins,
                val.src
            );
        }
        out.merge(&val);
    }

    // ----- sensitive-debug -----------------------------------------

    /// `#[derive(Debug)]` / manual `impl Debug` on a directly
    /// annotated type without declassification.
    fn sensitive_debug(&mut self) {
        // One token sweep per file; every directly annotated type is
        // checked against each candidate site as it is found.
        let direct = self.cat.direct.clone();
        for (fi, sf) in self.files.iter().enumerate() {
            let toks = &sf.scan.tokens;
            // (type, line, col, in-test mask)
            let mut sites: Vec<(String, u32, u32, bool)> = Vec::new();
            for k in 0..toks.len() {
                // Derive site: the `Debug` token inside a `derive`
                // attribute directly above `struct ty` / `enum ty`.
                if toks[k].is_ident("derive") && toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
                    let close = matching_delim(toks, k + 1, '(', ')');
                    let Some(d) = toks[k + 2..close.min(toks.len())]
                        .iter()
                        .find(|t| t.is_ident("Debug"))
                    else {
                        continue;
                    };
                    // The derive must belong to an annotated type: the
                    // next `struct`/`enum` ident after the attr.
                    let mut j = close + 1;
                    while j + 1 < toks.len() && j < close + 24 {
                        if (toks[j].is_ident("struct") || toks[j].is_ident("enum"))
                            && toks[j + 1].kind == TokenKind::Ident
                        {
                            if direct.contains(&toks[j + 1].text) {
                                sites.push((
                                    toks[j + 1].text.clone(),
                                    d.line,
                                    d.col,
                                    sf.mask.get(k).copied().unwrap_or(false),
                                ));
                            }
                            break;
                        }
                        j += 1;
                    }
                }
                // Manual impl: `impl [fmt::]Debug for ty`.
                if toks[k].is_ident("Debug")
                    && toks.get(k + 1).is_some_and(|t| t.is_ident("for"))
                    && toks
                        .get(k + 2)
                        .is_some_and(|t| t.kind == TokenKind::Ident && direct.contains(&t.text))
                {
                    sites.push((
                        toks[k + 2].text.clone(),
                        toks[k].line,
                        toks[k].col,
                        sf.mask.get(k).copied().unwrap_or(false),
                    ));
                }
            }
            for (ty, line, col, masked) in sites {
                if masked {
                    continue; // test-only impls are fine
                }
                let msg = format!(
                    "sensitive type `{ty}` derives or implements `Debug` without \
                     declassification; a `{{:?}}` render discloses raw contents — \
                     remove it or add `// andi::declassify(<reason>)`"
                );
                let flow = format!("`{ty}` → `Debug` → `{{:?}}` render");
                if let Some(d) = self.covering_declassify(fi, line, None) {
                    let slot = &mut self.declassify_used[fi][d];
                    slot.0 = true;
                    if !slot.1.contains(&flow) {
                        slot.1.push(flow);
                    }
                } else {
                    self.findings.push(Finding {
                        file: self.files[fi].path.clone(),
                        line,
                        col,
                        rule: "sensitive-debug",
                        message: msg,
                    });
                }
            }
        }
    }

    // ----- hygiene + assembly --------------------------------------

    fn declassify_hygiene(&mut self) {
        for (fi, sf) in self.files.iter().enumerate() {
            for (di, d) in sf.scan.declassifies.iter().enumerate() {
                if d.reason.is_empty() {
                    self.hygiene.push(Finding {
                        file: sf.path.clone(),
                        line: d.line,
                        col: 1,
                        rule: "invalid-pragma",
                        message: "andi::declassify requires an audit reason inside \
                                  the parentheses: `// andi::declassify(<reason>)`"
                            .to_string(),
                    });
                } else if !self.declassify_used[fi][di].0 {
                    self.hygiene.push(Finding {
                        file: sf.path.clone(),
                        line: d.line,
                        col: 1,
                        rule: "unused-pragma",
                        message: "andi::declassify sanctions no sensitive flow; \
                                  delete it (stale declassifications hide future leaks)"
                            .to_string(),
                    });
                }
            }
        }
    }

    fn finish(self) -> TaintReport {
        let mut declassifies = Vec::new();
        for (fi, sf) in self.files.iter().enumerate() {
            for (di, d) in sf.scan.declassifies.iter().enumerate() {
                if d.reason.is_empty() {
                    continue;
                }
                let mut flows = self.declassify_used[fi][di].1.clone();
                flows.sort();
                flows.dedup();
                declassifies.push(DeclassifySite {
                    file: sf.path.clone(),
                    line: d.line,
                    reason: d.reason.clone(),
                    flows,
                });
            }
        }
        let mut findings = self.findings;
        findings.sort_by(|x, y| {
            (&x.file, x.line, x.col, x.rule, &x.message)
                .cmp(&(&y.file, y.line, y.col, y.rule, &y.message))
        });
        findings.dedup();
        let mut hygiene = self.hygiene;
        hygiene.sort_by(|x, y| {
            (&x.file, x.line, x.col, x.rule, &x.message)
                .cmp(&(&y.file, y.line, y.col, y.rule, &y.message))
        });
        hygiene.dedup();
        TaintReport {
            findings,
            hygiene,
            stats: TaintStats {
                sensitive_types: self.cat.direct.iter().cloned().collect(),
                sensitive_members: self.cat.members,
                bearing_types: self.cat.bearing.iter().cloned().collect(),
                fns_analyzed: self
                    .g
                    .fns
                    .iter()
                    .filter(|f| f.body.is_some() && !f.in_test)
                    .count(),
                raw_returning_fns: self.sums.iter().filter(|s| s.returns_raw).count(),
                sink_sites: self.sink_sites,
                declassifies,
            },
        }
    }
}

/// Receiver-mutating methods through which taint enters a local
/// collection/string (`buf.push_str(raw)`).
const MUTATORS: &[&str] = &["push", "push_str", "insert", "extend", "append"];

/// Matching close delimiter for `open` (same-kind nesting), or the
/// token count when unbalanced.
fn matching_delim(toks: &[Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len()
}

/// Top-level `=` inside a statement segment (same rules as the
/// dataflow pass).
fn top_level_eq(seg: &[Token]) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in seg.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if depth <= 0 && t.is_punct('=') {
            let prev_op = k > 0
                && seg[k - 1].kind == TokenKind::Punct
                && !seg[k - 1].is_punct(')')
                && !seg[k - 1].is_punct(']');
            let next_eq = seg.get(k + 1).is_some_and(|t| t.is_punct('='));
            if !prev_op && !next_eq {
                return Some(k);
            }
        }
    }
    None
}

/// Top-level `:` (type ascription) in a `let` pattern segment.
fn top_level_colon(seg: &[Token]) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in seg.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if depth <= 0 && t.is_punct(':') {
            return Some(k);
        }
    }
    None
}

/// Identifier names captured inline in a format string literal:
/// `"{x}"`, `"{x:?}"`, `"{x:>8}"`. `{{` escapes are skipped;
/// positional `{}` / `{0}` captures refer to the argument list,
/// which the token walk already covers.
fn inline_captures(lit: &str) -> Vec<String> {
    let bytes: Vec<char> = lit.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != '{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&'{') {
            i += 2; // escaped brace
            continue;
        }
        let mut j = i + 1;
        let mut name = String::new();
        while j < bytes.len() && (bytes[j] == '_' || bytes[j].is_alphanumeric()) {
            name.push(bytes[j]);
            j += 1;
        }
        let terminated = bytes.get(j) == Some(&'}') || bytes.get(j) == Some(&':');
        if terminated && !name.is_empty() && !name.chars().next().unwrap().is_ascii_digit() {
            out.push(name);
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build;

    fn run(src: &str) -> TaintReport {
        let files = vec![SourceFile::new("crates/core/src/t.rs", src)];
        let g = build(&files);
        analyze(&files, &g)
    }

    fn rules(r: &TaintReport) -> Vec<&'static str> {
        r.findings.iter().map(|f| f.rule).collect()
    }

    const SENSITIVE_STRUCT: &str = "pub struct Txn {\n    // andi::sensitive — raw items\n    items: Vec<u64>,\n}\nimpl Txn {\n    pub fn items(&self) -> &[u64] { &self.items }\n    pub fn len(&self) -> usize { self.items.len() }\n}\n";

    #[test]
    fn direct_leak_is_flagged_with_source_and_sink() {
        let src = format!(
            "{SENSITIVE_STRUCT}pub fn show(t: &Txn) -> String {{\n    format!(\"{{:?}}\", t.items())\n}}\n"
        );
        let r = run(&src);
        assert_eq!(rules(&r), vec!["leak-to-log"]);
        let m = &r.findings[0].message;
        assert!(m.contains("Txn::items"), "source named: {m}");
        assert!(m.contains("`format!`"), "sink named: {m}");
    }

    #[test]
    fn aggregates_are_laundered() {
        let src = format!(
            "{SENSITIVE_STRUCT}pub fn stats(t: &Txn) -> String {{\n    let n = t.len();\n    let s: u64 = t.items().iter().sum::<u64>() / 2;\n    format!(\"n={{n}} s={{s}}\")\n}}\n"
        );
        let r = run(&src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn inline_capture_leak_is_flagged() {
        let src = format!(
            "{SENSITIVE_STRUCT}pub fn show(t: &Txn) -> String {{\n    let raw = t.items();\n    format!(\"{{raw:?}}\")\n}}\n"
        );
        let r = run(&src);
        assert_eq!(rules(&r), vec!["leak-to-log"]);
    }

    #[test]
    fn declassify_sanctions_and_is_tracked() {
        let src = format!(
            "{SENSITIVE_STRUCT}pub fn export(t: &Txn) -> String {{\n    // andi::declassify(audited corpus export)\n    format!(\"{{:?}}\", t.items())\n}}\n"
        );
        let r = run(&src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.hygiene.is_empty(), "{:?}", r.hygiene);
        assert_eq!(r.stats.declassifies.len(), 1);
        assert_eq!(r.stats.declassifies[0].reason, "audited corpus export");
        assert_eq!(r.stats.declassifies[0].flows.len(), 1);
    }

    #[test]
    fn unused_declassify_is_hygiene() {
        let src = format!(
            "{SENSITIVE_STRUCT}pub fn clean(t: &Txn) -> String {{\n    // andi::declassify(nothing flows here)\n    format!(\"n={{}}\", t.len())\n}}\n"
        );
        let r = run(&src);
        assert!(r.findings.is_empty());
        assert_eq!(r.hygiene.len(), 1);
        assert_eq!(r.hygiene[0].rule, "unused-pragma");
    }

    #[test]
    fn interprocedural_flow_reports_the_chain() {
        let src = format!(
            "{SENSITIVE_STRUCT}fn log_line(msg: &str) {{\n    println!(\"{{msg}}\");\n}}\npub fn trace(t: &Txn) {{\n    let raw = format!(\"{{:?}}\", t.items());\n    log_line(&raw);\n}}\n"
        );
        let r = run(&src);
        // Two findings: the local format! and the call-site flow.
        assert!(rules(&r).contains(&"leak-to-log"), "{:?}", r.findings);
        assert!(
            r.findings.iter().any(|f| f.message.contains("log_line")),
            "chain names the callee: {:?}",
            r.findings
        );
    }

    #[test]
    fn error_payload_leak_is_leak_in_error() {
        let src = format!(
            "{SENSITIVE_STRUCT}pub enum MyError {{ Bad(String) }}\npub fn fail(t: &Txn) -> MyError {{\n    MyError::Bad(format!(\"{{:?}}\", t.items()))\n}}\n"
        );
        let r = run(&src);
        assert_eq!(rules(&r), vec!["leak-in-error"]);
    }

    #[test]
    fn sensitive_debug_fires_without_declassify() {
        let src =
            "#[derive(Debug)]\npub struct Txn {\n    // andi::sensitive\n    items: Vec<u64>,\n}\n";
        let r = run(src);
        assert_eq!(rules(&r), vec!["sensitive-debug"]);
    }

    #[test]
    fn declassified_debug_is_sanctioned() {
        let src = "// andi::declassify(debug for test diagnostics only)\n#[derive(Debug)]\npub struct Txn {\n    // andi::sensitive\n    items: Vec<u64>,\n}\n";
        let r = run(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.stats.declassifies.len(), 1);
    }

    #[test]
    fn carrier_projections_default_clean() {
        let src = format!(
            "pub struct Db {{\n    n: usize,\n    // andi::sensitive\n    txns: Vec<Txn>,\n}}\n{SENSITIVE_STRUCT}impl Db {{\n    pub fn n(&self) -> usize {{ self.n }}\n}}\npub fn describe(db: &Db) -> String {{\n    format!(\"{{}} txns\", db.n())\n}}\n"
        );
        let r = run(&src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn bearing_closure_carries_through_wrappers() {
        let src = format!(
            "{SENSITIVE_STRUCT}pub struct Wrap {{\n    inner: Vec<Txn>,\n}}\npub fn dump(w: &Wrap) {{\n    for t in &w.inner {{\n        println!(\"{{:?}}\", t.items());\n    }}\n}}\n"
        );
        let r = run(&src);
        assert_eq!(rules(&r), vec!["leak-to-log"]);
    }

    #[test]
    fn invalid_sensitive_mark_is_hygiene() {
        let r = run("// andi::sensitive\n\nfn unrelated() {}\n");
        assert_eq!(r.hygiene.len(), 1);
        assert_eq!(r.hygiene[0].rule, "invalid-pragma");
    }

    #[test]
    fn write_all_is_a_sink() {
        let src = format!(
            "{SENSITIVE_STRUCT}use std::io::Write;\npub fn save(t: &Txn, w: &mut impl Write) {{\n    let mut line = String::new();\n    for x in t.items() {{\n        line.push_str(&x.to_string());\n    }}\n    w.write_all(line.as_bytes()).unwrap();\n}}\n"
        );
        let r = run(&src);
        assert_eq!(rules(&r), vec!["leak-to-log"]);
        assert!(r.findings[0].message.contains("write_all"));
    }

    #[test]
    fn inline_captures_parse() {
        assert_eq!(
            inline_captures("\"a {x} b {y:?} {{esc}} {0} {} {z:>8}\""),
            vec!["x", "y", "z"]
        );
    }
}

//! `andi-lint` — repo-native static analysis for the `andi`
//! workspace.
//!
//! The workspace's headline guarantee (PR 1) is that every risk
//! number is bit-identical across runs and thread counts. That
//! guarantee is easy to erode one `HashMap` iteration or one
//! `unwrap()` at a time, so this crate enforces it mechanically, in
//! two layers:
//!
//! * a **token layer**: a comment/string/char-literal-aware scanner
//!   ([`lexer`]) and line-local rules over the token stream
//!   ([`rules`]);
//! * a **semantic layer**: a recursive-descent item parser
//!   ([`parser`]) producing per-file item trees with real
//!   `#[cfg(test)]` scopes, a workspace call graph linking fn
//!   definitions to call sites across crates ([`graph`]), and a
//!   forward-dataflow engine over fn bodies ([`dataflow`]) — the
//!   substrate for `panic-reachability`, `seed-provenance`,
//!   `float-merge-order`, and `result-discard`.
//!
//! The engine ([`engine`]) lints the whole workspace as one unit and
//! emits findings in `(path, line, column, rule)` order, so output is
//! byte-identical regardless of walk order.
//!
//! Run it with `cargo run -p andi-lint -- check`; CI runs it with
//! `--format json` and fails the build on any unsuppressed finding.
//! Suppressions are spelled
//!
//! ```text
//! // andi::allow(lib-unwrap) — mutex poisoning is unreachable: workers never panic
//! ```
//!
//! on the offending line or the line above it, and MUST carry a
//! written justification; the engine itself flags empty reasons
//! (`invalid-pragma`) and pragmas that suppress nothing
//! (`unused-pragma`). For `panic-reachability`, a pragma at a *call
//! site* vouches for every panic behind that edge (see
//! CONTRIBUTING.md for the report format).

#![forbid(unsafe_code)]

pub mod contracts;
pub mod dataflow;
pub mod engine;
pub mod graph;
pub mod interval;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod taint;

pub use contracts::{Assume, Contract, FileContracts};
pub use engine::{
    check_tree, count_declassifies, count_pragmas, format_human, format_json, format_sarif,
    lint_file, lint_files, lint_source, lint_workspace, prove_tree, taint_tree, tree_files,
};
pub use graph::{build, CallGraph, CallSite, FnNode, PanicSite, SourceFile};
pub use interval::{prove, Interval, ProofStats, Proved, Ty, TyInfo};
pub use lexer::{scan, ContractComment, Declassify, Pragma, Scan, SensitiveMark, Token, TokenKind};
pub use parser::{parse, FileAst, Item, ItemKind, Param, Vis};
pub use rules::{Finding, RuleInfo, RULES};
pub use taint::{analyze, DeclassifySite, TaintReport, TaintStats};

//! `andi-lint` — repo-native static analysis for the `andi`
//! workspace.
//!
//! The workspace's headline guarantee (PR 1) is that every risk
//! number is bit-identical across runs and thread counts. That
//! guarantee is easy to erode one `HashMap` iteration or one
//! `unwrap()` at a time, so this crate enforces it mechanically:
//! a comment/string/char-literal-aware token scanner ([`lexer`]),
//! a rule catalogue over the token stream ([`rules`]), and an
//! engine with per-line suppression pragmas ([`engine`]).
//!
//! Run it with `cargo run -p andi-lint -- check`; CI runs it with
//! `--format json` and fails the build on any unsuppressed finding.
//! Suppressions are spelled
//!
//! ```text
//! // andi::allow(lib-unwrap) — mutex poisoning is unreachable: workers never panic
//! ```
//!
//! on the offending line or the line above it, and MUST carry a
//! written justification; the engine itself flags empty reasons
//! (`invalid-pragma`) and pragmas that suppress nothing
//! (`unused-pragma`).

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{check_tree, format_human, format_json, lint_file, lint_source};
pub use lexer::{scan, Pragma, Scan, Token, TokenKind};
pub use rules::{Finding, RuleInfo, RULES};

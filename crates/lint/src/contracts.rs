//! Contract pragmas for the interval prover.
//!
//! Two comment forms feed [`crate::interval`]:
//!
//! ```text
//! // andi::prove_no_overflow
//! // andi::assume(<target> in [<lo>, <hi>]) — <reason>
//! ```
//!
//! `prove_no_overflow` marks the *enclosing fn body* as a proven
//! region: every `+ - * << neg` (and compound form) inside it must
//! have a computed interval provably within its type, or
//! `unchecked-width` fires. `assume` narrows the prover's knowledge:
//! `<target>` is either a variable name (`total`) or a verbatim
//! expression (`avail[j] - choice[j]`, `key << self.bits`), and the
//! prover substitutes `[lo, hi]` wherever the target matches. An
//! expression target additionally exempts the ops *inside* the
//! matched expression — the assume vouches for them, which is why
//! every assume must itself be backed by a runtime guard
//! (`assume-soundness`).
//!
//! Hygiene mirrors `andi::allow` exactly: malformed contracts are
//! `invalid-pragma`, contracts that never narrow anything are
//! `unused-pragma`, and `assume` MUST carry a written reason.

use crate::lexer::{scan, ContractComment, Token, TokenKind};

/// One parsed, well-formed contract.
#[derive(Clone, Debug, PartialEq)]
pub enum Contract {
    /// `andi::prove_no_overflow` — the enclosing fn body is a proven
    /// region.
    ProveRegion {
        /// 1-based line of the marker comment.
        line: u32,
    },
    /// `andi::assume(<target> in [<lo>, <hi>]) — <reason>`.
    Assume(Assume),
}

/// A parsed `andi::assume`.
#[derive(Clone, Debug, PartialEq)]
pub struct Assume {
    /// 1-based line of the comment.
    pub line: u32,
    /// The target's tokens, normalized (joined with single spaces),
    /// e.g. `"total"` or `"key << self . bits"`.
    pub target: String,
    /// Identifiers appearing in the target (minus `self`) — the free
    /// variables a dominating guard must mention.
    pub idents: Vec<String>,
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
    /// The written justification (required).
    pub reason: String,
}

/// All contracts of one file, plus the malformed ones.
#[derive(Clone, Debug, Default)]
pub struct FileContracts {
    /// Well-formed contracts in source order.
    pub contracts: Vec<Contract>,
    /// `(line, message)` for malformed contract comments.
    pub invalid: Vec<(u32, String)>,
}

/// Normalizes a snippet of Rust source to the prover's canonical
/// token text: tokens joined with single spaces. Comments and
/// whitespace vanish, so `avail[ j ]-choice[j]` and
/// `avail[j] - choice[j]` normalize identically.
pub fn normalize(snippet: &str) -> String {
    join_glued(&scan(snippet).tokens)
}

/// Joins tokens with single spaces, regluing multi-char operators the
/// lexer split into adjacent single-char puncts (`<<`, `>>=`, `::`,
/// …) so `a << b` and `a<<b` normalize identically while a genuinely
/// separated `< <` (e.g. `a < <T as U>::C`) stays split. Both assume
/// targets and the code spans they are matched against go through
/// this, so the two sides cannot drift.
pub(crate) fn join_glued(toks: &[Token]) -> String {
    const THREE: &[&str] = &["<<=", ">>=", "..="];
    const TWO: &[&str] = &[
        "<<", ">>", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
        "|=", "::", "->", "=>", "..",
    ];
    fn adj(a: &Token, b: &Token) -> bool {
        a.kind == TokenKind::Punct && b.kind == TokenKind::Punct && a.start + a.len == b.start
    }
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if i + 2 < toks.len() && adj(&toks[i], &toks[i + 1]) && adj(&toks[i + 1], &toks[i + 2]) {
            let glued = format!("{}{}{}", toks[i].text, toks[i + 1].text, toks[i + 2].text);
            if THREE.contains(&glued.as_str()) {
                out.push(glued);
                i += 3;
                continue;
            }
        }
        if i + 1 < toks.len() && adj(&toks[i], &toks[i + 1]) {
            let glued = format!("{}{}", toks[i].text, toks[i + 1].text);
            if TWO.contains(&glued.as_str()) {
                out.push(glued);
                i += 2;
                continue;
            }
        }
        out.push(toks[i].text.clone());
        i += 1;
    }
    out.join(" ")
}

/// Parses the contract comments the lexer collected for one file.
pub fn parse(comments: &[ContractComment]) -> FileContracts {
    let mut out = FileContracts::default();
    for c in comments {
        match parse_one(c) {
            Ok(contract) => out.contracts.push(contract),
            Err(msg) => out.invalid.push((c.line, msg)),
        }
    }
    out
}

fn parse_one(c: &ContractComment) -> Result<Contract, String> {
    if let Some(rest) = c.body.strip_prefix("andi::prove_no_overflow") {
        // Anything after the marker must be a separated remark, not a
        // mistyped argument list.
        let rest = rest.trim_start();
        if rest.is_empty() || rest.starts_with(['—', '-', ':']) {
            return Ok(Contract::ProveRegion { line: c.line });
        }
        return Err("malformed contract; expected `// andi::prove_no_overflow`".to_string());
    }
    let Some(rest) = c.body.strip_prefix("andi::assume(") else {
        return Err(
            "malformed contract; expected `// andi::assume(<target> in [<lo>, <hi>]) — <reason>`"
                .to_string(),
        );
    };
    // The target may contain parentheses/brackets; the bounds cannot,
    // so anchor on the *last* `]` and the `)` that follows it.
    let Some(rbrack) = rest.rfind(']') else {
        return Err("malformed assume; missing `[<lo>, <hi>]` bounds".to_string());
    };
    let after = rest[rbrack + 1..].trim_start();
    let Some(reason_raw) = after.strip_prefix(')') else {
        return Err("malformed assume; missing `)` after the bounds".to_string());
    };
    let inside = &rest[..rbrack];
    let Some(lbrack) = inside.rfind('[') else {
        return Err("malformed assume; missing `[<lo>, <hi>]` bounds".to_string());
    };
    let head = inside[..lbrack].trim_end();
    let Some(target_src) = head.strip_suffix("in").map(str::trim_end) else {
        return Err("malformed assume; expected `<target> in [<lo>, <hi>]`".to_string());
    };
    if target_src.is_empty() {
        return Err("malformed assume; empty target".to_string());
    }
    let bounds = &inside[lbrack + 1..];
    let Some((lo_src, hi_src)) = bounds.split_once(',') else {
        return Err("malformed assume; bounds need `<lo>, <hi>`".to_string());
    };
    let lo = parse_bound(lo_src)?;
    let hi = parse_bound(hi_src)?;
    if lo > hi {
        return Err(format!("malformed assume; empty range [{lo}, {hi}]"));
    }
    let reason = reason_raw
        .trim_start()
        .trim_start_matches(['—', '-', ':', '*'])
        .trim()
        .to_string();
    if reason.is_empty() {
        return Err("assume has no written justification; add `— <reason>`".to_string());
    }
    let target = normalize(target_src);
    if target.is_empty() {
        return Err("malformed assume; empty target".to_string());
    }
    let mut idents: Vec<String> = scan(target_src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident && t.text != "self")
        .map(|t| t.text)
        .collect();
    idents.sort();
    idents.dedup();
    Ok(Contract::Assume(Assume {
        line: c.line,
        target,
        idents,
        lo,
        hi,
        reason,
    }))
}

fn parse_bound(src: &str) -> Result<i128, String> {
    let cleaned: String = src.trim().chars().filter(|&ch| ch != '_').collect();
    cleaned.parse::<i128>().map_err(|_| {
        format!(
            "malformed assume bound `{}`; expected an integer",
            src.trim()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::ContractComment;

    fn one(body: &str) -> Result<Contract, String> {
        parse_one(&ContractComment {
            line: 3,
            body: body.to_string(),
        })
    }

    #[test]
    fn region_marker_parses() {
        assert_eq!(
            one("andi::prove_no_overflow"),
            Ok(Contract::ProveRegion { line: 3 })
        );
        assert_eq!(
            one("andi::prove_no_overflow — whole walk is width-proved"),
            Ok(Contract::ProveRegion { line: 3 })
        );
        assert!(one("andi::prove_no_overflow(oops)").is_err());
    }

    #[test]
    fn simple_assume_parses() {
        let Ok(Contract::Assume(a)) = one("andi::assume(total in [-7, 22]) — loop invariant")
        else {
            panic!("expected assume");
        };
        assert_eq!(a.target, "total");
        assert_eq!(a.idents, vec!["total"]);
        assert_eq!((a.lo, a.hi), (-7, 22));
        assert_eq!(a.reason, "loop invariant");
    }

    #[test]
    fn expression_assume_parses() {
        let Ok(Contract::Assume(a)) =
            one("andi::assume(avail[j] - choice[j] in [0, 18_446_744_073_709_551_615]) — c <= rem")
        else {
            panic!("expected assume");
        };
        assert_eq!(a.target, "avail [ j ] - choice [ j ]");
        assert_eq!(a.idents, vec!["avail", "choice", "j"]);
        assert_eq!(a.hi, 18_446_744_073_709_551_615);
    }

    #[test]
    fn self_is_not_a_free_ident() {
        let Ok(Contract::Assume(a)) =
            one("andi::assume(key << self.bits in [0, 3]) — packing guard")
        else {
            panic!("expected assume");
        };
        assert_eq!(a.target, "key << self . bits");
        assert_eq!(a.idents, vec!["bits", "key"]);
    }

    #[test]
    fn malformed_assumes_are_rejected() {
        for bad in [
            "andi::assume(x in [1, 2])",     // no reason
            "andi::assume(x in [5, 2]) — r", // empty range
            "andi::assume(x [1, 2]) — r",    // missing `in`
            "andi::assume(x in [a, 2]) — r", // non-integer bound
            "andi::assume(x in [1, 2] — r",  // missing `)`
            "andi::assume x in [1, 2] — r",  // missing `(`
            "andi::assume( in [1, 2]) — r",  // empty target
        ] {
            assert!(one(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn i128_extremes_parse() {
        let Ok(Contract::Assume(a)) = one(
            "andi::assume(total in [-170141183460469231731687303715884105728, \
             170141183460469231731687303715884105727]) — full i128",
        ) else {
            panic!("expected assume");
        };
        assert_eq!(a.lo, i128::MIN);
        assert_eq!(a.hi, i128::MAX);
    }
}
